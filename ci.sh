#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test, golden surfaces, perf smoke —
# all offline. Each stage reports its wall time; the trailer totals them.
#
#   ./ci.sh                 run every stage
#   ./ci.sh --list          print the stage names and exit
#   ./ci.sh --only NAME     run one stage (repeatable; order preserved)
set -euo pipefail
IFS=$'\n\t'
cd "$(dirname "$0")"

# Stage selection: empty = all. `--only` may be passed multiple times.
LIST_ONLY=0
declare -a ONLY=()
while [ "$#" -gt 0 ]; do
    case "$1" in
    --list)
        LIST_ONLY=1
        ;;
    --only)
        [ "$#" -ge 2 ] || {
            echo "ci.sh: --only needs a stage name (see --list)" >&2
            exit 2
        }
        ONLY+=("$2")
        shift
        ;;
    *)
        echo "ci.sh: unknown argument $1 (try --list)" >&2
        exit 2
        ;;
    esac
    shift
done

# stage <name> <cmd...> — run one CI stage, timing it. With --list, just
# print the name; with --only, skip stages not selected.
RAN=0
stage() {
    local name=$1
    shift
    if [ "$LIST_ONLY" -eq 1 ]; then
        echo "$name"
        return 0
    fi
    if [ "${#ONLY[@]}" -gt 0 ]; then
        local selected=0 want
        for want in "${ONLY[@]}"; do
            [ "$want" = "$name" ] && selected=1
        done
        [ "$selected" -eq 1 ] || return 0
    fi
    RAN=$((RAN + 1))
    echo "==> ${name}"
    local t0=$SECONDS
    "$@"
    echo "    (${name}: $((SECONDS - t0))s)"
}

# Shellcheck gate on this script itself. Skips loudly when the tool is
# not installed (local boxes); CI images have it.
shellcheck_ci() {
    if ! command -v shellcheck >/dev/null 2>&1; then
        echo "    SKIP: shellcheck not installed; install it to lint ci.sh locally"
        return 0
    fi
    shellcheck ci.sh
}

stage "shellcheck" shellcheck_ci

stage "fmt" cargo fmt --all -- --check

stage "clippy" cargo clippy --workspace --all-targets -- -D warnings

stage "build" cargo build --workspace --release

stage "test" cargo test --workspace -q

oldenc() {
    cargo run --release -q -p olden-bench --bin oldenc -- "$@"
}

stage "lint-golden" \
    oldenc lint --golden tests/golden/oldenc-benchmarks.txt

stage "typecheck" \
    oldenc typecheck

stage "gen-golden" \
    oldenc gen --seed 0 --count 5 --golden tests/golden/oldenc-gen.txt

# Fuzz smoke: 500 seeds through every oracle — round-trip, typecheck,
# pass totality, cross-pass consistency, metamorphic invariance — plus
# the non-vacuity gate (every seeded ill-typed mutation class must be
# rejected with its matching TC0xx code). Deterministic: a failure
# shrinks to a reproducer under tests/corpus/ and replays in cargo test.
stage "fuzz-smoke" \
    oldenc fuzz --seeds 500

stage "opt-golden" \
    oldenc opt --golden tests/golden/oldenc-opt.txt

stage "select-golden" \
    oldenc select --golden tests/golden/oldenc-select.txt

stage "scheme-golden" \
    oldenc scheme --golden tests/golden/oldenc-scheme.txt

stage "predict" \
    oldenc predict

stage "elide" \
    oldenc elide

stage "chaos-golden" \
    oldenc chaos --seeds 32 --golden tests/golden/oldenc-chaos.txt

# Differential fuzz: 200 generated programs typechecked, mechanism-
# selected, lowered to the executable IR, and executed on the simulator
# vs the lockstep thread backend — byte-equal values, trips, and
# counters; every 8th seed also under fault injection; cost-model band
# conformance per seed. Deterministic: a divergence shrinks to a
# reproducer under tests/corpus/ and the surface pins against the
# golden (re-record with --bless).
stage "difftest" \
    oldenc difftest --seeds 200 --golden tests/golden/oldenc-difftest.txt

# Scheme matrix: the same 200-seed differential sweep under the other
# two Appendix-A coherence schemes, each against its own blessed golden.
# Together with the difftest stage above, every generated program is
# byte-equal across sim and exec under all three protocols.
scheme_matrix() {
    oldenc difftest --seeds 200 --protocol global \
        --golden tests/golden/oldenc-difftest-global.txt
    oldenc difftest --seeds 200 --protocol bilateral \
        --golden tests/golden/oldenc-difftest-bilateral.txt
}

stage "scheme-matrix" scheme_matrix

# Net parity: every benchmark re-run across real worker processes over
# loopback TCP, counters byte-equal to the simulator, plus seeded chaos
# schedules over the sockets and a global-knowledge pass so the
# coherence frames cross real sockets in CI too. Exit 3 means the
# sandbox denies loopback; skip gracefully rather than fail.
net_parity() {
    local rc=0
    oldenc net --procs 4 --seeds 2 || rc=$?
    if [ "$rc" -eq 3 ]; then
        echo "    (net parity skipped: loopback TCP unavailable)"
        return 0
    elif [ "$rc" -ne 0 ]; then
        return "$rc"
    fi
    oldenc net --procs 4 --protocol global || rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
        return "$rc"
    fi
}

stage "net-parity" net_parity

# Perf smoke: counters must equal the committed baseline exactly; wall
# times may drift up to 35% after calibration-normalizing host speed.
stage "perf-smoke" \
    oldenc bench --json /tmp/bench.json \
    --check BENCH_baseline.json --tolerance 0.35

if [ "$LIST_ONLY" -eq 1 ]; then
    exit 0
fi
if [ "${#ONLY[@]}" -gt 0 ] && [ "$RAN" -eq 0 ]; then
    echo "ci.sh: no stage matched ${ONLY[*]} (see --list)" >&2
    exit 2
fi
echo "CI green in ${SECONDS}s (${RAN} stage(s))."
