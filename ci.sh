#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test — all offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI green."
