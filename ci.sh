#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test — all offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> oldenc lint (benchmark DSL race surface vs golden)"
cargo run --release -q -p olden-bench --bin oldenc -- \
    lint --golden tests/golden/oldenc-benchmarks.txt

echo "==> oldenc opt (optimizer verdict surface vs golden)"
cargo run --release -q -p olden-bench --bin oldenc -- \
    opt --golden tests/golden/oldenc-opt.txt

echo "==> oldenc elide (annotated benchmarks must elide checks at runtime)"
cargo run --release -q -p olden-bench --bin oldenc -- elide

echo "==> oldenc chaos (fault-injected exec runs vs fault-free simulator, surface vs golden)"
cargo run --release -q -p olden-bench --bin oldenc -- \
    chaos --seeds 32 --golden tests/golden/oldenc-chaos.txt

echo "CI green."
