#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test, golden surfaces, perf smoke —
# all offline. Each stage reports its wall time; the trailer totals them.
set -euo pipefail
IFS=$'\n\t'
cd "$(dirname "$0")"

# stage <name> <cmd...> — run one CI stage, timing it.
stage() {
    local name=$1
    shift
    echo "==> ${name}"
    local t0=$SECONDS
    "$@"
    echo "    (${name}: $((SECONDS - t0))s)"
}

stage "cargo fmt --check" cargo fmt --all -- --check

stage "cargo clippy -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings

stage "cargo build --release" cargo build --workspace --release

stage "cargo test -q" cargo test --workspace -q

oldenc() {
    cargo run --release -q -p olden-bench --bin oldenc -- "$@"
}

stage "oldenc lint (benchmark DSL race surface vs golden)" \
    oldenc lint --golden tests/golden/oldenc-benchmarks.txt

stage "oldenc typecheck (TC0xx front gate over benchmarks + racy corpus)" \
    oldenc typecheck

stage "oldenc gen (seeded program-generator surface vs golden)" \
    oldenc gen --seed 0 --count 5 --golden tests/golden/oldenc-gen.txt

# Fuzz smoke: 500 seeds through every oracle — round-trip, typecheck,
# pass totality, cross-pass consistency, metamorphic invariance — plus
# the non-vacuity gate (every seeded ill-typed mutation class must be
# rejected with its matching TC0xx code). Deterministic: a failure
# shrinks to a reproducer under tests/corpus/ and replays in cargo test.
stage "oldenc fuzz (metamorphic verification sweep, 500 seeds)" \
    oldenc fuzz --seeds 500

stage "oldenc opt (optimizer verdict surface vs golden)" \
    oldenc opt --golden tests/golden/oldenc-opt.txt

stage "oldenc select (mechanism-selection surface vs golden)" \
    oldenc select --golden tests/golden/oldenc-select.txt

stage "oldenc predict (static cost model over all benchmarks)" \
    oldenc predict

stage "oldenc elide (annotated benchmarks must elide checks at runtime)" \
    oldenc elide

stage "oldenc chaos (fault-injected exec runs vs fault-free simulator, surface vs golden)" \
    oldenc chaos --seeds 32 --golden tests/golden/oldenc-chaos.txt

# Differential fuzz: 200 generated programs typechecked, mechanism-
# selected, lowered to the executable IR, and executed on the simulator
# vs the lockstep thread backend — byte-equal values, trips, and
# counters; every 8th seed also under fault injection; cost-model band
# conformance per seed. Deterministic: a divergence shrinks to a
# reproducer under tests/corpus/ and the surface pins against the
# golden (re-record with --bless).
stage "oldenc difftest (whole-stack differential fuzz, 200 seeds, surface vs golden)" \
    oldenc difftest --seeds 200 --golden tests/golden/oldenc-difftest.txt

# Net parity: every benchmark re-run across real worker processes over
# loopback TCP, counters byte-equal to the simulator, plus seeded chaos
# schedules over the sockets. Exit 3 means the sandbox denies loopback;
# skip gracefully rather than fail.
net_parity() {
    local rc=0
    oldenc net --procs 4 --seeds 2 || rc=$?
    if [ "$rc" -eq 3 ]; then
        echo "    (net parity skipped: loopback TCP unavailable)"
    elif [ "$rc" -ne 0 ]; then
        return "$rc"
    fi
}

stage "oldenc net (multi-process parity over loopback TCP)" net_parity

# Perf smoke: counters must equal the committed baseline exactly; wall
# times may drift up to 35% after calibration-normalizing host speed.
stage "oldenc bench (perf smoke vs BENCH_baseline.json)" \
    oldenc bench --json /tmp/bench.json \
    --check BENCH_baseline.json --tolerance 0.35

echo "CI green in ${SECONDS}s."
