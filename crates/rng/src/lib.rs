//! A tiny deterministic RNG shared by the whole workspace.
//!
//! Benchmarks must be bit-for-bit reproducible across the sequential
//! baseline and every processor count (the paper's speedups divide the two
//! runs), so each workload seeds its own SplitMix64 stream explicitly. The
//! same generator drives the in-repo randomized property tests and the
//! micro-bench harness, keeping the workspace free of external
//! dependencies so tier-1 builds run with no network access.

/// SplitMix64: fast, high-quality 64-bit generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift rejection-free mapping (slight bias irrelevant
        // for workload generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// A deterministic 64-bit mix of two values (used for implicit edge
/// weights, e.g. MST's `weight(i, j)`).
pub fn mix2(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(0x1234_5678_9ABC_DEF0);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_covers_interval() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.range(2, 7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "roughly uniform");
    }

    #[test]
    fn mix2_is_symmetric_in_neither_argument() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_eq!(mix2(5, 9), mix2(5, 9));
    }
}
