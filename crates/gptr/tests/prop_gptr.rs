//! Randomized tests for pointer encoding and heap geometry, driven by the
//! workspace's deterministic RNG (no external property-test dependency).

use olden_gptr::{geometry, GPtr, Word, LINE_WORDS, LOCAL_MASK, PAGE_WORDS};
use olden_rng::SplitMix64;

const CASES: usize = 512;

#[test]
fn encode_decode_roundtrip() {
    let mut r = SplitMix64::new(0x9971);
    for _ in 0..CASES {
        let proc = r.below(256) as u8;
        let local = r.below(LOCAL_MASK + 1);
        let p = GPtr::new(proc, local);
        assert_eq!(p.proc(), proc);
        assert_eq!(p.local(), local);
        assert_eq!(GPtr::from_bits(p.bits()), p);
    }
}

#[test]
fn locality_matches_proc() {
    let mut r = SplitMix64::new(0x9972);
    for _ in 0..CASES {
        let proc = r.below(256) as u8;
        let other = r.below(256) as u8;
        let local = 1 + r.below(LOCAL_MASK);
        let p = GPtr::new(proc, local);
        assert_eq!(p.is_local_to(other), proc == other);
    }
}

#[test]
fn offset_adds_words() {
    let mut r = SplitMix64::new(0x9973);
    for _ in 0..CASES {
        let proc = r.below(32) as u8;
        let local = r.below(1_000_000);
        let k = r.below(256);
        let p = GPtr::new(proc, local);
        let q = p.offset(k);
        assert_eq!(q.proc(), proc);
        assert_eq!(q.local(), local + k);
    }
}

#[test]
fn page_line_decomposition() {
    let mut r = SplitMix64::new(0x9974);
    for _ in 0..CASES {
        let word = r.below(100_000_000);
        let page = geometry::page_of_word(word);
        let line = geometry::line_in_page_of_word(word);
        let base = geometry::line_base_word(page, line);
        assert!(base <= word);
        assert!(word < base + LINE_WORDS as u64);
        assert!(geometry::page_base_word(page) <= word);
        assert!(word < geometry::page_base_word(page) + PAGE_WORDS as u64);
        assert!((line as usize) < geometry::LINES_PER_PAGE);
    }
}

#[test]
fn global_line_consistent() {
    let mut r = SplitMix64::new(0x9975);
    for _ in 0..CASES {
        let word = r.below(100_000_000);
        let gl = geometry::global_line_of_word(word);
        let page = geometry::page_of_word(word);
        let line = geometry::line_in_page_of_word(word);
        assert_eq!(gl, page * geometry::LINES_PER_PAGE as u64 + line as u64);
    }
}

#[test]
fn word_f64_bitcast_roundtrip() {
    let mut r = SplitMix64::new(0x9976);
    for _ in 0..CASES {
        // Any bit pattern survives the f64 interpretation round-trip.
        let bits = r.next_u64();
        let w = Word(bits);
        assert_eq!(Word::from(w.as_f64()).as_u64(), bits);
    }
}

#[test]
fn word_ptr_roundtrip() {
    let mut r = SplitMix64::new(0x9977);
    for _ in 0..CASES {
        let p = GPtr::new(r.below(256) as u8, r.below(LOCAL_MASK + 1));
        assert_eq!(Word::from(p).as_ptr(), p);
    }
}
