//! Property tests for pointer encoding and heap geometry.

use olden_gptr::{geometry, GPtr, Word, LINE_WORDS, LOCAL_MASK, PAGE_WORDS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn encode_decode_roundtrip(proc in 0u8..=255, local in 0u64..=LOCAL_MASK) {
        let p = GPtr::new(proc, local);
        prop_assert_eq!(p.proc(), proc);
        prop_assert_eq!(p.local(), local);
        prop_assert_eq!(GPtr::from_bits(p.bits()), p);
    }

    #[test]
    fn locality_matches_proc(proc in 0u8..=255, other in 0u8..=255, local in 1u64..=LOCAL_MASK) {
        let p = GPtr::new(proc, local);
        prop_assert_eq!(p.is_local_to(other), proc == other);
    }

    #[test]
    fn offset_adds_words(proc in 0u8..32, local in 0u64..1_000_000, k in 0u64..256) {
        let p = GPtr::new(proc, local);
        let q = p.offset(k);
        prop_assert_eq!(q.proc(), proc);
        prop_assert_eq!(q.local(), local + k);
    }

    #[test]
    fn page_line_decomposition(word in 0u64..100_000_000) {
        let page = geometry::page_of_word(word);
        let line = geometry::line_in_page_of_word(word);
        let base = geometry::line_base_word(page, line);
        prop_assert!(base <= word);
        prop_assert!(word < base + LINE_WORDS as u64);
        prop_assert!(geometry::page_base_word(page) <= word);
        prop_assert!(word < geometry::page_base_word(page) + PAGE_WORDS as u64);
        prop_assert!((line as usize) < geometry::LINES_PER_PAGE);
    }

    #[test]
    fn global_line_consistent(word in 0u64..100_000_000) {
        let gl = geometry::global_line_of_word(word);
        let page = geometry::page_of_word(word);
        let line = geometry::line_in_page_of_word(word);
        prop_assert_eq!(gl, page * geometry::LINES_PER_PAGE as u64 + line as u64);
    }

    #[test]
    fn word_f64_bitcast_roundtrip(bits in any::<u64>()) {
        // Any bit pattern survives the f64 interpretation round-trip.
        let w = Word(bits);
        prop_assert_eq!(Word::from(w.as_f64()).as_u64(), bits);
    }

    #[test]
    fn word_ptr_roundtrip(proc in 0u8..=255, local in 0u64..=LOCAL_MASK) {
        let p = GPtr::new(proc, local);
        prop_assert_eq!(Word::from(p).as_ptr(), p);
    }
}
