//! Page and line geometry of the Olden software cache (paper Figure 1).
//!
//! "In Olden, a page is 2K bytes, and a line 64 bytes" (paper §3.2,
//! footnote 2). Allocation — both in the home heap and in the cache — is
//! performed at page granularity; transfers between processors happen at
//! line granularity. With 8-byte heap words this gives the derived
//! constants below; the unit tests pin every relationship so a change to
//! one constant cannot silently skew the cache simulation.

/// Size of one heap word in bytes.
pub const WORD_BYTES: usize = 8;

/// Size of one cache/transfer line in bytes (paper: 64 B).
pub const LINE_BYTES: usize = 64;

/// Size of one page in bytes (paper: 2 KB).
pub const PAGE_BYTES: usize = 2048;

/// Words per line.
pub const LINE_WORDS: usize = LINE_BYTES / WORD_BYTES;

/// Words per page.
pub const PAGE_WORDS: usize = PAGE_BYTES / WORD_BYTES;

/// Lines per page (paper Figure 1: 32 lines, one valid bit each).
pub const LINES_PER_PAGE: usize = PAGE_BYTES / LINE_BYTES;

/// Page number within a processor's heap section.
pub type PageNum = u64;

/// Line index within a page, in `0..LINES_PER_PAGE`.
pub type LineInPage = u8;

/// Page containing the given local word address.
#[inline]
pub fn page_of_word(word_addr: u64) -> PageNum {
    word_addr / PAGE_WORDS as u64
}

/// Line (within its page) containing the given local word address.
#[inline]
pub fn line_in_page_of_word(word_addr: u64) -> LineInPage {
    ((word_addr % PAGE_WORDS as u64) / LINE_WORDS as u64) as LineInPage
}

/// Global line number (page-relative lines flattened): used as the unit of
/// transfer and of dirty/valid tracking across the whole heap section.
#[inline]
pub fn global_line_of_word(word_addr: u64) -> u64 {
    word_addr / LINE_WORDS as u64
}

/// First word address of the given page.
#[inline]
pub fn page_base_word(page: PageNum) -> u64 {
    page * PAGE_WORDS as u64
}

/// First word address of line `line` within page `page`.
#[inline]
pub fn line_base_word(page: PageNum, line: LineInPage) -> u64 {
    page * PAGE_WORDS as u64 + line as u64 * LINE_WORDS as u64
}

/// Number of pages needed to hold `words` heap words.
#[inline]
pub fn pages_for_words(words: u64) -> u64 {
    words.div_ceil(PAGE_WORDS as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_geometry() {
        // Figure 1: 2K pages, 32 lines per page, 64-byte lines.
        assert_eq!(PAGE_BYTES, 2048);
        assert_eq!(LINE_BYTES, 64);
        assert_eq!(LINES_PER_PAGE, 32);
        assert_eq!(LINE_WORDS, 8);
        assert_eq!(PAGE_WORDS, 256);
        assert_eq!(LINE_WORDS * LINES_PER_PAGE, PAGE_WORDS);
    }

    #[test]
    fn page_of_word_boundaries() {
        assert_eq!(page_of_word(0), 0);
        assert_eq!(page_of_word(255), 0);
        assert_eq!(page_of_word(256), 1);
        assert_eq!(page_of_word(511), 1);
        assert_eq!(page_of_word(512), 2);
    }

    #[test]
    fn line_in_page_boundaries() {
        assert_eq!(line_in_page_of_word(0), 0);
        assert_eq!(line_in_page_of_word(7), 0);
        assert_eq!(line_in_page_of_word(8), 1);
        assert_eq!(line_in_page_of_word(255), 31);
        // Wraps at the page boundary.
        assert_eq!(line_in_page_of_word(256), 0);
    }

    #[test]
    fn global_line_is_page_times_lines_plus_line() {
        for w in [0u64, 7, 8, 255, 256, 1000, 4096] {
            let expect = page_of_word(w) * LINES_PER_PAGE as u64 + line_in_page_of_word(w) as u64;
            assert_eq!(global_line_of_word(w), expect, "word {w}");
        }
    }

    #[test]
    fn base_addresses_invert_decomposition() {
        for w in [0u64, 100, 256, 300, 5000] {
            let p = page_of_word(w);
            let l = line_in_page_of_word(w);
            let base = line_base_word(p, l);
            assert!(base <= w && w < base + LINE_WORDS as u64);
            assert_eq!(page_base_word(p) + l as u64 * LINE_WORDS as u64, base);
        }
    }

    #[test]
    fn pages_for_words_rounds_up() {
        assert_eq!(pages_for_words(0), 0);
        assert_eq!(pages_for_words(1), 1);
        assert_eq!(pages_for_words(256), 1);
        assert_eq!(pages_for_words(257), 2);
    }
}
