//! Global pointers and heap geometry for the Olden distributed heap.
//!
//! Olden views a heap address as a pair `<processor, local address>` encoded
//! in a single word (paper §2). The original system packed the pair into a
//! 32-bit SPARC word; we widen to 64 bits for a modern host but keep the
//! same operations: encode, extract-processor, extract-local, and the
//! local-versus-remote test the compiler inserts before each dereference.
//!
//! The geometry constants reproduce Figure 1 of the paper: the software
//! cache allocates at **2 KB page** granularity and transfers at **64 B
//! line** granularity, giving 32 lines per page. The heap is word-addressed
//! with 8-byte words, so a line is 8 words and a page is 256 words.

pub mod geometry;
pub mod word;

pub use geometry::{
    LineInPage, PageNum, LINES_PER_PAGE, LINE_BYTES, LINE_WORDS, PAGE_BYTES, PAGE_WORDS, WORD_BYTES,
};
pub use word::Word;

/// Identifier of a simulated processor (the `p` of `<p, l>`).
///
/// Eight bits of the pointer encoding are reserved for the processor name,
/// so configurations up to 256 processors are representable; the paper's
/// experiments use up to 32.
pub type ProcId = u8;

/// Maximum number of processors representable in a [`GPtr`].
pub const MAX_PROCS: usize = 256;

/// Number of bits reserved for the local word address.
pub const LOCAL_BITS: u32 = 56;

/// Mask covering the local-address field of the encoding.
pub const LOCAL_MASK: u64 = (1u64 << LOCAL_BITS) - 1;

/// A global heap pointer: `<processor, local word address>` in one word.
///
/// The local address is a *word* index into the owning processor's heap
/// section (words are 8 bytes). Word address `0` is reserved so that the
/// all-zero encoding can serve as the null pointer, exactly as C's `NULL`
/// does in the original system.
///
/// ```
/// use olden_gptr::GPtr;
/// let p = GPtr::new(3, 1024);
/// assert_eq!(p.proc(), 3);
/// assert_eq!(p.local(), 1024);
/// assert!(!p.is_null());
/// assert!(p.is_local_to(3));
/// assert!(!p.is_local_to(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GPtr(u64);

impl GPtr {
    /// The null pointer: all bits zero.
    pub const NULL: GPtr = GPtr(0);

    /// Encode a `<proc, local>` pair.
    ///
    /// # Panics
    /// Panics if `local` does not fit in [`LOCAL_BITS`] bits.
    #[inline]
    pub fn new(proc: ProcId, local: u64) -> GPtr {
        assert!(local <= LOCAL_MASK, "local address overflows encoding");
        GPtr(((proc as u64) << LOCAL_BITS) | local)
    }

    /// Extract the owning processor's name.
    #[inline]
    pub fn proc(self) -> ProcId {
        (self.0 >> LOCAL_BITS) as ProcId
    }

    /// Extract the local word address.
    #[inline]
    pub fn local(self) -> u64 {
        self.0 & LOCAL_MASK
    }

    /// The local-versus-remote check Olden's compiler inserts before every
    /// heap reference (paper §3.1).
    #[inline]
    pub fn is_local_to(self, proc: ProcId) -> bool {
        self.proc() == proc
    }

    /// True for the all-zero (null) encoding.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Pointer arithmetic: advance by `words` heap words on the same
    /// processor. Used for field addressing: field `k` of an object lives
    /// at `base.offset(k)`.
    #[inline]
    pub fn offset(self, words: u64) -> GPtr {
        let local = self.local() + words;
        debug_assert!(local <= LOCAL_MASK);
        GPtr(((self.0 >> LOCAL_BITS) << LOCAL_BITS) | local)
    }

    /// The raw 64-bit encoding (stored in heap words when a structure field
    /// holds a pointer).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild a pointer from its raw encoding.
    #[inline]
    pub fn from_bits(bits: u64) -> GPtr {
        GPtr(bits)
    }

    /// Page number of the pointed-to word within its owner's heap.
    #[inline]
    pub fn page(self) -> PageNum {
        geometry::page_of_word(self.local())
    }

    /// Line index (0..32) of the pointed-to word within its page.
    #[inline]
    pub fn line_in_page(self) -> LineInPage {
        geometry::line_in_page_of_word(self.local())
    }
}

impl std::fmt::Debug for GPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "GPtr(NULL)")
        } else {
            write!(f, "GPtr<{}, {:#x}>", self.proc(), self.local())
        }
    }
}

impl std::fmt::Display for GPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

impl Default for GPtr {
    fn default() -> Self {
        GPtr::NULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_all_zero() {
        assert_eq!(GPtr::NULL.bits(), 0);
        assert!(GPtr::NULL.is_null());
        assert_eq!(GPtr::default(), GPtr::NULL);
    }

    #[test]
    fn encode_extract_roundtrip() {
        let p = GPtr::new(17, 0xdead_beef);
        assert_eq!(p.proc(), 17);
        assert_eq!(p.local(), 0xdead_beef);
    }

    #[test]
    fn proc_zero_nonzero_local_is_not_null() {
        let p = GPtr::new(0, 8);
        assert!(!p.is_null());
        assert_eq!(p.proc(), 0);
    }

    #[test]
    fn max_proc_and_max_local() {
        let p = GPtr::new(255, LOCAL_MASK);
        assert_eq!(p.proc(), 255);
        assert_eq!(p.local(), LOCAL_MASK);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn local_overflow_panics() {
        let _ = GPtr::new(0, LOCAL_MASK + 1);
    }

    #[test]
    fn locality_test() {
        let p = GPtr::new(5, 100);
        assert!(p.is_local_to(5));
        assert!(!p.is_local_to(0));
    }

    #[test]
    fn offset_stays_on_processor() {
        let p = GPtr::new(9, 256);
        let q = p.offset(7);
        assert_eq!(q.proc(), 9);
        assert_eq!(q.local(), 263);
    }

    #[test]
    fn bits_roundtrip() {
        let p = GPtr::new(31, 123_456);
        assert_eq!(GPtr::from_bits(p.bits()), p);
    }

    #[test]
    fn page_and_line_of_pointer() {
        // Word 300 = page 1, word 44 within the page, line 5.
        let p = GPtr::new(0, 300);
        assert_eq!(p.page(), 1);
        assert_eq!(p.line_in_page(), 5);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", GPtr::NULL), "GPtr(NULL)");
        assert_eq!(format!("{:?}", GPtr::new(2, 16)), "GPtr<2, 0x10>");
    }
}
