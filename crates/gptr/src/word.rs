//! Heap word representation.
//!
//! The Olden heap is untyped storage: every structure field occupies one
//! word, whether it holds an integer, a floating-point value, or a global
//! pointer. [`Word`] wraps the raw 64-bit cell with lossless conversions in
//! and out of each interpretation, so benchmark code reads naturally while
//! the runtime moves only `u64`s.

use crate::GPtr;

/// One 8-byte heap cell.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Hash)]
pub struct Word(pub u64);

impl Word {
    /// Zero-filled cell (also the null pointer and integer 0).
    pub const ZERO: Word = Word(0);

    /// Interpret as a signed integer.
    #[inline]
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Interpret as an unsigned integer.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Interpret as a double (bit-cast, lossless round-trip).
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Interpret as a global pointer.
    #[inline]
    pub fn as_ptr(self) -> GPtr {
        GPtr::from_bits(self.0)
    }
}

impl From<i64> for Word {
    #[inline]
    fn from(v: i64) -> Word {
        Word(v as u64)
    }
}

impl From<u64> for Word {
    #[inline]
    fn from(v: u64) -> Word {
        Word(v)
    }
}

impl From<f64> for Word {
    #[inline]
    fn from(v: f64) -> Word {
        Word(v.to_bits())
    }
}

impl From<GPtr> for Word {
    #[inline]
    fn from(p: GPtr) -> Word {
        Word(p.bits())
    }
}

impl From<bool> for Word {
    #[inline]
    fn from(b: bool) -> Word {
        Word(b as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip() {
        assert_eq!(Word::from(-42i64).as_i64(), -42);
        assert_eq!(Word::from(u64::MAX).as_u64(), u64::MAX);
        assert_eq!(Word::from(i64::MIN).as_i64(), i64::MIN);
    }

    #[test]
    fn float_roundtrip_is_bitwise() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(Word::from(v).as_f64().to_bits(), v.to_bits());
        }
        assert!(Word::from(f64::NAN).as_f64().is_nan());
    }

    #[test]
    fn pointer_roundtrip() {
        let p = GPtr::new(12, 999);
        assert_eq!(Word::from(p).as_ptr(), p);
        assert!(Word::ZERO.as_ptr().is_null());
    }

    #[test]
    fn bool_encoding() {
        assert_eq!(Word::from(true).as_u64(), 1);
        assert_eq!(Word::from(false), Word::ZERO);
    }
}
