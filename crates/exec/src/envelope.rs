//! Envelope framing and receiver-side exactly-once state, shared by
//! every transport.
//!
//! A logical message travels as an [`Envelope`]: the data-plane
//! [`Request`](crate::msg::Request) stamped with its sender's identity
//! and a per-sender sequence number. The fault layer may transmit one
//! logical message several times (a retry after a drop, or an injected
//! duplicate); every copy carries the *same* `(src, seq)`, which is what
//! lets the receiving worker service each logical message exactly once —
//! whether the copies arrive on an in-process mailbox or a TCP socket.
//!
//! [`Dedup`] is the receiver half of that contract, extracted here so the
//! mailbox worker and the socket worker run the identical filter and so
//! the edge cases (duplicate-after-suppress, interleaved senders,
//! sequence numbers at the top of the `u64` range) pin under unit tests
//! instead of hiding inside a service loop.

use crate::msg::Request;
use std::collections::HashMap;

/// Sender id stamped on control-plane envelopes (shutdown), which carry
/// no client sequence numbers and bypass receiver-side dedupe.
pub const CONTROL_SRC: u64 = u64::MAX;

/// What actually travels on a transport: a [`Request`] stamped with its
/// sender's identity and a per-sender sequence number.
///
/// `Clone` exists for exactly one purpose — the fault layer's duplicate
/// copies; a suppressed copy is simply discarded by the receiver.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Sending client's id ([`CONTROL_SRC`] for control messages).
    pub src: u64,
    /// Per-sender logical sequence number, starting at 1; retries and
    /// duplicates of one logical message share it.
    pub seq: u64,
    pub req: Request,
}

/// Receiver-side exactly-once state: the highest sequence number yet
/// serviced from each sender.
///
/// Sound as a dedupe filter because each client blocks for the reply
/// before its next logical message, so its primaries arrive in
/// increasing `seq` order and anything at or below the high-water mark
/// is a copy of an already-serviced message. The filter is therefore
/// independent of *how many* copies the fault layer transmits (retry
/// attempt counts never appear on the wire) and of how late a delayed
/// duplicate straggles in.
#[derive(Debug, Default)]
pub struct Dedup {
    seen: HashMap<u64, u64>,
}

impl Dedup {
    pub fn new() -> Dedup {
        Dedup::default()
    }

    /// Admit or suppress one arrival. Returns `true` when the envelope
    /// is a not-yet-serviced primary (and records it as serviced),
    /// `false` when it is a copy of an already-serviced message.
    /// Control-plane envelopes ([`CONTROL_SRC`]) always pass.
    pub fn admit(&mut self, src: u64, seq: u64) -> bool {
        if src == CONTROL_SRC {
            return true;
        }
        let high = self.seen.entry(src).or_insert(0);
        if seq <= *high {
            false
        } else {
            *high = seq;
            true
        }
    }

    /// Senders seen so far (diagnostics).
    pub fn senders(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Primaries in order are admitted; every extra copy of a serviced
    /// sequence number is suppressed no matter how many attempts the
    /// retry loop transmitted it under.
    #[test]
    fn copies_of_a_serviced_message_are_suppressed() {
        let mut d = Dedup::new();
        assert!(d.admit(7, 1));
        for _attempt in 0..100 {
            assert!(!d.admit(7, 1), "every late copy is a duplicate");
        }
        assert!(d.admit(7, 2));
        assert!(!d.admit(7, 1), "stale seq stays suppressed after progress");
    }

    /// A delayed duplicate arriving *after* later primaries were already
    /// serviced (the duplicate-after-suppress shape: its immediate twin
    /// was suppressed long ago) is still recognized as a copy.
    #[test]
    fn delayed_duplicate_after_suppress_is_still_a_copy() {
        let mut d = Dedup::new();
        assert!(d.admit(3, 1));
        assert!(!d.admit(3, 1)); // immediate duplicate: suppressed
        assert!(d.admit(3, 2));
        assert!(d.admit(3, 3));
        assert!(!d.admit(3, 1), "the delayed copy straggles in last");
        assert!(!d.admit(3, 2), "so does a delayed copy of a later seq");
    }

    /// High-water marks are per sender: interleaved senders never alias
    /// each other's sequence spaces.
    #[test]
    fn interleaved_senders_have_independent_high_water() {
        let mut d = Dedup::new();
        assert!(d.admit(1, 1));
        assert!(d.admit(2, 1), "same seq, different sender");
        assert!(d.admit(1, 2));
        assert!(!d.admit(2, 1), "sender 2's own duplicate");
        assert!(d.admit(2, 2));
        assert!(!d.admit(1, 1));
        assert_eq!(d.senders(), 2);
    }

    /// Sequence numbers at the very top of the `u64` range (the
    /// wraparound frontier: one step from overflowing the attempt
    /// space) still order correctly — the filter compares magnitudes,
    /// it never does modular arithmetic.
    #[test]
    fn dedup_near_the_top_of_the_sequence_space() {
        let mut d = Dedup::new();
        assert!(d.admit(9, u64::MAX - 2));
        assert!(d.admit(9, u64::MAX - 1));
        assert!(!d.admit(9, u64::MAX - 2));
        assert!(d.admit(9, u64::MAX));
        assert!(!d.admit(9, u64::MAX - 1));
        assert!(!d.admit(9, u64::MAX));
    }

    /// Control-plane envelopes carry no client sequence space and always
    /// pass, without polluting any sender's high-water mark.
    #[test]
    fn control_envelopes_bypass_dedup() {
        let mut d = Dedup::new();
        assert!(d.admit(CONTROL_SRC, 0));
        assert!(d.admit(CONTROL_SRC, 0), "control is never deduped");
        assert_eq!(d.senders(), 0, "control leaves no per-sender state");
    }
}
