//! Future frames: the in-process half of the protocol.
//!
//! A `futurecall` saves the caller's continuation on the spawning
//! processor's work list; the continuation runs only when the body
//! migrates away (a *steal*) or completes. The frame handle carries that
//! state between the spawning thread and (in parallel mode) the body's
//! OS thread: the body's migrations deliver *StealNotify* by flipping
//! `stolen` under the mutex and waking the spawner, and body completion
//! delivers *TouchResult* the same way.

use olden_gptr::ProcId;
use olden_runtime::VClock;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
pub struct FrameState {
    /// A migration vacated the spawn processor while this frame's body
    /// was outstanding: the continuation has been stolen.
    pub stolen: bool,
    /// The body finished (normally or by panic).
    pub done: bool,
    /// Sanitizer only: the stealing thread's vector clock at the moment
    /// of the steal — the departing segment, which the resumed
    /// continuation is ordered after (the simulator's `Steal` edge).
    pub steal_clock: Option<VClock>,
}

/// Shared bookkeeping for one spawned future.
#[derive(Debug)]
pub struct FrameHandle {
    /// Processor the future was spawned from — where its continuation
    /// waits on the work list.
    pub anchor: ProcId,
    state: Mutex<FrameState>,
    cv: Condvar,
}

impl FrameHandle {
    pub fn new(anchor: ProcId) -> FrameHandle {
        FrameHandle {
            anchor,
            state: Mutex::new(FrameState::default()),
            cv: Condvar::new(),
        }
    }

    /// Mark the continuation stolen (idempotent; only the first steal
    /// records `clock`). Returns whether this call changed the state.
    pub fn steal(&self, clock: Option<&VClock>) -> bool {
        let mut st = self.state.lock().unwrap();
        let fresh = !st.stolen;
        st.stolen = true;
        if fresh {
            st.steal_clock = clock.cloned();
        }
        self.cv.notify_all();
        fresh
    }

    /// The clock recorded by the first steal, if any.
    pub fn steal_clock(&self) -> Option<VClock> {
        self.state.lock().unwrap().steal_clock.clone()
    }

    /// Mark the body complete and wake the spawner.
    pub fn complete(&self) {
        let mut st = self.state.lock().unwrap();
        st.done = true;
        self.cv.notify_all();
    }

    pub fn is_stolen(&self) -> bool {
        self.state.lock().unwrap().stolen
    }

    /// Block until the body completes or the continuation is stolen;
    /// returns the state at wake-up.
    pub fn wait_done_or_stolen(&self) -> FrameState {
        let mut st = self.state.lock().unwrap();
        while !st.done && !st.stolen {
            st = self.cv.wait(st).unwrap();
        }
        FrameState {
            stolen: st.stolen,
            done: st.done,
            steal_clock: st.steal_clock.clone(),
        }
    }
}

/// Marks the frame complete even if the body panics, so the spawner
/// blocked in [`FrameHandle::wait_done_or_stolen`] wakes up and the panic
/// propagates through the join instead of deadlocking the run.
pub struct CompleteOnDrop(pub std::sync::Arc<FrameHandle>);

impl Drop for CompleteOnDrop {
    fn drop(&mut self) {
        self.0.complete();
    }
}
