//! [`ExecCtx`]: the thread backend's execution context.
//!
//! One `ExecCtx` is the state of one *logical Olden thread* — the thread
//! of control the paper's runtime migrates between processors. It tracks
//! the current processor, the future-frame stack, and the write-set
//! scopes, and turns every heap operation into messages to the worker
//! that owns the touched processor.
//!
//! ### Lockstep parity
//!
//! In [`Mode::Lockstep`](crate::Mode) the context performs *exactly* the
//! operation sequence of the simulator's `OldenCtx` (future bodies run
//! inline on the one logical thread), so every event counter — migrations,
//! steals, cache hits and misses, per-processor pages cached — must equal
//! the simulator's for the same program. The integration tests hold the
//! two implementations to that.
//!
//! ### Parallel mode
//!
//! In [`Mode::Parallel`](crate::Mode) a `future_call` spawns the body on
//! its own OS thread and blocks until the body either completes or
//! migrates off the spawning processor (lazy task creation: only a
//! migration makes the continuation stealable). Values and the
//! steal/migration counters stay deterministic — both depend only on the
//! program's own data — but cache hit/miss totals become
//! interleaving-dependent, since concurrent threads really do share the
//! per-processor caches.

use crate::chaos::{ExecError, Verdict};
use crate::frame::{CompleteOnDrop, FrameHandle};
use crate::msg::{ArrivalKind, Envelope, LookupReply, Reply, Request};
use crate::transport::ClientConn;
use crate::{ClientSlot, Mode, Shared, C_DONE, C_JOINING, C_RUNNING, C_WAITING_BODY};
use olden_cache::Protocol;
use olden_gptr::{GPtr, LineInPage, PageNum, ProcId, Word, LINE_WORDS};
use olden_obs::{EventKind, Recorder};
use olden_runtime::{
    Backend, Check, FaultEvent, FaultTag, Mechanism, RaceViolation, RunStats, TransportStats,
    VClock,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a future body's thread hands back when joined.
pub(crate) struct BodyOutcome<T> {
    value: T,
    written: Vec<ProcId>,
    stats: RunStats,
    cacheable_reads: u64,
    cacheable_writes: u64,
    /// Write-tracking schemes: the body's accumulated dirty-line masks
    /// (continues the spawner's epoch when the body completed inline).
    dirty: HashMap<(ProcId, PageNum), u32>,
    /// Sanitizer: the body's final vector clock, joined into the
    /// toucher's clock (the simulator's `Join` edge).
    clock: VClock,
}

enum HandleInner<T: Send + 'static> {
    /// Body already completed on this logical thread (lockstep, an
    /// uncharged region, or a parallel body that finished without
    /// migrating). `parallel` records whether the continuation was stolen,
    /// i.e. whether the touch is a real join needing a return-acquire.
    Ready {
        value: T,
        written: Vec<ProcId>,
        parallel: bool,
        /// Sanitizer, stolen lockstep futures only: the body's final
        /// clock, joined at the touch.
        clock: Option<VClock>,
    },
    /// Parallel mode, continuation stolen: the body is (or was) running on
    /// its own OS thread; the touch joins it.
    Pending { join: JoinHandle<BodyOutcome<T>> },
}

/// The result of a `future_call` on the thread backend, claimed by
/// `touch`.
#[must_use = "a future must be touched before its value is used"]
pub struct ExecHandle<T: Send + 'static>(HandleInner<T>);

impl<T: Send + 'static> ExecHandle<T> {
    /// Whether this future turned into a real parallel task.
    pub fn is_parallel(&self) -> bool {
        match &self.0 {
            HandleInner::Ready { parallel, .. } => *parallel,
            HandleInner::Pending { .. } => true,
        }
    }
}

fn join_body<T>(join: JoinHandle<BodyOutcome<T>>) -> BodyOutcome<T> {
    match join.join() {
        Ok(out) => out,
        // The body panicked; its CompleteOnDrop guard already woke us.
        // Re-raise on the joining thread so the failure surfaces.
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// One logical Olden thread executing against the worker fleet.
pub struct ExecCtx {
    shared: Arc<Shared>,
    cur_proc: ProcId,
    /// When > 0, execution is in an uncharged region: values are computed
    /// (heap traffic still flows) but no events are counted and no cache
    /// or migration machinery runs — mirroring the simulator.
    free_depth: u32,
    /// In-flight future frames this thread can steal from: its own plus,
    /// for a body thread, the frames inherited from its spawner (a
    /// migration here must be able to steal an ancestor's continuation).
    frames: Vec<Arc<FrameHandle>>,
    write_scopes: Vec<Vec<ProcId>>,
    stats: RunStats,
    /// Client-side halves of the cache counters (the remote halves live in
    /// the workers).
    cacheable_reads: u64,
    cacheable_writes: u64,
    /// Write-tracking schemes (global/bilateral): lines this logical
    /// thread wrote since its last migration departure, (home, page) →
    /// line mask — the thread-side half of `CacheSystem::note_write`,
    /// flushed by [`ExecCtx::depart_release`]. Empty under local
    /// knowledge.
    dirty: HashMap<(ProcId, PageNum), u32>,
    /// Sanitizer: this logical thread's vector clock, mirroring the
    /// simulator's per-segment clocks — advanced (with a fresh shared
    /// tick) on every migration, steal resume, and touch join. Untouched
    /// when the sanitizer is off.
    clock: VClock,
    slot: Arc<ClientSlot>,
    /// This logical thread's connection to the worker fleet (mailbox
    /// lanes in-process, TCP sockets under `olden-net`).
    conn: Box<dyn ClientConn>,
    /// Per-sender logical sequence number (the exactly-once key); the
    /// next message will carry `seq + 1`.
    seq: u64,
    /// Injected *delayed* duplicates, held back here and flushed before
    /// the next send — so the copy really does arrive out of order with
    /// the traffic in between.
    delayed: Vec<(ProcId, Envelope)>,
    /// Event recorder (recorded runs only). Single-owner: only this
    /// logical thread writes it; the lane is parked in `Shared::lanes`
    /// when the thread finishes.
    rec: Option<Recorder>,
}

impl ExecCtx {
    pub(crate) fn root(shared: Arc<Shared>) -> ExecCtx {
        ExecCtx::fresh(shared, 0)
    }

    fn fresh(shared: Arc<Shared>, proc: ProcId) -> ExecCtx {
        let slot = shared.register_client(proc);
        let conn = shared.link.connect(slot.id);
        let rec = shared.record.then(|| Recorder::exec(shared.epoch));
        let mut ctx = ExecCtx {
            shared,
            cur_proc: proc,
            free_depth: 0,
            frames: Vec::new(),
            write_scopes: vec![Vec::new()],
            stats: RunStats::default(),
            cacheable_reads: 0,
            cacheable_writes: 0,
            dirty: HashMap::new(),
            clock: VClock::new(),
            slot,
            conn,
            seq: 0,
            delayed: Vec::new(),
            rec,
        };
        // The root segment's tick, matching the simulator's segment 0.
        ctx.clock_bump(proc);
        ctx
    }

    fn sanitizing(&self) -> bool {
        self.shared.sanitize
    }

    /// Clock to piggyback on a heap-access message: the current one when
    /// sanitizing and charged, `None` otherwise (uncharged accesses are
    /// invisible to the sanitizer, exactly as in the simulator).
    fn clock_for_msg(&self) -> Option<VClock> {
        (self.sanitizing() && self.free_depth == 0).then(|| self.clock.clone())
    }

    /// Start a new segment on `p`: draw a fresh shared tick for `p` and
    /// advance the clock's `p` component to it.
    fn clock_bump(&mut self, p: ProcId) {
        if self.sanitizing() {
            let tick = self.shared.ticks[p as usize].fetch_add(1, Ordering::Relaxed) + 1;
            self.clock.advance(p, tick);
        }
    }

    pub(crate) fn finish(mut self) -> ClientFinal {
        self.park_lane();
        self.slot.state.store(C_DONE, Ordering::Relaxed);
        ClientFinal {
            stats: self.stats,
            cacheable_reads: self.cacheable_reads,
            cacheable_writes: self.cacheable_writes,
        }
    }

    /// Hand this logical thread's event lane to the run (recorded runs
    /// only); called once when the thread finishes.
    fn park_lane(&mut self) {
        if let Some(r) = self.rec.take() {
            let lane = r.into_lane(format!("client{:04}", self.slot.id));
            self.shared.lanes.lock().unwrap().push(lane);
        }
    }

    #[inline]
    fn rec_instant(&mut self, kind: EventKind, proc: ProcId, arg: u64) {
        if let Some(r) = self.rec.as_mut() {
            r.instant(kind, proc, arg);
        }
    }

    #[inline]
    fn rec_begin(&mut self, kind: EventKind, proc: ProcId) {
        if let Some(r) = self.rec.as_mut() {
            r.begin(kind, proc, 0);
        }
    }

    #[inline]
    fn rec_end(&mut self, kind: EventKind, proc: ProcId) {
        if let Some(r) = self.rec.as_mut() {
            r.end(kind, proc);
        }
    }

    /// Event counters accumulated by this logical thread so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Every operation bumps the run's progress counter; the watchdog
    /// declares a stall only when this stops moving.
    fn bump(&self) {
        self.shared.progress.fetch_add(1, Ordering::Relaxed);
        self.slot.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Release any delayed duplicates before the next primary send, so
    /// the copies arrive genuinely reordered past intervening traffic.
    /// (Copies still held when the client exits were simply eaten by the
    /// network: never transmitted, never counted.)
    fn flush_delayed(&mut self) {
        if self.delayed.is_empty() {
            return;
        }
        for (dst, env) in std::mem::take(&mut self.delayed) {
            self.shared.transport.sends.fetch_add(1, Ordering::Relaxed);
            self.conn.send(dst, &env);
        }
    }

    /// One request/reply round trip to a worker, through the fault layer.
    ///
    /// The reply doubles as the acknowledgement: a dropped transmission
    /// is re-sent after exponential backoff (the stand-in for an ack
    /// timeout), every copy of the message carrying the same sequence
    /// number so the receiver services it at most once. A message whose
    /// every allowed attempt is dropped fails the run with a typed
    /// [`ExecError::Starved`] — under [`FaultPlan`](crate::FaultPlan)'s
    /// liveness rule that can only happen to a 100%-dropped class.
    fn req(&mut self, proc: ProcId, req: Request) -> Reply {
        self.flush_delayed();
        let kind = req.kind();
        self.seq += 1;
        let env = Envelope {
            src: self.slot.id,
            seq: self.seq,
            req,
        };
        let plan = &self.shared.plan;
        let t = &self.shared.transport;
        let mut attempt: u32 = 0;
        loop {
            match plan.verdict(kind, env.src, proc, env.seq, attempt) {
                Verdict::Deliver => {
                    t.sends.fetch_add(1, Ordering::Relaxed);
                    self.conn.send(proc, &env);
                    break;
                }
                Verdict::Duplicate { delayed } => {
                    t.sends.fetch_add(1, Ordering::Relaxed);
                    self.conn.send(proc, &env);
                    t.record(FaultEvent {
                        tag: if delayed {
                            FaultTag::DelayedDuplicate
                        } else {
                            FaultTag::Duplicated
                        },
                        msg: kind.name(),
                        src: env.src,
                        dst: proc,
                        seq: env.seq,
                        attempt,
                    });
                    if delayed {
                        self.delayed.push((proc, env.clone()));
                    } else {
                        t.sends.fetch_add(1, Ordering::Relaxed);
                        self.conn.send(proc, &env);
                    }
                    break;
                }
                Verdict::Drop => {
                    t.sends.fetch_add(1, Ordering::Relaxed);
                    t.drops.fetch_add(1, Ordering::Relaxed);
                    t.record(FaultEvent {
                        tag: FaultTag::Dropped,
                        msg: kind.name(),
                        src: env.src,
                        dst: proc,
                        seq: env.seq,
                        attempt,
                    });
                    attempt += 1;
                    if attempt >= plan.max_attempts {
                        std::panic::panic_any(ExecError::Starved {
                            kind,
                            dst: proc,
                            seq: env.seq,
                            attempts: attempt,
                        });
                    }
                    t.retries.fetch_add(1, Ordering::Relaxed);
                    // Direct field access: `plan`/`t` borrow `self.shared`,
                    // which is disjoint from `self.rec`.
                    if let Some(r) = self.rec.as_mut() {
                        r.instant(EventKind::Retry, proc, attempt as u64);
                    }
                    // Backing off is forward progress: keep the watchdog
                    // informed so a retry storm is not mistaken for a
                    // stall.
                    self.shared.progress.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(1u64 << attempt.min(11)));
                }
            }
        }
        let r = self.conn.recv_reply(proc);
        self.bump();
        r
    }

    fn read_home(&mut self, p: GPtr) -> Word {
        let clock = self.clock_for_msg();
        self.req(
            p.proc(),
            Request::ReadHome {
                local: p.local(),
                clock,
            },
        )
        .expect_word()
    }

    fn write_home(&mut self, p: GPtr, value: Word) {
        let clock = self.clock_for_msg();
        // Charged writes run the home-side half of the write-tracking
        // instrumentation (global/bilateral); uncharged writes — like the
        // simulator's — are invisible to the coherence machinery.
        let track = self.free_depth == 0 && self.shared.protocol != Protocol::LocalKnowledge;
        self.req(
            p.proc(),
            Request::WriteHome {
                local: p.local(),
                value,
                clock,
                track,
            },
        )
        .expect_unit()
    }

    /// A remote access under the cache mechanism: consult the current
    /// processor's cache; on a miss, do the fetch round trip to the home
    /// and install the line. Returns the word seen through the cache —
    /// which, by design, may be stale until the next acquire — and whether
    /// the worker answered via the elision fast path.
    fn cached_access(
        &mut self,
        p: GPtr,
        write: bool,
        wval: Option<Word>,
        elide: bool,
    ) -> (Word, bool) {
        let (home, page, line) = (p.proc(), p.page(), p.line_in_page());
        let word = p.local() as usize % LINE_WORDS;
        let cur = self.cur_proc;
        let reply = self
            .req(
                cur,
                Request::CacheLookup {
                    home,
                    page,
                    line,
                    word,
                    write,
                    wval,
                    elide,
                },
            )
            .expect_lookup();
        match reply {
            LookupReply::Hit(w) | LookupReply::ElidedHit(w) => {
                if !write {
                    // A cached read hit never generates home traffic, but
                    // the line's happens-before state lives at the home:
                    // notify it. (Write hits are covered by the
                    // write-through that follows.) Elided hits are still
                    // real accesses, so they notify too.
                    if let Some(clock) = self.clock_for_msg() {
                        self.req(home, Request::SanitizeHit { page, line, clock })
                            .expect_unit()
                    }
                }
                (w, matches!(reply, LookupReply::ElidedHit(_)))
            }
            LookupReply::RevalNeeded { validated_ts } => {
                // Bilateral: the page is epoch-marked, so the access takes
                // a round trip to the home whatever happens — the same
                // miss-class event the simulator records.
                self.rec_instant(EventKind::LineFetch, cur, home as u64);
                // The revalidation doubles as the sanitized read access
                // (writes carry their clock on the write-through), so each
                // logged access still maps to exactly one clocked message.
                let clock = if write { None } else { self.clock_for_msg() };
                let (ts, stale_mask) = self
                    .req(
                        home,
                        Request::RevalQuery {
                            page,
                            line,
                            validated_ts,
                            clock,
                        },
                    )
                    .expect_reval();
                let applied = self
                    .req(
                        cur,
                        Request::RevalApply {
                            home,
                            page,
                            line,
                            ts,
                            stale_mask,
                            word,
                            write,
                            wval,
                        },
                    )
                    .expect_lookup();
                match applied {
                    // The line survived revalidation: answered like a hit
                    // (one round trip total, counted as a revalidation).
                    LookupReply::Hit(w) => (w, false),
                    // Stale: fetch the line for real. The read was already
                    // sanitized by the revalidation query, so no clock.
                    LookupReply::Miss => {
                        let w = self.fetch_and_install(cur, home, page, line, word, write, wval);
                        (w, false)
                    }
                    other => unreachable!("RevalApply answered {other:?}"),
                }
            }
            LookupReply::Miss => {
                self.rec_instant(EventKind::LineFetch, cur, home as u64);
                // The fetch doubles as the sanitized read access; a write
                // miss instead carries its clock on the write-through, so
                // each simulator-side logged access maps to exactly one
                // clocked message.
                let clock = if write { None } else { self.clock_for_msg() };
                let (data, ts) = self
                    .req(
                        home,
                        Request::LineFetchReq {
                            page,
                            line,
                            requester: cur,
                            clock,
                        },
                    )
                    .expect_line();
                let w = self
                    .req(
                        cur,
                        Request::CacheInstall {
                            home,
                            page,
                            line,
                            data,
                            word,
                            write,
                            wval,
                            ts,
                        },
                    )
                    .expect_word();
                (w, false)
            }
        }
    }

    /// The fetch + install round trips of a true miss, clock-free (used
    /// on the revalidation path, where the query already carried the
    /// sanitizer clock).
    #[allow(clippy::too_many_arguments)]
    fn fetch_and_install(
        &mut self,
        cur: ProcId,
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        word: usize,
        write: bool,
        wval: Option<Word>,
    ) -> Word {
        let (data, ts) = self
            .req(
                home,
                Request::LineFetchReq {
                    page,
                    line,
                    requester: cur,
                    clock: None,
                },
            )
            .expect_line();
        self.req(
            cur,
            Request::CacheInstall {
                home,
                page,
                line,
                data,
                word,
                write,
                wval,
                ts,
            },
        )
        .expect_word()
    }

    fn note_written(&mut self, home: ProcId) {
        let top = self.write_scopes.last_mut().expect("write scope stack");
        if !top.contains(&home) {
            top.push(home);
        }
    }

    fn merge_written(&mut self, written: &[ProcId]) {
        for &p in written {
            self.note_written(p);
        }
    }

    /// The release half of a migration send: flush this thread's dirty
    /// lines per the coherence scheme. Local knowledge keeps no write
    /// state, so it releases for free; global knowledge pushes
    /// invalidations to every other sharer of each written page;
    /// bilateral bumps the written pages' home timestamps. All traffic is
    /// client-driven round trips (workers never talk to each other), and
    /// the flush order is sorted so chaotic runs see a deterministic
    /// message sequence.
    fn depart_release(&mut self, from: ProcId) {
        match self.shared.protocol {
            Protocol::LocalKnowledge => {}
            Protocol::GlobalKnowledge => {
                if self.dirty.is_empty() {
                    return;
                }
                let mut dirty: Vec<((ProcId, PageNum), u32)> = self.dirty.drain().collect();
                dirty.sort_unstable_by_key(|&(key, _)| key);
                for ((home, page), mask) in dirty {
                    let sharers = self
                        .req(home, Request::SharerQuery { page })
                        .expect_sharers();
                    for s in sharers {
                        if s == from {
                            continue; // the writer's own copy is current
                        }
                        self.req(s, Request::InvalidateLines { home, page, mask })
                            .expect_unit();
                    }
                }
            }
            Protocol::Bilateral => {
                if self.dirty.is_empty() {
                    return;
                }
                let mut by_home: BTreeMap<ProcId, Vec<PageNum>> = BTreeMap::new();
                for (home, page) in self.dirty.drain().map(|(key, _)| key) {
                    by_home.entry(home).or_default().push(page);
                }
                for (home, mut pages) in by_home {
                    pages.sort_unstable();
                    self.req(home, Request::BumpTs { pages }).expect_unit();
                }
            }
        }
    }

    /// Thread migration to `target`: release at the origin (scheme-
    /// dependent — see [`ExecCtx::depart_release`]), make futures spawned
    /// from the vacated processor stealable, and acquire at the
    /// destination.
    fn migrate_to(&mut self, target: ProcId) {
        let from = self.cur_proc;
        debug_assert_ne!(from, target);
        self.stats.migrations += 1;
        self.rec_instant(EventKind::MigrateSend, from, target as u64);
        self.depart_release(from);
        // Steals are marked with the *departing* segment's clock, before
        // the bump: the resumed continuation is ordered after everything
        // up to the migration, not after the body's later work.
        self.mark_steals(from);
        self.cur_proc = target;
        self.slot.proc.store(target, Ordering::Relaxed);
        self.clock_bump(target);
        self.req(
            target,
            Request::MigrateThread {
                arrival: ArrivalKind::Call,
            },
        )
        .expect_unit();
        // The worker recorded the acquire's invalidation while servicing
        // the round trip, so this lands after it — same order as the
        // simulator's send → invalidate → receive.
        self.rec_instant(EventKind::MigrateRecv, target, from as u64);
    }

    /// A migration just vacated `proc`: every in-flight future anchored
    /// there becomes stolen (in parallel mode this wakes the spawner
    /// blocked in `future_call` — the StealNotify of the protocol).
    fn mark_steals(&mut self, proc: ProcId) {
        let clock = self.sanitizing().then(|| self.clock.clone());
        for f in self.frames.iter().rev() {
            if f.anchor == proc {
                f.steal(clock.as_ref());
            }
        }
    }

    /// The return-stub / touched-value acquire at the current processor.
    fn arrive_return(&mut self, written: Vec<ProcId>) {
        self.req(
            self.cur_proc,
            Request::MigrateThread {
                arrival: ArrivalKind::Return(written),
            },
        )
        .expect_unit();
    }

    fn absorb(&mut self, stats: &RunStats, cacheable_reads: u64, cacheable_writes: u64) {
        let s = &mut self.stats;
        s.migrations += stats.migrations;
        s.return_migrations += stats.return_migrations;
        s.futures += stats.futures;
        s.steals += stats.steals;
        s.touches += stats.touches;
        s.allocs += stats.allocs;
        s.words_allocated += stats.words_allocated;
        s.migrate_local += stats.migrate_local;
        s.migrate_remote += stats.migrate_remote;
        s.checks_performed += stats.checks_performed;
        s.checks_elided += stats.checks_elided;
        self.cacheable_reads += cacheable_reads;
        self.cacheable_writes += cacheable_writes;
    }

    /// Whether a `Check::Elide` verdict is honored in this run (mirrors
    /// the simulator's gate in `OldenCtx::resolve`).
    fn want_elide(&self, check: Check) -> bool {
        check == Check::Elide && self.shared.elide_checks && self.shared.force.is_none()
    }

    fn read_impl(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> Word {
        let p = ptr.offset(field as u64);
        debug_assert!(!p.is_null(), "null dereference");
        if self.free_depth > 0 {
            return self.read_home(p);
        }
        self.bump();
        let mech = self.shared.force.unwrap_or(mech);
        let want = self.want_elide(check);
        let (value, elided) = match mech {
            Mechanism::Migrate => {
                let local = p.is_local_to(self.cur_proc);
                if local {
                    self.stats.migrate_local += 1;
                } else {
                    // A stale elision hint performs the full check.
                    self.stats.migrate_remote += 1;
                    self.migrate_to(p.proc());
                }
                (self.read_home(p), want && local)
            }
            Mechanism::Cache => {
                self.cacheable_reads += 1;
                if p.is_local_to(self.cur_proc) {
                    (self.read_home(p), want)
                } else {
                    self.cached_access(p, false, None, want)
                }
            }
        };
        if elided {
            self.stats.checks_elided += 1;
        } else {
            self.stats.checks_performed += 1;
        }
        value
    }

    fn write_impl(&mut self, ptr: GPtr, field: usize, value: Word, mech: Mechanism, check: Check) {
        let p = ptr.offset(field as u64);
        debug_assert!(!p.is_null(), "null dereference");
        if self.free_depth > 0 {
            self.write_home(p, value);
            return;
        }
        self.bump();
        let mech = self.shared.force.unwrap_or(mech);
        let want = self.want_elide(check);
        let elided = match mech {
            Mechanism::Migrate => {
                let local = p.is_local_to(self.cur_proc);
                if local {
                    self.stats.migrate_local += 1;
                } else {
                    // A stale elision hint performs the full check.
                    self.stats.migrate_remote += 1;
                    self.migrate_to(p.proc());
                }
                self.write_home(p, value);
                want && local
            }
            Mechanism::Cache => {
                self.cacheable_writes += 1;
                if p.is_local_to(self.cur_proc) {
                    self.write_home(p, value);
                    want
                } else {
                    // Update the cached copy (allocating the line on a
                    // miss), then write through to the home — every write
                    // reaches the authoritative copy synchronously.
                    let (_, elided) = self.cached_access(p, true, Some(value), want);
                    self.write_home(p, value);
                    elided
                }
            }
        };
        if elided {
            self.stats.checks_elided += 1;
        } else {
            self.stats.checks_performed += 1;
        }
        if self.shared.protocol != Protocol::LocalKnowledge {
            // The thread-side half of the write tracking: remember the
            // dirty line for the next departure's release.
            *self.dirty.entry((p.proc(), p.page())).or_insert(0) |= 1u32 << p.line_in_page();
        }
        self.note_written(p.proc());
    }

    fn call_impl<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.free_depth > 0 {
            return f(self);
        }
        let entry = self.cur_proc;
        self.write_scopes.push(Vec::new());
        let r = f(self);
        let written = self.write_scopes.pop().expect("scope underflow");
        self.merge_written(&written);
        if self.cur_proc != entry {
            self.stats.return_migrations += 1;
            let from = self.cur_proc;
            self.rec_instant(EventKind::ReturnSend, from, entry as u64);
            self.depart_release(from);
            self.mark_steals(from);
            self.cur_proc = entry;
            self.slot.proc.store(entry, Ordering::Relaxed);
            self.clock_bump(entry);
            self.arrive_return(written);
            self.rec_instant(EventKind::ReturnRecv, entry, from as u64);
        }
        r
    }

    fn future_call_impl<T, F>(&mut self, f: F) -> ExecHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static,
    {
        if self.free_depth > 0 {
            let value = f(self);
            return ExecHandle(HandleInner::Ready {
                value,
                written: Vec::new(),
                parallel: false,
                clock: None,
            });
        }
        self.bump();
        self.stats.futures += 1;
        let spawn_proc = self.cur_proc;
        let frame = Arc::new(FrameHandle::new(spawn_proc));
        self.frames.push(Arc::clone(&frame));
        match self.shared.mode {
            Mode::Lockstep => {
                // The simulator's discipline exactly: body inline, one
                // logical thread throughout.
                self.rec_begin(EventKind::FutureBody, spawn_proc);
                self.write_scopes.push(Vec::new());
                let value = f(self);
                let written = self.write_scopes.pop().expect("scope underflow");
                self.merge_written(&written);
                self.frames.pop().expect("frame underflow");
                self.rec_end(EventKind::FutureBody, self.cur_proc);
                if frame.is_stolen() {
                    self.stats.steals += 1;
                    // The body thread releases as it sends its value home
                    // (the simulator's depart at the stolen arm).
                    self.depart_release(self.cur_proc);
                    // The idle spawn processor grabbed the continuation;
                    // resume there (no acquire — the continuation never
                    // left). Clock-wise this rewinds to the steal point:
                    // the continuation saw nothing the body did after its
                    // migration; the touch joins the body's final clock.
                    let body_clock = self.sanitizing().then(|| self.clock.clone());
                    if let Some(sc) = frame.steal_clock() {
                        self.clock = sc;
                    }
                    self.cur_proc = spawn_proc;
                    self.slot.proc.store(spawn_proc, Ordering::Relaxed);
                    self.clock_bump(spawn_proc);
                    self.rec_instant(EventKind::Steal, spawn_proc, 0);
                    ExecHandle(HandleInner::Ready {
                        value,
                        written,
                        parallel: true,
                        clock: body_clock,
                    })
                } else {
                    debug_assert_eq!(self.cur_proc, spawn_proc, "unstolen body cannot move");
                    ExecHandle(HandleInner::Ready {
                        value,
                        written,
                        parallel: false,
                        clock: None,
                    })
                }
            }
            Mode::Parallel => {
                let slot = self.shared.register_client(spawn_proc);
                let conn = self.shared.link.connect(slot.id);
                let mut child = ExecCtx {
                    shared: Arc::clone(&self.shared),
                    cur_proc: spawn_proc,
                    free_depth: 0,
                    // The body can steal its own frame and any ancestor's.
                    frames: self.frames.clone(),
                    write_scopes: vec![Vec::new()],
                    stats: RunStats::default(),
                    cacheable_reads: 0,
                    cacheable_writes: 0,
                    // The body continues the spawner's write epoch: dirty
                    // lines accumulated here travel with it and flush at
                    // its next departure (one thread in the simulator).
                    dirty: self.dirty.clone(),
                    // The body continues the spawner's segment (no bump
                    // until it migrates), exactly as in the simulator.
                    clock: self.clock.clone(),
                    slot,
                    conn,
                    // A fresh client id is a fresh sequence space.
                    seq: 0,
                    delayed: Vec::new(),
                    rec: self
                        .shared
                        .record
                        .then(|| Recorder::exec(self.shared.epoch)),
                };
                let body_frame = Arc::clone(&frame);
                let join = std::thread::Builder::new()
                    .name(format!("olden-body-{}", child.slot.id))
                    .spawn(move || {
                        let _complete = CompleteOnDrop(body_frame);
                        child.rec_begin(EventKind::FutureBody, spawn_proc);
                        let value = f(&mut child);
                        let written = child.write_scopes.pop().expect("scope underflow");
                        child.rec_end(EventKind::FutureBody, child.cur_proc);
                        if _complete.0.is_stolen() {
                            // A forked body releases as it sends its value
                            // home (the simulator's depart at the stolen
                            // arm); an inline body's dirty lines return to
                            // the spawner instead.
                            let end_proc = child.cur_proc;
                            child.depart_release(end_proc);
                        }
                        child.park_lane();
                        child.slot.state.store(C_DONE, Ordering::Relaxed);
                        BodyOutcome {
                            value,
                            written,
                            stats: child.stats,
                            cacheable_reads: child.cacheable_reads,
                            cacheable_writes: child.cacheable_writes,
                            dirty: std::mem::take(&mut child.dirty),
                            clock: child.clock,
                        }
                    })
                    .expect("spawn future body thread");
                // Lazy task creation: the spawner is not a parallel thread
                // yet. It waits until the body either finishes (inline
                // future, cheap) or migrates away, stealing it the
                // continuation.
                self.slot.state.store(C_WAITING_BODY, Ordering::Relaxed);
                let st = frame.wait_done_or_stolen();
                self.slot.state.store(C_RUNNING, Ordering::Relaxed);
                self.bump();
                self.frames.pop().expect("frame underflow");
                if st.stolen {
                    self.stats.steals += 1;
                    // The stolen body took the write epoch with it (it
                    // cloned our dirty set and departs at its end); the
                    // continuation starts a fresh epoch here.
                    self.dirty.clear();
                    // Resume from the steal point's clock (see the
                    // lockstep arm for the reasoning).
                    if let Some(sc) = st.steal_clock {
                        self.clock = sc;
                    }
                    self.cur_proc = spawn_proc;
                    self.slot.proc.store(spawn_proc, Ordering::Relaxed);
                    self.clock_bump(spawn_proc);
                    self.rec_instant(EventKind::Steal, spawn_proc, 0);
                    ExecHandle(HandleInner::Pending { join })
                } else {
                    // Completed without migrating: join immediately; the
                    // future never forked. The body never migrated, so
                    // its clock equals ours — nothing to join.
                    let out = join_body(join);
                    self.absorb(&out.stats, out.cacheable_reads, out.cacheable_writes);
                    self.merge_written(&out.written);
                    // The inline body extended our write epoch; adopt its
                    // final dirty set (ours was a prefix of it).
                    self.dirty = out.dirty;
                    ExecHandle(HandleInner::Ready {
                        value: out.value,
                        written: out.written,
                        parallel: false,
                        clock: None,
                    })
                }
            }
        }
    }

    fn touch_impl<T: Send + 'static>(&mut self, h: ExecHandle<T>) -> T {
        if self.free_depth == 0 {
            self.bump();
            self.stats.touches += 1;
        }
        match h.0 {
            HandleInner::Ready {
                value,
                written,
                parallel,
                clock,
            } => {
                if parallel && self.free_depth == 0 {
                    self.rec_begin(EventKind::TouchStall, self.cur_proc);
                    // The touch is a join: order this thread after the
                    // body's final segment, in a fresh segment.
                    if let Some(bc) = &clock {
                        self.clock.join(bc);
                        self.clock_bump(self.cur_proc);
                    }
                    // Receiving the future's value is a migration receipt:
                    // acquire with the body's write set.
                    self.arrive_return(written);
                    self.rec_end(EventKind::TouchStall, self.cur_proc);
                }
                value
            }
            HandleInner::Pending { join } => {
                if self.free_depth == 0 {
                    self.rec_begin(EventKind::TouchStall, self.cur_proc);
                }
                self.slot.state.store(C_JOINING, Ordering::Relaxed);
                let out = join_body(join);
                self.slot.state.store(C_RUNNING, Ordering::Relaxed);
                self.bump();
                self.absorb(&out.stats, out.cacheable_reads, out.cacheable_writes);
                self.merge_written(&out.written);
                if self.free_depth == 0 {
                    if self.sanitizing() {
                        self.clock.join(&out.clock);
                        self.clock_bump(self.cur_proc);
                    }
                    self.arrive_return(out.written);
                    self.rec_end(EventKind::TouchStall, self.cur_proc);
                }
                out.value
            }
        }
    }
}

/// What the root logical thread hands back when the program completes:
/// the client-side halves of the run's counters. Public so alternative
/// orchestrators (`olden-net`'s parent process) can assemble an
/// [`ExecReport`](crate::ExecReport) from it.
pub struct ClientFinal {
    pub stats: RunStats,
    pub cacheable_reads: u64,
    pub cacheable_writes: u64,
}

impl Backend for ExecCtx {
    type Handle<T: Send + 'static> = ExecHandle<T>;

    fn nprocs(&self) -> usize {
        self.shared.procs
    }

    fn cur_proc(&self) -> ProcId {
        self.cur_proc
    }

    /// Cycle accounting belongs to the simulator; here the call only feeds
    /// the watchdog's progress signal.
    fn work(&mut self, _cycles: u64) {
        self.bump();
    }

    fn alloc(&mut self, proc: ProcId, words: usize) -> GPtr {
        assert!(
            (proc as usize) < self.shared.procs,
            "ALLOC on unknown processor"
        );
        if self.free_depth == 0 {
            self.bump();
            self.stats.allocs += 1;
            self.stats.words_allocated += words as u64;
        }
        self.req(proc, Request::Alloc { words }).expect_ptr()
    }

    fn read(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> Word {
        self.read_impl(ptr, field, mech, Check::Perform)
    }

    fn write_word(&mut self, ptr: GPtr, field: usize, value: Word, mech: Mechanism) {
        self.write_impl(ptr, field, value, mech, Check::Perform);
    }

    fn read_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> Word {
        self.read_impl(ptr, field, mech, check)
    }

    fn write_word_checked(
        &mut self,
        ptr: GPtr,
        field: usize,
        value: Word,
        mech: Mechanism,
        check: Check,
    ) {
        self.write_impl(ptr, field, value, mech, check);
    }

    fn uncharged<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.free_depth += 1;
        let r = f(self);
        self.free_depth -= 1;
        r
    }

    fn call<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.call_impl(f)
    }

    fn future_call<T, F>(&mut self, f: F) -> ExecHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static,
    {
        self.future_call_impl(f)
    }

    fn touch<T: Send + 'static>(&mut self, h: ExecHandle<T>) -> T {
        self.touch_impl(h)
    }

    /// Snapshot of the run's global transport counters (all clients and
    /// workers share them).
    fn transport_stats(&self) -> TransportStats {
        self.shared.transport.snapshot()
    }

    /// Collect the per-line findings from every worker (round trips, so
    /// all of this thread's earlier accesses are already accounted).
    fn race_violations(&mut self) -> Vec<RaceViolation> {
        let mut out = Vec::new();
        for p in 0..self.shared.procs {
            out.extend(self.req(p as ProcId, Request::RaceQuery).expect_races());
        }
        out
    }
}
