//! The [`Transport`] abstraction: how envelopes reach workers and how
//! replies come back.
//!
//! The protocol layer above ([`ExecCtx::req`](crate::ExecCtx) and
//! [`Worker::serve`](crate::worker::Worker::serve)) is written against
//! two small traits, so the fault injection, retry/backoff, dedup, obs
//! recording, and sanitizer machinery run *identically* whether the
//! fleet is in-process threads or `olden-net`'s one-OS-process-per-
//! processor TCP fleet:
//!
//! * [`ClientConn`] — one logical thread's outbound half: transmit an
//!   [`Envelope`] to a worker, block for that worker's [`Reply`]. A
//!   client has at most one request in flight (the reply doubles as the
//!   acknowledgement), so the reply path needs no request matching.
//! * [`WorkerPort`] — one worker's inbound half: receive the next
//!   envelope from any client, send a reply back to a given client.
//! * [`Transport`] — the factory that mints a [`ClientConn`] per client
//!   id (fresh logical threads appear mid-run in parallel mode, and the
//!   orchestrator's control plane is just the client id
//!   [`CONTROL_SRC`](crate::msg::CONTROL_SRC)).
//!
//! The exactly-once contract the protocol relies on: a transport
//! delivers every transmitted envelope (losses are *injected* by the
//! chaos layer sender-side, never suffered), per-connection order is
//! FIFO, and the worker answers each *serviced* envelope with exactly
//! one reply (suppressed duplicates get none — the primary already
//! answered).
//!
//! [`MailboxTransport`] is the in-process implementation backing
//! [`try_run_exec`](crate::try_run_exec): an mpsc mailbox per worker and
//! an mpsc reply lane per client, which together are exactly the typed
//! channel pairs the pre-transport backend wired ad hoc.

use crate::envelope::Envelope;
use crate::msg::Reply;
use olden_gptr::ProcId;
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// One logical thread's connection to the worker fleet.
pub trait ClientConn: Send {
    /// Transmit one envelope to worker `dst`. Fire-and-forget: the fault
    /// layer calls this once per *copy* (primary, duplicate, delayed
    /// duplicate); transmission must not wait for servicing.
    fn send(&mut self, dst: ProcId, env: &Envelope);

    /// Block for the reply to this client's outstanding request at
    /// worker `dst`.
    fn recv_reply(&mut self, dst: ProcId) -> Reply;
}

/// One worker's connection to its clients.
pub trait WorkerPort: Send {
    /// Next envelope from any client, in transport arrival order.
    /// `None` means every client is gone and no shutdown will come: the
    /// run aborted (e.g. a client panicked); the worker exits quietly.
    fn recv(&mut self) -> Option<Envelope>;

    /// Send `reply` to client `dst` (an envelope's `src`).
    fn reply(&mut self, dst: u64, reply: Reply);
}

/// Factory for per-client connections; the run's link to its fleet.
pub trait Transport: Send + Sync {
    /// Open the connection for client id `client`. Called once per
    /// logical thread (and once for the control plane).
    fn connect(&self, client: u64) -> Box<dyn ClientConn>;
}

/// The in-process transport: one mpsc mailbox per worker thread, one
/// mpsc reply lane per client.
pub struct MailboxTransport {
    mailboxes: Vec<Sender<Envelope>>,
    /// Reply lanes by client id. A lock per reply is fine here — the
    /// mailbox transport is the testing/parity fleet, not a throughput
    /// play — and it keeps the worker loop free of per-client state.
    replies: Mutex<HashMap<u64, Sender<Reply>>>,
}

impl MailboxTransport {
    /// Build the transport for `procs` workers, returning the per-worker
    /// ports to hand to each worker thread.
    pub fn new(procs: usize) -> (Arc<MailboxTransport>, Vec<MailboxWorkerPort>) {
        let mut mailboxes = Vec::with_capacity(procs);
        let mut rxs = Vec::with_capacity(procs);
        for _ in 0..procs {
            let (tx, rx) = mpsc::channel();
            mailboxes.push(tx);
            rxs.push(rx);
        }
        let hub = Arc::new(MailboxTransport {
            mailboxes,
            replies: Mutex::new(HashMap::new()),
        });
        let ports = rxs
            .into_iter()
            .map(|rx| MailboxWorkerPort {
                rx,
                hub: Arc::clone(&hub),
            })
            .collect();
        (hub, ports)
    }
}

impl Transport for MailboxTransport {
    fn connect(&self, client: u64) -> Box<dyn ClientConn> {
        let (tx, rx) = mpsc::channel();
        self.replies.lock().unwrap().insert(client, tx);
        Box::new(MailboxConn {
            mailboxes: self.mailboxes.clone(),
            rx,
        })
    }
}

/// Client half of [`MailboxTransport`].
pub struct MailboxConn {
    mailboxes: Vec<Sender<Envelope>>,
    rx: Receiver<Reply>,
}

impl ClientConn for MailboxConn {
    fn send(&mut self, dst: ProcId, env: &Envelope) {
        self.mailboxes[dst as usize]
            .send(env.clone())
            .expect("worker mailbox closed mid-run");
    }

    fn recv_reply(&mut self, _dst: ProcId) -> Reply {
        self.rx.recv().expect("worker dropped a reply")
    }
}

/// Worker half of [`MailboxTransport`].
pub struct MailboxWorkerPort {
    rx: Receiver<Envelope>,
    hub: Arc<MailboxTransport>,
}

impl WorkerPort for MailboxWorkerPort {
    fn recv(&mut self) -> Option<Envelope> {
        self.rx.recv().ok()
    }

    fn reply(&mut self, dst: u64, reply: Reply) {
        // A client that already exited simply misses its reply — the
        // same shape as a dropped rendezvous sender before the refactor.
        if let Some(tx) = self.hub.replies.lock().unwrap().get(&dst) {
            let _ = tx.send(reply);
        }
    }
}
