//! Typed messages between logical Olden threads and the worker that owns
//! each simulated processor.
//!
//! The topology is a strict client–server star: **only logical threads
//! send requests, and only workers reply**, one [`Reply`] per serviced
//! [`Request`]. Workers service every message with purely local state
//! (their heap section and their processor's software cache) and never
//! wait on another worker, so no wait cycle can form and the system is
//! deadlock-free by construction.
//!
//! Both enums are **pure data** — no channels, no callbacks — so the
//! same protocol runs unchanged over in-process mailboxes and over the
//! network backend's length-prefixed TCP frames (`olden-net`). The reply
//! path belongs to the [`Transport`](crate::Transport): the mailbox
//! transport routes replies over per-client channels, the socket
//! transport writes them back on the connection the request arrived on.
//!
//! Two of the protocol's events never appear on a transport because they
//! are in-process by nature: *StealNotify* (a migration vacating a
//! processor wakes the continuations anchored there) and *TouchResult*
//! (a touch joining a forked body) travel through
//! [`FrameHandle`](crate::frame::FrameHandle)s shared between the
//! spawning and the body thread.

use crate::chaos::MsgKind;
use olden_cache::CacheStats;
use olden_gptr::{GPtr, LineInPage, PageNum, ProcId, Word, LINE_WORDS};
use olden_runtime::{RaceViolation, VClock};

pub use crate::envelope::{Envelope, CONTROL_SRC};

/// One 64-byte line's payload, as moved by a fetch reply.
pub type LineData = [Word; LINE_WORDS];

/// How a thread arrives at a processor (the acquire of the release-
/// consistency reduction; mirrors `olden_cache::Arrival`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Forward migration into a procedure body: under local knowledge the
    /// whole cache is invalidated.
    Call,
    /// Return-stub migration (or a touched future's value receipt);
    /// carries the processors whose memories the thread wrote, so only
    /// lines homed there are invalidated (§3.2 refinement).
    Return(Vec<ProcId>),
}

/// Reply to a [`Request::CacheLookup`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupReply {
    /// Line valid in this worker's cache; the word read from (or, for a
    /// write, now updated in) the cached copy.
    Hit(Word),
    /// Line absent or invalid. The client performs the fetch round trip
    /// ([`Request::LineFetchReq`] to the home, then
    /// [`Request::CacheInstall`] back here); the miss has already been
    /// counted.
    Miss,
    /// The request carried a verified `elide` hint: the line was resident,
    /// so the worker answered from an *uncounted* probe — no table lookup
    /// charged, `checks_elided` bumped instead of `checks_performed`.
    ElidedHit(Word),
    /// Bilateral only: the page is epoch-marked, so the access must
    /// revalidate against the home before it can hit. Carries the cached
    /// page's last-validated timestamp; the client performs the
    /// [`Request::RevalQuery`] / [`Request::RevalApply`] round trips.
    /// Neither hit nor miss has been counted yet.
    RevalNeeded { validated_ts: u64 },
}

/// Everything a worker can be asked to do. Pure data: every variant is
/// answered by exactly one [`Reply`] variant (see [`Request::kind`] for
/// the fault-targeting class).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `ALLOC(words)` in this worker's heap section. → [`Reply::Ptr`].
    Alloc { words: usize },
    /// Read the home copy of one word. `clock` (sanitizer runs only) is
    /// the accessing segment's vector clock, fed to this line's
    /// happens-before state. → [`Reply::Word`].
    ReadHome { local: u64, clock: Option<VClock> },
    /// Write the home copy of one word (the write-through of every heap
    /// write, however its address was resolved). `track` is set for
    /// charged writes: the home runs the compiler-inserted write-tracking
    /// code of the global/bilateral schemes (dirty line timestamps, the
    /// 7-vs-23-instruction shared check). → [`Reply::Unit`].
    WriteHome {
        local: u64,
        value: Word,
        clock: Option<VClock>,
        track: bool,
    },
    /// Home side of a cache miss: ship one line of this worker's section.
    /// `requester` is the processor installing the line — under the
    /// global/bilateral schemes the home registers it as a sharer of the
    /// page and returns the page's current timestamp. `clock` is set for
    /// sanitized cache-read misses; cached writes leave it `None` (their
    /// write-through carries the clock). → [`Reply::Line`].
    LineFetchReq {
        page: PageNum,
        line: LineInPage,
        requester: ProcId,
        clock: Option<VClock>,
    },
    /// Sanitizer only: a cache **read hit** on a line homed here — the
    /// one access kind that otherwise never reaches the home worker,
    /// where the line's happens-before state lives. A round trip, so
    /// transport arrival order stays a happens-before linearization.
    /// → [`Reply::Unit`].
    SanitizeHit {
        page: PageNum,
        line: LineInPage,
        clock: VClock,
    },
    /// Mid-run query of this worker's sanitizer findings.
    /// → [`Reply::Races`].
    RaceQuery,
    /// Consult this worker's software cache for a remotely homed word.
    /// → [`Reply::Lookup`].
    CacheLookup {
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        /// Word index within the line (0..8).
        word: usize,
        /// For a write hit the worker updates the cached copy in place
        /// with `wval` (the client still write-throughs to the home).
        write: bool,
        wval: Option<Word>,
        /// The static optimizer elided this site's check and the run opted
        /// in: answer from an uncounted probe when the line is resident
        /// ([`LookupReply::ElidedHit`]), fall back to the counted path
        /// otherwise.
        elide: bool,
    },
    /// Install a line fetched from its home into this worker's cache and
    /// return the requested word (after applying `wval` for a write).
    /// `ts` is the home page's timestamp from the fetch reply (bilateral:
    /// the installed line is valid as of that epoch). → [`Reply::Word`].
    CacheInstall {
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        data: LineData,
        word: usize,
        write: bool,
        wval: Option<Word>,
        ts: u64,
    },
    /// The logical thread arrives here by migration: perform the acquire
    /// (per-protocol — local knowledge invalidates, bilateral epoch-marks,
    /// global knowledge did its work at departure).
    /// → [`Reply::Unit`].
    MigrateThread { arrival: ArrivalKind },
    /// Global knowledge, from a departing thread (release): read this
    /// home's sharer list for one of its pages. Read-only — no directory
    /// state changes. → [`Reply::Sharers`].
    SharerQuery { page: PageNum },
    /// Global knowledge: invalidate specific lines of a remotely homed
    /// page in *this* worker's cache (a pushed invalidation, delivered on
    /// the departing thread's behalf). The worker counts it sent, and
    /// spurious when the page was not cached. → [`Reply::Unit`].
    InvalidateLines {
        home: ProcId,
        page: PageNum,
        mask: u32,
    },
    /// Bilateral, from a departing thread (release): bump the home
    /// timestamp of each written page. → [`Reply::Unit`].
    BumpTs { pages: Vec<PageNum> },
    /// Bilateral revalidation, home side: report the page's current
    /// timestamp and the mask of lines written since `validated_ts`.
    /// `clock` is set for sanitized reads (the revalidation doubles as
    /// the logged access; writes carry their clock on the write-through).
    /// → [`Reply::Reval`].
    RevalQuery {
        page: PageNum,
        line: LineInPage,
        validated_ts: u64,
        clock: Option<VClock>,
    },
    /// Bilateral revalidation, requester side: apply the home's verdict to
    /// the cached page (drop stale lines, unmark, adopt `ts`), then
    /// re-examine the wanted line. A surviving line answers like a hit
    /// (`revalidations` counted); a stale one reports
    /// [`LookupReply::Miss`] and the client performs the ordinary fetch.
    /// Either way the round trip counts as a miss. → [`Reply::Lookup`].
    RevalApply {
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        ts: u64,
        stale_mask: u32,
        word: usize,
        write: bool,
        wval: Option<Word>,
    },
    /// Deterministic shutdown: reply with the worker's final statistics
    /// and exit the service loop. → [`Reply::Report`].
    Shutdown,
}

impl Request {
    /// The message's class, for fault targeting and error reporting.
    pub fn kind(&self) -> MsgKind {
        match self {
            Request::Alloc { .. } => MsgKind::Alloc,
            Request::ReadHome { .. } => MsgKind::ReadHome,
            Request::WriteHome { .. } => MsgKind::WriteHome,
            Request::LineFetchReq { .. } => MsgKind::LineFetch,
            Request::SanitizeHit { .. } => MsgKind::SanitizeHit,
            Request::RaceQuery => MsgKind::RaceQuery,
            Request::CacheLookup { .. } => MsgKind::CacheLookup,
            Request::CacheInstall { .. } => MsgKind::CacheInstall,
            Request::MigrateThread { .. } => MsgKind::Migrate,
            Request::SharerQuery { .. } => MsgKind::SharerQuery,
            Request::InvalidateLines { .. } => MsgKind::InvalidateLines,
            Request::BumpTs { .. } => MsgKind::BumpTs,
            Request::RevalQuery { .. } => MsgKind::RevalQuery,
            Request::RevalApply { .. } => MsgKind::RevalApply,
            Request::Shutdown => MsgKind::Shutdown,
        }
    }
}

/// A worker's answer to one serviced [`Request`]. Each request class maps
/// to exactly one reply variant; the `expect_*` accessors assert that
/// mapping at the client call sites.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    Ptr(GPtr),
    Word(Word),
    Unit,
    /// A fetched line plus the home page's timestamp (0 under local
    /// knowledge, where homes keep no directory state).
    Line(LineData, u64),
    Races(Vec<RaceViolation>),
    Lookup(LookupReply),
    /// A page's sharer list, answering [`Request::SharerQuery`].
    Sharers(Vec<ProcId>),
    /// A home's revalidation verdict, answering [`Request::RevalQuery`]:
    /// the page's current timestamp and the stale-line mask.
    Reval {
        ts: u64,
        stale_mask: u32,
    },
    Report(Box<WorkerReport>),
}

macro_rules! expect_variant {
    ($name:ident, $variant:ident, $ty:ty, $what:literal) => {
        #[track_caller]
        pub fn $name(self) -> $ty {
            match self {
                Reply::$variant(v) => v,
                other => panic!(concat!("protocol: expected ", $what, ", got {:?}"), other),
            }
        }
    };
}

impl Reply {
    expect_variant!(expect_ptr, Ptr, GPtr, "Ptr");
    expect_variant!(expect_word, Word, Word, "Word");
    expect_variant!(expect_races, Races, Vec<RaceViolation>, "Races");
    expect_variant!(expect_lookup, Lookup, LookupReply, "Lookup");
    expect_variant!(expect_sharers, Sharers, Vec<ProcId>, "Sharers");
    expect_variant!(expect_report, Report, Box<WorkerReport>, "Report");

    #[track_caller]
    pub fn expect_line(self) -> (LineData, u64) {
        match self {
            Reply::Line(data, ts) => (data, ts),
            other => panic!("protocol: expected Line, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn expect_reval(self) -> (u64, u32) {
        match self {
            Reply::Reval { ts, stale_mask } => (ts, stale_mask),
            other => panic!("protocol: expected Reval, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn expect_unit(self) {
        match self {
            Reply::Unit => {}
            other => panic!("protocol: expected Unit, got {other:?}"),
        }
    }
}

/// A worker's final accounting, returned in the [`Request::Shutdown`]
/// reply.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerReport {
    /// Cache-side statistics accumulated by this worker (hits, misses,
    /// remote reads/writes).
    pub cache: CacheStats,
    /// Distinct pages ever cached here (Table 3's per-processor term).
    pub pages_ever: u64,
    /// Words allocated in this worker's section (excluding the reserved
    /// null line).
    pub words_allocated: u64,
    /// Messages serviced over the worker's lifetime.
    pub served: u64,
    /// Envelopes delivered to this worker (serviced + suppressed). On
    /// the network backend this is the worker process's only way to
    /// report its receiver-side transport counters to the parent.
    pub deliveries: u64,
    /// Duplicate envelopes this worker suppressed.
    pub dupes_suppressed: u64,
    /// Happens-before violations on lines homed here (sanitizer runs).
    pub races: Vec<RaceViolation>,
    /// The worker's event lane (recorded runs only): the worker-site
    /// events — invalidation acquires — this worker performed.
    pub lane: Option<olden_obs::Lane>,
}
