//! Typed messages between logical Olden threads and the worker that owns
//! each simulated processor.
//!
//! The topology is a strict client–server star: **only logical threads
//! send requests, and only workers reply**, each reply on a fresh
//! rendezvous channel carried inside the request. Workers service every
//! message with purely local state (their heap section and their
//! processor's software cache) and never wait on another worker, so no
//! wait cycle can form and the system is deadlock-free by construction.
//!
//! Two of the protocol's events never appear on a mailbox because they
//! are in-process by nature: *StealNotify* (a migration vacating a
//! processor wakes the continuations anchored there) and *TouchResult*
//! (a touch joining a forked body) travel through
//! [`FrameHandle`](crate::frame::FrameHandle)s shared between the
//! spawning and the body thread.

use crate::chaos::MsgKind;
use olden_cache::CacheStats;
use olden_gptr::{GPtr, LineInPage, PageNum, ProcId, Word, LINE_WORDS};
use olden_runtime::{RaceViolation, VClock};
use std::sync::mpsc::Sender;

/// Sender id stamped on control-plane envelopes (shutdown), which carry
/// no client sequence numbers and bypass receiver-side dedupe.
pub const CONTROL_SRC: u64 = u64::MAX;

/// One 64-byte line's payload, as moved by a fetch reply.
pub type LineData = [Word; LINE_WORDS];

/// How a thread arrives at a processor (the acquire of the release-
/// consistency reduction; mirrors `olden_cache::Arrival`).
#[derive(Clone, Debug)]
pub enum ArrivalKind {
    /// Forward migration into a procedure body: under local knowledge the
    /// whole cache is invalidated.
    Call,
    /// Return-stub migration (or a touched future's value receipt);
    /// carries the processors whose memories the thread wrote, so only
    /// lines homed there are invalidated (§3.2 refinement).
    Return(Vec<ProcId>),
}

/// Reply to a [`Msg::CacheLookup`].
#[derive(Clone, Copy, Debug)]
pub enum LookupReply {
    /// Line valid in this worker's cache; the word read from (or, for a
    /// write, now updated in) the cached copy.
    Hit(Word),
    /// Line absent or invalid. The client performs the fetch round trip
    /// ([`Msg::LineFetchReq`] to the home, then [`Msg::CacheInstall`]
    /// back here); the miss has already been counted.
    Miss,
    /// The request carried a verified `elide` hint: the line was resident,
    /// so the worker answered from an *uncounted* probe — no table lookup
    /// charged, `checks_elided` bumped instead of `checks_performed`.
    ElidedHit(Word),
}

/// What actually travels on a mailbox: a [`Msg`] stamped with its
/// sender's identity and a per-sender sequence number.
///
/// The fault layer may transmit one logical message several times (a
/// retry after a drop, or an injected duplicate); every copy carries the
/// *same* `(src, seq)`, which is what lets the receiving worker service
/// each logical message exactly once. `Msg` is `Clone` for exactly this
/// purpose — a cloned reply `Sender` feeds the same rendezvous channel,
/// and a suppressed copy simply drops its sender unused.
#[derive(Clone)]
pub struct Envelope {
    /// Sending client's id ([`CONTROL_SRC`] for control messages).
    pub src: u64,
    /// Per-sender logical sequence number, starting at 1; retries and
    /// duplicates of one logical message share it.
    pub seq: u64,
    pub msg: Msg,
}

/// Everything a worker can be asked to do.
#[derive(Clone)]
pub enum Msg {
    /// `ALLOC(words)` in this worker's heap section.
    Alloc { words: usize, reply: Sender<GPtr> },
    /// Read the home copy of one word. `clock` (sanitizer runs only) is
    /// the accessing segment's vector clock, fed to this line's
    /// happens-before state.
    ReadHome {
        local: u64,
        clock: Option<VClock>,
        reply: Sender<Word>,
    },
    /// Write the home copy of one word (the write-through of every heap
    /// write, however its address was resolved).
    WriteHome {
        local: u64,
        value: Word,
        clock: Option<VClock>,
        reply: Sender<()>,
    },
    /// Home side of a cache miss: ship one line of this worker's section.
    /// `clock` is set for sanitized cache-read misses; cached writes
    /// leave it `None` (their write-through carries the clock).
    LineFetchReq {
        page: PageNum,
        line: LineInPage,
        clock: Option<VClock>,
        reply: Sender<LineData>,
    },
    /// Sanitizer only: a cache **read hit** on a line homed here — the
    /// one access kind that otherwise never reaches the home worker,
    /// where the line's happens-before state lives. A round trip, so
    /// mailbox arrival order stays a happens-before linearization.
    SanitizeHit {
        page: PageNum,
        line: LineInPage,
        clock: VClock,
        reply: Sender<()>,
    },
    /// Mid-run query of this worker's sanitizer findings.
    RaceQuery { reply: Sender<Vec<RaceViolation>> },
    /// Consult this worker's software cache for a remotely homed word.
    CacheLookup {
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        /// Word index within the line (0..8).
        word: usize,
        /// For a write hit the worker updates the cached copy in place
        /// with `wval` (the client still write-throughs to the home).
        write: bool,
        wval: Option<Word>,
        /// The static optimizer elided this site's check and the run opted
        /// in: answer from an uncounted probe when the line is resident
        /// ([`LookupReply::ElidedHit`]), fall back to the counted path
        /// otherwise.
        elide: bool,
        reply: Sender<LookupReply>,
    },
    /// Install a line fetched from its home into this worker's cache and
    /// return the requested word (after applying `wval` for a write).
    CacheInstall {
        home: ProcId,
        page: PageNum,
        line: LineInPage,
        data: LineData,
        word: usize,
        write: bool,
        wval: Option<Word>,
        reply: Sender<Word>,
    },
    /// The logical thread arrives here by migration: perform the acquire
    /// (local-knowledge invalidation per [`ArrivalKind`]).
    MigrateThread {
        arrival: ArrivalKind,
        reply: Sender<()>,
    },
    /// Deterministic shutdown: reply with the worker's final statistics
    /// and exit the service loop.
    Shutdown { reply: Sender<WorkerReport> },
}

impl Msg {
    /// The message's class, for fault targeting and error reporting.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::Alloc { .. } => MsgKind::Alloc,
            Msg::ReadHome { .. } => MsgKind::ReadHome,
            Msg::WriteHome { .. } => MsgKind::WriteHome,
            Msg::LineFetchReq { .. } => MsgKind::LineFetch,
            Msg::SanitizeHit { .. } => MsgKind::SanitizeHit,
            Msg::RaceQuery { .. } => MsgKind::RaceQuery,
            Msg::CacheLookup { .. } => MsgKind::CacheLookup,
            Msg::CacheInstall { .. } => MsgKind::CacheInstall,
            Msg::MigrateThread { .. } => MsgKind::Migrate,
            Msg::Shutdown { .. } => MsgKind::Shutdown,
        }
    }
}

/// A worker's final accounting, returned in the [`Msg::Shutdown`] reply.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Cache-side statistics accumulated by this worker (hits, misses,
    /// remote reads/writes).
    pub cache: CacheStats,
    /// Distinct pages ever cached here (Table 3's per-processor term).
    pub pages_ever: u64,
    /// Words allocated in this worker's section (excluding the reserved
    /// null line).
    pub words_allocated: u64,
    /// Messages serviced over the worker's lifetime.
    pub served: u64,
    /// Happens-before violations on lines homed here (sanitizer runs).
    pub races: Vec<RaceViolation>,
    /// The worker's event lane (recorded runs only): the worker-site
    /// events — invalidation acquires — this worker performed.
    pub lane: Option<olden_obs::Lane>,
}
