//! The worker: owner of one simulated processor.
//!
//! Each worker holds the processor's heap section (the authoritative copy
//! of every word homed there) and its software cache — the same
//! translation table ([`olden_cache::ProcCache`]) the simulator's
//! metadata-only cache system uses, here paired with the actual line
//! data, under the local-knowledge protocol. The worker's service loop
//! drains its [`WorkerPort`] until a [`Request::Shutdown`] arrives; every
//! request is serviced from local state only (see `msg` module docs for
//! why that makes the system deadlock-free).
//!
//! The loop is generic over the transport: `olden-exec` runs it on an OS
//! thread fed by an in-process mailbox, `olden-net` runs the very same
//! loop in a worker *process* fed by TCP frames. Dedup, sanitizer
//! feeding, obs recording, and the statistics it reports at shutdown are
//! identical on both.

use crate::envelope::{Dedup, CONTROL_SRC};
use crate::msg::{ArrivalKind, LineData, LookupReply, Reply, Request, WorkerReport};
use crate::transport::WorkerPort;
use crate::TransportCounters;
use olden_cache::{CacheStats, HomePage, ProcCache, Protocol, TRACK_NONSHARED, TRACK_SHARED};
use olden_gptr::{GPtr, LineInPage, PageNum, ProcId, Word, LINE_WORDS, PAGE_WORDS};
use olden_obs::{EventKind, Recorder};
use olden_runtime::{LineKey, LineSanitizer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Lock-free view of a worker's liveness for the watchdog's state dump
/// (a stalled worker cannot answer a mailbox query, so this must be
/// readable from outside).
#[derive(Debug, Default)]
pub struct WorkerSlot {
    /// Messages serviced so far.
    pub served: AtomicU64,
    /// 0 = waiting on mailbox, 1 = servicing a message, 2 = exited.
    pub state: AtomicU8,
}

pub const W_WAITING: u8 = 0;
pub const W_SERVING: u8 = 1;
pub const W_EXITED: u8 = 2;

pub struct Worker {
    proc: ProcId,
    /// Coherence scheme in force for this run (identical across the
    /// fleet; decides arrival invalidation, write tracking, and the
    /// revalidation protocol).
    protocol: Protocol,
    /// Heap section; word 0's line reserved so the all-zero GPtr stays
    /// null (identical layout to `olden_runtime::DistributedHeap`).
    section: Vec<Word>,
    /// Line-validity metadata: the Figure-1 translation table.
    cache: ProcCache,
    /// Home-side directory for pages homed here (global/bilateral
    /// schemes): sharer lists and epoch timestamps, byte-identical to the
    /// simulator's `CacheSystem` homes. Empty under local knowledge.
    homes: HashMap<PageNum, HomePage>,
    /// The cached lines' payloads. Cleared metadata leaves entries behind
    /// (unreachable until re-installed), which keeps invalidation O(table)
    /// as in the protocol.
    lines: HashMap<(ProcId, PageNum, LineInPage), LineData>,
    stats: CacheStats,
    /// Happens-before state of every line homed here. All accesses to a
    /// line reach its home worker (sanitized runs route cache read hits
    /// here via [`Request::SanitizeHit`]), and clients only send a
    /// request after every happens-before predecessor's round trip
    /// completed, so this worker's arrival order is a valid feeding
    /// order.
    san: LineSanitizer,
    slot: Arc<WorkerSlot>,
    progress: Arc<AtomicU64>,
    /// Run-global transport counters. In-process fleets share one
    /// instance with every client; a worker *process* holds its own,
    /// whose receiver-side values travel home in the shutdown report.
    transport: Arc<TransportCounters>,
    /// Receiver-side exactly-once state (see [`Dedup`]).
    dedup: Dedup,
    /// This worker's own receiver-side counters, mirrored into the
    /// shutdown report so the network backend can assemble run totals
    /// across process boundaries.
    deliveries: u64,
    dupes_suppressed: u64,
    /// Event recorder (recorded runs only). Single-owner: only this
    /// worker writes it; the lane leaves in the shutdown report.
    rec: Option<Recorder>,
}

impl Worker {
    pub fn new(
        proc: ProcId,
        protocol: Protocol,
        slot: Arc<WorkerSlot>,
        progress: Arc<AtomicU64>,
        transport: Arc<TransportCounters>,
        rec: Option<Recorder>,
    ) -> Worker {
        Worker {
            proc,
            protocol,
            section: vec![Word::ZERO; LINE_WORDS],
            cache: ProcCache::new(),
            homes: HashMap::new(),
            lines: HashMap::new(),
            stats: CacheStats::default(),
            san: LineSanitizer::new(),
            slot,
            progress,
            transport,
            dedup: Dedup::new(),
            deliveries: 0,
            dupes_suppressed: 0,
            rec,
        }
    }

    /// The line (homed here) that a section-local word address falls in.
    fn line_of(&self, local: u64) -> LineKey {
        let page = local / PAGE_WORDS as u64;
        let line = ((local % PAGE_WORDS as u64) / LINE_WORDS as u64) as LineInPage;
        (self.proc, page, line)
    }

    /// Service messages until shutdown.
    pub fn serve<P: WorkerPort>(mut self, mut port: P) {
        loop {
            self.slot.state.store(W_WAITING, Ordering::Relaxed);
            let Some(env) = port.recv() else {
                // Every client gone without a shutdown: the run aborted
                // (e.g. a client panicked); exit quietly.
                break;
            };
            self.slot.state.store(W_SERVING, Ordering::Relaxed);
            self.deliveries += 1;
            self.transport.deliveries.fetch_add(1, Ordering::Relaxed);
            self.progress.fetch_add(1, Ordering::Relaxed);
            if !self.dedup.admit(env.src, env.seq) {
                // A retry's or injected duplicate's copy of a message
                // already serviced: discard it (the primary already
                // answered). Delivered but not *served*, so
                // `ExecReport.messages` stays byte-equal to the
                // fault-free run.
                self.dupes_suppressed += 1;
                self.transport
                    .dupes_suppressed
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.slot.served.fetch_add(1, Ordering::Relaxed);
            let is_shutdown = matches!(env.req, Request::Shutdown);
            debug_assert!(
                !is_shutdown || env.src == CONTROL_SRC,
                "shutdown is control-plane only"
            );
            let reply = self.handle(env.req);
            port.reply(env.src, reply);
            if is_shutdown {
                break;
            }
        }
        self.slot.state.store(W_EXITED, Ordering::Relaxed);
    }

    fn handle(&mut self, req: Request) -> Reply {
        match req {
            Request::Alloc { words } => {
                assert!(words > 0, "zero-size allocation");
                let base = self.section.len() as u64;
                self.section.resize(self.section.len() + words, Word::ZERO);
                Reply::Ptr(GPtr::new(self.proc, base))
            }
            Request::ReadHome { local, clock } => {
                if let Some(c) = clock {
                    self.san.access(self.line_of(local), false, &c);
                }
                Reply::Word(self.section[local as usize])
            }
            Request::WriteHome {
                local,
                value,
                clock,
                track,
            } => {
                if let Some(c) = clock {
                    self.san.access(self.line_of(local), true, &c);
                }
                self.section[local as usize] = value;
                if track && self.protocol != Protocol::LocalKnowledge {
                    // The compiler-inserted write tracking of Appendix A,
                    // mirroring `CacheSystem::note_write`'s home-side half
                    // (the dirty-line mask lives with the writing thread).
                    let (_, page, line) = self.line_of(local);
                    if self.protocol == Protocol::Bilateral {
                        let hp = self.homes.entry(page).or_default();
                        hp.line_ts[line as usize] = hp.ts + 1;
                    }
                    let shared = self
                        .homes
                        .get(&page)
                        .is_some_and(|hp| !hp.sharers.is_empty());
                    self.stats.write_track_cycles += if shared {
                        TRACK_SHARED
                    } else {
                        TRACK_NONSHARED
                    };
                }
                Reply::Unit
            }
            Request::LineFetchReq {
                page,
                line,
                requester,
                clock,
            } => {
                if let Some(c) = clock {
                    self.san.access((self.proc, page, line), false, &c);
                }
                let ts = if self.protocol != Protocol::LocalKnowledge {
                    // Page-granularity sharer tracking (Appendix A); the
                    // local scheme keeps no directory state at all.
                    let hp = self.homes.entry(page).or_default();
                    if !hp.sharers.contains(&requester) {
                        hp.sharers.push(requester);
                    }
                    hp.ts
                } else {
                    0
                };
                Reply::Line(self.read_line(page, line), ts)
            }
            Request::SanitizeHit { page, line, clock } => {
                self.san.access((self.proc, page, line), false, &clock);
                Reply::Unit
            }
            Request::RaceQuery => Reply::Races(self.san.violations().to_vec()),
            Request::CacheLookup {
                home,
                page,
                line,
                word,
                write,
                wval,
                elide,
            } => {
                debug_assert_ne!(home, self.proc, "local references bypass the cache");
                if write {
                    self.stats.remote_writes += 1;
                } else {
                    self.stats.remote_reads += 1;
                }
                if elide && self.protocol != Protocol::Bilateral {
                    // Verified elision hint: answer from an uncounted probe
                    // (mirroring `CacheSystem::access_checked`'s fast path).
                    // A stale hint falls through to the counted path below.
                    // Bilateral refuses elision outright: epoch marks are
                    // set behind the static analysis's back and a marked
                    // page must take the revalidation round trip.
                    let resident = self
                        .cache
                        .peek(home, page)
                        .is_some_and(|cp| cp.line_valid(line) && !cp.marked);
                    if resident {
                        self.stats.hits += 1;
                        self.stats.checks_elided += 1;
                        let data = self
                            .lines
                            .get_mut(&(home, page, line))
                            .expect("valid line has data");
                        if write {
                            data[word] = wval.expect("write carries a value");
                        }
                        return Reply::Lookup(LookupReply::ElidedHit(data[word]));
                    }
                }
                self.stats.checks_performed += 1;
                let bilateral = self.protocol == Protocol::Bilateral;
                let mut reval = None;
                let valid = self.cache.lookup(home, page).is_some_and(|cp| {
                    if bilateral && cp.marked {
                        reval = Some(cp.validated_ts);
                    }
                    cp.line_valid(line)
                });
                if let Some(validated_ts) = reval {
                    // Marked page: the client must consult the home before
                    // this access can be decided. Neither hit nor miss is
                    // counted yet — [`Request::RevalApply`] settles it.
                    return Reply::Lookup(LookupReply::RevalNeeded { validated_ts });
                }
                if valid {
                    self.stats.hits += 1;
                    let data = self
                        .lines
                        .get_mut(&(home, page, line))
                        .expect("valid line has data");
                    if write {
                        data[word] = wval.expect("write carries a value");
                    }
                    Reply::Lookup(LookupReply::Hit(data[word]))
                } else {
                    // The miss (one round trip to the home) is counted
                    // here; the client now performs that trip and installs
                    // the line.
                    self.stats.misses += 1;
                    Reply::Lookup(LookupReply::Miss)
                }
            }
            Request::CacheInstall {
                home,
                page,
                line,
                mut data,
                word,
                write,
                wval,
                ts,
            } => {
                if write {
                    data[word] = wval.expect("write carries a value");
                }
                // Find-or-insert in one counted probe (a second `lookup`
                // here used to double-count the miss path's table walks).
                let cp = self.cache.ensure(home, page);
                cp.set_line(line);
                if self.protocol == Protocol::Bilateral && cp.validated_ts < ts {
                    cp.validated_ts = ts;
                }
                self.lines.insert((home, page, line), data);
                Reply::Word(data[word])
            }
            Request::MigrateThread { arrival } => {
                if let Some(r) = self.rec.as_mut() {
                    // Mirror the simulator's invalidate event exactly:
                    // `u64::MAX` = whole-cache call acquire, otherwise the
                    // return acquire's written-home count. Recorded under
                    // every protocol — the *acquire* happens regardless of
                    // what bookkeeping it costs.
                    let arg = match &arrival {
                        ArrivalKind::Call => u64::MAX,
                        ArrivalKind::Return(written) => written.len() as u64,
                    };
                    r.instant(EventKind::Invalidate, self.proc, arg);
                }
                match self.protocol {
                    Protocol::LocalKnowledge => match arrival {
                        ArrivalKind::Call => self.cache.clear_all(),
                        ArrivalKind::Return(written) => self.cache.clear_homes(&written),
                    },
                    Protocol::GlobalKnowledge => {
                        // Invalidations were pushed eagerly at departure.
                    }
                    Protocol::Bilateral => self.cache.mark_all(),
                }
                Reply::Unit
            }
            Request::SharerQuery { page } => Reply::Sharers(
                self.homes
                    .get(&page)
                    .map(|hp| hp.sharers.clone())
                    .unwrap_or_default(),
            ),
            Request::InvalidateLines { home, page, mask } => {
                self.stats.invalidations_sent += 1;
                if !self.cache.invalidate_lines(home, page, mask) {
                    self.stats.invalidations_spurious += 1;
                }
                Reply::Unit
            }
            Request::BumpTs { pages } => {
                for page in pages {
                    self.homes.entry(page).or_default().ts += 1;
                }
                Reply::Unit
            }
            Request::RevalQuery {
                page,
                line,
                validated_ts,
                clock,
            } => {
                if let Some(c) = clock {
                    self.san.access((self.proc, page, line), false, &c);
                }
                let hp = self.homes.entry(page).or_default();
                Reply::Reval {
                    ts: hp.ts,
                    stale_mask: hp.stale_mask(validated_ts),
                }
            }
            Request::RevalApply {
                home,
                page,
                line,
                ts,
                stale_mask,
                word,
                write,
                wval,
            } => {
                // Mirror the revalidation arm of `CacheSystem::access`:
                // drop the stale lines, unmark, adopt the home's epoch,
                // then re-examine the wanted line. The round trip counts
                // as a miss whether or not the line survived.
                let mut valid = false;
                if let Some(cp) = self.cache.lookup(home, page) {
                    cp.clear_lines(stale_mask);
                    cp.marked = false;
                    cp.validated_ts = ts;
                    valid = cp.line_valid(line);
                }
                self.stats.misses += 1;
                if valid {
                    self.stats.revalidations += 1;
                    let data = self
                        .lines
                        .get_mut(&(home, page, line))
                        .expect("valid line has data");
                    if write {
                        data[word] = wval.expect("write carries a value");
                    }
                    Reply::Lookup(LookupReply::Hit(data[word]))
                } else {
                    Reply::Lookup(LookupReply::Miss)
                }
            }
            Request::Shutdown => Reply::Report(Box::new(WorkerReport {
                cache: self.stats,
                pages_ever: self.cache.pages_ever(),
                words_allocated: (self.section.len() - LINE_WORDS) as u64,
                served: self.slot.served.load(Ordering::Relaxed),
                deliveries: self.deliveries,
                dupes_suppressed: self.dupes_suppressed,
                races: self.san.violations().to_vec(),
                lane: self
                    .rec
                    .take()
                    .map(|r| r.into_lane(format!("worker{:02}", self.proc))),
            })),
        }
    }

    /// Read one line of the home section, zero-padding past the
    /// bump-allocator's high-water mark (a fetched line may cover words
    /// not yet allocated).
    fn read_line(&self, page: PageNum, line: LineInPage) -> LineData {
        let start = page as usize * PAGE_WORDS + line as usize * LINE_WORDS;
        let mut out = [Word::ZERO; LINE_WORDS];
        for (i, w) in out.iter_mut().enumerate() {
            if let Some(v) = self.section.get(start + i) {
                *w = *v;
            }
        }
        out
    }
}
