//! olden-exec: a real multi-threaded SPMD execution backend for the Olden
//! reproduction, cross-validated against the simulator.
//!
//! Where `olden-runtime`'s `OldenCtx` *simulates* the paper's runtime —
//! one sequential pass recording a task DAG — this crate *executes* it:
//! one OS **worker thread per simulated processor**, each owning its heap
//! section and its software cache, exchanging the typed messages of
//! [`msg::Request`]/[`msg::Reply`] over a pluggable [`Transport`].
//! Migrations, cache-line fetches, and local-knowledge invalidations
//! really happen as messages between threads; future steals and touch
//! joins really happen as thread wake-ups.
//!
//! The topology is a strict client–server star (see [`msg`]): logical
//! Olden threads send requests, workers answer from local state, and
//! workers never wait on anything — so no wait cycle can form and the
//! message system is deadlock-free by construction. Program-level hangs
//! (a buggy kernel blocking forever) are caught by a watchdog that fails
//! the run with a per-worker/per-client state dump instead of hanging the
//! test suite.
//!
//! Two modes (see [`Mode`]): **lockstep** mirrors the simulator's
//! operation sequence exactly, so every event counter reconciles with the
//! simulator's trace (each backend is the other's correctness oracle);
//! **parallel** spawns each future body on its own OS thread, turning
//! migrations into genuine parallelism while keeping values — and the
//! data-dependent migration/steal counters — deterministic.
//!
//! The protocol layer is transport-generic: [`try_run_exec`] wires the
//! fleet over in-process [`MailboxTransport`] lanes, while `olden-net`
//! reuses the same [`ExecCtx`], [`worker::Worker`] loop, chaos layer, and
//! report assembly ([`drive_root`]/[`assemble_report`]) over
//! length-prefixed TCP frames between OS processes.

pub mod chaos;
pub mod envelope;
pub mod frame;
pub mod msg;
pub mod transport;
pub mod worker;

mod ctx;

pub use chaos::{ExecError, FaultPlan, MsgKind, Verdict};
pub use ctx::{ClientFinal, ExecCtx, ExecHandle};
pub use olden_cache::Protocol;
pub use transport::{ClientConn, MailboxTransport, Transport, WorkerPort};

use crate::msg::{Envelope, Request, WorkerReport, CONTROL_SRC};
use crate::worker::{Worker, WorkerSlot, W_EXITED, W_SERVING, W_WAITING};
use olden_gptr::{ProcId, MAX_PROCS};
use olden_obs::{Lane, Recorder, Recording};
use olden_runtime::{
    CacheStats, FaultEvent, FaultLog, Mechanism, RaceViolation, RunStats, TransportStats,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How future bodies execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Bodies run inline on the one logical thread, in exactly the
    /// simulator's order: every counter must reconcile with the
    /// simulator's for the same program.
    Lockstep,
    /// Each future body runs on its own OS thread; the spawner blocks
    /// until the body completes or migrates away (lazy task creation).
    /// Values stay deterministic; cache hit/miss totals become
    /// interleaving-dependent.
    Parallel,
}

/// Configuration of one execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Worker (simulated processor) count.
    pub procs: usize,
    pub mode: Mode,
    /// When set, every dereference uses this mechanism regardless of what
    /// the benchmark requested (the simulator's `Config::force`).
    pub force: Option<Mechanism>,
    /// The watchdog fails the run if the global progress counter stops
    /// moving for this long.
    pub stall_timeout: Duration,
    /// Run the happens-before race sanitizer: logical threads maintain
    /// vector clocks (advanced on migration, steal, and touch edges) and
    /// piggyback them on their heap traffic; each line's home worker
    /// checks every access against the line's clock state.
    pub sanitize: bool,
    /// Honor the static optimizer's `Check::Elide` verdicts at `*_checked`
    /// access sites (the simulator's `Config::elide_checks`). Off by
    /// default; force overrides disable it regardless.
    pub elide_checks: bool,
    /// Coherence scheme (Appendix A) the worker fleet runs under — the
    /// simulator's `Config::protocol`. Local knowledge by default, like
    /// the paper's measured configuration.
    pub protocol: Protocol,
    /// Deterministic fault schedule for the transport. The default
    /// ([`FaultPlan::none`]) injects nothing and the transport behaves
    /// exactly as if the chaos layer did not exist.
    pub plan: FaultPlan,
    /// Capture an `olden-obs` event recording of the run: every logical
    /// thread and every worker keeps its own event buffer (no shared
    /// state on the hot path), drained into
    /// [`ExecReport::recording`] at shutdown. Off by default — the hooks
    /// are a branch-on-`None` when disabled.
    pub record: bool,
}

impl ExecConfig {
    pub fn lockstep(procs: usize) -> ExecConfig {
        ExecConfig {
            procs,
            mode: Mode::Lockstep,
            force: None,
            stall_timeout: Duration::from_secs(10),
            sanitize: false,
            elide_checks: false,
            protocol: Protocol::LocalKnowledge,
            plan: FaultPlan::none(),
            record: false,
        }
    }

    pub fn parallel(procs: usize) -> ExecConfig {
        ExecConfig {
            mode: Mode::Parallel,
            ..ExecConfig::lockstep(procs)
        }
    }

    /// Same configuration with a forced mechanism.
    pub fn forced(mut self, m: Mechanism) -> ExecConfig {
        self.force = Some(m);
        self
    }

    pub fn with_stall_timeout(mut self, d: Duration) -> ExecConfig {
        self.stall_timeout = d;
        self
    }

    /// Same configuration with the happens-before sanitizer on.
    pub fn sanitized(mut self) -> ExecConfig {
        self.sanitize = true;
        self
    }

    /// Same configuration with the static optimizer's check elisions
    /// honored.
    pub fn optimized(mut self) -> ExecConfig {
        self.elide_checks = true;
        self
    }

    /// Same configuration under another coherence scheme — the
    /// simulator's `Config::with_protocol`.
    pub fn with_protocol(mut self, p: Protocol) -> ExecConfig {
        self.protocol = p;
        self
    }

    /// Same configuration under an explicit fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> ExecConfig {
        self.plan = plan;
        self
    }

    /// Same configuration under the seed-derived chaotic fault schedule
    /// (the one the chaos suite sweeps: see [`FaultPlan::from_seed`]).
    pub fn chaotic(self, seed: u64) -> ExecConfig {
        self.with_faults(FaultPlan::from_seed(seed))
    }

    /// Same configuration with event recording on.
    pub fn recorded(mut self) -> ExecConfig {
        self.record = true;
        self
    }
}

/// Watchdog-readable state of one logical thread.
pub struct ClientSlot {
    pub id: u64,
    /// Operations performed (monotone).
    pub ops: AtomicU64,
    pub state: AtomicU8,
    /// Processor the thread currently executes on.
    pub proc: AtomicU8,
}

pub const C_RUNNING: u8 = 0;
pub const C_WAITING_BODY: u8 = 1;
pub const C_JOINING: u8 = 2;
pub const C_DONE: u8 = 3;

/// Global transport accounting for one run. Senders bump
/// `sends`/`drops`/`retries`; receivers bump
/// `deliveries`/`dupes_suppressed`; the fault log records every injected
/// fault. In-process fleets share one instance between every client and
/// every worker; under `olden-net` each worker process holds its own,
/// shipping the receiver-side values home in its shutdown report. On a
/// successful run the assembled totals must satisfy
/// [`TransportStats::conservation_violation`].
#[derive(Default)]
pub struct TransportCounters {
    pub sends: AtomicU64,
    pub deliveries: AtomicU64,
    pub drops: AtomicU64,
    pub retries: AtomicU64,
    pub dupes_suppressed: AtomicU64,
    faults: Mutex<FaultLog>,
}

impl TransportCounters {
    pub fn record(&self, ev: FaultEvent) {
        self.faults.lock().unwrap().record(ev);
    }

    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            sends: self.sends.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            dupes_suppressed: self.dupes_suppressed.load(Ordering::Relaxed),
        }
    }

    pub fn fault_log(&self) -> FaultLog {
        self.faults.lock().unwrap().clone()
    }
}

/// State shared by every logical thread of one run.
pub struct Shared {
    pub procs: usize,
    pub mode: Mode,
    pub force: Option<Mechanism>,
    pub sanitize: bool,
    pub elide_checks: bool,
    pub protocol: Protocol,
    pub plan: FaultPlan,
    pub transport: Arc<TransportCounters>,
    /// The run's link to its worker fleet; every client connection is
    /// minted from it.
    pub link: Arc<dyn Transport>,
    /// Bumped by every worker message and every client operation; the
    /// watchdog's only signal.
    pub progress: Arc<AtomicU64>,
    pub clients: Mutex<Vec<Arc<ClientSlot>>>,
    /// Sanitizer vector-clock tick source, one counter per processor:
    /// every clock bump on processor `p` draws a fresh tick, so distinct
    /// segments on one processor stay distinguishable across threads.
    pub ticks: Vec<AtomicU64>,
    /// Event recording on (`ExecConfig::record`).
    pub record: bool,
    /// The run's time zero: every recorder stamps monotonic nanoseconds
    /// since this instant, so lanes from different threads align.
    pub epoch: Instant,
    /// Finished client lanes, pushed by each logical thread as it
    /// completes (never touched on the hot path; worker lanes travel in
    /// their shutdown reports instead).
    pub lanes: Mutex<Vec<Lane>>,
    next_client: AtomicU64,
}

impl Shared {
    /// The client-side state of one run over `link`. `counters` is the
    /// sender-side accounting instance (in-process runs hand the same
    /// instance to the workers).
    pub fn new(
        cfg: &ExecConfig,
        link: Arc<dyn Transport>,
        counters: Arc<TransportCounters>,
        progress: Arc<AtomicU64>,
    ) -> Shared {
        Shared {
            procs: cfg.procs,
            mode: cfg.mode,
            force: cfg.force,
            sanitize: cfg.sanitize,
            elide_checks: cfg.elide_checks,
            protocol: cfg.protocol,
            plan: cfg.plan,
            transport: counters,
            link,
            progress,
            clients: Mutex::new(Vec::new()),
            ticks: (0..cfg.procs).map(|_| AtomicU64::new(0)).collect(),
            record: cfg.record,
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
            next_client: AtomicU64::new(0),
        }
    }

    pub fn register_client(&self, proc: ProcId) -> Arc<ClientSlot> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ClientSlot {
            id,
            ops: AtomicU64::new(0),
            state: AtomicU8::new(C_RUNNING),
            proc: AtomicU8::new(proc),
        });
        self.clients.lock().unwrap().push(Arc::clone(&slot));
        slot
    }
}

/// Everything measured about one execution (the thread backend's
/// counterpart of the simulator's `RunReport`, minus cycle accounting —
/// timing is the simulator's job).
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Workers in the configuration.
    pub procs: usize,
    /// Runtime event counters, summed over every logical thread.
    pub stats: RunStats,
    /// Software-cache counters: client-side cacheable totals plus the
    /// remote/hit/miss counts summed over the workers.
    pub cache: CacheStats,
    /// Distinct pages ever cached, summed over the workers.
    pub pages_cached: u64,
    /// Words held in the workers' heap sections at shutdown (includes
    /// uncharged allocations, unlike `stats.words_allocated`).
    pub section_words: u64,
    /// Messages serviced across all workers.
    pub messages: u64,
    /// Logical threads that existed over the run (1 in lockstep mode).
    pub clients: u64,
    /// Happens-before violations found by the sanitizer, over all
    /// workers (empty unless `ExecConfig::sanitize` was set).
    pub races: Vec<RaceViolation>,
    /// Transport counters (sends, deliveries, drops, retries, suppressed
    /// duplicates). On every successful run these satisfy the
    /// conservation law against `messages`; with a quiet
    /// [`FaultPlan`] they collapse to `sends == deliveries == messages`.
    pub transport: TransportStats,
    /// Every fault the chaos layer injected, in a bounded log.
    pub faults: FaultLog,
    /// Structured event recording — one lane per logical thread plus one
    /// per worker (`None` unless `ExecConfig::record` was set).
    pub recording: Option<Recording>,
}

/// The client half of the watchdog's state dump. Public so alternative
/// orchestrators compose it with their own worker-side dump (a worker
/// *process* has no in-memory [`WorkerSlot`] to read).
pub fn dump_clients(shared: &Shared) -> String {
    let mut s = String::new();
    for c in shared.clients.lock().unwrap().iter() {
        let st = match c.state.load(Ordering::Relaxed) {
            C_RUNNING => "running",
            C_WAITING_BODY => "waiting for a future body",
            C_JOINING => "joining a touched future",
            C_DONE => "done",
            _ => "unknown",
        };
        let _ = writeln!(
            s,
            "  client {}: {st} on proc {}, {} ops",
            c.id,
            c.proc.load(Ordering::Relaxed),
            c.ops.load(Ordering::Relaxed)
        );
    }
    s
}

fn dump_state(worker_slots: &[Arc<WorkerSlot>], shared: &Shared) -> String {
    let mut s = String::new();
    for (p, w) in worker_slots.iter().enumerate() {
        let st = match w.state.load(Ordering::Relaxed) {
            W_WAITING => "waiting on mailbox",
            W_SERVING => "servicing a message",
            W_EXITED => "exited",
            _ => "unknown",
        };
        let _ = writeln!(
            s,
            "  worker {p}: {st}, {} messages served",
            w.served.load(Ordering::Relaxed)
        );
    }
    s.push_str(&dump_clients(shared));
    s
}

/// Run `program` as the root logical thread against an already-wired
/// fleet, under the stall watchdog.
///
/// The calling thread blocks as the watchdog: if `shared.progress` stops
/// moving for `stall_timeout`, the run fails with
/// [`ExecError::Stalled`] carrying `dump()`'s state snapshot. A root
/// panic whose payload is a typed [`ExecError`] (e.g. a starved message
/// class) is returned as that error; any other panic is the program's
/// own and propagates. Shared between [`try_run_exec`] (thread fleet)
/// and `olden-net` (process fleet).
pub fn drive_root<T, F>(
    shared: &Arc<Shared>,
    stall_timeout: Duration,
    dump: impl Fn() -> String,
    program: F,
) -> Result<(T, ClientFinal), ExecError>
where
    T: Send + 'static,
    F: FnOnce(&mut ExecCtx) -> T + Send + 'static,
{
    let (res_tx, res_rx) = mpsc::channel();
    let root_shared = Arc::clone(shared);
    let root = thread::Builder::new()
        .name("olden-root".into())
        .spawn(move || {
            let mut ctx = ExecCtx::root(root_shared);
            let value = program(&mut ctx);
            let _ = res_tx.send((value, ctx.finish()));
        })
        .expect("spawn root client thread");

    // Watchdog loop: wait for the result, checking the progress counter
    // at every tick. A run making any progress at all never trips it.
    let tick = (stall_timeout / 8).max(Duration::from_millis(10));
    let mut last = shared.progress.load(Ordering::Relaxed);
    let mut stalled = Duration::ZERO;
    let outcome = loop {
        match res_rx.recv_timeout(tick) {
            Ok(out) => break Some(out),
            Err(RecvTimeoutError::Timeout) => {
                let now = shared.progress.load(Ordering::Relaxed);
                if now != last {
                    last = now;
                    stalled = Duration::ZERO;
                } else {
                    stalled += tick;
                    if stalled >= stall_timeout {
                        return Err(ExecError::Stalled {
                            dump: format!("no progress for {stall_timeout:?}\n{}", dump()),
                        });
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break None,
        }
    };
    let Some(out) = outcome else {
        // The root dropped its channel without sending a result: it
        // panicked. An `ExecError` payload (e.g. a starved message) is
        // this backend's own typed failure: return it. Anything else is
        // the program's panic — re-raise so the failure is the caller's.
        match root.join() {
            Err(payload) => match payload.downcast::<ExecError>() {
                Ok(err) => return Err(*err),
                Err(payload) => std::panic::resume_unwind(payload),
            },
            Ok(()) => unreachable!("root client exited without a result"),
        }
    };
    root.join().expect("root client already sent its result");
    Ok(out)
}

/// Aggregate one run's report from the root client's finals and the
/// workers' shutdown reports, verifying the transport conservation law.
/// Shared between [`try_run_exec`] and `olden-net`'s parent orchestrator
/// (which assembles `transport` from its sender-side counters plus the
/// reports' receiver-side sums).
pub fn assemble_report(
    shared: &Shared,
    client: ClientFinal,
    mut reports: Vec<WorkerReport>,
    transport: TransportStats,
    faults: FaultLog,
) -> ExecReport {
    let mut cache = CacheStats {
        cacheable_reads: client.cacheable_reads,
        cacheable_writes: client.cacheable_writes,
        ..CacheStats::default()
    };
    let (mut pages_cached, mut section_words, mut messages) = (0, 0, 0);
    let mut races = Vec::new();
    for r in &reports {
        cache.remote_reads += r.cache.remote_reads;
        cache.remote_writes += r.cache.remote_writes;
        cache.hits += r.cache.hits;
        cache.misses += r.cache.misses;
        cache.revalidations += r.cache.revalidations;
        cache.invalidations_sent += r.cache.invalidations_sent;
        cache.invalidations_spurious += r.cache.invalidations_spurious;
        cache.write_track_cycles += r.cache.write_track_cycles;
        cache.checks_performed += r.cache.checks_performed;
        cache.checks_elided += r.cache.checks_elided;
        pages_cached += r.pages_ever;
        section_words += r.words_allocated;
        messages += r.served;
        races.extend(r.races.iter().copied());
    }
    // Assemble the recording: client lanes parked in `shared.lanes` plus
    // each worker's lane from its shutdown report, sorted by label inside
    // `Recording::new` for determinism.
    let recording = shared.record.then(|| {
        let mut lanes = std::mem::take(&mut *shared.lanes.lock().unwrap());
        lanes.extend(reports.iter_mut().filter_map(|r| r.lane.take()));
        Recording::new(shared.procs, lanes)
    });
    let clients = shared.clients.lock().unwrap().len() as u64;
    // Self-check the exactly-once machinery on every successful run:
    // nothing lost silently, nothing serviced twice.
    if let Some(violation) = transport.conservation_violation(messages) {
        panic!("olden-exec transport conservation violated: {violation}");
    }
    ExecReport {
        procs: shared.procs,
        stats: client.stats,
        cache,
        pages_cached,
        section_words,
        messages,
        clients,
        races,
        transport,
        faults,
        recording,
    }
}

/// Execute `program` on `cfg.procs` worker threads and report, returning
/// failures as values.
///
/// Spawns the worker fleet over an in-process [`MailboxTransport`], runs
/// the program as the root logical thread, then performs a deterministic
/// shutdown: a [`Request::Shutdown`] to each worker in processor order,
/// collecting each one's final statistics. The calling thread meanwhile
/// acts as the watchdog — if the run's progress counter stalls for
/// `cfg.stall_timeout`, it fails with [`ExecError::Stalled`] carrying a
/// state dump of every worker and logical thread instead of hanging. A
/// message class starved by the fault plan fails with
/// [`ExecError::Starved`]. On either error the run's threads are
/// abandoned (workers exit on their own once every mailbox sender is
/// gone); a program panic that is not an [`ExecError`] still propagates
/// as a panic.
pub fn try_run_exec<T, F>(cfg: ExecConfig, program: F) -> Result<(T, ExecReport), ExecError>
where
    T: Send + 'static,
    F: FnOnce(&mut ExecCtx) -> T + Send + 'static,
{
    assert!(cfg.procs >= 1 && cfg.procs <= MAX_PROCS);
    let progress = Arc::new(AtomicU64::new(0));
    let counters = Arc::new(TransportCounters::default());
    let (hub, ports) = MailboxTransport::new(cfg.procs);
    let shared = Arc::new(Shared::new(
        &cfg,
        hub,
        Arc::clone(&counters),
        Arc::clone(&progress),
    ));
    let mut worker_slots = Vec::with_capacity(cfg.procs);
    let mut worker_joins = Vec::with_capacity(cfg.procs);
    for (p, port) in ports.into_iter().enumerate() {
        let slot = Arc::new(WorkerSlot::default());
        let worker = Worker::new(
            p as ProcId,
            cfg.protocol,
            Arc::clone(&slot),
            Arc::clone(&progress),
            Arc::clone(&counters),
            cfg.record.then(|| Recorder::exec(shared.epoch)),
        );
        let jh = thread::Builder::new()
            .name(format!("olden-worker-{p}"))
            .spawn(move || worker.serve(port))
            .expect("spawn worker thread");
        worker_slots.push(slot);
        worker_joins.push(jh);
    }

    let (value, client) = drive_root(
        &shared,
        cfg.stall_timeout,
        || dump_state(&worker_slots, &shared),
        program,
    )?;

    // Deterministic shutdown: each worker reports and exits, in processor
    // order. Control-plane envelopes bypass the fault layer but still
    // count as transport traffic, keeping the conservation law exact.
    let mut control = shared.link.connect(CONTROL_SRC);
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(cfg.procs);
    for p in 0..cfg.procs {
        counters.sends.fetch_add(1, Ordering::Relaxed);
        control.send(
            p as ProcId,
            &Envelope {
                src: CONTROL_SRC,
                seq: 0,
                req: Request::Shutdown,
            },
        );
        reports.push(*control.recv_reply(p as ProcId).expect_report());
    }
    for jh in worker_joins {
        jh.join().expect("worker exited cleanly");
    }

    let stats = counters.snapshot();
    let faults = counters.fault_log();
    let report = assemble_report(&shared, client, reports, stats, faults);
    Ok((value, report))
}

/// [`try_run_exec`], panicking on failure (the original interface; the
/// panic message carries the [`ExecError`] description, so a stall still
/// reads "watchdog … stalled" with the full state dump).
pub fn run_exec<T, F>(cfg: ExecConfig, program: F) -> (T, ExecReport)
where
    T: Send + 'static,
    F: FnOnce(&mut ExecCtx) -> T + Send + 'static,
{
    match try_run_exec(cfg, program) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_gptr::GPtr;
    use olden_runtime::{Backend, Config, OldenCtx};

    /// The exec backend round-trips values through real worker threads.
    #[test]
    fn values_round_trip_through_workers() {
        let (sum, rep) = run_exec(ExecConfig::lockstep(4), |ctx| {
            let mut total = 0i64;
            for p in 0..4u8 {
                let a = ctx.alloc(p, 2);
                ctx.write(a, 0, p as i64 * 3, Mechanism::Migrate);
                total += ctx.read_i64(a, 0, Mechanism::Migrate);
            }
            total
        });
        assert_eq!(sum, 3 + 6 + 9);
        assert_eq!(rep.stats.allocs, 4);
        assert_eq!(rep.stats.migrations, 3, "procs 1..3 are remote");
        assert!(rep.messages > 0);
        assert_eq!(rep.clients, 1);
    }

    /// A kernel generic over `Backend` produces identical values AND
    /// identical event counters on the simulator and the lockstep thread
    /// backend.
    #[test]
    fn lockstep_counters_reconcile_with_simulator() {
        fn kernel<B: Backend>(ctx: &mut B) -> i64 {
            let n = ctx.nprocs() as u8;
            let ptrs: Vec<GPtr> = (0..n)
                .map(|p| {
                    let a = ctx.alloc(p, 2);
                    ctx.uncharged(|c| c.write(a, 0, p as i64 + 1, Mechanism::Migrate));
                    a
                })
                .collect();
            let mut total = 0i64;
            // Cached remote reads (miss then hit), then a migrating sweep.
            for &a in &ptrs {
                total += ctx.read_i64(a, 0, Mechanism::Cache);
                total += ctx.read_i64(a, 0, Mechanism::Cache);
            }
            for &a in &ptrs {
                total += ctx.call(|c| c.read_i64(a, 0, Mechanism::Migrate));
            }
            let hs: Vec<_> = ptrs
                .iter()
                .map(|&a| {
                    ctx.future_call(move |c| c.call(move |c| c.read_i64(a, 0, Mechanism::Migrate)))
                })
                .collect();
            for h in hs {
                total += ctx.touch(h);
            }
            total
        }
        let mut sim = OldenCtx::new(Config::olden(4));
        let sim_val = kernel(&mut sim);
        let (exec_val, rep) = run_exec(ExecConfig::lockstep(4), kernel);
        assert_eq!(exec_val, sim_val);
        assert_eq!(rep.stats, *sim.stats(), "runtime event counters");
        let sc = sim.cache().stats();
        assert_eq!(rep.cache.cacheable_reads, sc.cacheable_reads);
        assert_eq!(rep.cache.cacheable_writes, sc.cacheable_writes);
        assert_eq!(rep.cache.remote_reads, sc.remote_reads);
        assert_eq!(rep.cache.remote_writes, sc.remote_writes);
        assert_eq!(rep.cache.hits, sc.hits);
        assert_eq!(rep.cache.misses, sc.misses);
        assert_eq!(rep.pages_cached, sim.cache().pages_cached());
    }

    /// Local-knowledge acquire: arriving by migration really clears the
    /// destination worker's cache.
    #[test]
    fn migration_clears_destination_cache() {
        let (_, rep) = run_exec(ExecConfig::lockstep(4), |ctx| {
            let a = ctx.alloc(1, 1);
            let b = ctx.alloc(2, 1);
            ctx.uncharged(|c| {
                c.write(a, 0, 1i64, Mechanism::Migrate);
                c.write(b, 0, 2i64, Mechanism::Migrate);
            });
            ctx.read(a, 0, Mechanism::Cache); // proc 0: miss
            ctx.read(a, 0, Mechanism::Cache); // proc 0: hit
            ctx.read(b, 0, Mechanism::Migrate); // migrate 0 -> 2
            assert_eq!(ctx.cur_proc(), 2);
            ctx.read(a, 0, Mechanism::Cache); // proc 2's cache: miss
        });
        assert_eq!(rep.cache.hits, 1);
        assert_eq!(rep.cache.misses, 2);
    }

    /// Writes through the cache reach the home synchronously and are seen
    /// by a later reader on a third processor.
    #[test]
    fn cached_writes_reach_home() {
        let (v, _) = run_exec(ExecConfig::lockstep(4), |ctx| {
            let a = ctx.alloc(1, 1);
            ctx.write(a, 0, 41i64, Mechanism::Cache); // from proc 0, write miss
            ctx.write(a, 0, 42i64, Mechanism::Cache); // write hit, still written through
            let b = ctx.alloc(3, 1);
            ctx.read(b, 0, Mechanism::Migrate); // hop to proc 3
            ctx.read_i64(a, 0, Mechanism::Cache) // fresh cache: fetches home copy
        });
        assert_eq!(v, 42);
    }

    /// Parallel mode: a migrating body forks for real; values and the
    /// deterministic counters match the simulator.
    #[test]
    fn parallel_future_forks_and_joins() {
        fn kernel<B: Backend>(ctx: &mut B) -> i64 {
            let a = ctx.alloc(2, 1);
            ctx.uncharged(|c| c.write(a, 0, 21i64, Mechanism::Migrate));
            let h = ctx.future_call(move |c| c.call(move |c| c.read_i64(a, 0, Mechanism::Migrate)));
            let local = ctx.alloc(0, 1);
            ctx.write(local, 0, 1i64, Mechanism::Migrate);
            ctx.touch(h) + ctx.read_i64(local, 0, Mechanism::Migrate)
        }
        let mut sim = OldenCtx::new(Config::olden(4));
        let sim_val = kernel(&mut sim);
        let (v, rep) = run_exec(ExecConfig::parallel(4), kernel);
        assert_eq!(v, sim_val);
        assert_eq!(rep.stats.steals, sim.stats().steals);
        assert_eq!(rep.stats.migrations, sim.stats().migrations);
        assert_eq!(rep.clients, 2, "root + one forked body");
    }

    /// Parallel mode: an unstolen body stays an inline future.
    #[test]
    fn parallel_unstolen_future_is_inline() {
        let (v, rep) = run_exec(ExecConfig::parallel(2), |ctx| {
            let a = ctx.alloc(0, 1);
            ctx.write(a, 0, 7i64, Mechanism::Migrate);
            let h = ctx.future_call(move |c| c.read_i64(a, 0, Mechanism::Migrate));
            ctx.touch(h)
        });
        assert_eq!(v, 7);
        assert_eq!(rep.stats.futures, 1);
        assert_eq!(rep.stats.steals, 0, "no migration, no fork");
    }

    /// The forced-mechanism override reaches every dereference.
    #[test]
    fn forced_migrate_disables_caching() {
        let (_, rep) = run_exec(ExecConfig::lockstep(4).forced(Mechanism::Migrate), |ctx| {
            let a = ctx.alloc(3, 1);
            ctx.write(a, 0, 1i64, Mechanism::Cache); // forced to migrate
        });
        assert_eq!(rep.stats.migrations, 1);
        assert_eq!(rep.cache.remote_writes, 0);
    }

    /// The happens-before sanitizer: a stolen continuation racing with
    /// its body is detected, and the detection agrees byte-for-byte with
    /// the simulator's on both exec modes.
    #[test]
    fn sanitizer_detects_future_vs_continuation_race() {
        fn kernel<B: Backend>(ctx: &mut B) -> i64 {
            let a = ctx.alloc(1, 1);
            let h = ctx.future_call(move |c| {
                c.call(move |c| {
                    c.write(a, 0, 1i64, Mechanism::Migrate);
                    0i64
                })
            });
            ctx.write(a, 0, 2i64, Mechanism::Cache); // races with the body
            ctx.touch(h)
        }
        let mut sim = OldenCtx::new(Config::olden(4).sanitized());
        kernel(&mut sim);
        let mut sim_races = Backend::race_violations(&mut sim);
        sim_races.sort();
        assert_eq!(sim_races.len(), 1, "{sim_races:?}");
        assert_eq!(sim_races[0].kind(), "write-write");
        for cfg in [
            ExecConfig::lockstep(4).sanitized(),
            ExecConfig::parallel(4).sanitized(),
        ] {
            let mode = cfg.mode;
            let (_, rep) = run_exec(cfg, kernel);
            let mut races = rep.races.clone();
            races.sort();
            assert_eq!(races, sim_races, "{mode:?}");
        }
    }

    /// Ordering the same accesses with a touch silences the sanitizer on
    /// every backend, and the mid-run `Backend::race_violations` hook
    /// agrees with the shutdown report.
    #[test]
    fn sanitizer_is_quiet_when_touch_orders_the_writes() {
        fn kernel<B: Backend>(ctx: &mut B) -> usize {
            let a = ctx.alloc(1, 1);
            let h = ctx.future_call(move |c| {
                c.call(move |c| {
                    c.write(a, 0, 1i64, Mechanism::Migrate);
                    0i64
                })
            });
            ctx.touch(h); // join first …
            ctx.write(a, 0, 2i64, Mechanism::Cache); // … then write: ordered
            ctx.race_violations().len()
        }
        let mut sim = OldenCtx::new(Config::olden(4).sanitized());
        assert_eq!(kernel(&mut sim), 0);
        for cfg in [
            ExecConfig::lockstep(4).sanitized(),
            ExecConfig::parallel(4).sanitized(),
        ] {
            let mode = cfg.mode;
            let (mid_run, rep) = run_exec(cfg, kernel);
            assert_eq!(mid_run, 0, "{mode:?}");
            assert!(rep.races.is_empty(), "{mode:?}: {:?}", rep.races);
        }
    }

    /// Sibling futures whose bodies write one shared line race; the
    /// violation lands on the shared line's home worker.
    #[test]
    fn sanitizer_detects_sibling_future_race() {
        fn kernel<B: Backend>(ctx: &mut B) {
            let shared = ctx.alloc(2, 1);
            let b1 = ctx.alloc(1, 1);
            let b3 = ctx.alloc(3, 1);
            let mk = |probe: GPtr| {
                move |c: &mut B| {
                    c.call(move |c| {
                        c.read(probe, 0, Mechanism::Migrate); // migrate away
                        c.write(shared, 0, 1i64, Mechanism::Cache);
                    })
                }
            };
            let h1 = ctx.future_call(mk(b1));
            let h2 = ctx.future_call(mk(b3));
            ctx.touch(h1);
            ctx.touch(h2);
        }
        for cfg in [
            ExecConfig::lockstep(4).sanitized(),
            ExecConfig::parallel(4).sanitized(),
        ] {
            let mode = cfg.mode;
            let (_, rep) = run_exec(cfg, kernel);
            assert_eq!(rep.races.len(), 1, "{mode:?}: {:?}", rep.races);
            assert_eq!(rep.races[0].kind(), "write-write", "{mode:?}");
            assert_eq!(rep.races[0].line.0, 2, "{mode:?}: shared cell's home");
        }
    }

    /// With the sanitizer off, clocks stay home: no races reported, no
    /// extra messages beyond the unsanitized baseline.
    #[test]
    fn sanitizer_off_is_free() {
        fn kernel<B: Backend>(ctx: &mut B) {
            let a = ctx.alloc(1, 1);
            ctx.write(a, 0, 1i64, Mechanism::Cache);
            ctx.read(a, 0, Mechanism::Cache);
            ctx.read(a, 0, Mechanism::Cache); // hit: would SanitizeHit
        }
        let (_, plain) = run_exec(ExecConfig::lockstep(4), kernel);
        let (_, sane) = run_exec(ExecConfig::lockstep(4).sanitized(), kernel);
        assert!(plain.races.is_empty());
        assert!(sane.races.is_empty());
        assert!(
            sane.messages > plain.messages,
            "sanitized cache hits notify the home"
        );
    }

    /// A stalled run fails loudly — as a typed [`ExecError::Stalled`]
    /// value carrying the state dump — not by hanging.
    #[test]
    fn watchdog_trips_on_a_stalled_client() {
        let cfg = ExecConfig::lockstep(2).with_stall_timeout(Duration::from_millis(300));
        let err = try_run_exec(cfg, |ctx| {
            let a = ctx.alloc(1, 1);
            ctx.write(a, 0, 1i64, Mechanism::Migrate);
            // A buggy kernel that blocks forever.
            thread::sleep(Duration::from_secs(3600));
        })
        .expect_err("a blocked client must trip the watchdog");
        match err {
            ExecError::Stalled { dump } => {
                assert!(dump.contains("no progress for 300ms"), "{dump}");
                assert!(dump.contains("worker 0"), "{dump}");
                assert!(dump.contains("client 0"), "{dump}");
                assert!(dump.contains("running on proc 1"), "{dump}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    /// With the default (quiet) fault plan the transport is perfect:
    /// every send is a delivery, every delivery is serviced, and the
    /// fault log is empty — the chaos layer is invisible.
    #[test]
    fn quiet_plan_transport_is_perfect() {
        let (_, rep) = run_exec(ExecConfig::lockstep(4), |ctx| {
            let a = ctx.alloc(2, 2);
            ctx.write(a, 0, 5i64, Mechanism::Cache);
            ctx.read_i64(a, 0, Mechanism::Cache) + ctx.read_i64(a, 1, Mechanism::Migrate)
        });
        assert_eq!(rep.transport.sends, rep.transport.deliveries);
        assert_eq!(rep.transport.deliveries, rep.messages);
        assert_eq!(rep.transport.drops, 0);
        assert_eq!(rep.transport.retries, 0);
        assert_eq!(rep.transport.dupes_suppressed, 0);
        assert_eq!(rep.faults.total(), 0);
    }

    /// Under a chaotic schedule values and event counters still match the
    /// fault-free run exactly; the injected faults show up only in the
    /// transport counters and the fault log, and the conservation law
    /// (checked inside `try_run_exec` on every run) holds.
    #[test]
    fn chaotic_run_matches_fault_free_run() {
        fn kernel(ctx: &mut ExecCtx) -> i64 {
            let n = ctx.nprocs() as u8;
            let mut total = 0i64;
            for p in 0..n {
                let a = ctx.alloc(p, 2);
                ctx.write(a, 0, p as i64 + 1, Mechanism::Cache);
                total += ctx.read_i64(a, 0, Mechanism::Cache);
                total += ctx.call(|c| c.read_i64(a, 0, Mechanism::Migrate));
            }
            total
        }
        let (base_val, base) = run_exec(ExecConfig::lockstep(4), kernel);
        let mut any_faults = false;
        for seed in 0..8 {
            let (v, rep) = run_exec(ExecConfig::lockstep(4).chaotic(seed), kernel);
            assert_eq!(v, base_val, "seed {seed}");
            assert_eq!(rep.stats, base.stats, "seed {seed}");
            assert_eq!(rep.messages, base.messages, "seed {seed}");
            assert_eq!(
                rep.faults.count(olden_runtime::FaultTag::Dropped),
                rep.transport.drops,
                "seed {seed}: every drop is logged"
            );
            any_faults |= rep.faults.total() > 0;
        }
        assert!(any_faults, "eight chaotic seeds must inject something");
    }

    /// A message class dropped at 100% fails with a typed error naming
    /// the starved kind — never a raw panic, never a deadlock.
    #[test]
    fn starved_class_fails_with_typed_error() {
        let plan = FaultPlan::from_seed(1).starving(MsgKind::Alloc);
        let err = try_run_exec(ExecConfig::lockstep(2).with_faults(plan), |ctx| {
            ctx.alloc(1, 1);
        })
        .expect_err("Alloc is unreachable");
        match err {
            ExecError::Starved { kind, attempts, .. } => {
                assert_eq!(kind, MsgKind::Alloc);
                assert_eq!(attempts, plan.max_attempts);
            }
            other => panic!("expected Starved, got {other:?}"),
        }
    }
}
