//! olden-chaos: deterministic fault injection for the mailbox transport.
//!
//! The paper's runtime assumes the CM-5's reliable message layer; real
//! distributed machines drop, delay, duplicate, and reorder. This module
//! makes the exec backend's transport *loss-tolerant* and makes the
//! losses *injectable and reproducible*: a seeded [`FaultPlan`] decides
//! the fate of every transmission attempt as a pure function of the
//! message's identity, so the same seed replays the same fault schedule
//! on every run, regardless of thread interleaving.
//!
//! ### The exactly-once argument
//!
//! Every request already carries a rendezvous reply channel, so the reply
//! doubles as the acknowledgement; a request the fault layer loses is
//! simply re-sent by its waiting client (retry with exponential backoff,
//! standing in for an ack timeout). Senders stamp each *logical* message
//! with a per-client sequence number that all retries and duplicates
//! share; receivers service an envelope only if its sequence number
//! exceeds the highest yet seen from that sender — sound because each
//! client blocks for the reply before issuing its next logical message,
//! so primaries arrive in sequence order and anything at or below the
//! high-water mark can only be a copy of an already-serviced message.
//! Drop + retry gives at-least-once; dedupe cuts it back to exactly-once
//! at the observation layer. Retries are bounded: a message class that
//! never gets through (see [`FaultPlan::drop_all`]) ends the run with a
//! typed [`ExecError::Starved`] naming the starved kind, never a hang.
//!
//! Delay/reorder is modelled on the duplicate path: a *delayed
//! duplicate* is held back by the sender and flushed before a later
//! send, so it arrives out of order with intervening traffic. (Delaying
//! a *primary* is indistinguishable from drop + retry under a rendezvous
//! transport, so the plan folds that case into `drop`.)

use olden_gptr::ProcId;
use olden_rng::{mix2, SplitMix64};
use std::fmt;

/// The kind of a mailbox message, for per-class fault targeting and for
/// naming the starved class in [`ExecError::Starved`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgKind {
    Alloc,
    ReadHome,
    WriteHome,
    LineFetch,
    SanitizeHit,
    RaceQuery,
    CacheLookup,
    CacheInstall,
    Migrate,
    /// Global knowledge: the departing thread asks a home for a page's
    /// sharer list.
    SharerQuery,
    /// Global knowledge: a pushed invalidation of specific lines, sent to
    /// a sharer on the departing thread's behalf.
    InvalidateLines,
    /// Bilateral: bump the home timestamps of pages the departing thread
    /// wrote.
    BumpTs,
    /// Bilateral: ask a home which lines went stale since a validation.
    RevalQuery,
    /// Bilateral: apply a home's revalidation verdict to the local cache.
    RevalApply,
    /// Control plane: never faulted (a worker exits on its first
    /// shutdown, so a duplicate would hit a closed mailbox).
    Shutdown,
}

impl MsgKind {
    /// Every data-plane kind (the ones the fault layer may target).
    pub const DATA_PLANE: [MsgKind; 14] = [
        MsgKind::Alloc,
        MsgKind::ReadHome,
        MsgKind::WriteHome,
        MsgKind::LineFetch,
        MsgKind::SanitizeHit,
        MsgKind::RaceQuery,
        MsgKind::CacheLookup,
        MsgKind::CacheInstall,
        MsgKind::Migrate,
        MsgKind::SharerQuery,
        MsgKind::InvalidateLines,
        MsgKind::BumpTs,
        MsgKind::RevalQuery,
        MsgKind::RevalApply,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Alloc => "Alloc",
            MsgKind::ReadHome => "ReadHome",
            MsgKind::WriteHome => "WriteHome",
            MsgKind::LineFetch => "LineFetch",
            MsgKind::SanitizeHit => "SanitizeHit",
            MsgKind::RaceQuery => "RaceQuery",
            MsgKind::CacheLookup => "CacheLookup",
            MsgKind::CacheInstall => "CacheInstall",
            MsgKind::Migrate => "Migrate",
            MsgKind::SharerQuery => "SharerQuery",
            MsgKind::InvalidateLines => "InvalidateLines",
            MsgKind::BumpTs => "BumpTs",
            MsgKind::RevalQuery => "RevalQuery",
            MsgKind::RevalApply => "RevalApply",
            MsgKind::Shutdown => "Shutdown",
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The fate of one transmission attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Delivered normally.
    Deliver,
    /// Lost in transit; the sender retries after backoff.
    Drop,
    /// Delivered, plus a copy: immediately (back-to-back duplicate) or
    /// held back and flushed before a later send (reordered duplicate).
    Duplicate { delayed: bool },
}

/// A deterministic, seeded fault schedule.
///
/// The verdict for an attempt is a pure function of
/// `(seed, kind, src, dst, seq, attempt)` — no global state, no clocks —
/// so fault schedules are reproducible bit-for-bit and independent of
/// thread interleaving. Probabilities are expressed per-mille in integer
/// arithmetic to keep verdicts platform-identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Seed of the schedule; `seed` alone determines every verdict.
    pub seed: u64,
    /// Per-mille chance an attempt is dropped (never on the final
    /// attempt — see [`FaultPlan::verdict`]'s liveness guarantee).
    pub drop_pm: u16,
    /// Per-mille chance a delivered message is duplicated.
    pub dup_pm: u16,
    /// Of the duplicates, per-mille chance the copy is *delayed*
    /// (re-delivered out of order) rather than sent back to back.
    pub delay_pm: u16,
    /// Transmission attempts allowed per logical message before the
    /// sender gives up with [`ExecError::Starved`].
    pub max_attempts: u32,
    /// Target one message class with 100% drop — the starvation
    /// experiment: the run must fail with a typed error naming this
    /// kind, never a raw panic or a deadlock.
    pub drop_all: Option<MsgKind>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: every verdict is `Deliver`, and the transport
    /// behaves (and counts) exactly as it did before chaos existed.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_pm: 0,
            dup_pm: 0,
            delay_pm: 0,
            max_attempts: 1,
            drop_all: None,
        }
    }

    /// Derive a complete schedule from one seed: drop and duplicate rates
    /// each in 1–15%, up to 70% of duplicates delayed, 12 attempts per
    /// message. This is the generator the chaos suite sweeps.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut r = SplitMix64::new(mix2(seed, 0xC4A0_5C4A_05C4_A05C));
        FaultPlan {
            seed,
            drop_pm: (10 + r.below(140)) as u16,
            dup_pm: (10 + r.below(140)) as u16,
            delay_pm: r.below(700) as u16,
            max_attempts: 12,
            drop_all: None,
        }
    }

    /// Same plan with one message class dropped at 100%.
    pub fn starving(mut self, kind: MsgKind) -> FaultPlan {
        self.drop_all = Some(kind);
        self
    }

    /// Whether this plan can never fault anything.
    pub fn is_quiet(&self) -> bool {
        self.drop_pm == 0 && self.dup_pm == 0 && self.drop_all.is_none()
    }

    /// The fate of attempt `attempt` (0-based) of logical message `seq`
    /// from client `src` to worker `dst`.
    ///
    /// Liveness guarantee: the final allowed attempt is never dropped
    /// (the network's loss rate is < 100%), so every message is
    /// eventually delivered — *except* under [`FaultPlan::drop_all`],
    /// where the targeted class is dropped unconditionally and the sender
    /// surfaces [`ExecError::Starved`] once its attempts are exhausted.
    pub fn verdict(&self, kind: MsgKind, src: u64, dst: ProcId, seq: u64, attempt: u32) -> Verdict {
        if kind == MsgKind::Shutdown {
            return Verdict::Deliver;
        }
        if self.drop_all == Some(kind) {
            return Verdict::Drop;
        }
        if self.is_quiet() {
            return Verdict::Deliver;
        }
        let mut h = mix2(self.seed, kind as u64 + 1);
        h = mix2(h, src);
        h = mix2(h, dst as u64);
        h = mix2(h, seq);
        h = mix2(h, attempt as u64);
        let mut r = SplitMix64::new(h);
        let roll = r.below(1000) as u16;
        if roll < self.drop_pm && attempt + 1 < self.max_attempts {
            Verdict::Drop
        } else if roll < self.drop_pm + self.dup_pm {
            Verdict::Duplicate {
                delayed: (r.below(1000) as u16) < self.delay_pm,
            }
        } else {
            Verdict::Deliver
        }
    }
}

/// How an execution fails, as a value rather than a raw panic.
///
/// `run_exec` panics on these for drop-in compatibility;
/// [`try_run_exec`](crate::try_run_exec) returns them so tests can
/// assert on the outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The watchdog saw no progress for the configured stall timeout.
    /// `dump` is the per-worker / per-client state at the moment of the
    /// trip.
    Stalled { dump: String },
    /// A sender exhausted its retry budget: every one of `attempts`
    /// transmissions of message `seq` to worker `dst` was dropped. Under
    /// a [`FaultPlan`] with a liveness guarantee this can only happen
    /// when `drop_all` starves the named kind.
    Starved {
        kind: MsgKind,
        dst: ProcId,
        seq: u64,
        attempts: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Stalled { dump } => {
                write!(f, "olden-exec watchdog: run is stalled\n{dump}")
            }
            ExecError::Starved {
                kind,
                dst,
                seq,
                attempts,
            } => write!(
                f,
                "olden-exec transport: {kind} message (seq {seq}, to worker {dst}) \
                 starved after {attempts} dropped attempts"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::from_seed(7);
        let other = FaultPlan::from_seed(8);
        let mut diverged = false;
        for seq in 0..500u64 {
            let v = plan.verdict(MsgKind::CacheLookup, 0, 3, seq, 0);
            assert_eq!(
                v,
                plan.verdict(MsgKind::CacheLookup, 0, 3, seq, 0),
                "same inputs, same verdict"
            );
            if v != other.verdict(MsgKind::CacheLookup, 0, 3, seq, 0) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds yield different schedules");
    }

    #[test]
    fn from_seed_rates_are_in_range_and_all_verdicts_reachable() {
        let mut saw = (false, false, false, false); // deliver, drop, dup, delayed
        for seed in 0..50u64 {
            let p = FaultPlan::from_seed(seed);
            assert!((10..150).contains(&p.drop_pm), "drop_pm {}", p.drop_pm);
            assert!((10..150).contains(&p.dup_pm), "dup_pm {}", p.dup_pm);
            assert!(p.delay_pm < 700, "delay_pm {}", p.delay_pm);
            assert_eq!(p.max_attempts, 12);
            assert!(!p.is_quiet());
            for seq in 0..200 {
                match p.verdict(MsgKind::ReadHome, 1, 0, seq, 0) {
                    Verdict::Deliver => saw.0 = true,
                    Verdict::Drop => saw.1 = true,
                    Verdict::Duplicate { delayed: false } => saw.2 = true,
                    Verdict::Duplicate { delayed: true } => saw.3 = true,
                }
            }
        }
        assert!(saw.0 && saw.1 && saw.2 && saw.3, "verdict coverage {saw:?}");
    }

    #[test]
    fn final_attempt_is_never_dropped() {
        for seed in 0..100u64 {
            let p = FaultPlan::from_seed(seed);
            for seq in 0..200u64 {
                assert_ne!(
                    p.verdict(MsgKind::Migrate, 2, 1, seq, p.max_attempts - 1),
                    Verdict::Drop,
                    "liveness: seed {seed} seq {seq}"
                );
            }
        }
    }

    #[test]
    fn quiet_plan_always_delivers() {
        let p = FaultPlan::none();
        assert!(p.is_quiet());
        for kind in MsgKind::DATA_PLANE {
            for seq in 0..50 {
                assert_eq!(p.verdict(kind, 0, 0, seq, 0), Verdict::Deliver);
            }
        }
    }

    #[test]
    fn drop_all_starves_only_its_class_and_shutdown_is_exempt() {
        let p = FaultPlan::none().starving(MsgKind::CacheInstall);
        for attempt in 0..5 {
            assert_eq!(
                p.verdict(MsgKind::CacheInstall, 0, 1, 9, attempt),
                Verdict::Drop
            );
        }
        assert_eq!(
            p.verdict(MsgKind::CacheLookup, 0, 1, 9, 0),
            Verdict::Deliver
        );
        let chaotic = FaultPlan::from_seed(3).starving(MsgKind::Shutdown);
        assert_eq!(
            chaotic.verdict(MsgKind::Shutdown, u64::MAX, 0, 1, 0),
            Verdict::Deliver,
            "control plane is never faulted"
        );
    }

    #[test]
    fn errors_display_their_cause() {
        let e = ExecError::Starved {
            kind: MsgKind::LineFetch,
            dst: 3,
            seq: 41,
            attempts: 12,
        };
        let s = e.to_string();
        assert!(s.contains("LineFetch") && s.contains("starved"), "{s}");
        let st = ExecError::Stalled {
            dump: "  worker 0: waiting\n".into(),
        };
        assert!(st.to_string().contains("watchdog"));
    }
}
