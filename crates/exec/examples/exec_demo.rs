//! The README's "Real execution" sample, runnable: TreeAdd on 8 real
//! worker threads in lockstep mode, then an edge case — parallel mode
//! on a single processor (every future body inlines; nothing can
//! migrate away).

use olden_benchmarks::{generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig};

fn main() {
    let (value, report) = run_exec(ExecConfig::lockstep(8), |ctx| {
        generic_run("TreeAdd", ctx, SizeClass::Default).unwrap()
    });
    println!("lockstep p8: TreeAdd = {value}");
    println!(
        "  migrations={} steals={} futures={} mailbox msgs={}",
        report.stats.migrations, report.stats.steals, report.stats.futures, report.messages
    );

    let (value, report) = run_exec(ExecConfig::parallel(1), |ctx| {
        generic_run("TreeAdd", ctx, SizeClass::Tiny).unwrap()
    });
    println!("parallel p1: TreeAdd = {value}");
    println!(
        "  migrations={} steals={} clients={}",
        report.stats.migrations, report.stats.steals, report.clients
    );
}
