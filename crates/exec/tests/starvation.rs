//! The starvation property: 100% drop of any single message class fails
//! the run with a typed [`ExecError::Starved`] naming the starved kind —
//! never a raw panic payload, never a deadlock, never a watchdog trip.
//!
//! One kernel exercises every data-plane message kind (allocation, home
//! reads/writes, cache lookup + line fetch + install, a sanitized cache
//! hit, a migration, a race query); each kind is then starved in turn.

use olden_exec::{try_run_exec, ExecConfig, ExecCtx, ExecError, FaultPlan, MsgKind};
use olden_runtime::{Backend, Mechanism};
use std::time::Duration;

/// Touches every data-plane [`MsgKind`] at least once when unfaulted.
fn universal_kernel(ctx: &mut ExecCtx) {
    let a = ctx.alloc(1, 2); // Alloc, on a remote home
    ctx.write(a, 0, 7i64, Mechanism::Cache); // CacheLookup miss → LineFetch → CacheInstall → WriteHome
    ctx.read_i64(a, 0, Mechanism::Cache); // CacheLookup hit → SanitizeHit (sanitized run)
    ctx.read_i64(a, 1, Mechanism::Migrate); // Migrate → ReadHome
    ctx.race_violations(); // RaceQuery
}

/// The kernel really does exercise every data-plane kind (otherwise the
/// starvation sweep below would vacuously pass for an unexercised kind).
#[test]
fn universal_kernel_covers_every_data_plane_kind() {
    let (_, rep) = try_run_exec(ExecConfig::lockstep(2).sanitized(), universal_kernel)
        .expect("unfaulted run succeeds");
    // Per-kind service counts aren't reported; starve each kind with a
    // *huge* retry budget instead — if the kernel never sends that kind,
    // the run would succeed and the assertion below catches it.
    assert!(rep.messages >= MsgKind::DATA_PLANE.len() as u64);
    for kind in MsgKind::DATA_PLANE {
        let plan = FaultPlan::none().starving(kind);
        let res = try_run_exec(
            ExecConfig::lockstep(2).sanitized().with_faults(plan),
            universal_kernel,
        );
        assert!(
            res.is_err(),
            "{kind}: the kernel never sent this kind, so starving it was invisible"
        );
    }
}

/// Starving each class yields `Starved` naming exactly that class, as a
/// value — the run neither hangs (watchdog would say `Stalled`) nor
/// escapes as an untyped panic (`try_run_exec` would propagate it and
/// the test would abort, not fail an assertion).
#[test]
fn every_starved_class_fails_with_its_own_name() {
    for kind in MsgKind::DATA_PLANE {
        let plan = FaultPlan::from_seed(99).starving(kind);
        let err = try_run_exec(
            ExecConfig::lockstep(2)
                .sanitized()
                .with_stall_timeout(Duration::from_secs(30))
                .with_faults(plan),
            universal_kernel,
        )
        .expect_err("a starved class cannot complete");
        match err {
            ExecError::Starved {
                kind: got,
                attempts,
                ..
            } => {
                assert_eq!(got, kind, "error names the starved class");
                assert_eq!(attempts, plan.max_attempts, "retry budget was exhausted");
            }
            other => panic!("{kind}: expected Starved, got {other:?}"),
        }
        assert!(
            err.to_string().contains(kind.name()),
            "{kind}: display names the class: {err}"
        );
    }
}
