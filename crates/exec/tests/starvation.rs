//! The starvation property: 100% drop of any single message class fails
//! the run with a typed [`ExecError::Starved`] naming the starved kind —
//! never a raw panic payload, never a deadlock, never a watchdog trip.
//!
//! The nine scheme-independent kinds are exercised by one kernel under
//! local knowledge; the coherence-traffic kinds need the scheme that
//! emits them (sharer queries and pushed invalidations exist only under
//! global knowledge, timestamp bumps and revalidations only under the
//! bilateral scheme), so each kind runs its own (protocol, kernel) pair.

use olden_exec::{try_run_exec, ExecConfig, ExecCtx, ExecError, FaultPlan, MsgKind, Protocol};
use olden_runtime::{Backend, Mechanism};
use std::time::Duration;

/// Touches every scheme-independent data-plane [`MsgKind`] at least once
/// when unfaulted (allocation, home reads/writes, cache lookup + line
/// fetch + install, a sanitized cache hit, a migration, a race query).
fn universal_kernel(ctx: &mut ExecCtx) {
    let a = ctx.alloc(1, 2); // Alloc, on a remote home
    ctx.write(a, 0, 7i64, Mechanism::Cache); // CacheLookup miss → LineFetch → CacheInstall → WriteHome
    ctx.read_i64(a, 0, Mechanism::Cache); // CacheLookup hit → SanitizeHit (sanitized run)
    ctx.read_i64(a, 1, Mechanism::Migrate); // Migrate → ReadHome
    ctx.race_violations(); // RaceQuery
}

/// Global knowledge: the second departure (the call's return migration)
/// finds a dirty line whose page has a sharer other than the departing
/// processor — SharerQuery to the home, then InvalidateLines to proc 0.
fn global_kernel(ctx: &mut ExecCtx) {
    let a = ctx.alloc(1, 1);
    let probe = ctx.alloc(2, 1);
    ctx.write(a, 0, 1i64, Mechanism::Cache); // proc 0 becomes a sharer, line dirty
    ctx.call(|c| {
        c.read_i64(probe, 0, Mechanism::Migrate); // depart 0 → SharerQuery (no sharers but 0)
        c.write(a, 0, 2i64, Mechanism::Cache); // proc 2 becomes a sharer, line dirty
    }); // return depart 2 → SharerQuery + InvalidateLines → 0
}

/// Bilateral: departing with a dirty line sends BumpTs to its home; the
/// return receipt marks proc 0's cache, so the next cached read of `a`
/// revalidates — RevalQuery to the home, RevalApply to the local worker.
fn bilateral_kernel(ctx: &mut ExecCtx) {
    let a = ctx.alloc(1, 1);
    let probe = ctx.alloc(2, 1);
    ctx.write(a, 0, 1i64, Mechanism::Cache); // cache the line, mark it dirty
    ctx.call(|c| {
        c.read_i64(probe, 0, Mechanism::Migrate); // depart 0 → BumpTs → home 1
    }); // return receipt marks proc 0's cached pages
    ctx.read_i64(a, 0, Mechanism::Cache); // marked page → RevalQuery + RevalApply
}

/// The scheme whose kernel emits `kind`, with that kernel.
fn scenario_for(kind: MsgKind) -> (Protocol, fn(&mut ExecCtx)) {
    match kind {
        MsgKind::SharerQuery | MsgKind::InvalidateLines => {
            (Protocol::GlobalKnowledge, global_kernel)
        }
        MsgKind::BumpTs | MsgKind::RevalQuery | MsgKind::RevalApply => {
            (Protocol::Bilateral, bilateral_kernel)
        }
        _ => (Protocol::LocalKnowledge, universal_kernel),
    }
}

/// The kernels really do exercise every data-plane kind (otherwise the
/// starvation sweep below would vacuously pass for an unexercised kind).
#[test]
fn kernels_cover_every_data_plane_kind() {
    for kind in MsgKind::DATA_PLANE {
        let (protocol, kernel) = scenario_for(kind);
        try_run_exec(
            ExecConfig::lockstep(4).sanitized().with_protocol(protocol),
            kernel,
        )
        .expect("unfaulted run succeeds");
        // Per-kind service counts aren't reported; starve the kind with a
        // *huge* retry budget instead — if the kernel never sends that
        // kind, the run succeeds and the assertion catches it.
        let plan = FaultPlan::none().starving(kind);
        let res = try_run_exec(
            ExecConfig::lockstep(4)
                .sanitized()
                .with_protocol(protocol)
                .with_faults(plan),
            kernel,
        );
        assert!(
            res.is_err(),
            "{kind}: the kernel never sent this kind, so starving it was invisible"
        );
    }
}

/// Starving each class yields `Starved` naming exactly that class, as a
/// value — the run neither hangs (watchdog would say `Stalled`) nor
/// escapes as an untyped panic (`try_run_exec` would propagate it and
/// the test would abort, not fail an assertion).
#[test]
fn every_starved_class_fails_with_its_own_name() {
    for kind in MsgKind::DATA_PLANE {
        let (protocol, kernel) = scenario_for(kind);
        let plan = FaultPlan::from_seed(99).starving(kind);
        let err = try_run_exec(
            ExecConfig::lockstep(4)
                .sanitized()
                .with_protocol(protocol)
                .with_stall_timeout(Duration::from_secs(30))
                .with_faults(plan),
            kernel,
        )
        .expect_err("a starved class cannot complete");
        match err {
            ExecError::Starved {
                kind: got,
                attempts,
                ..
            } => {
                assert_eq!(got, kind, "error names the starved class");
                assert_eq!(attempts, plan.max_attempts, "retry budget was exhausted");
            }
            other => panic!("{kind}: expected Starved, got {other:?}"),
        }
        assert!(
            err.to_string().contains(kind.name()),
            "{kind}: display names the class: {err}"
        );
    }
}
