//! Observability parity: the simulator's logical-time event stream and
//! the thread backend's wall-time event stream describe the *same*
//! computation.
//!
//! In lockstep mode the two backends execute identical event sequences,
//! so their recordings must agree exactly once timestamps are stripped:
//! per processor, the same kinds, phases, and arguments in the same
//! order. The comparison is split by event site — the simulator records
//! everything into one lane, the exec backend splits thread-side events
//! (client lanes) from invalidation acquires (worker lanes) — which is
//! exactly what [`Recording::site_sequences`] normalizes away.

use olden_benchmarks::{all, generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig, ExecReport, Protocol};
use olden_runtime::{Config, EventKind, OldenCtx, Site};

const PROCS: usize = 8;

fn recorded_exec(name: &'static str, cfg: ExecConfig) -> ExecReport {
    let (_, rep) = run_exec(cfg.recorded(), move |ctx| {
        generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
    });
    rep
}

/// Every benchmark, both sites: the sim's per-processor `(kind, phase,
/// arg)` sequences equal the exec backend's in lockstep mode.
#[test]
fn lockstep_event_sequences_match_simulator_per_processor() {
    for d in all() {
        let name = d.name;
        let mut sim = OldenCtx::new(Config::olden(PROCS).recorded());
        generic_run(name, &mut sim, SizeClass::Tiny).unwrap();
        let sim_rec = sim.take_recording().expect("recorded sim run");
        let rep = recorded_exec(name, ExecConfig::lockstep(PROCS));
        let exec_rec = rep.recording.as_ref().expect("recorded exec run");

        sim_rec
            .span_nesting_ok()
            .unwrap_or_else(|e| panic!("{name} sim nesting: {e}"));
        exec_rec
            .span_nesting_ok()
            .unwrap_or_else(|e| panic!("{name} exec nesting: {e}"));
        assert_eq!(sim_rec.dropped(), 0, "{name}: sim lane overflowed");
        assert_eq!(exec_rec.dropped(), 0, "{name}: exec lane overflowed");
        for site in [Site::Client, Site::Worker] {
            assert_eq!(
                sim_rec.site_sequences(site),
                exec_rec.site_sequences(site),
                "{name}: per-processor {site:?}-site event sequences diverge"
            );
        }
    }
}

/// The other coherence schemes leave the event stream in lockstep with
/// the simulator too: revalidation misses still record one `LineFetch`
/// each (`LineFetch == misses` holds per scheme), and the unconditional
/// `Invalidate` acquire at every migration receipt keeps both sites'
/// sequences identical.
#[test]
fn coherence_scheme_event_streams_match_simulator() {
    for protocol in [Protocol::GlobalKnowledge, Protocol::Bilateral] {
        for name in ["TreeAdd", "Power", "EM3D", "Health"] {
            let mut sim = OldenCtx::new(Config::olden(PROCS).with_protocol(protocol).recorded());
            generic_run(name, &mut sim, SizeClass::Tiny).unwrap();
            let sim_rec = sim.take_recording().expect("recorded sim run");
            let rep = recorded_exec(name, ExecConfig::lockstep(PROCS).with_protocol(protocol));
            let rec = rep.recording.as_ref().expect("recorded exec run");
            for site in [Site::Client, Site::Worker] {
                assert_eq!(
                    sim_rec.site_sequences(site),
                    rec.site_sequences(site),
                    "{name} under {protocol:?}: {site:?}-site sequences diverge"
                );
            }
            assert_eq!(
                rec.count(EventKind::LineFetch),
                rep.cache.misses,
                "{name} under {protocol:?}: one fetch span per miss, \
                 revalidations included"
            );
        }
    }
}

/// The recording's exact per-kind counts reconcile with the run's own
/// counters — the same identity `oldenc profile` checks, here asserted
/// for every benchmark on the exec backend.
#[test]
fn lockstep_event_counts_reconcile_with_exec_report() {
    for d in all() {
        let name = d.name;
        let rep = recorded_exec(name, ExecConfig::lockstep(PROCS));
        let rec = rep.recording.as_ref().expect("recorded exec run");
        assert_eq!(
            rec.count(EventKind::MigrateSend),
            rep.stats.migrations,
            "{name}"
        );
        assert_eq!(
            rec.count(EventKind::MigrateRecv),
            rep.stats.migrations,
            "{name}"
        );
        assert_eq!(
            rec.count(EventKind::ReturnSend),
            rep.stats.return_migrations,
            "{name}"
        );
        assert_eq!(
            rec.count(EventKind::ReturnRecv),
            rep.stats.return_migrations,
            "{name}"
        );
        assert_eq!(
            rec.count(EventKind::FutureBody),
            rep.stats.futures,
            "{name}"
        );
        assert_eq!(rec.count(EventKind::Steal), rep.stats.steals, "{name}");
        assert_eq!(rec.count(EventKind::LineFetch), rep.cache.misses, "{name}");
        // Every invalidation acquire is a call arrival, a return-stub
        // arrival, or a touched value's receipt.
        assert_eq!(
            rec.count(EventKind::Invalidate),
            rep.stats.migrations + rep.stats.return_migrations + rec.count(EventKind::TouchStall),
            "{name}"
        );
        assert_eq!(
            rec.count(EventKind::Retry),
            0,
            "{name}: fault-free run retried"
        );
    }
}

/// Recording is observation, not perturbation: a recorded lockstep run
/// produces byte-identical counters and message counts to a plain one.
#[test]
fn recording_does_not_perturb_the_run() {
    for name in ["TreeAdd", "MST", "Health"] {
        let (v0, plain) = run_exec(ExecConfig::lockstep(PROCS), move |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
        });
        let (v1, rec) = run_exec(ExecConfig::lockstep(PROCS).recorded(), move |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
        });
        assert_eq!(v0, v1, "{name} value");
        assert_eq!(plain.stats, rec.stats, "{name} runtime counters");
        assert_eq!(plain.cache, rec.cache, "{name} cache counters");
        assert_eq!(plain.messages, rec.messages, "{name} message count");
        assert!(
            plain.recording.is_none(),
            "{name}: unrecorded run grew a recording"
        );
    }
}

/// Parallel mode — real body threads, child lanes pushed concurrently —
/// still yields well-formed recordings whose deterministic counts match
/// the report.
#[test]
fn parallel_mode_recording_is_well_formed_and_reconciles() {
    for name in ["TreeAdd", "Power", "EM3D", "Health"] {
        let rep = recorded_exec(name, ExecConfig::parallel(4));
        let rec = rep.recording.as_ref().expect("recorded parallel run");
        rec.span_nesting_ok()
            .unwrap_or_else(|e| panic!("{name} nesting: {e}"));
        assert_eq!(
            rec.count(EventKind::MigrateRecv),
            rep.stats.migrations,
            "{name}"
        );
        assert_eq!(
            rec.count(EventKind::FutureBody),
            rep.stats.futures,
            "{name}"
        );
        assert_eq!(rec.count(EventKind::Steal), rep.stats.steals, "{name}");
        assert_eq!(rec.count(EventKind::LineFetch), rep.cache.misses, "{name}");
        assert_eq!(
            rec.count(EventKind::Invalidate),
            rep.stats.migrations + rep.stats.return_migrations + rec.count(EventKind::TouchStall),
            "{name}"
        );
    }
}
