//! End-to-end verification of olden-select — the §4 heuristic as the
//! live decision surface, cross-validated against both backends.
//!
//! Two gates, each over every registry benchmark:
//!
//! 1. **Conformance** — the static selection is what actually runs. Each
//!    descriptor's `selected_mechanisms` list byte-matches the live
//!    heuristic's whole-program verdict table on its DSL, and each
//!    `kernel_mechs` triple (the `Mechanism` the hand-written kernel
//!    hard-codes for a traversal variable) agrees with what the heuristic
//!    decides for that `(func, var)`. A heuristic change that flips any
//!    verdict fails here, not silently.
//!
//! 2. **Prediction** — the static cost model is quantitatively tied to
//!    the machine. `olden_analysis::predict`, fed only the DSL, the
//!    selection, and size-derived trip counts, must land within each
//!    descriptor's accepted ratio band of the *measured* dynamic
//!    counters — migrations, cache line fetches, invalidations, and
//!    remote-touch stalls — on the simulator **and** on the thread
//!    backend (which runs lockstep and reconciles byte-for-byte, so one
//!    band set covers both). The bands themselves are checked
//!    non-vacuous: `hi < 1000 × lo`, and a deliberately wrong model
//!    (every prediction scaled 1000×) must fail every benchmark.

use olden_analysis::{mech_table, parse, predict, MechTable, Prediction};
use olden_benchmarks::{all, Descriptor, SizeClass};
use olden_exec::{run_exec, ExecConfig};
use olden_runtime::{run as run_sim, Config, EventKind};

const PROCS: usize = 8;

/// The verdict table the live heuristic computes for a descriptor's DSL.
fn live_table(d: &Descriptor) -> MechTable {
    let prog = parse(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
    mech_table(&prog)
}

// ---------------------------------------------------------------- gate 1

/// Every descriptor's recorded verdict keys are exactly the live
/// heuristic's, in evaluation order.
#[test]
fn recorded_verdicts_match_live_heuristic() {
    for d in all() {
        let live = live_table(&d).keys();
        let recorded: Vec<String> = d
            .selected_mechanisms
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            recorded, live,
            "{}: descriptor selected_mechanisms diverge from the heuristic",
            d.name
        );
        assert!(
            !live.is_empty(),
            "{}: a benchmark DSL with no dereference sites pins nothing",
            d.name
        );
    }
}

/// The mechanisms the kernels hard-code are the ones the heuristic
/// selects: for every `(func, var, mechanism)` triple, the live
/// selection's verdict for that variable in that function names the same
/// mechanism.
#[test]
fn kernels_hard_code_what_the_heuristic_selects() {
    for d in all() {
        assert!(
            !d.kernel_mechs.is_empty(),
            "{}: no kernel conformance triples recorded",
            d.name
        );
        let table = live_table(&d);
        for (func, var, mechanism) in d.kernel_mechs {
            let chosen = table.selection.mech(func, var);
            assert_eq!(
                chosen.name(),
                mechanism.name(),
                "{}: kernel uses {} for `{var}` in {func}, heuristic selects {}",
                d.name,
                mechanism.name(),
                chosen.name()
            );
        }
    }
}

// ---------------------------------------------------------------- gate 2

/// The four dynamic counters the cost model predicts, in
/// `Prediction::counters` order, measured on the simulator.
fn measure_sim(d: &Descriptor) -> [u64; 4] {
    let (_, rep) = run_sim(Config::olden(PROCS).recorded(), |ctx| {
        (d.run)(ctx, SizeClass::Tiny)
    });
    let rec = rep.recording.as_ref().expect("recorded sim run");
    [
        rep.stats.migrations,
        rep.cache.misses,
        rec.count(EventKind::Invalidate),
        rec.count(EventKind::TouchStall),
    ]
}

/// The same counters measured on the thread backend (lockstep).
fn measure_exec(d: &Descriptor) -> [u64; 4] {
    let name = d.name;
    let (_, rep) = run_exec(ExecConfig::lockstep(PROCS).recorded(), move |ctx| {
        olden_benchmarks::generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark")
    });
    let rec = rep.recording.as_ref().expect("recorded exec run");
    [
        rep.stats.migrations,
        rep.cache.misses,
        rec.count(EventKind::Invalidate),
        rec.count(EventKind::TouchStall),
    ]
}

/// The model's prediction for a descriptor at the measurement point.
fn predicted(d: &Descriptor) -> Prediction {
    let prog = parse(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
    let table = mech_table(&prog);
    let trips = (d.trips)(SizeClass::Tiny, PROCS);
    predict(&prog, &table, &trips, PROCS)
}

/// `(predicted + 1) / (measured + 1)` — finite even when a counter is 0.
fn ratio(pred: u64, meas: u64) -> f64 {
    (pred as f64 + 1.0) / (meas as f64 + 1.0)
}

fn assert_within_bands(d: &Descriptor, meas: [u64; 4], backend: &str) {
    let p = predicted(d);
    for (i, (counter, pred)) in p.counters().iter().enumerate() {
        let (lo, hi) = d.bands[i];
        let r = ratio(*pred, meas[i]);
        assert!(
            r >= lo && r <= hi,
            "{} on {backend}: {counter} predicted {pred}, measured {}, \
             ratio {r:.3} outside [{lo}, {hi}]",
            d.name,
            meas[i]
        );
    }
}

/// The cost model's predictions land inside every benchmark's accepted
/// ratio bands against the simulator's measured counters.
#[test]
fn predictions_within_bands_on_sim() {
    for d in all() {
        assert_within_bands(&d, measure_sim(&d), "sim");
    }
}

/// ... and against the thread backend's. Lockstep execution reconciles
/// with the simulator byte-for-byte, so this doubles as a check that the
/// band set genuinely covers both machines, not just the one it was
/// calibrated on.
#[test]
fn predictions_within_bands_on_exec() {
    for d in all() {
        assert_within_bands(&d, measure_exec(&d), "exec");
    }
}

/// Anti-vacuity, structurally: a band that spans three orders of
/// magnitude accepts anything and pins nothing.
#[test]
fn bands_are_not_vacuous() {
    for d in all() {
        for (i, (lo, hi)) in d.bands.iter().enumerate() {
            assert!(
                *lo > 0.0 && hi > lo,
                "{} band {i} is malformed: [{lo}, {hi}]",
                d.name
            );
            assert!(
                *hi < 1000.0 * lo,
                "{} band {i} is vacuous: [{lo}, {hi}] spans >= 1000x",
                d.name
            );
        }
    }
}

/// Anti-vacuity, behaviorally: a deliberately wrong cost model — every
/// predicted counter inflated 1000× — must violate at least one band of
/// every benchmark. If this fails, the bands would also accept a model
/// that predicts garbage.
#[test]
fn bands_reject_a_wrong_model() {
    for d in all() {
        let meas = measure_sim(&d);
        let p = predicted(&d);
        let rejected = p.counters().iter().enumerate().any(|(i, (_, pred))| {
            let r = ratio(pred.saturating_mul(1000), meas[i]);
            let (lo, hi) = d.bands[i];
            r < lo || r > hi
        });
        assert!(
            rejected,
            "{}: a 1000x-inflated prediction still passes every band",
            d.name
        );
    }
}
