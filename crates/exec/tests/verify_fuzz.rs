//! The olden-verify fuzz gate: metamorphic cross-validation of the
//! whole analysis stack over generated programs, the ten benchmark
//! DSLs, the racy corpus, and the saved shrunken repros.
//!
//! `oldenc fuzz` runs the same sweep from the command line (and CI runs
//! it over 500 seeds); these tests keep a smaller always-on slice in
//! `cargo test`.

use olden_analysis::gen::gen_source;
use olden_analysis::typeck::typecheck_src;
use olden_analysis::verify::{verify_seed, verify_source, Coverage};
use olden_analysis::{cfg, parse};

/// Seeds 0..150 pass every oracle: round-trip, typecheck, totality,
/// cross-pass consistency, metamorphic invariance, non-vacuity.
#[test]
fn fuzz_smoke_over_seed_range() {
    let mut cov = Coverage::default();
    for seed in 0..150u64 {
        if let Err(f) = verify_seed(seed, &mut cov) {
            panic!("{f}\n--- source ---\n{}", f.source);
        }
    }
    assert_eq!(cov.programs, 150);
    // The sweep must exercise the grammar, not just straight-line code.
    assert!(cov.whiles > 0 && cov.ifs > 0, "{cov:?}");
    assert!(cov.futures > 0 && cov.touches > 0, "{cov:?}");
    assert!(cov.stores > 0 && cov.paths > 0, "{cov:?}");
}

/// The sweep is bit-for-bit deterministic: same seeds, same coverage,
/// same generated sources.
#[test]
fn fuzz_sweep_is_deterministic() {
    let mut c1 = Coverage::default();
    let mut c2 = Coverage::default();
    for seed in 0..25u64 {
        verify_seed(seed, &mut c1).unwrap();
        verify_seed(seed, &mut c2).unwrap();
        assert_eq!(gen_source(seed), gen_source(seed));
    }
    assert_eq!(c1, c2);
}

/// Every ill-typed mutation class is applied (and rejected with its
/// matching code) somewhere in the first hundred seeds — the
/// non-vacuity gate for the typechecker itself.
#[test]
fn every_mutation_class_is_exercised() {
    let mut cov = Coverage::default();
    for seed in 0..100u64 {
        verify_seed(seed, &mut cov).unwrap();
    }
    for class in [
        "drop-touch",
        "break-arity",
        "retype-arg",
        "retype-field",
        "double-touch",
    ] {
        assert!(
            cov.mutations.get(class).copied().unwrap_or(0) > 0,
            "mutation class `{class}` never fired: {:?}",
            cov.mutations
        );
    }
}

/// All ten Table-1 benchmark DSLs pass the source-level oracles:
/// rendering idempotence, a clean typecheck, pass totality, and
/// cross-pass consistency.
#[test]
fn benchmark_dsls_pass_source_oracles() {
    let mut cov = Coverage::default();
    for d in olden_benchmarks::all() {
        if let Err(f) = verify_source(d.name, d.dsl, &mut cov) {
            panic!("{}: {f}", d.name);
        }
    }
    assert_eq!(cov.programs, olden_benchmarks::all().len());
}

/// The racy corpus — including its deliberately-racing seeds — is
/// type-clean and CFG-well-formed: races are a scheduling property, not
/// a typing one, and the front gate must not reject them.
#[test]
fn racy_corpus_typechecks_and_is_well_formed() {
    let mut cov = Coverage::default();
    for seed in olden_benchmarks::racy::seeds() {
        let diags = typecheck_src(seed.dsl).unwrap_or_else(|e| panic!("{}: {e}", seed.name));
        assert!(
            diags.is_empty(),
            "{}: {:?}",
            seed.name,
            diags.iter().map(|d| d.one_line()).collect::<Vec<_>>()
        );
        let p = parse(seed.dsl).unwrap();
        for f in &p.funcs {
            cfg::lower(f)
                .check_well_formed(f)
                .unwrap_or_else(|e| panic!("{}: {e}", seed.name));
        }
        verify_source(seed.name, seed.dsl, &mut cov)
            .unwrap_or_else(|f| panic!("{}: {f}", seed.name));
    }
    assert!(cov.programs >= 6, "racy corpus shrank? {}", cov.programs);
}

/// Replay every shrunken repro saved by `oldenc fuzz`: once fixed, a
/// failure must stay fixed.
#[test]
fn corpus_repros_replay_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dsl"))
        .collect();
    names.sort();
    assert!(
        !names.is_empty(),
        "tests/corpus must hold at least the seed repros"
    );
    let mut cov = Coverage::default();
    for path in names {
        let src = std::fs::read_to_string(&path).unwrap();
        if let Err(f) = verify_source(&path.display().to_string(), &src, &mut cov) {
            panic!("{}: {f}", path.display());
        }
    }
}
