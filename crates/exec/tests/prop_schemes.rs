//! Randomized coherence-scheme properties on the *thread backend* — the
//! executable mirror of `crates/cache/tests/prop_protocols.rs`, which
//! drives the reference `CacheSystem` directly. Here the same seeded
//! access/migration traces run as real programs over worker threads,
//! once per Appendix-A scheme, and are held to:
//!
//! - **Value independence** — the coherence scheme is a performance
//!   knob, not a semantics knob: every read returns the same word under
//!   all three schemes (and as the simulator says it should).
//! - **Counter parity** — each scheme's full [`CacheStats`] equals the
//!   simulator's for the same trace.
//! - **Scheme consistency** — counters only a given scheme can produce
//!   stay zero elsewhere (no revalidations outside bilateral, no pushed
//!   invalidations outside global knowledge, no write tracking under
//!   local knowledge), and the structural inequalities hold.

use olden_exec::{run_exec, ExecConfig, Protocol};
use olden_rng::SplitMix64;
use olden_runtime::{Backend, Config, Mechanism, OldenCtx};

const PROCS: usize = 4;
const SLOTS: usize = 12;

#[derive(Clone, Debug)]
enum Op {
    /// A direct access of `slot` (cached or migrating).
    Access {
        slot: usize,
        write: bool,
        val: i64,
        migrate: bool,
    },
    /// The same accesses inside a `call` scope: the return path is a
    /// return migration with the scope's written-homes set.
    Call { inner: Vec<Op> },
}

fn random_access(r: &mut SplitMix64) -> Op {
    Op::Access {
        slot: r.below(SLOTS as u64) as usize,
        write: r.chance(0.4),
        val: r.below(1000) as i64,
        migrate: r.chance(0.25),
    }
}

fn random_trace(r: &mut SplitMix64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            if r.chance(0.2) {
                Op::Call {
                    inner: (0..1 + r.below(3)).map(|_| random_access(r)).collect(),
                }
            } else {
                random_access(r)
            }
        })
        .collect()
}

/// Replay `trace` on any backend, returning a checksum over every value
/// read (order-sensitive, so a single wrong word shifts it).
fn replay<B: Backend>(ctx: &mut B, trace: &[Op]) -> i64 {
    let slots: Vec<_> = (0..SLOTS)
        .map(|i| ctx.alloc((i % PROCS) as u8, 1))
        .collect();
    fn step<B: Backend>(ctx: &mut B, slots: &[olden_gptr::GPtr], op: &Op, sum: &mut i64) {
        match op {
            Op::Access {
                slot,
                write,
                val,
                migrate,
            } => {
                let mech = if *migrate {
                    Mechanism::Migrate
                } else {
                    Mechanism::Cache
                };
                if *write {
                    ctx.write(slots[*slot], 0, *val, mech);
                } else {
                    *sum = sum.wrapping_mul(31) ^ ctx.read_i64(slots[*slot], 0, mech);
                }
            }
            Op::Call { inner } => ctx.call(|c| {
                for op in inner {
                    step(c, slots, op, sum);
                }
            }),
        }
    }
    let mut sum = 0i64;
    for op in trace {
        step(ctx, &slots, op, &mut sum);
    }
    sum
}

#[test]
fn random_traces_are_scheme_independent_and_reconcile() {
    let mut r = SplitMix64::new(0x5C4E3E);
    for round in 0..24 {
        let trace = random_trace(&mut r, 40);
        let mut checksums = Vec::new();
        for protocol in Protocol::ALL {
            let mut sim = OldenCtx::new(Config::olden(PROCS).with_protocol(protocol));
            let sim_val = replay(&mut sim, &trace);
            let t = trace.clone();
            let (val, rep) = run_exec(
                ExecConfig::lockstep(PROCS).with_protocol(protocol),
                move |ctx| replay(ctx, &t),
            );
            assert_eq!(
                val, sim_val,
                "round {round} under {protocol:?}: exec vs simulator value"
            );
            assert_eq!(
                rep.cache,
                *sim.cache().stats(),
                "round {round} under {protocol:?}: cache counters"
            );
            assert_eq!(
                rep.stats,
                *sim.stats(),
                "round {round} under {protocol:?}: runtime counters"
            );

            // Scheme-consistent deltas: each scheme's signature counters
            // are zero under every other scheme.
            let c = &rep.cache;
            match protocol {
                Protocol::LocalKnowledge => {
                    assert_eq!(c.revalidations, 0, "round {round}");
                    assert_eq!(c.invalidations_sent, 0, "round {round}");
                    assert_eq!(c.write_track_cycles, 0, "round {round}");
                }
                Protocol::GlobalKnowledge => {
                    assert_eq!(c.revalidations, 0, "round {round}");
                }
                Protocol::Bilateral => {
                    assert_eq!(c.invalidations_sent, 0, "round {round}");
                }
            }
            assert!(
                c.invalidations_spurious <= c.invalidations_sent,
                "round {round} under {protocol:?}: spurious ⊆ sent"
            );
            assert!(
                c.revalidations <= c.misses,
                "round {round} under {protocol:?}: a revalidation is a miss"
            );
            assert_eq!(
                c.hits + c.misses,
                c.remote_reads + c.remote_writes,
                "round {round} under {protocol:?}: every remote access hits or misses"
            );
            checksums.push(val);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "round {round}: schemes changed a value: {checksums:?}"
        );
    }
}
