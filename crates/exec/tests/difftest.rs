//! Differential execution of lowered DSL programs: the IR interpreter
//! driving the simulator and the thread backend must agree byte-for-byte
//! — in values, trip counts, every runtime event counter, cache totals,
//! and pages cached. These are the named (non-fuzz) anchors of the
//! `oldenc difftest` harness: the saved corpus, the ten benchmark DSLs,
//! the IR edge cases, and the mechanism-flip experiment.

use olden_analysis::{compile, gen_program, render, Mech, Stmt};
use olden_exec::{run_exec, ExecConfig};
use olden_runtime::{run_ir, Config, OldenCtx, RunOutcome, DEFAULT_FUEL};
use std::sync::Arc;

const PROCS: usize = 4;

/// Compile `src`, run it on the simulator and on the lockstep thread
/// backend from the same input seed, and hold every observable equal.
/// Returns the (shared) outcome and the simulator context for further
/// assertions.
fn assert_parity(name: &str, src: &str, seed: u64) -> (RunOutcome, OldenCtx) {
    let (_, _, ir) = compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let ir = Arc::new(ir);
    let mut sim = OldenCtx::new(Config::olden(PROCS));
    let out_sim = run_ir(&mut sim, &ir, seed, DEFAULT_FUEL, None);
    let ir2 = Arc::clone(&ir);
    let (out_exec, rep) = run_exec(ExecConfig::lockstep(PROCS), move |ctx| {
        run_ir(ctx, &ir2, seed, DEFAULT_FUEL, None)
    });
    assert_eq!(out_exec, out_sim, "{name}: values/trips diverged");
    assert_eq!(rep.stats, *sim.stats(), "{name}: runtime event counters");
    let sc = sim.cache().stats();
    assert_eq!(rep.cache.cacheable_reads, sc.cacheable_reads, "{name}");
    assert_eq!(rep.cache.cacheable_writes, sc.cacheable_writes, "{name}");
    assert_eq!(rep.cache.remote_reads, sc.remote_reads, "{name}");
    assert_eq!(rep.cache.remote_writes, sc.remote_writes, "{name}");
    assert_eq!(rep.cache.hits, sc.hits, "{name}");
    assert_eq!(rep.cache.misses, sc.misses, "{name}");
    assert_eq!(rep.pages_cached, sim.cache().pages_cached(), "{name}");
    (out_sim, sim)
}

/// Satellite: every shrunk repro saved under `tests/corpus/` replays
/// through the IR interpreter on both backends — old fuzz findings are
/// executable regressions forever. Repros that (by design) fail the
/// front gate must fail it cleanly rather than execute.
#[test]
fn corpus_repros_execute_differentially() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dsl"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "tests/corpus must hold the seed repros");
    let mut executed = 0usize;
    for path in paths {
        let name = path.display().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        match compile(&src) {
            Ok(_) => {
                for seed in 0..3 {
                    assert_parity(&name, &src, seed);
                }
                executed += 1;
            }
            Err(e) => {
                // A repro the front gate rejects is still a regression
                // anchor: it must keep failing for a *typed* reason, not
                // crash the lowering.
                assert!(
                    e.starts_with("parse error") || e.starts_with("type error"),
                    "{name}: lowering failed after the front gate: {e}"
                );
            }
        }
    }
    assert!(executed >= 3, "the seed repros are executable: {executed}");
}

/// The ten benchmark DSL renditions — until now only analyzed — execute
/// on both backends with full counter parity, under their live
/// olden-select verdicts.
#[test]
fn benchmark_dsls_execute_with_parity() {
    for d in olden_benchmarks::all() {
        assert_parity(d.name, d.dsl, 0);
    }
}

/// IR edge case: a future whose body is empty (and one never touched).
#[test]
fn empty_future_body_parity() {
    let src = "struct s { s *n; int v; }\n\
               void nop(s *p) { }\n\
               int main(s *p) {\n\
                   h = futurecall nop(p);\n\
                   touch h;\n\
                   futurecall nop(p);\n\
                   return 1;\n\
               }\n";
    let (_, sim) = assert_parity("empty-future", src, 5);
    assert_eq!(sim.stats().futures, 2);
    assert_eq!(sim.stats().touches, 1);
}

/// IR edge case: a loop whose condition is false on entry — zero trips,
/// zero body checks, on both backends.
#[test]
fn zero_trip_loop_parity() {
    let src = "struct s { s *n; int v; }\n\
               int f(s *p) {\n\
                   i = 0;\n\
                   while (i > 0) { i = i - 1; x = p->v; }\n\
                   return i;\n\
               }\n";
    let (out, sim) = assert_parity("zero-trip", src, 5);
    assert_eq!(out.trips, vec![("f#0".to_string(), 0)]);
    assert_eq!(sim.stats().checks_performed, 0);
}

/// IR edge case: paths from a null-assigned base (typed `Unknown` by the
/// flow-sensitive checker) are inert on both backends.
#[test]
fn null_unknown_path_parity() {
    let src = "struct s { s *n; int v; }\n\
               int f(s *unused) {\n\
                   p = null;\n\
                   x = p->v;\n\
                   p->v = 9;\n\
                   q = p->n->n->v;\n\
                   return x + q;\n\
               }\n";
    let (_, sim) = assert_parity("null-path", src, 5);
    assert_eq!(sim.stats().checks_performed, 0, "null paths skip the heap");
}

/// Statement-nesting depth of a function body (while/if nesting).
fn nesting_depth(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If { then_, else_, .. } => 1 + nesting_depth(then_).max(nesting_depth(else_)),
            Stmt::While { body, .. } => 1 + nesting_depth(body),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// IR edge case: the deepest-nesting program the generator produces in
/// its first 300 seeds executes with parity — the "generator extremes"
/// anchor, self-selecting so it tracks grammar changes.
#[test]
fn generator_max_nesting_parity() {
    let (mut best_seed, mut best_depth) = (0u64, 0usize);
    for seed in 0..300u64 {
        let prog = gen_program(seed);
        let d = prog
            .funcs
            .iter()
            .map(|f| nesting_depth(&f.body))
            .max()
            .unwrap_or(0);
        if d > best_depth {
            (best_seed, best_depth) = (seed, d);
        }
    }
    // The grammar's ceiling today: count_loop bodies nest an `if` or an
    // inner loop inside the `while` (depth 2). If the generator grows
    // deeper shapes, this anchor automatically follows them.
    assert!(
        best_depth >= 2,
        "generator extremes shrank to depth {best_depth}?"
    );
    let src = render(&gen_program(best_seed));
    assert_parity(&format!("max-nesting seed {best_seed}"), &src, best_seed);
}

/// Chaos smoke: a lowered generated program under seeded fault injection
/// stays byte-equal to the fault-free simulator (the full 25-seed sweep
/// lives in `oldenc difftest`).
#[test]
fn chaotic_generated_run_matches_simulator() {
    let src = render(&gen_program(0));
    let (_, _, ir) = compile(&src).unwrap();
    let ir = Arc::new(ir);
    let mut sim = OldenCtx::new(Config::olden(PROCS));
    let out_sim = run_ir(&mut sim, &ir, 0, DEFAULT_FUEL, None);
    for chaos_seed in 0..3 {
        let ir2 = Arc::clone(&ir);
        let (out, rep) = run_exec(
            ExecConfig::lockstep(PROCS).chaotic(chaos_seed),
            move |ctx| run_ir(ctx, &ir2, 0, DEFAULT_FUEL, None),
        );
        assert_eq!(out, out_sim, "chaos seed {chaos_seed}");
        assert_eq!(rep.stats, *sim.stats(), "chaos seed {chaos_seed}");
    }
}

/// The acceptance experiment: a generated (non-benchmark) program whose
/// verdict table mixes migrate and cache sites, where honoring the live
/// olden-select verdicts produces different executed counters than
/// forcing either mechanism — the heuristic demonstrably *drives*
/// execution — and the live counters sit inside the static cost model's
/// bands at the measured trip counts.
#[test]
fn mechanism_mix_drives_execution_within_cost_bands() {
    use olden_analysis::{mech_table, predict};
    let mixed = (0..200u64).find(|&seed| {
        let table = mech_table(&gen_program(seed));
        let migrate = table
            .sites
            .iter()
            .filter(|s| s.mech == Mech::Migrate)
            .count();
        migrate > 0 && migrate < table.sites.len()
    });
    let seed = mixed.expect("some generated program mixes mechanisms");
    let prog = gen_program(seed);
    let table = mech_table(&prog);
    let src = render(&prog);
    let (_, _, ir) = compile(&src).unwrap();
    let ir = Arc::new(ir);

    let run = |force: Option<Mech>| {
        let mut ctx = OldenCtx::new(Config::olden(PROCS));
        let out = run_ir(&mut ctx, &ir, seed, DEFAULT_FUEL, force);
        let stats = *ctx.stats();
        let misses = ctx.cache().stats().misses;
        (out, stats, misses)
    };
    let (live_out, live, live_misses) = run(None);
    let (mig_out, mig, mig_misses) = run(Some(Mech::Migrate));
    let (cache_out, cache, cache_misses) = run(Some(Mech::Cache));
    assert_eq!(
        live_out.checksum, mig_out.checksum,
        "mechanism never changes values"
    );
    assert_eq!(live_out.checksum, cache_out.checksum);
    assert!(
        (live.migrations, live_misses) != (mig.migrations, mig_misses)
            && (live.migrations, live_misses) != (cache.migrations, cache_misses),
        "seed {seed}: the live selection must execute differently from \
         both forced mechanisms: live=({}, {live_misses}), migrate=({}, {mig_misses}), \
         cache=({}, {cache_misses})",
        live.migrations,
        mig.migrations,
        cache.migrations,
    );

    // Cost-band conformance: predictions at the *measured* trip counts
    // bracket the executed counters.
    let trips: Vec<(&str, u64)> = live_out
        .trips
        .iter()
        .map(|(k, n)| (k.as_str(), *n))
        .collect();
    let p = predict(&prog, &table, &trips, PROCS);
    let measured = [
        ("migrations", p.migrations, live.migrations),
        ("line_fetches", p.line_fetches, live_misses),
        ("remote_touches", p.remote_touches, live.steals),
    ];
    for (what, pred, meas) in measured {
        let ratio = (pred + 1.0) / (meas as f64 + 1.0);
        assert!(
            (0.05..=20.0).contains(&ratio),
            "seed {seed}: {what} out of band: predicted {pred:.1}, measured {meas} \
             (ratio {ratio:.3})"
        );
    }
}
