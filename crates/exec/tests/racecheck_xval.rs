//! Cross-validation of the static race pass against the dynamic
//! happens-before oracle — the tentpole guarantee of olden-racecheck.
//!
//! Two directions, over two program sets:
//!
//! 1. **Soundness on the corpus** (`olden_benchmarks::racy`): every seed
//!    the sanitizer flags — on the simulator or on either thread-backend
//!    mode — carries at least one static warning on its DSL rendition,
//!    i.e. static warnings ⊇ dynamic detections. Clean seeds are silent
//!    everywhere.
//! 2. **Benchmarks are clean**: the DSL renditions of all ten Table-1
//!    benchmarks lint clean of warnings (`oldenc`'s golden file pins the
//!    remaining notes), and the real kernels run sanitizer-clean on the
//!    simulator and on the thread backend in lockstep *and* parallel
//!    modes.
//!
//! Lockstep detections must equal the simulator's byte for byte (same
//! one-access-one-message mapping, same feeding order); parallel mode is
//! only held to flag-or-not, since a write-read pair's arrival order at
//! the home worker — and hence the recorded direction — is schedule-
//! dependent.

use olden_analysis::racecheck::racecheck_src;
use olden_analysis::Severity;
use olden_benchmarks::racy::{run_seed, seeds};
use olden_benchmarks::{all, generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig};
use olden_runtime::{Config, OldenCtx, RaceViolation};

const PROCS: usize = 4;

/// A seed's sanitizer findings on the simulator.
fn sim_races(name: &'static str) -> Vec<RaceViolation> {
    let mut ctx = OldenCtx::new(Config::olden(PROCS).sanitized());
    run_seed(name, &mut ctx).expect("known seed");
    let mut v = ctx.race_violations();
    v.sort();
    v
}

/// A seed's sanitizer findings on the thread backend.
fn exec_races(name: &'static str, cfg: ExecConfig) -> Vec<RaceViolation> {
    let (_, rep) = run_exec(cfg, move |ctx| {
        run_seed(name, ctx).expect("known seed");
    });
    let mut v = rep.races;
    v.sort();
    v
}

/// Static warnings ⊇ dynamic detections, seed by seed, on all three
/// executions; lockstep agrees with the simulator exactly.
#[test]
fn corpus_static_warnings_cover_dynamic_detections() {
    for seed in seeds() {
        let diags = racecheck_src(seed.dsl).unwrap_or_else(|e| panic!("{}: {e}", seed.name));
        let statically_warned = diags.iter().any(|d| d.severity >= Severity::Warning);

        let sim = sim_races(seed.name);
        let lockstep = exec_races(seed.name, ExecConfig::lockstep(PROCS).sanitized());
        let parallel = exec_races(seed.name, ExecConfig::parallel(PROCS).sanitized());

        assert_eq!(sim, lockstep, "{}: lockstep must mirror the sim", seed.name);
        assert_eq!(
            sim.is_empty(),
            parallel.is_empty(),
            "{}: parallel flag disagrees (sim {sim:?}, parallel {parallel:?})",
            seed.name
        );

        let dynamically_detected = !sim.is_empty() || !parallel.is_empty();
        assert!(
            statically_warned || !dynamically_detected,
            "{}: sanitizer found {sim:?} but the static pass only said {diags:?}",
            seed.name
        );

        // The corpus is labelled: both sides must also match the label,
        // so a silently weakened oracle cannot make this test vacuous.
        assert_eq!(seed.racy, dynamically_detected, "{} dynamic", seed.name);
        assert_eq!(seed.racy, statically_warned, "{} static", seed.name);
    }
}

/// The ten benchmark DSLs carry no static *warnings* (notes are allowed
/// and pinned by `oldenc`'s golden file).
#[test]
fn benchmark_dsls_have_no_static_warnings() {
    for d in all() {
        let diags = racecheck_src(d.dsl).unwrap_or_else(|e| panic!("{}: {e}", d.name));
        let warns: Vec<_> = diags
            .iter()
            .filter(|di| di.severity >= Severity::Warning)
            .collect();
        assert!(warns.is_empty(), "{}: {warns:?}", d.name);
    }
}

/// All ten benchmarks run sanitizer-clean on the simulator: their touch
/// discipline really does order every conflicting access pair.
#[test]
fn benchmarks_are_sanitizer_clean_on_simulator() {
    for d in all() {
        let mut ctx = OldenCtx::new(Config::olden(PROCS).sanitized());
        generic_run(d.name, &mut ctx, SizeClass::Tiny).unwrap();
        let races = ctx.race_violations();
        assert!(races.is_empty(), "{}: {races:?}", d.name);
    }
}

/// Benchmarks whose *parallel-mode* executions exhibit benign false
/// sharing: sibling tasks allocate concurrently on the same processors,
/// so cells of unordered tasks interleave within one cache line and
/// their (different-word) initialization writes collide at the
/// sanitizer's line granularity. Lockstep and the simulator allocate
/// depth-first — whole lines per task — so only parallel schedules can
/// produce these. The computed values stay correct (the writes really
/// are to different words; write-through is word-granular), which is
/// why this is a golden list and not a bug list.
const PARALLEL_FALSE_SHARING: &[&str] = &["TSP", "Health"];

/// …and on the thread backend, in both modes, where the accesses and the
/// clock piggybacking are real messages between real OS threads. The
/// golden-listed benchmarks may report parallel-mode write-write pairs
/// (false sharing, above) — anything else, or any finding in lockstep
/// mode, fails.
#[test]
fn benchmarks_are_sanitizer_clean_on_thread_backend() {
    for d in all() {
        for cfg in [
            ExecConfig::lockstep(PROCS).sanitized(),
            ExecConfig::parallel(PROCS).sanitized(),
        ] {
            let mode = cfg.mode;
            let name = d.name;
            let (_, rep) = run_exec(cfg, move |ctx| {
                generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark");
            });
            let excused = mode == olden_exec::Mode::Parallel
                && PARALLEL_FALSE_SHARING.contains(&name)
                && rep.races.iter().all(|r| r.kind() == "write-write");
            assert!(
                rep.races.is_empty() || excused,
                "{name} ({mode:?}): {:?}",
                rep.races
            );
        }
    }
}
