//! End-to-end verification of the optimizer's check elision on both
//! backends — the tentpole guarantee of olden-opt.
//!
//! Elision is a *hint with a fallback*: a `Check::Elide` site skips the
//! compiler-inserted pointer test / cache lookup only when its dataflow
//! fact verifies at runtime, so turning `elide_checks` on must change
//! nothing observable except the check counters and the cycles they cost.
//! Three layers, each over every benchmark:
//!
//! 1. **Simulator on-vs-off** — byte-identical values; identical
//!    migration / steal / future / touch / alloc counters; identical
//!    cache hit / miss / invalidation traffic; and the conservation law
//!    `performed(on) + elided(on) == performed(off)`.
//! 2. **Static-to-dynamic** — every benchmark whose DSL the optimizer
//!    annotated (non-empty `elided_sites`) actually elides checks at
//!    runtime, and elision makes the run cheaper, never dearer.
//! 3. **Exec lockstep** — the thread backend with elision on reconciles
//!    with the simulator with elision on: full `RunStats` equality
//!    (including both check counters) and cache-stat agreement.

use olden_benchmarks::{all, generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig};
use olden_runtime::{Config, OldenCtx, RunStats};

const PROCS: usize = 8;

fn sim(name: &'static str, optimize: bool) -> (u64, OldenCtx) {
    let cfg = if optimize {
        Config::olden(PROCS).optimized()
    } else {
        Config::olden(PROCS)
    };
    let mut ctx = OldenCtx::new(cfg);
    let v = generic_run(name, &mut ctx, SizeClass::Tiny).expect("known benchmark");
    (v, ctx)
}

/// The two check counters are the *only* runtime counters elision may
/// move; everything else in `RunStats` must be bit-identical.
fn without_checks(s: &RunStats) -> RunStats {
    let mut s = *s;
    s.checks_performed = 0;
    s.checks_elided = 0;
    s
}

/// Simulator, every benchmark: elision changes no values, no control-flow
/// counters, no coherence traffic — and every check is conserved:
/// elided ones are exactly the ones no longer performed.
#[test]
fn sim_elision_is_observation_free() {
    for d in all() {
        let (v_off, off) = sim(d.name, false);
        let (v_on, on) = sim(d.name, true);
        assert_eq!(v_on, v_off, "{} value", d.name);
        assert_eq!(
            without_checks(on.stats()),
            without_checks(off.stats()),
            "{} non-check runtime counters",
            d.name
        );
        assert_eq!(
            off.stats().checks_elided,
            0,
            "{} elides nothing when off",
            d.name
        );
        assert_eq!(
            on.stats().checks_performed + on.stats().checks_elided,
            off.stats().checks_performed,
            "{} check conservation",
            d.name
        );
        let (con, coff) = (on.cache().stats(), off.cache().stats());
        assert_eq!(
            (con.hits, con.misses),
            (coff.hits, coff.misses),
            "{} hit/miss",
            d.name
        );
        assert_eq!(
            (con.remote_reads, con.remote_writes),
            (coff.remote_reads, coff.remote_writes),
            "{} remote traffic",
            d.name
        );
        assert_eq!(
            (con.invalidations_sent, con.revalidations),
            (coff.invalidations_sent, coff.revalidations),
            "{} coherence traffic",
            d.name
        );
        assert_eq!(
            con.checks_performed + con.checks_elided,
            coff.checks_performed,
            "{} cache check conservation",
            d.name
        );
    }
}

/// Every optimizer-annotated benchmark really elides checks at runtime,
/// and the saved check cycles make the run no slower.
#[test]
fn annotated_benchmarks_elide_at_runtime() {
    let mut annotated = 0;
    for d in all() {
        let (_, on) = sim(d.name, true);
        if d.elided_sites.is_empty() {
            assert_eq!(
                on.stats().checks_elided,
                0,
                "{} has no annotated sites yet elided checks",
                d.name
            );
            continue;
        }
        annotated += 1;
        assert!(
            on.stats().checks_elided > 0,
            "{} is annotated ({} sites) but elided no checks",
            d.name,
            d.elided_sites.len()
        );
        let (_, off) = sim(d.name, false);
        assert!(
            on.stats().checks_performed < off.stats().checks_performed,
            "{} should perform fewer checks with elision on",
            d.name
        );
    }
    assert!(annotated >= 3, "only {annotated} benchmarks annotated");
}

/// Thread backend, elision on, every benchmark: lockstep execution
/// reconciles with the simulator — the elision fast path fires at the
/// same sites on both backends.
#[test]
fn exec_elision_reconciles_with_simulator() {
    for d in all() {
        let (sim_val, simctx) = sim(d.name, true);
        let name = d.name;
        let (exec_val, rep) = run_exec(ExecConfig::lockstep(PROCS).optimized(), move |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
        });
        assert_eq!(exec_val, sim_val, "{} value", d.name);
        assert_eq!(rep.stats, *simctx.stats(), "{} runtime counters", d.name);
        let sc = simctx.cache().stats();
        assert_eq!(
            (rep.cache.hits, rep.cache.misses),
            (sc.hits, sc.misses),
            "{} hit/miss",
            d.name
        );
        assert_eq!(
            (rep.cache.checks_performed, rep.cache.checks_elided),
            (sc.checks_performed, sc.checks_elided),
            "{} cache check counters",
            d.name
        );
    }
}

/// The elision fast path saves cycles: with the optimizer on, the
/// simulated makespan never increases, and strictly decreases for the
/// check-heaviest annotated kernels.
#[test]
fn elision_saves_cycles() {
    for name in ["TreeAdd", "MST", "EM3D"] {
        let (_, off) = olden_runtime::run(Config::olden(PROCS), |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).unwrap()
        });
        let (_, on) = olden_runtime::run(Config::olden(PROCS).optimized(), |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).unwrap()
        });
        assert!(
            on.makespan < off.makespan,
            "{name}: optimized makespan {} !< {}",
            on.makespan,
            off.makespan
        );
    }
}
