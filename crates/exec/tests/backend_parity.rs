//! Cross-validation of the thread backend against the simulator and the
//! serial references: the tentpole guarantee of olden-exec.
//!
//! Three layers of agreement, in increasing strictness:
//!
//! 1. **Values** — every benchmark, executed for real across ≥ 4 worker
//!    threads, computes the same checksum as its plain serial reference.
//! 2. **Counters** — in lockstep mode, the migration / steal / cache
//!    counters of the real execution equal the simulator's for the same
//!    program (each backend is the other's oracle).
//! 3. **Determinism** — two runs of the same seed are identical, values
//!    and counters both.

use olden_benchmarks::{all, generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig, Protocol};
use olden_runtime::{Config, OldenCtx};

const PROCS: usize = 8;

fn exec_lockstep(name: &'static str, procs: usize) -> (u64, olden_exec::ExecReport) {
    let (v, rep) = run_exec(ExecConfig::lockstep(procs), move |ctx| {
        generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
    });
    (v, rep)
}

/// Every benchmark's value on the thread backend equals its serial
/// reference — the structures really lived in per-worker heap sections,
/// every remote word really crossed a channel.
#[test]
fn all_benchmark_values_match_references_on_workers() {
    for d in all() {
        let expected = (d.reference)(SizeClass::Tiny);
        let (got, rep) = exec_lockstep(d.name, PROCS);
        assert_eq!(got, expected, "{} value on {PROCS} workers", d.name);
        assert!(rep.messages > 0, "{} exchanged no messages", d.name);
    }
}

/// Lockstep counter parity with the simulator, for every benchmark: the
/// same migrations, return migrations, futures, steals, touches, allocs,
/// and the same cache hit/miss/remote traffic and pages-cached totals.
#[test]
fn all_benchmark_counters_reconcile_with_simulator() {
    for d in all() {
        let mut sim = OldenCtx::new(Config::olden(PROCS));
        let sim_val = generic_run(d.name, &mut sim, SizeClass::Tiny).unwrap();
        let (exec_val, rep) = exec_lockstep(d.name, PROCS);
        assert_eq!(exec_val, sim_val, "{} value", d.name);
        assert_eq!(rep.stats, *sim.stats(), "{} runtime counters", d.name);
        let sc = sim.cache().stats();
        assert_eq!(
            (rep.cache.cacheable_reads, rep.cache.cacheable_writes),
            (sc.cacheable_reads, sc.cacheable_writes),
            "{} cacheable totals",
            d.name
        );
        assert_eq!(
            (rep.cache.remote_reads, rep.cache.remote_writes),
            (sc.remote_reads, sc.remote_writes),
            "{} remote traffic",
            d.name
        );
        assert_eq!(
            (rep.cache.hits, rep.cache.misses),
            (sc.hits, sc.misses),
            "{} hit/miss",
            d.name
        );
        assert_eq!(
            rep.pages_cached,
            sim.cache().pages_cached(),
            "{} pages cached",
            d.name
        );
    }
}

/// Full counter parity under every Appendix-A coherence scheme: global
/// knowledge's pushed invalidations (sent + spurious) and write-tracking
/// cycles, and the bilateral scheme's timestamp revalidations, all
/// reconcile with the simulator's — the coherence traffic really crossed
/// worker mailboxes and produced the exact same Table-3 numbers.
#[test]
fn every_scheme_reconciles_with_simulator() {
    for protocol in Protocol::ALL {
        for d in all() {
            let mut sim = OldenCtx::new(Config::olden(PROCS).with_protocol(protocol));
            let sim_val = generic_run(d.name, &mut sim, SizeClass::Tiny).unwrap();
            let (exec_val, rep) = run_exec(
                ExecConfig::lockstep(PROCS).with_protocol(protocol),
                move |ctx| generic_run(d.name, ctx, SizeClass::Tiny).expect("known benchmark"),
            );
            assert_eq!(exec_val, sim_val, "{} value under {protocol:?}", d.name);
            assert_eq!(
                rep.stats,
                *sim.stats(),
                "{} runtime counters under {protocol:?}",
                d.name
            );
            assert_eq!(
                rep.cache,
                *sim.cache().stats(),
                "{} cache counters under {protocol:?}",
                d.name
            );
        }
    }
}

/// Two same-seed runs are bit-identical: values, event counters, cache
/// counters, and even the message count.
#[test]
fn same_seed_runs_are_identical() {
    for name in ["TreeAdd", "EM3D", "Health"] {
        let (v1, r1) = exec_lockstep(name, PROCS);
        let (v2, r2) = exec_lockstep(name, PROCS);
        assert_eq!(v1, v2, "{name} value");
        assert_eq!(r1.stats, r2.stats, "{name} runtime counters");
        assert_eq!(r1.cache, r2.cache, "{name} cache counters");
        assert_eq!(r1.messages, r2.messages, "{name} message count");
    }
}

/// Parallel mode — future bodies on their own OS threads — still computes
/// reference values, and the data-dependent migration/steal counters
/// still match the simulator.
#[test]
fn parallel_mode_values_and_deterministic_counters() {
    for name in ["TreeAdd", "Power", "EM3D", "Health"] {
        let d = olden_benchmarks::by_name(name).unwrap();
        let expected = (d.reference)(SizeClass::Tiny);
        let mut sim = OldenCtx::new(Config::olden(4));
        generic_run(name, &mut sim, SizeClass::Tiny).unwrap();
        let (got, rep) = run_exec(ExecConfig::parallel(4), move |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
        });
        assert_eq!(got, expected, "{name} value in parallel mode");
        assert_eq!(
            rep.stats.migrations,
            sim.stats().migrations,
            "{name} migrations are data-dependent, not schedule-dependent"
        );
        assert_eq!(rep.stats.steals, sim.stats().steals, "{name} steals");
        assert_eq!(rep.stats.futures, sim.stats().futures, "{name} futures");
    }
}
