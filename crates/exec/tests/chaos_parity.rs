//! The chaos suite: every benchmark, under a sweep of seeded fault
//! schedules, must be *indistinguishable at the observation layer* from
//! the fault-free run — the tentpole guarantee of olden-chaos.
//!
//! For each benchmark, 100 seeds of [`FaultPlan::from_seed`] (drop,
//! duplicate, and reorder rates each derived from the seed) are run in
//! lockstep mode and held to:
//!
//! - **Values** byte-equal to the fault-free simulator's (which equals
//!   the serial reference, by `backend_parity`).
//! - **Event counters** — migrations, steals, touches, cache hits and
//!   misses, pages cached, even the serviced-message count — byte-equal
//!   to the fault-free simulator and the fault-free execution. Retries
//!   and suppressed duplicates must be *invisible* here.
//! - **Conservation** — `sends = deliveries + drops`, every drop paid
//!   for by a retry, every delivery serviced exactly once or suppressed
//!   as a duplicate, and every drop present in the fault log. (The first
//!   three equations are also self-checked inside `try_run_exec` on
//!   every successful run.)
//!
//! The sweep must also actually exercise the machinery: across each
//! benchmark's 100 seeds the schedules are required to have injected
//! drops, back-to-back duplicates, and delayed duplicates.

use olden_benchmarks::{generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig, ExecReport, Protocol};
use olden_runtime::{CacheStats, Config, FaultTag, OldenCtx, RunStats, TransportStats};

const PROCS: usize = 4;
const SEEDS: u64 = 100;

fn exec_with(name: &'static str, cfg: ExecConfig) -> (u64, ExecReport) {
    run_exec(cfg, move |ctx| {
        generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
    })
}

/// The observable fingerprint of a run: everything that must be
/// invariant under fault injection.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    value: u64,
    stats: RunStats,
    cache: CacheStats,
    pages_cached: u64,
    messages: u64,
}

impl Fingerprint {
    fn of(value: u64, rep: &ExecReport) -> Fingerprint {
        Fingerprint {
            value,
            stats: rep.stats,
            cache: rep.cache,
            pages_cached: rep.pages_cached,
            messages: rep.messages,
        }
    }
}

fn chaos_sweep(name: &'static str) {
    // Fault-free baselines: the simulator and the quiet execution agree
    // (backend_parity pins this too; restated here so a divergence
    // reports locally).
    let mut sim = OldenCtx::new(Config::olden(PROCS));
    let sim_val = generic_run(name, &mut sim, SizeClass::Tiny).expect("known benchmark");
    let (base_val, base_rep) = exec_with(name, ExecConfig::lockstep(PROCS));
    let base = Fingerprint::of(base_val, &base_rep);
    assert_eq!(base_val, sim_val, "{name}: fault-free exec vs simulator");
    assert_eq!(base.stats, *sim.stats(), "{name}: fault-free counters");
    assert_eq!(
        base_rep.transport,
        TransportStats {
            sends: base_rep.messages,
            deliveries: base_rep.messages,
            ..TransportStats::default()
        },
        "{name}: a quiet transport is perfect"
    );

    let mut injected = [0u64; 3]; // drops, dupes, delayed dupes over the sweep
    for seed in 0..SEEDS {
        let (val, rep) = exec_with(name, ExecConfig::lockstep(PROCS).chaotic(seed));
        assert_eq!(
            Fingerprint::of(val, &rep),
            base,
            "{name} seed {seed}: a faulty transport must be invisible above the transport layer"
        );
        // Conservation, including the log: every drop the counters saw
        // is in the fault log and vice versa. (FaultLog caps its event
        // *list*, never its counts.)
        assert_eq!(
            rep.faults.count(FaultTag::Dropped),
            rep.transport.drops,
            "{name} seed {seed}: drop accounting"
        );
        assert_eq!(
            rep.transport.retries, rep.transport.drops,
            "{name} seed {seed}: every drop was retried"
        );
        assert_eq!(
            rep.transport.sends,
            rep.transport.deliveries + rep.transport.drops,
            "{name} seed {seed}: sends conserved"
        );
        injected[0] += rep.faults.count(FaultTag::Dropped);
        injected[1] += rep.faults.count(FaultTag::Duplicated);
        injected[2] += rep.faults.count(FaultTag::DelayedDuplicate);
    }
    assert!(
        injected.iter().all(|&n| n > 0),
        "{name}: the sweep must inject every fault kind, got {injected:?} \
         (drops / duplicates / delayed duplicates)"
    );
}

/// The coherence schemes' extra traffic — sharer queries, pushed
/// invalidations, timestamp bumps, revalidation round trips — is itself
/// chaos-proof: under global knowledge and the bilateral scheme every
/// chaotic run's fingerprint (including the scheme-specific Table-3
/// counters, via the full [`CacheStats`]) equals the quiet run's.
#[test]
fn coherence_schemes_survive_chaos() {
    for protocol in [Protocol::GlobalKnowledge, Protocol::Bilateral] {
        for name in ["TreeAdd", "EM3D", "Health"] {
            let cfg = ExecConfig::lockstep(PROCS).with_protocol(protocol);
            let (base_val, base_rep) = exec_with(name, cfg);
            let base = Fingerprint::of(base_val, &base_rep);
            let mut injected = 0;
            for seed in 0..25 {
                let (val, rep) = exec_with(name, cfg.chaotic(seed));
                assert_eq!(
                    Fingerprint::of(val, &rep),
                    base,
                    "{name} under {protocol:?} seed {seed}: faults must stay \
                     invisible to the coherence traffic"
                );
                injected += rep.faults.total();
            }
            assert!(injected > 0, "{name} under {protocol:?}: nothing injected");
        }
    }
}

#[test]
fn treeadd_survives_chaos() {
    chaos_sweep("TreeAdd");
}

#[test]
fn power_survives_chaos() {
    chaos_sweep("Power");
}

#[test]
fn tsp_survives_chaos() {
    chaos_sweep("TSP");
}

#[test]
fn mst_survives_chaos() {
    chaos_sweep("MST");
}

#[test]
fn bisort_survives_chaos() {
    chaos_sweep("Bisort");
}

#[test]
fn voronoi_survives_chaos() {
    chaos_sweep("Voronoi");
}

#[test]
fn em3d_survives_chaos() {
    chaos_sweep("EM3D");
}

#[test]
fn barneshut_survives_chaos() {
    chaos_sweep("Barnes-Hut");
}

#[test]
fn perimeter_survives_chaos() {
    chaos_sweep("Perimeter");
}

#[test]
fn health_survives_chaos() {
    chaos_sweep("Health");
}
