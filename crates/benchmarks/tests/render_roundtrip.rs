//! Round-trip property tests for the canonical renderer, over every
//! hand-written DSL in the repo: the ten Table-1 benchmark renditions,
//! the racy corpus, and the saved fuzz/difftest reproducers under
//! `tests/corpus/`. `olden-verify` already holds this property on
//! *generated* programs; these tests hold it on the human-written
//! surface, where span drift and precedence bugs actually hide: parse →
//! render → reparse must reproduce the same AST (spans erased), and a
//! second render must be byte-identical (render∘parse idempotence).

use olden_analysis::{parse, render, strip_spans};

fn roundtrip(name: &str, src: &str) {
    let ast = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let printed = render(&ast);
    let reparsed = parse(&printed)
        .unwrap_or_else(|e| panic!("{name}: canonical rendering broke the parser: {e}\n{printed}"));
    assert_eq!(
        strip_spans(&ast),
        strip_spans(&reparsed),
        "{name}: AST drifted through render→parse"
    );
    assert_eq!(
        printed,
        render(&reparsed),
        "{name}: render is not idempotent"
    );
}

#[test]
fn benchmark_dsls_round_trip_through_render() {
    for d in olden_benchmarks::all() {
        roundtrip(d.name, d.dsl);
    }
}

#[test]
fn racy_corpus_round_trips_through_render() {
    for s in olden_benchmarks::racy::seeds() {
        roundtrip(&format!("racy/{}", s.name), s.dsl);
    }
}

/// The saved reproducers round-trip too — except the ones the shrinker
/// deliberately minimized down to parse errors, which must keep failing
/// to parse (that *is* their regression surface).
#[test]
fn saved_corpus_round_trips_through_render() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dsl"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "tests/corpus must hold the seed repros");
    let mut round_tripped = 0usize;
    for path in paths {
        let name = path.display().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        if parse(&src).is_ok() {
            roundtrip(&name, &src);
            round_tripped += 1;
        }
    }
    assert!(
        round_tripped >= 4,
        "corpus repros round-trip: {round_tripped}"
    );
}
