//! **Barnes-Hut** — hierarchical N-body simulation (Table 1: 8 K bodies).
//!
//! Each time step (1) builds an octree over the bodies — sequential, as
//! in the paper, where tree building "starts to represent a substantial
//! fraction of the computation as the number of processors increases";
//! (2) computes cell centers of mass bottom-up; (3) computes every body's
//! acceleration by walking the tree with the opening criterion
//! `size/dist < θ`; (4) advances positions with leapfrog.
//!
//! The heuristic picks **migration for the particles** (high locality:
//! bodies are blocked across processors on per-processor lists) and
//! **software caching for the tree** — even though the tree has high
//! locality, migrating on it would serialize every thread at the root,
//! which is precisely the Figure-5 bottleneck pass 2 exists to avoid
//! (§5). Table 3 shows the result: 55.6 % of Barnes-Hut's cacheable reads
//! are remote, by far the highest in the suite. The paper reports
//! whole-program times.

use crate::rng::{mix2, SplitMix64};
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

const MI: Mechanism = Mechanism::Migrate;
const CA: Mechanism = Mechanism::Cache;

/// Body layout.
const B_NEXT: usize = 0;
const B_X: usize = 1; // .. B_Z = 3
const B_VX: usize = 4; // .. B_VZ = 6
const B_MASS: usize = 7;
const BODY_WORDS: usize = 8;

/// Cell layout: 8 children, then mass and center of mass, then a type
/// tag (0 = internal cell, 1 = body leaf) and, for leaves, the body ptr.
const C_CHILD0: usize = 0; // ..7
const C_MASS: usize = 8;
const C_CX: usize = 9; // .. C_CZ = 11
const C_KIND: usize = 12;
const C_BODY: usize = 13;
const CELL_WORDS: usize = 14;

const KIND_CELL: i64 = 0;
const KIND_LEAF: i64 = 1;

/// Opening criterion.
const THETA: f64 = 0.5;
/// Leapfrog step.
const DT: f64 = 0.025;
/// Softening length (avoids singular close encounters).
const EPS2: f64 = 1e-4;
/// Time steps.
const STEPS: usize = 2;

/// Cycles per body–cell interaction and per tree-insert step.
const W_INTERACT: u64 = 60;
const W_INSERT: u64 = 40;

/// The force walk in the DSL: the cell pointer descends a different
/// child per iteration (a tree search → cached), and the outer parallel
/// loop over bodies passes the *same* tree root to every future —
/// Figure 5's bottleneck shape, so pass 2 demotes the walk to caching
/// even with high-affinity annotations.
pub const DSL: &str = r#"
    struct cell { cell *c0 @ 95; cell *c1 @ 95; int mass; };
    struct body { body *next @ 95; int x; };
    void Gravity(body *b, cell *root) {
        while (b != null) {
            futurecall Walk(root);
            b = b->next;
        }
    }
    void Walk(cell *t) {
        if (t == null) { return; }
        Walk(t->c0);
        Walk(t->c1);
    }
"#;

/// Body count per size class.
pub fn bodies(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 32,
        SizeClass::Default => 1024,
        SizeClass::Paper => 8192, // Table 1: 8K bodies
    }
}

/// Deterministic initial conditions: a centrally condensed cluster in the
/// unit cube with small random velocities.
pub fn initial(n: usize) -> Vec<([f64; 3], [f64; 3], f64)> {
    let mut rng = SplitMix64::new(0xBA12E5);
    (0..n)
        .map(|_| {
            // Bias positions toward the center (Plummer-flavoured).
            let u = rng.unit_f64();
            let r = 0.5 * u * u;
            let mut pos = [0.0; 3];
            let mut norm = 0.0;
            let dir: Vec<f64> = (0..3).map(|_| rng.unit_f64() - 0.5).collect();
            for d in &dir {
                norm += d * d;
            }
            let norm = norm.sqrt().max(1e-9);
            for (k, p) in pos.iter_mut().enumerate() {
                *p = 0.5 + r * dir[k] / norm;
            }
            let vel = [
                (rng.unit_f64() - 0.5) * 0.1,
                (rng.unit_f64() - 0.5) * 0.1,
                (rng.unit_f64() - 0.5) * 0.1,
            ];
            let mass = 1.0 / n as f64;
            (pos, vel, mass)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Distributed version.
// ---------------------------------------------------------------------

/// Which octant of the cell centered at `c` with half-size `h` holds `p`?
fn octant(cx: f64, cy: f64, cz: f64, p: [f64; 3]) -> usize {
    (usize::from(p[0] >= cx)) | (usize::from(p[1] >= cy) << 1) | (usize::from(p[2] >= cz) << 2)
}

fn child_center(cx: f64, cy: f64, cz: f64, h: f64, o: usize) -> (f64, f64, f64) {
    (
        cx + if o & 1 != 0 { h / 2.0 } else { -h / 2.0 },
        cy + if o & 2 != 0 { h / 2.0 } else { -h / 2.0 },
        cz + if o & 4 != 0 { h / 2.0 } else { -h / 2.0 },
    )
}

struct TreeBuilder<'a, B: Backend> {
    ctx: &'a mut B,
}

/// The build phase runs sequentially on processor 0 (as in the paper) and
/// accesses everything through the cache: migrating on each insert would
/// bounce the builder between the cells' processors. Cells are allocated
/// on the processor of the body that creates them, so each body's force
/// walk later finds its own region of the tree *local* and only the
/// shared upper cells remote — those are exactly the "distant tree nodes"
/// the heuristic caches (§5).
impl<B: Backend> TreeBuilder<'_, B> {
    fn new_cell(&mut self, near: GPtr) -> GPtr {
        let c = self.ctx.alloc(near.proc(), CELL_WORDS);
        self.ctx.write(c, C_KIND, KIND_CELL, CA);
        c
    }

    fn new_leaf(&mut self, body: GPtr, pos: [f64; 3], mass: f64) -> GPtr {
        let c = self.ctx.alloc(body.proc(), CELL_WORDS);
        self.ctx.write(c, C_KIND, KIND_LEAF, CA);
        self.ctx.write(c, C_BODY, body, CA);
        self.ctx.write(c, C_MASS, mass, CA);
        self.ctx.write(c, C_CX, pos[0], CA);
        self.ctx.write(c, C_CX + 1, pos[1], CA);
        self.ctx.write(c, C_CX + 2, pos[2], CA);
        c
    }

    /// Insert a body into the subtree rooted at `cell` (centered `c`,
    /// half-size `h`).
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        cell: GPtr,
        cx: f64,
        cy: f64,
        cz: f64,
        h: f64,
        body: GPtr,
        pos: [f64; 3],
        mass: f64,
    ) {
        self.ctx.work(W_INSERT);
        let o = octant(cx, cy, cz, pos);
        let child = self.ctx.read_ptr(cell, C_CHILD0 + o, CA);
        if child.is_null() {
            let leaf = self.new_leaf(body, pos, mass);
            self.ctx.write(cell, C_CHILD0 + o, leaf, CA);
            return;
        }
        let kind = self.ctx.read_i64(child, C_KIND, CA);
        let (ncx, ncy, ncz) = child_center(cx, cy, cz, h, o);
        if kind == KIND_CELL {
            self.insert(child, ncx, ncy, ncz, h / 2.0, body, pos, mass);
        } else {
            // Split the leaf: push the resident body down, then retry.
            let other_body = self.ctx.read_ptr(child, C_BODY, CA);
            let opos = [
                self.ctx.read_f64(child, C_CX, CA),
                self.ctx.read_f64(child, C_CX + 1, CA),
                self.ctx.read_f64(child, C_CX + 2, CA),
            ];
            let omass = self.ctx.read_f64(child, C_MASS, CA);
            let fresh = self.new_cell(other_body);
            self.ctx.write(cell, C_CHILD0 + o, fresh, CA);
            self.insert(fresh, ncx, ncy, ncz, h / 2.0, other_body, opos, omass);
            self.insert(fresh, ncx, ncy, ncz, h / 2.0, body, pos, mass);
        }
    }

    /// Bottom-up mass and center-of-mass computation. Returns (mass,
    /// weighted position).
    fn summarize(&mut self, cell: GPtr) -> (f64, [f64; 3]) {
        let kind = self.ctx.read_i64(cell, C_KIND, CA);
        if kind == KIND_LEAF {
            let m = self.ctx.read_f64(cell, C_MASS, CA);
            let p = [
                self.ctx.read_f64(cell, C_CX, CA),
                self.ctx.read_f64(cell, C_CX + 1, CA),
                self.ctx.read_f64(cell, C_CX + 2, CA),
            ];
            return (m, p);
        }
        let mut mass = 0.0;
        let mut wp = [0.0; 3];
        for o in 0..8 {
            let child = self.ctx.read_ptr(cell, C_CHILD0 + o, CA);
            if child.is_null() {
                continue;
            }
            let (m, p) = self.summarize(child);
            mass += m;
            for k in 0..3 {
                wp[k] += m * p[k];
            }
        }
        let com = [wp[0] / mass, wp[1] / mass, wp[2] / mass];
        self.ctx.write(cell, C_MASS, mass, CA);
        self.ctx.write(cell, C_CX, com[0], CA);
        self.ctx.write(cell, C_CX + 1, com[1], CA);
        self.ctx.write(cell, C_CX + 2, com[2], CA);
        (mass, com)
    }
}

/// Force walk for one body: cached tree reads (§5).
fn accel_on<B: Backend>(ctx: &mut B, cell: GPtr, h: f64, pos: [f64; 3], body: GPtr) -> [f64; 3] {
    if cell.is_null() {
        return [0.0; 3];
    }
    ctx.work(W_INTERACT);
    let kind = ctx.read_i64(cell, C_KIND, CA);
    // The kind read above performed the check and fetched the line; the
    // mass/center/body reads of the same cell are proven redundant
    // (`ELIDED_SITES`). When a field happens to land on an uncached line
    // the elision hint falls back to the full counted lookup.
    let m = ctx.read_f64_checked(cell, C_MASS, CA, Check::Elide);
    let cpos = [
        ctx.read_f64_checked(cell, C_CX, CA, Check::Elide),
        ctx.read_f64_checked(cell, C_CX + 1, CA, Check::Elide),
        ctx.read_f64_checked(cell, C_CX + 2, CA, Check::Elide),
    ];
    let dx = cpos[0] - pos[0];
    let dy = cpos[1] - pos[1];
    let dz = cpos[2] - pos[2];
    let d2 = dx * dx + dy * dy + dz * dz + EPS2;
    let d = d2.sqrt();
    if kind == KIND_LEAF {
        let self_cell = ctx.read_ptr_checked(cell, C_BODY, CA, Check::Elide) == body;
        if self_cell {
            return [0.0; 3];
        }
        let f = m / (d2 * d);
        return [f * dx, f * dy, f * dz];
    }
    if (2.0 * h) / d < THETA {
        // Far enough: interact with the cell's center of mass.
        let f = m / (d2 * d);
        return [f * dx, f * dy, f * dz];
    }
    let mut acc = [0.0; 3];
    for o in 0..8 {
        let child = ctx.read_ptr_checked(cell, C_CHILD0 + o, CA, Check::Elide);
        if !child.is_null() {
            let a = accel_on(ctx, child, h / 2.0, pos, body);
            for k in 0..3 {
                acc[k] += a[k];
            }
        }
    }
    acc
}

/// Advance one per-processor body sublist: migrate to the bodies, cache
/// the tree.
fn advance_sublist<B: Backend>(ctx: &mut B, head: GPtr, root: GPtr) {
    let mut b = head;
    while !b.is_null() {
        let pos = [
            ctx.read_f64(b, B_X, MI),
            ctx.read_f64(b, B_X + 1, MI),
            ctx.read_f64(b, B_X + 2, MI),
        ];
        let acc = accel_on(ctx, root, 0.5, pos, b);
        for k in 0..3 {
            let v = ctx.read_f64(b, B_VX + k, MI) + DT * acc[k];
            ctx.write(b, B_VX + k, v, MI);
            ctx.write(b, B_X + k, pos[k] + DT * v, MI);
        }
        b = ctx.read_ptr(b, B_NEXT, MI);
    }
}

/// Whole-program run.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = bodies(size);
    let procs = ctx.nprocs();
    let init = initial(n);
    // Bodies blocked across processors on per-processor lists. The
    // initializing thread stays pinned on processor 0 and streams the
    // initial conditions out through the write-through cache; migrating
    // per body would drag the whole-program prologue (and with it the
    // sequential build phase) to an arbitrary processor.
    let mut body_ptrs = Vec::with_capacity(n);
    for (i, (pos, vel, mass)) in init.iter().enumerate() {
        let p = (i * procs / n) as ProcId;
        let b = ctx.alloc(p, BODY_WORDS);
        for k in 0..3 {
            ctx.write(b, B_X + k, pos[k], CA);
            ctx.write(b, B_VX + k, vel[k], CA);
        }
        ctx.write(b, B_MASS, *mass, CA);
        body_ptrs.push(b);
    }
    let mut heads = Vec::new();
    for i in 0..n {
        let next = if i + 1 < n && body_ptrs[i + 1].proc() == body_ptrs[i].proc() {
            body_ptrs[i + 1]
        } else {
            GPtr::NULL
        };
        ctx.write(body_ptrs[i], B_NEXT, next, CA);
        if i == 0 || body_ptrs[i].proc() != body_ptrs[i - 1].proc() {
            heads.push(body_ptrs[i]);
        }
    }

    for _ in 0..STEPS {
        // (1) sequential tree build on processor 0 (as in the paper).
        // Remote bodies are *cached* into the builder — migrating per
        // body would bounce the build thread between every body's
        // processor and processor 0 on each insert.
        let root = {
            let mut tb = TreeBuilder { ctx };
            let root = tb.new_cell(GPtr::new(0, 8));
            for &b in &body_ptrs {
                let pos = [
                    tb.ctx.read_f64(b, B_X, CA),
                    tb.ctx.read_f64(b, B_X + 1, CA),
                    tb.ctx.read_f64(b, B_X + 2, CA),
                ];
                let mass = tb.ctx.read_f64(b, B_MASS, CA);
                tb.insert(root, 0.5, 0.5, 0.5, 0.5, b, pos, mass);
            }
            // (2) centers of mass.
            tb.summarize(root);
            root
        };
        // (3)+(4) parallel force + advance, a future per body sublist.
        // Remote sublists are spawned first: processor 0's own sublist
        // runs inline and would otherwise delay every other fork.
        let handles: Vec<_> = heads
            .iter()
            .rev()
            .map(|&h| {
                ctx.future_call(move |ctx| ctx.call(move |ctx| advance_sublist(ctx, h, root)))
            })
            .collect();
        for h in handles {
            ctx.touch(h);
        }
    }

    // Checksum over final positions.
    let mut acc = 0u64;
    ctx.uncharged(|ctx| {
        for &b in &body_ptrs {
            for k in 0..3 {
                acc = mix2(acc, ctx.read(b, B_X + k, MI).as_u64());
            }
        }
    });
    acc
}

// ---------------------------------------------------------------------
// Serial reference (same algorithm on native structures).
// ---------------------------------------------------------------------

enum RCell {
    Leaf {
        idx: usize,
        pos: [f64; 3],
        mass: f64,
    },
    Cell {
        children: [Option<Box<RCell>>; 8],
        mass: f64,
        com: [f64; 3],
    },
}

#[allow(clippy::too_many_arguments)]
fn rinsert(
    cell: &mut RCell,
    cx: f64,
    cy: f64,
    cz: f64,
    h: f64,
    idx: usize,
    pos: [f64; 3],
    mass: f64,
) {
    let RCell::Cell { children, .. } = cell else {
        unreachable!("insert into leaf");
    };
    let o = octant(cx, cy, cz, pos);
    let (ncx, ncy, ncz) = child_center(cx, cy, cz, h, o);
    match &mut children[o] {
        slot @ None => {
            *slot = Some(Box::new(RCell::Leaf { idx, pos, mass }));
        }
        Some(child) => match child.as_mut() {
            RCell::Cell { .. } => {
                rinsert(child, ncx, ncy, ncz, h / 2.0, idx, pos, mass);
            }
            RCell::Leaf {
                idx: oidx,
                pos: opos,
                mass: omass,
            } => {
                let (oidx, opos, omass) = (*oidx, *opos, *omass);
                let mut fresh = RCell::Cell {
                    children: Default::default(),
                    mass: 0.0,
                    com: [0.0; 3],
                };
                rinsert(&mut fresh, ncx, ncy, ncz, h / 2.0, oidx, opos, omass);
                rinsert(&mut fresh, ncx, ncy, ncz, h / 2.0, idx, pos, mass);
                children[o] = Some(Box::new(fresh));
            }
        },
    }
}

fn rsummarize(cell: &mut RCell) -> (f64, [f64; 3]) {
    match cell {
        RCell::Leaf { pos, mass, .. } => (*mass, *pos),
        RCell::Cell {
            children,
            mass,
            com,
        } => {
            let mut m = 0.0;
            let mut wp = [0.0; 3];
            for c in children.iter_mut().flatten() {
                let (cm, cp) = rsummarize(c);
                m += cm;
                for k in 0..3 {
                    wp[k] += cm * cp[k];
                }
            }
            *mass = m;
            *com = [wp[0] / m, wp[1] / m, wp[2] / m];
            (m, *com)
        }
    }
}

fn raccel(cell: &RCell, h: f64, pos: [f64; 3], idx: usize) -> [f64; 3] {
    let (m, cpos, kind_leaf) = match cell {
        RCell::Leaf {
            idx: i,
            pos: p,
            mass,
        } => {
            if *i == idx {
                return [0.0; 3];
            }
            (*mass, *p, true)
        }
        RCell::Cell { mass, com, .. } => (*mass, *com, false),
    };
    let dx = cpos[0] - pos[0];
    let dy = cpos[1] - pos[1];
    let dz = cpos[2] - pos[2];
    let d2 = dx * dx + dy * dy + dz * dz + EPS2;
    let d = d2.sqrt();
    if kind_leaf || (2.0 * h) / d < THETA {
        let f = m / (d2 * d);
        return [f * dx, f * dy, f * dz];
    }
    let RCell::Cell { children, .. } = cell else {
        unreachable!()
    };
    let mut acc = [0.0; 3];
    for c in children.iter().flatten() {
        let a = raccel(c, h / 2.0, pos, idx);
        for k in 0..3 {
            acc[k] += a[k];
        }
    }
    acc
}

pub fn reference(size: SizeClass) -> u64 {
    let n = bodies(size);
    let init = initial(n);
    let mut pos: Vec<[f64; 3]> = init.iter().map(|b| b.0).collect();
    let mut vel: Vec<[f64; 3]> = init.iter().map(|b| b.1).collect();
    let mass: Vec<f64> = init.iter().map(|b| b.2).collect();
    for _ in 0..STEPS {
        let mut root = RCell::Cell {
            children: Default::default(),
            mass: 0.0,
            com: [0.0; 3],
        };
        for i in 0..n {
            rinsert(&mut root, 0.5, 0.5, 0.5, 0.5, i, pos[i], mass[i]);
        }
        rsummarize(&mut root);
        for i in 0..n {
            let acc = raccel(&root, 0.5, pos[i], i);
            for k in 0..3 {
                vel[i][k] += DT * acc[k];
                pos[i][k] += DT * vel[i][k];
            }
        }
    }
    let mut acc = 0u64;
    for p in &pos {
        for v in p {
            acc = mix2(acc, v.to_bits());
        }
    }
    acc
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &["Walk 13:14 t->c1"];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "Gravity 7:17 b->next -> migrate",
    "Walk 12:14 t->c0 -> cache",
    "Walk 13:14 t->c1 -> cache",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[
    ("Gravity", "b", Mechanism::Migrate),
    ("Walk", "t", Mechanism::Cache),
];

/// Static trip counts for the cost model: per step, the gravity pass
/// walks the body list once and each body's force walk visits O(n) tree
/// cells in the worst case.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    let n = bodies(size) as u64;
    let s = STEPS as u64;
    vec![("Gravity#0", s * n), ("Walk#0", s * n * n)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "Barnes-Hut",
    description: "Solves the N-body problem using hierarchical methods",
    problem_size: "8K bodies",
    choice: "M+C",
    whole_program: true,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.1, 1.5), (0.5, 2.0), (0.08, 1.0), (0.02, 1.5)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn positions_match_reference_bitwise() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn heuristic_demotes_tree_walk_to_caching() {
        // The tree has high locality (95 % hints) but every parallel body
        // passes the same root: the bottleneck pass must force caching.
        let sel = select(&parse(DSL).unwrap());
        let walk = sel.recursion_of("Walk").unwrap();
        assert!(walk.bottleneck, "pass 2 flags the shared root");
        assert_eq!(walk.mech("t"), Mech::Cache);
        // The body list itself migrates (parallelizable loop).
        let grav = &sel.for_func("Gravity")[0];
        assert_eq!(grav.mech("b"), Mech::Migrate);
    }

    #[test]
    fn tree_reads_are_heavily_remote() {
        let (_, rep) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Default));
        let pct = rep.cache.read_remote_pct();
        // Table 3: 55.6 % of cacheable reads are remote — the tree lives
        // on processor 0 while the walkers are everywhere. Expect a
        // clearly-majority remote share.
        assert!(pct > 40.0, "remote read share {pct}%");
    }

    #[test]
    fn energy_like_sanity() {
        // Bodies should not fly apart in two steps: positions remain
        // within a loose bounding box.
        let n = bodies(SizeClass::Tiny);
        let init = initial(n);
        let mut pos: Vec<[f64; 3]> = init.iter().map(|b| b.0).collect();
        let vel: Vec<[f64; 3]> = init.iter().map(|b| b.1).collect();
        let _ = (&mut pos, vel);
        for p in &pos {
            for v in p {
                assert!((0.0..=1.0).contains(v), "initial positions in cube");
            }
        }
    }
}
