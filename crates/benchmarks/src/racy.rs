//! The race-seed corpus: miniature programs, racy and clean, each in two
//! renditions that must tell the same story.
//!
//! Every [`Seed`] pairs a DSL source (input to the static
//! `olden_analysis::racecheck` pass) with a [`Backend`]-generic kernel
//! ([`run_seed`]) exercising the same access pattern dynamically under
//! the happens-before sanitizer. The cross-validation suite
//! (`crates/exec/tests/racecheck_xval.rs`) holds the two sides to the
//! soundness contract:
//!
//! * **superset** — any seed the dynamic oracle flags must carry at
//!   least one static warning (the static pass over-approximates, never
//!   under-reports on this corpus);
//! * **clean means clean** — seeds with `racy: false` are silent under
//!   both the static pass and the sanitizer on every backend.
//!
//! The kernels force the conflicting accesses onto distinct processors
//! (a `Mechanism::Migrate` dereference moves the body away before it
//! touches the shared cell) because the sanitizer's per-processor tick
//! counters deliberately alias same-processor segments toward
//! happens-before; see `olden_runtime::sanitize`.

use olden_gptr::GPtr;
use olden_runtime::{Backend, Mechanism};

/// One corpus entry.
#[derive(Clone, Copy)]
pub struct Seed {
    /// Corpus name (also the [`run_seed`] dispatch key).
    pub name: &'static str,
    /// DSL rendition for the static race pass.
    pub dsl: &'static str,
    /// True when the kernel really races: the sanitizer must flag it on
    /// every backend, and the static pass must warn on the DSL.
    pub racy: bool,
}

/// The whole corpus.
pub fn seeds() -> Vec<Seed> {
    vec![
        Seed {
            name: "ww-future-vs-continuation",
            dsl: r#"
                struct cell { cell *next; int val; };
                int Work(cell *c) { c->val = 1; return 0; }
                int Main(cell *c) {
                    int h = futurecall Work(c);
                    c->val = 2;
                    touch h;
                    return c->val;
                }
            "#,
            racy: true,
        },
        Seed {
            name: "rw-future-vs-continuation",
            dsl: r#"
                struct cell { cell *next; int val; };
                int Bump(cell *c) { c->val = c->val + 1; return 0; }
                int Main(cell *c) {
                    int h = futurecall Bump(c);
                    int x = c->val;
                    touch h;
                    return x;
                }
            "#,
            racy: true,
        },
        Seed {
            name: "ww-sibling-futures",
            dsl: r#"
                struct tree { tree *left; tree *right; int val; };
                int Mark(tree *t) { t->val = 1; return 0; }
                int Main(tree *t) {
                    int a = futurecall Mark(t->left);
                    int b = futurecall Mark(t->left);
                    touch a;
                    touch b;
                    return 0;
                }
            "#,
            racy: true,
        },
        Seed {
            name: "loop-carried-future",
            dsl: r#"
                struct list { list *next; };
                struct tree { tree *left; int val; };
                int Mark(tree *t) { t->val = 1; return 0; }
                void Walk(list *l, tree *t) {
                    while (l != null) {
                        futurecall Mark(t);
                        l = l->next;
                    }
                }
            "#,
            racy: true,
        },
        Seed {
            name: "clean-touch-ordered",
            dsl: r#"
                struct tree { tree *left; tree *right; int val; };
                int Work(tree *t) { t->val = 1; return 0; }
                int Main(tree *t) {
                    int h = futurecall Work(t);
                    touch h;
                    t->val = 2;
                    return t->val;
                }
            "#,
            racy: false,
        },
        Seed {
            name: "clean-read-only-siblings",
            dsl: r#"
                struct tree { tree *left @ 90; tree *right @ 70; int val; };
                int TreeAdd(tree *t) {
                    if (t == null) { return 0; }
                    int l = futurecall TreeAdd(t->left);
                    int r = TreeAdd(t->right);
                    touch l;
                    return l + r + t->val;
                }
            "#,
            racy: false,
        },
    ]
}

/// A future body that migrates to `probe`'s processor (vacating the
/// spawner, making the continuation stealable) and then acts on the
/// shared cell through its cache — the canonical way the corpus puts the
/// conflicting endpoints on different processors.
fn migrate_then<B: Backend, R: Send + 'static>(
    ctx: &mut B,
    probe: GPtr,
    act: impl FnOnce(&mut B) -> R + Send + 'static,
) -> B::Handle<R> {
    ctx.future_call(move |c| {
        c.call(move |c| {
            c.read(probe, 0, Mechanism::Migrate);
            act(c)
        })
    })
}

/// The continuation writes the cell while the body's write is in flight.
fn ww_future_vs_continuation<B: Backend>(ctx: &mut B) {
    let cell = ctx.alloc(1, 1);
    let probe = ctx.alloc(2, 1);
    let h = migrate_then(ctx, probe, move |c| {
        c.write(cell, 0, 1i64, Mechanism::Cache)
    });
    ctx.write(cell, 0, 2i64, Mechanism::Cache);
    ctx.touch(h);
}

/// The continuation reads the cell while the body's write is in flight.
fn rw_future_vs_continuation<B: Backend>(ctx: &mut B) {
    let cell = ctx.alloc(1, 1);
    let probe = ctx.alloc(2, 1);
    let h = migrate_then(ctx, probe, move |c| {
        c.write(cell, 0, 1i64, Mechanism::Cache)
    });
    ctx.read(cell, 0, Mechanism::Cache);
    ctx.touch(h);
}

/// Two sibling futures write one cell; neither is ordered before the
/// other, whatever order they are touched in.
fn ww_sibling_futures<B: Backend>(ctx: &mut B) {
    let cell = ctx.alloc(1, 1);
    let p1 = ctx.alloc(2, 1);
    let p2 = ctx.alloc(3, 1);
    let h1 = migrate_then(ctx, p1, move |c| c.write(cell, 0, 1i64, Mechanism::Cache));
    let h2 = migrate_then(ctx, p2, move |c| c.write(cell, 0, 2i64, Mechanism::Cache));
    ctx.touch(h1);
    ctx.touch(h2);
}

/// The loop-carried shape: futures spawned across iterations all write
/// the same cell. (The DSL leaves them untouched — RC003 — while the
/// kernel joins them after the loop so every backend terminates cleanly;
/// the iteration-vs-iteration conflict is the same.)
fn loop_carried_future<B: Backend>(ctx: &mut B) {
    let cell = ctx.alloc(1, 1);
    let mut handles = Vec::new();
    for p in 2..4u8 {
        let probe = ctx.alloc(p, 1);
        handles.push(migrate_then(ctx, probe, move |c| {
            c.write(cell, 0, i64::from(p), Mechanism::Cache)
        }));
    }
    for h in handles {
        ctx.touch(h);
    }
}

/// Touch joins the body before the continuation's conflicting write.
fn clean_touch_ordered<B: Backend>(ctx: &mut B) {
    let cell = ctx.alloc(1, 1);
    let probe = ctx.alloc(2, 1);
    let h = migrate_then(ctx, probe, move |c| {
        c.write(cell, 0, 1i64, Mechanism::Cache)
    });
    ctx.touch(h);
    ctx.write(cell, 0, 2i64, Mechanism::Cache);
}

/// Unordered accessors that only read never race.
fn clean_read_only_siblings<B: Backend>(ctx: &mut B) {
    let cell = ctx.alloc(1, 1);
    ctx.write(cell, 0, 7i64, Mechanism::Cache); // initial value, pre-fork
    let p1 = ctx.alloc(2, 1);
    let p2 = ctx.alloc(3, 1);
    let h1 = migrate_then(ctx, p1, move |c| c.read(cell, 0, Mechanism::Cache));
    let h2 = migrate_then(ctx, p2, move |c| c.read(cell, 0, Mechanism::Cache));
    ctx.read(cell, 0, Mechanism::Cache);
    ctx.touch(h1);
    ctx.touch(h2);
}

/// Run a corpus kernel by name on any backend (the corpus counterpart of
/// [`crate::generic_run`]). The backend needs ≥ 4 processors. Returns
/// `None` for an unknown name.
pub fn run_seed<B: Backend>(name: &str, ctx: &mut B) -> Option<()> {
    match name {
        "ww-future-vs-continuation" => ww_future_vs_continuation(ctx),
        "rw-future-vs-continuation" => rw_future_vs_continuation(ctx),
        "ww-sibling-futures" => ww_sibling_futures(ctx),
        "loop-carried-future" => loop_carried_future(ctx),
        "clean-touch-ordered" => clean_touch_ordered(ctx),
        "clean-read-only-siblings" => clean_read_only_siblings(ctx),
        _ => return None,
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::racecheck::racecheck_src;
    use olden_analysis::Severity;
    use olden_runtime::{Config, OldenCtx};

    /// Every seed has both renditions, and the simulator's oracle agrees
    /// with the `racy` flag. (Static/dynamic cross-validation across the
    /// thread backend lives in the exec crate's integration tests.)
    #[test]
    fn corpus_is_wired_and_sim_oracle_matches() {
        for seed in seeds() {
            let diags = racecheck_src(seed.dsl).unwrap_or_else(|e| panic!("{}: {e}", seed.name));
            let warns = diags
                .iter()
                .filter(|d| d.severity >= Severity::Warning)
                .count();
            let mut ctx = OldenCtx::new(Config::olden(4).sanitized());
            run_seed(seed.name, &mut ctx).expect("dispatch knows every seed");
            let races = ctx.race_violations();
            if seed.racy {
                assert!(!races.is_empty(), "{}: sanitizer silent", seed.name);
                assert!(warns > 0, "{}: static pass silent", seed.name);
            } else {
                assert!(races.is_empty(), "{}: {races:?}", seed.name);
                assert!(diags.is_empty(), "{}: {diags:?}", seed.name);
            }
        }
    }
}
