//! **TreeAdd** — adds the values in a binary tree (Table 1: 1024 K nodes).
//!
//! The simplest Olden benchmark and the paper's running example
//! (Figure 4). The tree is built with subtrees distributed equally across
//! the processors at a fixed depth (§2's layout example); the kernel is
//! the recursive sum with a `futurecall` on the left child. The heuristic
//! selects **migration only** (Table 2 row 1): the recursion's update
//! affinity is `1 − (1−a_left)(1−a_right)` ≥ the 90 % threshold, and the
//! recursion is parallelizable, so dereferences of `t` migrate.

use crate::rng::mix2;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

/// Field offsets of a tree node (3 words).
pub const F_LEFT: usize = 0;
pub const F_RIGHT: usize = 1;
pub const F_VAL: usize = 2;
const NODE_WORDS: usize = 3;

/// Cycles of local computation per visited node (chosen so the
/// one-processor Olden/sequential ratio lands near Table 2's 0.73; the
/// paper's sequential TreeAdd runs ≈ 148 cycles/node on a 33 MHz SPARC).
const W_NODE: u64 = 70;

/// The kernel's shape in the analysis DSL (Figure 4 verbatim plus the
/// future annotation the real benchmark carries).
pub const DSL: &str = r#"
    struct tree { tree *left; tree *right; int val; };
    int TreeAdd(tree *t) {
        if (t == null) { return 0; }
        else {
            int lv = futurecall TreeAdd(t->left);
            int rv = TreeAdd(t->right);
            touch lv;
            return lv + rv + t->val;
        }
    }
"#;

/// Tree depth for each size class (2^depth − 1 nodes).
pub fn levels(size: SizeClass) -> u32 {
    match size {
        SizeClass::Tiny => 6,
        SizeClass::Default => 16,
        SizeClass::Paper => 20, // 1 M nodes
    }
}

/// Deterministic per-node value (index-mixed so ordering bugs cannot
/// cancel out the checksum).
fn node_val(index: u64) -> i64 {
    (mix2(index, 0xADD) % 1000) as i64
}

/// Build a tree of `level` levels, distributing subtrees over the
/// processor range `[lo, hi)`: the range splits between the children
/// until it is a single processor, which then owns the whole subtree —
/// the §2 layout that yields one large-granularity task per subtree.
fn build<B: Backend>(ctx: &mut B, level: u32, index: u64, lo: usize, hi: usize) -> GPtr {
    if level == 0 {
        return GPtr::NULL;
    }
    let t = ctx.alloc(lo as ProcId, NODE_WORDS);
    let mid = usize::midpoint(lo, hi);
    // The *left* child takes the far half of the processor range: the
    // kernel's futurecall is on the left child, so placing it remotely is
    // what makes the future migrate and fork while the parent's processor
    // keeps the (local) right half — the layout an Olden programmer
    // writes to get one large-granularity task per subtree (§2).
    let (l_lo, l_hi, r_lo, r_hi) = if hi - lo <= 1 {
        (lo, hi, lo, hi)
    } else {
        (mid, hi, lo, mid)
    };
    let left = build(ctx, level - 1, 2 * index, l_lo, l_hi);
    let right = build(ctx, level - 1, 2 * index + 1, r_lo, r_hi);
    ctx.write(t, F_LEFT, left, Mechanism::Migrate);
    ctx.write(t, F_RIGHT, right, Mechanism::Migrate);
    ctx.write(t, F_VAL, node_val(index), Mechanism::Migrate);
    t
}

/// The recursive kernel. Every dereference of `t` migrates, per the
/// heuristic. The `t->left` read is the first check of `t` on the path;
/// the optimizer proves the `t->right` and `t->val` checks redundant
/// (`ELIDED_SITES`): the logical thread is back on `t`'s processor after
/// the future spawn and the call, so `t` is still local.
fn tree_add<B: Backend>(ctx: &mut B, t: GPtr) -> i64 {
    if t.is_null() {
        return 0;
    }
    ctx.work(W_NODE);
    let left = ctx.read_ptr(t, F_LEFT, Mechanism::Migrate);
    let h = ctx.future_call(move |ctx| ctx.call(move |ctx| tree_add(ctx, left)));
    let right = ctx.read_ptr_checked(t, F_RIGHT, Mechanism::Migrate, Check::Elide);
    let rv = ctx.call(|ctx| tree_add(ctx, right));
    let v = ctx.read_i64_checked(t, F_VAL, Mechanism::Migrate, Check::Elide);
    let lv = ctx.touch(h);
    lv + rv + v
}

/// Build (uncharged — Table 2 reports TreeAdd as a kernel time) and sum.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = ctx.nprocs();
    let root = ctx.uncharged(|ctx| build(ctx, levels(size), 1, 0, n));
    ctx.call(|ctx| tree_add(ctx, root)) as u64
}

/// Serial reference: the same values, summed without any runtime.
pub fn reference(size: SizeClass) -> u64 {
    fn sum(level: u32, index: u64) -> i64 {
        if level == 0 {
            0
        } else {
            node_val(index) + sum(level - 1, 2 * index) + sum(level - 1, 2 * index + 1)
        }
    }
    sum(levels(size), 1) as u64
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &["TreeAdd 7:30 t->right", "TreeAdd 9:30 t->val"];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "TreeAdd 6:41 t->left -> migrate",
    "TreeAdd 7:30 t->right -> migrate",
    "TreeAdd 9:30 t->val -> migrate",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[("TreeAdd", "t", Mechanism::Migrate)];

/// Static trip counts for the cost model: the recursion touches every
/// tree node once.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    vec![("TreeAdd#0", (1u64 << levels(size)) - 1)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "TreeAdd",
    description: "Adds the values in a tree",
    problem_size: "1024K nodes",
    choice: "M",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(1.2, 5.0), (0.5, 2.0), (1.2, 5.0), (1.2, 5.0)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn values_match_reference_across_procs() {
        for procs in [1, 2, 4, 8] {
            let (sum, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(sum, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn sequential_baseline_matches_too() {
        let (sum, rep) = run_sim(Config::sequential(), |ctx| run(ctx, SizeClass::Tiny));
        assert_eq!(sum, reference(SizeClass::Tiny));
        assert_eq!(rep.stats.migrations, 0, "one processor: all local");
    }

    #[test]
    fn heuristic_selects_migration_for_t() {
        let prog = parse(DSL).unwrap();
        let sel = select(&prog);
        let rec = sel.recursion_of("TreeAdd").unwrap();
        assert_eq!(rec.migration_var(), Some("t"));
        assert!(rec.parallel);
        // Default affinities: 1 − 0.3² = 0.91.
        assert!((rec.affinity.unwrap() - 0.91).abs() < 1e-12);
        assert_eq!(sel.mech("TreeAdd", "t"), Mech::Migrate);
    }

    #[test]
    fn migrations_scale_with_processor_boundaries_not_nodes() {
        let (_, rep) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Tiny));
        // 2^6−1 = 63 nodes; subtree distribution means only the top of the
        // tree crosses processors.
        assert!(rep.stats.migrations >= 7, "at least one per processor");
        assert!(
            rep.stats.migrations <= 20,
            "far fewer migrations ({}) than nodes (63)",
            rep.stats.migrations
        );
    }

    #[test]
    fn parallel_speedup_is_real() {
        let (_, seq) = run_sim(Config::sequential(), |ctx| run(ctx, SizeClass::Default));
        let (_, p8) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Default));
        let s = p8.speedup_vs(seq.makespan);
        assert!(s > 4.0, "8-processor speedup {s}");
        let (_, p1) = run_sim(Config::olden(1), |ctx| run(ctx, SizeClass::Default));
        let s1 = p1.speedup_vs(seq.makespan);
        assert!((0.6..0.9).contains(&s1), "1-proc overhead ratio {s1}");
    }
}
