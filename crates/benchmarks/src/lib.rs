//! The ten Olden benchmarks (paper Table 1), implemented against the
//! reproduction runtime, each with a plain-Rust serial reference for value
//! verification and a DSL rendition of its kernel so the selection
//! heuristic's choices can be checked against the paper's §5 prose.
//!
//! | benchmark  | description (Table 1)                                  | heuristic choice |
//! |------------|--------------------------------------------------------|------------------|
//! | TreeAdd    | adds the values in a tree                              | M                |
//! | Power      | power-system optimization                              | M                |
//! | TSP        | estimated best Hamiltonian circuit                     | M                |
//! | MST        | minimum spanning tree of a graph                       | M                |
//! | Bisort     | bitonic sort in a binary tree                          | M+C              |
//! | Voronoi    | Voronoi diagram / Delaunay of a point set              | M+C              |
//! | EM3D       | electromagnetic-wave propagation on a bipartite graph  | M+C              |
//! | Barnes-Hut | hierarchical N-body                                    | M+C              |
//! | Perimeter  | perimeter of quad-tree-encoded raster images           | M+C              |
//! | Health     | Columbian health-care simulation                       | M+C              |
//!
//! Problem sizes: each benchmark accepts a [`SizeClass`]; `Default` keeps
//! `cargo test` fast, `Paper` matches Table 1 where feasible on one host.

pub mod barneshut;
pub mod bisort;
pub mod em3d;
pub mod health;
pub mod listdist;
pub mod mst;
pub mod perimeter;
pub mod power;
pub mod racy;
pub mod treeadd;
pub mod tsp;
pub mod voronoi;

/// The shared deterministic RNG (re-exported so benchmark modules and
/// downstream crates keep addressing it as `olden_benchmarks::rng`).
pub use olden_rng as rng;

use olden_runtime::{Backend, Mechanism, OldenCtx};

/// Split a processor range `[lo, hi)` into its `k`-th quarter (k in
/// 0..4), degrading gracefully when the range is smaller than four: every
/// quarter is non-empty and the quarters cover the range, so 4-way tree
/// distributions keep using all processors down to 2-processor machines.
pub fn split_range4(lo: usize, hi: usize, k: usize) -> (usize, usize) {
    debug_assert!(k < 4 && lo < hi);
    let span = hi - lo;
    if span <= 1 {
        return (lo, hi);
    }
    let clo = lo + k * span / 4;
    let chi = lo + (k + 1) * span / 4;
    if chi <= clo {
        let c = clo.min(hi - 1);
        (c, c + 1)
    } else {
        (clo, chi)
    }
}

/// Problem-size selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SizeClass {
    /// Very small: exhaustive tests and property tests.
    Tiny,
    /// Development default: seconds per full Table-2 row.
    Default,
    /// The paper's Table 1 sizes (or as close as is sensible on a single
    /// host; see each module's docs).
    Paper,
}

/// One benchmark's registry entry.
#[derive(Clone, Copy)]
pub struct Descriptor {
    /// Table 1 name.
    pub name: &'static str,
    /// Table 1 description.
    pub description: &'static str,
    /// Table 1 problem size (the `Paper` size class).
    pub problem_size: &'static str,
    /// Table 2 "Heuristic choice" column: "M" or "M+C".
    pub choice: &'static str,
    /// True for the three benchmarks the paper reports as whole-program
    /// times (Power, Barnes-Hut, Health); the rest report kernel times
    /// with the build phase uncharged.
    pub whole_program: bool,
    /// The kernel's DSL rendition (each module's `DSL` constant): input
    /// to the selection heuristic and to `oldenc`'s static race pass.
    pub dsl: &'static str,
    /// Check sites of `dsl` the optimizer proves redundant, as stable
    /// `"{func} {span} {site}"` keys (`SiteReport::key`). Recorded from
    /// `oldenc opt` output and cross-checked against the live optimizer
    /// by a test, so a heuristic or optimizer change that shifts a
    /// verdict shows up as a diff here, not as silent drift.
    pub elided_sites: &'static [&'static str],
    /// The heuristic's verdict for *every* dereference site of `dsl`, as
    /// stable `"{func} {span} {site} -> {mech}"` keys
    /// (`SiteVerdict::key`). Recorded from `oldenc select` output and
    /// cross-checked against the live heuristic by `select_parity`, the
    /// same discipline as `elided_sites`.
    pub selected_mechanisms: &'static [&'static str],
    /// `(func, var, mechanism)` triples naming the principal traversal
    /// variables of the DSL rendition and the [`Mechanism`] the
    /// hand-written kernel hard-codes for their dereferences.
    /// `select_parity` asserts the live heuristic agrees with each — the
    /// conformance gate tying the static selection to what the kernels
    /// actually execute.
    pub kernel_mechs: &'static [(&'static str, &'static str, Mechanism)],
    /// Static per-loop trip-count summaries for the cost model: how many
    /// iterations each DSL control loop (keyed `"{func}#{ordinal}"`, see
    /// `olden_analysis::loop_key`) executes at a given size class and
    /// processor count. Derived from the benchmark's size parameters,
    /// not measured.
    pub trips: fn(SizeClass, usize) -> Vec<(&'static str, u64)>,
    /// Accepted `(lo, hi)` ratio bands for predicted vs measured dynamic
    /// counters, in the order `[migrations, line_fetches, invalidations,
    /// remote_touches]`. The comparison is
    /// `(predicted + 1) / (measured + 1)` at `SizeClass::Tiny` on 8
    /// processors; `select_parity`
    /// asserts each ratio lands in its band and that every band is
    /// non-vacuous (`hi < 1000 × lo`, and a 1000× prediction fails).
    /// Wide bands are honest gaps between the DSL abstraction and the
    /// kernel (see EXPERIMENTS.md), not tolerances.
    pub bands: [(f64, f64); 4],
    /// Run the benchmark under the simulator context; returns a checksum
    /// that must equal `reference` for the same size. (The kernels are
    /// generic over [`Backend`]; this field is their `OldenCtx`
    /// instantiation. Other backends dispatch through [`generic_run`].)
    pub run: fn(&mut OldenCtx, SizeClass) -> u64,
    /// Plain serial Rust implementation of the same computation.
    pub reference: fn(SizeClass) -> u64,
}

/// All ten Table-1 benchmarks, in the paper's row order.
pub fn all() -> Vec<Descriptor> {
    vec![
        treeadd::DESCRIPTOR,
        power::DESCRIPTOR,
        tsp::DESCRIPTOR,
        mst::DESCRIPTOR,
        bisort::DESCRIPTOR,
        voronoi::DESCRIPTOR,
        em3d::DESCRIPTOR,
        barneshut::DESCRIPTOR,
        perimeter::DESCRIPTOR,
        health::DESCRIPTOR,
    ]
}

/// Look a benchmark up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Descriptor> {
    all()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Run a benchmark by (case-insensitive) name on *any* backend.
///
/// [`Descriptor::run`] is a plain fn pointer and therefore pinned to the
/// simulator context; this is the generic counterpart used by the thread
/// backend (and any future backend) to reach the same kernels. Returns
/// `None` for an unknown name.
pub fn generic_run<B: Backend>(name: &str, ctx: &mut B, size: SizeClass) -> Option<u64> {
    let run: fn(&mut B, SizeClass) -> u64 = match name.to_ascii_lowercase().as_str() {
        "treeadd" => treeadd::run,
        "power" => power::run,
        "tsp" => tsp::run,
        "mst" => mst::run,
        "bisort" => bisort::run,
        "voronoi" => voronoi::run,
        "em3d" => em3d::run,
        "barnes-hut" | "barneshut" => barneshut::run,
        "perimeter" => perimeter::run,
        "health" => health::run,
        _ => return None,
    };
    Some(run(ctx, size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let a = all();
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].name, "TreeAdd");
        assert_eq!(a[9].name, "Health");
        let m_only: Vec<&str> = a
            .iter()
            .filter(|d| d.choice == "M")
            .map(|d| d.name)
            .collect();
        assert_eq!(m_only, vec!["TreeAdd", "Power", "TSP", "MST"]);
        let whole: Vec<&str> = a
            .iter()
            .filter(|d| d.whole_program)
            .map(|d| d.name)
            .collect();
        assert_eq!(whole, vec!["Power", "Barnes-Hut", "Health"]);
    }

    #[test]
    fn split_range4_covers_and_is_nonempty() {
        for hi in 1..20usize {
            for k in 0..4 {
                let (a, b) = split_range4(0, hi, k);
                assert!(a < b && b <= hi, "({a},{b}) of [0,{hi}) k={k}");
            }
        }
        // Width-2 ranges use both halves.
        assert_eq!(split_range4(0, 2, 0), (0, 1));
        assert_eq!(split_range4(0, 2, 3), (1, 2));
        // Wide ranges quarter exactly.
        assert_eq!(split_range4(0, 8, 1), (2, 4));
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("treeadd").is_some());
        assert!(by_name("BARNES-HUT").is_some());
        assert!(by_name("nope").is_none());
    }

    /// Every function of every benchmark DSL lowers to a well-formed CFG:
    /// single entry, reachable blocks, terminators only at block ends,
    /// and edges that agree in both directions. The optimizer's verdicts
    /// are only as trustworthy as the graphs it solves over.
    #[test]
    fn every_benchmark_dsl_lowers_to_well_formed_cfgs() {
        use olden_analysis::{lower, parse};
        for d in all() {
            let prog = parse(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
            assert!(!prog.funcs.is_empty(), "{} DSL has no functions", d.name);
            for f in &prog.funcs {
                let cfg = lower(f);
                cfg.check_well_formed(f)
                    .unwrap_or_else(|e| panic!("{} fn {}: {e}", d.name, f.name));
            }
        }
    }
}
