//! **Perimeter** — perimeter of quad-tree-encoded raster images
//! (Table 1: 4 K × 4 K image), after Samet's algorithm.
//!
//! A binary image (a disk) is encoded as a quadtree with parent pointers.
//! The perimeter is computed by visiting every black leaf and, for each
//! of its four sides, locating the adjacent neighbour of greater-or-equal
//! size via parent-pointer climbing; a white (or off-image) neighbour
//! contributes the side length, a grey neighbour contributes the white
//! leaves along the shared border.
//!
//! "The algorithm superficially looks similar to TreeAdd, but traverses
//! the tree in a very different way when computing the contribution of
//! neighboring quadrants. The heuristic chooses to use caching when
//! determining the neighbors of a quadrant, because they may be far away
//! in the tree" (§5) — the top-down traversal migrates, the neighbour
//! climbs and descents cache.

use crate::rng::mix2;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

const MI: Mechanism = Mechanism::Migrate;
const CA: Mechanism = Mechanism::Cache;

/// Quadrants, ordered NW, NE, SW, SE.
const NW: usize = 0;
const NE: usize = 1;
const SW: usize = 2;
const SE: usize = 3;

/// Node layout.
const F_CHILD0: usize = 0; // ..3
const F_PARENT: usize = 4;
const F_COLOR: usize = 5; // 0 white, 1 black, 2 grey
const F_QUAD: usize = 6; // which child of the parent this node is
const NODE_WORDS: usize = 8;

const WHITE: i64 = 0;
const BLACK: i64 = 1;
const GREY: i64 = 2;

/// Cycles per node visit / neighbour probe.
const W_VISIT: u64 = 30;

/// The neighbour-finding loop in the DSL: climbing parent pointers is a
/// single-field traversal at the default 70 % — cached; the perimeter
/// recursion (four recursive calls) migrates and is parallel.
pub const DSL: &str = r#"
    struct quad { quad *nw; quad *ne; quad *sw; quad *se; quad *parent; int color; };
    int Perimeter(quad *t, int size) {
        if (t == null) { return 0; }
        int a = futurecall Perimeter(t->nw, size);
        int b = futurecall Perimeter(t->ne, size);
        int c = futurecall Perimeter(t->sw, size);
        int d = Perimeter(t->se, size);
        touch a;
        touch b;
        touch c;
        return a + b + c + d;
    }
    quad *NorthNeighbor(quad *t) {
        quad *q = t;
        while (q != null) {
            q = q->parent;
        }
        return q;
    }
"#;

/// Image side length (pixels) per size class.
pub fn image_size(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 16,
        SizeClass::Default => 256,
        SizeClass::Paper => 4096, // Table 1: 4K x 4K
    }
}

/// The raster: a disk plus deterministic speckle so the quadtree is
/// irregular.
pub fn pixel(n: usize, x: usize, y: usize) -> bool {
    let c = n as f64 / 2.0;
    let r = n as f64 * 0.375;
    let dx = x as f64 + 0.5 - c;
    let dy = y as f64 + 0.5 - c;
    let inside = dx * dx + dy * dy <= r * r;
    if inside {
        // Pock-marks: carve out ~3 % of interior pixels in 2x2 blocks.
        mix2((x / 2) as u64, (y / 2) as u64 ^ 0x9E41) % 100 >= 3
    } else {
        false
    }
}

/// Does the square `[x, x+s) × [y, y+s)` have a uniform colour?
fn uniform(n: usize, x: usize, y: usize, s: usize) -> Option<bool> {
    let first = pixel(n, x, y);
    for yy in y..y + s {
        for xx in x..x + s {
            if pixel(n, xx, yy) != first {
                return None;
            }
        }
    }
    Some(first)
}

/// Build the quadtree over `[x, x+s)²`, distributing quadrant subtrees
/// over the processor range.
#[allow(clippy::too_many_arguments)]
fn build<B: Backend>(
    ctx: &mut B,
    n: usize,
    x: usize,
    y: usize,
    s: usize,
    parent: GPtr,
    quad: usize,
    lo: usize,
    hi: usize,
) -> GPtr {
    let node = ctx.alloc(lo as ProcId, NODE_WORDS);
    ctx.write(node, F_PARENT, parent, MI);
    ctx.write(node, F_QUAD, quad as i64, MI);
    match uniform(n, x, y, s) {
        Some(black) => {
            ctx.write(node, F_COLOR, if black { BLACK } else { WHITE }, MI);
        }
        None => {
            ctx.write(node, F_COLOR, GREY, MI);
            let h = s / 2;
            let coords = [(x, y), (x + h, y), (x, y + h), (x + h, y + h)]; // NW,NE,SW,SE
            for (q, &(cx, cy)) in coords.iter().enumerate() {
                // Child 0 takes the *far* quarter so its future forks.
                let (clo, chi) = crate::split_range4(lo, hi, 3 - q);
                let child = build(ctx, n, cx, cy, h, node, q, clo, chi);
                ctx.write(node, F_CHILD0 + q, child, MI);
            }
        }
    }
    node
}

/// Direction of a neighbour probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dir {
    North,
    East,
    South,
    West,
}

/// Is `quad` on the `dir` edge of its parent?
fn on_edge(quad: usize, dir: Dir) -> bool {
    match dir {
        Dir::North => quad == NW || quad == NE,
        Dir::South => quad == SW || quad == SE,
        Dir::West => quad == NW || quad == SW,
        Dir::East => quad == NE || quad == SE,
    }
}

/// Mirror a quadrant across the axis perpendicular to `dir` (the Samet
/// reflection used when descending back down).
fn mirror(quad: usize, dir: Dir) -> usize {
    match dir {
        Dir::North | Dir::South => match quad {
            NW => SW,
            NE => SE,
            SW => NW,
            _ => NE,
        },
        Dir::East | Dir::West => match quad {
            NW => NE,
            NE => NW,
            SW => SE,
            _ => SW,
        },
    }
}

/// Find the neighbour of greater-or-equal size in direction `dir`
/// (Samet's `gtequal_adj_neighbor`): climb while on the `dir` edge of the
/// parent, step across, then descend the mirrored path. All dereferences
/// cache — "they may be far away in the tree".
fn gtequal_adj_neighbor<B: Backend>(ctx: &mut B, node: GPtr, dir: Dir) -> GPtr {
    let parent = ctx.read_ptr(node, F_PARENT, CA);
    if parent.is_null() {
        return GPtr::NULL; // off the image
    }
    let quad = ctx.read_i64(node, F_QUAD, CA) as usize;
    let q = if on_edge(quad, dir) {
        // Still on the boundary of the parent: find the parent's
        // neighbour first.
        let pn = gtequal_adj_neighbor(ctx, parent, dir);
        if pn.is_null() {
            return GPtr::NULL;
        }
        if ctx.read_i64(pn, F_COLOR, CA) != GREY {
            return pn; // a leaf at least as large as `node`
        }
        pn
    } else {
        parent
    };
    ctx.read_ptr(q, F_CHILD0 + mirror(quad, dir), CA)
}

/// Sum of the side lengths of white leaves along the `dir`-facing border
/// of `t` (the contribution when a black leaf's neighbour is grey).
fn sum_adjacent<B: Backend>(ctx: &mut B, t: GPtr, dir: Dir, size: i64) -> i64 {
    ctx.work(W_VISIT);
    let color = ctx.read_i64(t, F_COLOR, CA);
    if color == GREY {
        // The two children adjacent to the border facing *against* dir.
        let (q1, q2) = match dir {
            Dir::North => (SW, SE), // probe came from the south side
            Dir::South => (NW, NE),
            Dir::East => (NW, SW),
            Dir::West => (NE, SE),
        };
        let c1 = ctx.read_ptr(t, F_CHILD0 + q1, CA);
        let c2 = ctx.read_ptr(t, F_CHILD0 + q2, CA);
        sum_adjacent(ctx, c1, dir, size / 2) + sum_adjacent(ctx, c2, dir, size / 2)
    } else if color == WHITE {
        size
    } else {
        0
    }
}

/// Perimeter contribution of the subtree at `t` whose square side is
/// `size`. The recursion migrates (and forks); neighbour probes cache.
fn perimeter<B: Backend>(ctx: &mut B, t: GPtr, size: i64) -> i64 {
    ctx.work(W_VISIT);
    let color = ctx.read_i64(t, F_COLOR, MI);
    if color == GREY {
        // The color read above performed the check of `t`; the child
        // reads that follow are proven redundant (`ELIDED_SITES`) — each
        // future's continuation resumes on `t`'s processor.
        let mut handles = Vec::new();
        for q in 0..3 {
            let c = ctx.read_ptr_checked(t, F_CHILD0 + q, MI, Check::Elide);
            handles
                .push(ctx.future_call(move |ctx| ctx.call(move |ctx| perimeter(ctx, c, size / 2))));
        }
        let c3 = ctx.read_ptr_checked(t, F_CHILD0 + SE, MI, Check::Elide);
        let mut total = ctx.call(|ctx| perimeter(ctx, c3, size / 2));
        for h in handles {
            total += ctx.touch(h);
        }
        total
    } else if color == BLACK {
        let mut total = 0;
        for dir in [Dir::North, Dir::East, Dir::South, Dir::West] {
            let nbr = ctx.call(|ctx| gtequal_adj_neighbor(ctx, t, dir));
            if nbr.is_null() {
                total += size; // image border
            } else {
                let ncolor = ctx.read_i64(nbr, F_COLOR, CA);
                if ncolor == WHITE {
                    total += size;
                } else if ncolor == GREY {
                    total += ctx.call(|ctx| sum_adjacent(ctx, nbr, dir, size));
                }
            }
        }
        total
    } else {
        0
    }
}

/// Kernel run (build uncharged).
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = image_size(size);
    let procs = ctx.nprocs();
    let root = ctx.uncharged(|ctx| build(ctx, n, 0, 0, n, GPtr::NULL, 0, 0, procs));
    ctx.call(|ctx| perimeter(ctx, root, n as i64)) as u64
}

/// Serial reference: count black↔white (or black↔border) pixel edges
/// directly on the raster.
pub fn reference(size: SizeClass) -> u64 {
    let n = image_size(size);
    let mut total = 0u64;
    let black = |x: isize, y: isize| -> bool {
        if x < 0 || y < 0 || x >= n as isize || y >= n as isize {
            false
        } else {
            pixel(n, x as usize, y as usize)
        }
    };
    for y in 0..n as isize {
        for x in 0..n as isize {
            if black(x, y) {
                for (dx, dy) in [(0, -1), (1, 0), (0, 1), (-1, 0)] {
                    if !black(x + dx, y + dy) {
                        total += 1;
                    }
                }
            }
        }
    }
    total
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[
    "Perimeter 6:38 t->ne",
    "Perimeter 7:38 t->sw",
    "Perimeter 8:27 t->se",
];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "Perimeter 5:38 t->nw -> migrate",
    "Perimeter 6:38 t->ne -> migrate",
    "Perimeter 7:38 t->sw -> migrate",
    "Perimeter 8:27 t->se -> migrate",
    "NorthNeighbor 17:17 q->parent -> cache",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[
    ("Perimeter", "t", Mechanism::Migrate),
    ("NorthNeighbor", "q", Mechanism::Cache),
];

/// Static trip counts for the cost model: the quad-tree has ~`4/3` as
/// many nodes as leaves, and each leaf's neighbor probes climb at most
/// `log2(image_size)` levels.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    let s = image_size(size) as u64;
    let leaves = s * s / 4;
    vec![
        ("Perimeter#0", 4 * leaves / 3),
        ("NorthNeighbor#0", leaves * s.ilog2() as u64),
    ]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "Perimeter",
    description: "Computes the perimeter of a set of quad-tree encoded raster images",
    problem_size: "4K x 4K image",
    choice: "M+C",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(1.0, 5.0), (0.5, 2.0), (1.5, 8.0), (2.5, 15.0)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn quadtree_perimeter_matches_pixel_count() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn default_size_matches_too() {
        let (v, _) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Default));
        assert_eq!(v, reference(SizeClass::Default));
    }

    #[test]
    fn disk_perimeter_is_plausible() {
        // The disk of radius 0.375·n has circumference ≈ 2.36·n; a
        // rasterized circle's edge count is larger (L∞ geometry) plus the
        // speckle holes add more.
        let n = image_size(SizeClass::Tiny) as u64;
        let p = reference(SizeClass::Tiny);
        assert!(p > 2 * n, "perimeter {p} too small for n={n}");
        assert!(p < n * n, "perimeter {p} absurdly large");
    }

    #[test]
    fn heuristic_migrates_recursion_caches_climb() {
        let sel = select(&parse(DSL).unwrap());
        let rec = sel.recursion_of("Perimeter").unwrap();
        assert_eq!(rec.migration_var(), Some("t"));
        assert!(rec.parallel);
        let climb = &sel.for_func("NorthNeighbor")[0];
        assert_eq!(climb.mech("q"), Mech::Cache, "parent climb caches");
    }

    #[test]
    fn uses_both_mechanisms() {
        let (_, rep) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Tiny));
        assert!(rep.stats.migrations > 0);
        assert!(rep.cache.cacheable_reads > 0);
        assert_eq!(rep.cache.cacheable_writes, 0, "Table 3: Perimeter writes 0");
    }
}
