//! **Power** — the Power System Optimization problem (Table 1: 10 000
//! customers), after Lumetta et al.'s decentralized optimal power pricing.
//!
//! The network is the reference hierarchy: a root feeds **10 feeders × 20
//! laterals × 5 branches × 10 customers** = 10 000 leaves. Each pricing
//! iteration sends the current price down the tree; every customer
//! computes its optimal demand (constant-elasticity `α/π` here — the
//! paper's exact customer model is immaterial to the communication
//! pattern); demands sum up the hierarchy with per-level line losses; the
//! root adjusts the price multiplicatively until demand meets capacity.
//!
//! Placement puts each lateral's whole subtree on one processor, laterals
//! spread evenly — large-granularity tasks, exactly the §2 layout advice.
//! The heuristic selects **migration only** (Table 2): the traversal has
//! high locality and futures at the feeder and lateral levels generate
//! the threads. The paper reports Power as a *whole-program* time, so the
//! build phase is charged (and parallelized the same way).

use crate::rng::mix2;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Mechanism};

const M: Mechanism = Mechanism::Migrate;

/// List-node layout shared by feeders, laterals, and branches:
/// next-sibling pointer, first-child pointer. Customers use CHILD as
/// their α value instead.
pub const F_NEXT: usize = 0;
pub const F_CHILD: usize = 1;
const NODE_WORDS: usize = 2;

/// Cycles a customer's demand optimization costs. Calibrated from
/// Table 2's sequential time (286.59 s at 33 MHz for 10 000 customers
/// over the convergence sweeps ≈ a few thousand cycles per customer
/// optimization).
const W_CUSTOMER: u64 = 2500;
/// Cycles per interior node visit (loss application, accumulation).
const W_NODE: u64 = 100;

/// Per-level loss factor applied to aggregated demand.
const LOSS: f64 = 1.02;
/// Target capacity per customer (the root converges total demand to
/// `CAP_PER_CUSTOMER × customers`).
const CAP_PER_CUSTOMER: f64 = 1.1;
/// Relative convergence tolerance.
const TOL: f64 = 1e-6;

/// The kernel in the analysis DSL: a parallel walk of the feeder list
/// spawning lateral work — list traversal with futures, which the
/// heuristic migrates (parallelizable loop, §4.3).
pub const DSL: &str = r#"
    struct node { node *next @ 95; node *child @ 95; };
    int ComputeFeeder(node *f) {
        int total = 0;
        node *l = f->child;
        while (l != null) {
            int d = futurecall ComputeLateral(l);
            touch d;
            total = total + d;
            l = l->next;
        }
        return total;
    }
"#;

/// (feeders, laterals/feeder, branches/lateral, customers/branch).
pub fn shape(size: SizeClass) -> (usize, usize, usize, usize) {
    match size {
        SizeClass::Tiny => (2, 2, 2, 3),
        SizeClass::Default => (10, 10, 5, 10),
        SizeClass::Paper => (10, 20, 5, 10), // 10 000 customers
    }
}

fn alpha(feeder: usize, lateral: usize, branch: usize, cust: usize) -> f64 {
    let key = ((feeder * 64 + lateral) * 64 + branch) * 64 + cust;
    1.0 + (mix2(key as u64, 0x90E7) % 1000) as f64 / 1000.0
}

/// Build one lateral: the lateral's list node lives on the *feeder's*
/// processor (`fproc`) so the feeder can walk its lateral list locally
/// while spawning; the branch/customer subtree lives on the lateral's
/// own processor (`proc`) so the lateral future's first dereference
/// migrates there and forks.
fn build_lateral<B: Backend>(
    ctx: &mut B,
    fproc: ProcId,
    proc: ProcId,
    fi: usize,
    li: usize,
    branches: usize,
    customers: usize,
) -> GPtr {
    let lat = ctx.alloc(fproc, NODE_WORDS);
    let mut bhead = GPtr::NULL;
    for bi in (0..branches).rev() {
        let b = ctx.alloc(proc, NODE_WORDS);
        let mut chead = GPtr::NULL;
        for ci in (0..customers).rev() {
            let c = ctx.alloc(proc, NODE_WORDS);
            ctx.write(c, F_NEXT, chead, M);
            ctx.write(c, F_CHILD, alpha(fi, li, bi, ci), M);
            chead = c;
        }
        ctx.write(b, F_NEXT, bhead, M);
        ctx.write(b, F_CHILD, chead, M);
        bhead = b;
    }
    ctx.write(lat, F_CHILD, bhead, M);
    lat
}

/// Build the whole network; returns the feeder-list head.
///
/// Layout (the §2 "place related data together" discipline, applied so
/// every list is local to the thread that walks it):
/// * feeder list nodes live on processor 0, where the root's pricing
///   loop walks them without migrating;
/// * feeder `fi`'s lateral list nodes live on its region processor
///   `fi·P/nf`, so the feeder body's first lateral dereference migrates
///   there (forking the feeder future) and then walks locally;
/// * each lateral's branch/customer subtree is spread across all
///   processors, so lateral futures fork to wherever their subtree is.
fn build<B: Backend>(ctx: &mut B, size: SizeClass) -> GPtr {
    let (nf, nl, nb, nc) = shape(size);
    let p = ctx.nprocs();
    // Feeders are built in parallel: each future migrates to the feeder's
    // region processor and builds the lateral list there.
    let handles: Vec<_> = (0..nf)
        .map(|fi| {
            ctx.future_call(move |ctx| {
                ctx.call(move |ctx| {
                    let fproc = (fi * p / nf) as ProcId;
                    let mut lhead = GPtr::NULL;
                    for li in (0..nl).rev() {
                        // Round-robin subtrees: each feeder's laterals
                        // spread over the whole machine, so its futures
                        // fork instead of queueing inline.
                        let proc = ((fi * nl + li) % p) as ProcId;
                        let lat = build_lateral(ctx, fproc, proc, fi, li, nb, nc);
                        ctx.write(lat, F_NEXT, lhead, M);
                        lhead = lat;
                    }
                    lhead
                })
            })
        })
        .collect();
    let lheads: Vec<GPtr> = handles.into_iter().map(|h| ctx.touch(h)).collect();
    let mut fhead = GPtr::NULL;
    for &lhead in lheads.iter().rev() {
        let f = ctx.alloc(0, NODE_WORDS);
        ctx.write(f, F_NEXT, fhead, M);
        ctx.write(f, F_CHILD, lhead, M);
        fhead = f;
    }
    fhead
}

/// Demand of one lateral at the given price (walks branches, customers).
fn lateral_demand<B: Backend>(ctx: &mut B, lat: GPtr, price: f64) -> f64 {
    let mut total = 0.0;
    let mut b = ctx.read_ptr(lat, F_CHILD, M);
    while !b.is_null() {
        ctx.work(W_NODE);
        let mut bd = 0.0;
        let mut c = ctx.read_ptr(b, F_CHILD, M);
        while !c.is_null() {
            ctx.work(W_CUSTOMER);
            let a = ctx.read_f64(c, F_CHILD, M);
            bd += a / price;
            c = ctx.read_ptr(c, F_NEXT, M);
        }
        total += bd * LOSS;
        b = ctx.read_ptr(b, F_NEXT, M);
    }
    total * LOSS
}

/// Demand of one feeder: a future per lateral.
fn feeder_demand<B: Backend>(ctx: &mut B, feeder: GPtr, price: f64) -> f64 {
    let mut handles = Vec::new();
    let mut l = ctx.read_ptr(feeder, F_CHILD, M);
    while !l.is_null() {
        handles
            .push(ctx.future_call(move |ctx| ctx.call(move |ctx| lateral_demand(ctx, l, price))));
        l = ctx.read_ptr(l, F_NEXT, M);
    }
    let mut total = 0.0;
    for h in handles {
        total += ctx.touch(h);
    }
    ctx.work(W_NODE);
    total * LOSS
}

/// One root pricing sweep: futures over feeders.
fn total_demand<B: Backend>(ctx: &mut B, fhead: GPtr, price: f64) -> f64 {
    let mut handles = Vec::new();
    let mut f = fhead;
    while !f.is_null() {
        handles.push(ctx.future_call(move |ctx| ctx.call(move |ctx| feeder_demand(ctx, f, price))));
        f = ctx.read_ptr(f, F_NEXT, M);
    }
    let mut total = 0.0;
    for h in handles {
        total += ctx.touch(h);
    }
    total
}

/// Whole-program run (build charged): iterate the price to convergence;
/// the checksum mixes the converged price's bit pattern with the
/// iteration count.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let (nf, nl, nb, nc) = shape(size);
    let capacity = CAP_PER_CUSTOMER * (nf * nl * nb * nc) as f64;
    let fhead = build(ctx, size);
    let mut price = 0.05; // deliberately far from the optimum
    let mut iters = 0u32;
    loop {
        let demand = total_demand(ctx, fhead, price);
        iters += 1;
        if (demand - capacity).abs() / capacity < TOL || iters >= 200 {
            break;
        }
        price *= (demand / capacity).sqrt();
    }
    price.to_bits() ^ iters as u64
}

/// Serial reference mirroring the exact loop structure (and therefore the
/// exact floating-point evaluation order).
pub fn reference(size: SizeClass) -> u64 {
    let (nf, nl, nb, nc) = shape(size);
    let capacity = CAP_PER_CUSTOMER * (nf * nl * nb * nc) as f64;
    let demand_at = |price: f64| -> f64 {
        let mut total = 0.0;
        for fi in 0..nf {
            let mut fd = 0.0;
            for li in 0..nl {
                let mut ld = 0.0;
                for bi in 0..nb {
                    let mut bd = 0.0;
                    for ci in 0..nc {
                        bd += alpha(fi, li, bi, ci) / price;
                    }
                    ld += bd * LOSS;
                }
                fd += ld * LOSS;
            }
            total += fd * LOSS;
        }
        total
    };
    let mut price = 0.05;
    let mut iters = 0u32;
    loop {
        let demand = demand_at(price);
        iters += 1;
        if (demand - capacity).abs() / capacity < TOL || iters >= 200 {
            break;
        }
        price *= (demand / capacity).sqrt();
    }
    price.to_bits() ^ iters as u64
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "ComputeFeeder 5:19 f->child -> cache",
    "ComputeFeeder 10:17 l->next -> migrate",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[("ComputeFeeder", "l", Mechanism::Migrate)];

/// Static trip counts for the cost model: the DSL abstracts only the
/// feeder-level lateral walk; the full kernel recurses two levels
/// further (hence the wide `bands`).
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    let (f, l, _, _) = shape(size);
    vec![("ComputeFeeder#0", (f * l) as u64)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "Power",
    description: "Solves the Power System Optimization problem",
    problem_size: "10,000 customers",
    choice: "M",
    whole_program: true,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.008, 0.8), (0.5, 2.0), (0.006, 0.6), (0.008, 0.8)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn converged_price_matches_reference_bitwise() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn takes_multiple_sweeps_to_converge() {
        // The checksum xors the iteration count into the price bits; with
        // a start of 0.05 the multiplicative update needs several sweeps.
        let v = reference(SizeClass::Tiny);
        let one_sweep = {
            // What the checksum would be if it converged instantly.
            let (nf, nl, nb, nc) = shape(SizeClass::Tiny);
            let _ = (nf, nl, nb, nc);
            1u64
        };
        assert_ne!(v & 0xff, one_sweep, "must take more than one sweep");
    }

    #[test]
    fn heuristic_migrates_the_feeder_walk() {
        let sel = select(&parse(DSL).unwrap());
        let c = &sel.for_func("ComputeFeeder")[0];
        assert!(c.parallel);
        assert_eq!(c.mech("l"), Mech::Migrate);
    }

    #[test]
    fn speedup_scales() {
        let (_, seq) = run_sim(Config::sequential(), |ctx| run(ctx, SizeClass::Default));
        let (_, p8) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Default));
        let s = p8.speedup_vs(seq.makespan);
        assert!(s > 3.0, "8-processor Power speedup {s}");
        let (_, p1) = run_sim(Config::olden(1), |ctx| run(ctx, SizeClass::Default));
        let s1 = p1.speedup_vs(seq.makespan);
        assert!(s1 > 0.85, "Power's 1-proc overhead should be small: {s1}");
    }
}
