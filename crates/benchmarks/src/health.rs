//! **Health** — the Columbian health-care simulation (Table 1: 1365
//! villages), after Lomow et al.
//!
//! Villages form a four-way tree (1365 = a complete 6-level 4-ary tree);
//! each village hosts a hospital with a list of patients. Every time step
//! the tree is traversed; leaf villages generate patients; each patient's
//! treatment advances, and on completion the patient is either discharged
//! or **referred up the tree to the parent hospital**, joining its list.
//!
//! The heuristic "according to its design, chooses migration for the tree
//! traversal, and caching to access remote items in the lists" (§5).
//! Subtrees are distributed at a fixed depth, so referred patients cross
//! processors only near the root — the paper notes fewer than two percent
//! of list items arrive from a remote processor, which is why the local
//! knowledge scheme wins despite its coarse invalidation.

use crate::rng::mix2;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

const MI: Mechanism = Mechanism::Migrate;
const CA: Mechanism = Mechanism::Cache;

/// Village layout (8 words).
const V_CHILD0: usize = 0; // .. V_CHILD3 = 3
const V_LIST: usize = 4;
const V_SEED: usize = 5;
const V_LEVEL: usize = 6;
const VILLAGE_WORDS: usize = 8;

/// Patient layout (4 words).
const P_NEXT: usize = 0;
const P_REMAIN: usize = 1;
const P_DECIDER: usize = 2;
const PATIENT_WORDS: usize = 4;

/// Probability a leaf village admits a new patient each step.
const GEN_PCT: u64 = 30;
/// Probability a completed treatment is referred up instead of discharged.
const REFER_PCT: u64 = 30;
/// Simulated time steps.
const STEPS: usize = 20;

/// Cycles to assess one patient, and per-village bookkeeping (calibrated
/// from Table 2's 34.19 s whole-program sequential time at 33 MHz).
const W_PATIENT: u64 = 400;
const W_VILLAGE: u64 = 800;

/// Kernel DSL: the per-village patient-list walk inside the parallel
/// 4-way tree traversal — Figure 5's `TraverseAndWalk` shape, so pass 2
/// finds **no** bottleneck: the list seed `v->list` changes every
/// iteration of the parent recursion.
pub const DSL: &str = r#"
    struct village { village *c0 @ 95; village *c1 @ 95; patient *list; };
    struct patient { patient *next; int remain; };
    void Step(village *v) {
        if (v == null) { return; }
        futurecall Step(v->c0);
        futurecall Step(v->c1);
        patient *p = v->list;
        while (p != null) {
            assess(p);
            p = p->next;
        }
    }
"#;

/// Tree depth (levels) per size class; villages = (4^L − 1)/3.
pub fn levels(size: SizeClass) -> u32 {
    match size {
        SizeClass::Tiny => 3,    // 21 villages
        SizeClass::Default => 5, // 341 villages
        SizeClass::Paper => 6,   // 1365 villages (Table 1)
    }
}

fn village_seed(path_id: u64) -> u64 {
    mix2(path_id, 0x4EA17)
}

/// Build the village tree: child `k` of a node with processor range
/// `[lo, hi)` takes the `k`-th quarter; the node itself sits with child
/// 0's quarter, so children 1–3 are remote and their futures fork.
fn build<B: Backend>(ctx: &mut B, level: u32, path_id: u64, lo: usize, hi: usize) -> GPtr {
    let v = ctx.alloc(lo as ProcId, VILLAGE_WORDS);
    ctx.write(v, V_SEED, village_seed(path_id), MI);
    ctx.write(v, V_LEVEL, level as i64, MI);
    ctx.write(v, V_LIST, GPtr::NULL, MI);
    if level > 0 {
        for k in 0..4usize {
            let (clo, chi) = crate::split_range4(lo, hi, k);
            let child = build(ctx, level - 1, path_id * 4 + k as u64 + 1, clo, chi);
            ctx.write(v, V_CHILD0 + k, child, MI);
        }
    }
    v
}

/// One simulated step at a village subtree. Returns `(treated,
/// generated, referred_chain)` where the chain holds patients moving up
/// to the caller.
fn step_village<B: Backend>(ctx: &mut B, v: GPtr) -> (u64, u64, GPtr) {
    ctx.work(W_VILLAGE);
    let level = ctx.read_i64(v, V_LEVEL, MI);

    // Children first (in parallel): each returns its referral chain.
    // Children are spawned in descending order because the build places
    // child 0 on this village's own processor: a local child's future
    // body runs inline, so spawning the remote (forking) children first
    // keeps them from waiting behind it.
    // The level read above performed the check of `v`; the child and list
    // reads below are proven redundant (`ELIDED_SITES`) — every future's
    // continuation resumes on `v`'s processor.
    let mut child_handles = Vec::new();
    if level > 0 {
        for k in (0..4usize).rev() {
            let child = ctx.read_ptr_checked(v, V_CHILD0 + k, MI, Check::Elide);
            if !child.is_null() {
                child_handles.push(
                    ctx.future_call(move |ctx| ctx.call(move |ctx| step_village(ctx, child))),
                );
            }
        }
    }

    // Process this village's current list.
    let mut treated = 0u64;
    let mut generated = 0u64;
    let mut referred_head = GPtr::NULL;
    let mut keep_head = GPtr::NULL;
    let mut keep_tail = GPtr::NULL;
    let mut p = ctx.read_ptr_checked(v, V_LIST, MI, Check::Elide);
    while !p.is_null() {
        ctx.work(W_PATIENT);
        let next = ctx.read_ptr(p, P_NEXT, MI);
        let remain = ctx.read_i64(p, P_REMAIN, MI) - 1;
        if remain > 0 {
            ctx.write(p, P_REMAIN, remain, MI);
            // Keep in this village's list.
            ctx.write(p, P_NEXT, GPtr::NULL, MI);
            if keep_tail.is_null() {
                keep_head = p;
            } else {
                ctx.write(keep_tail, P_NEXT, p, MI);
            }
            keep_tail = p;
        } else {
            let decider = ctx.read(p, P_DECIDER, MI).as_u64();
            let refer = mix2(decider, level as u64) % 100 < REFER_PCT;
            if refer && level >= 0 && !is_root_level(ctx, v, level) {
                // Referred: new treatment duration, onto the up-chain.
                let dur = 1 + (mix2(decider, level as u64 * 7 + 1) % 3) as i64;
                ctx.write(p, P_REMAIN, dur, MI);
                ctx.write(p, P_DECIDER, mix2(decider, 0xD0C), MI);
                ctx.write(p, P_NEXT, referred_head, MI);
                referred_head = p;
            } else {
                treated += 1;
            }
        }
        p = next;
    }

    // Leaf villages admit new patients.
    if level == 0 {
        let seed = ctx.read(v, V_SEED, MI).as_u64();
        let next_seed = mix2(seed, 0x57E9);
        ctx.write(v, V_SEED, next_seed, MI);
        if next_seed % 100 < GEN_PCT {
            generated += 1;
            let pat = ctx.alloc_near(v, PATIENT_WORDS);
            ctx.write(pat, P_REMAIN, 1 + (next_seed >> 8) as i64 % 3, MI);
            ctx.write(pat, P_DECIDER, mix2(next_seed, 0xDEC1DE), MI);
            ctx.write(pat, P_NEXT, GPtr::NULL, MI);
            if keep_tail.is_null() {
                keep_head = pat;
            } else {
                ctx.write(keep_tail, P_NEXT, pat, MI);
            }
            keep_tail = pat;
        }
    }

    // Collect children's referral chains: walking a chain built on a
    // (possibly remote) child processor is the cached list access of §5.
    for h in child_handles {
        let (t, g, mut chain) = ctx.touch(h);
        treated += t;
        generated += g;
        while !chain.is_null() {
            let next = ctx.read_ptr(chain, P_NEXT, CA);
            ctx.write(chain, P_NEXT, GPtr::NULL, CA);
            if keep_tail.is_null() {
                keep_head = chain;
            } else {
                ctx.write(keep_tail, P_NEXT, chain, CA);
            }
            keep_tail = chain;
            chain = next;
        }
    }

    ctx.write(v, V_LIST, keep_head, MI);
    (treated, generated, referred_head)
}

fn is_root_level<B: Backend>(ctx: &mut B, _v: GPtr, level: i64) -> bool {
    // The root is the only village whose level equals the configured top;
    // referral from the root is impossible. We pass the top level through
    // the context-free check below (levels() is known per size class at
    // the call sites, but the village's own level suffices: the run
    // wrapper treats referrals emerging from the root as treated).
    let _ = (ctx, level);
    false
}

/// Simulate the full system; checksum mixes treated, generated, and the
/// remaining backlog.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let l = levels(size);
    let n = ctx.nprocs();
    let root = ctx.uncharged(|ctx| build(ctx, l - 1, 1, 0, n));
    let mut treated = 0u64;
    let mut generated = 0u64;
    for _ in 0..STEPS {
        let (t, g, mut chain) = ctx.call(|ctx| step_village(ctx, root));
        treated += t;
        generated += g;
        // Referrals from the root have nowhere to go: discharged.
        while !chain.is_null() {
            treated += 1;
            chain = ctx.read_ptr(chain, P_NEXT, MI);
        }
    }
    // Remaining backlog (order-insensitive sum).
    let mut backlog = 0u64;
    ctx.uncharged(|ctx| {
        backlog = backlog_of(ctx, root);
    });
    mix2(mix2(treated, generated), backlog)
}

fn backlog_of<B: Backend>(ctx: &mut B, v: GPtr) -> u64 {
    if v.is_null() {
        return 0;
    }
    let mut sum = 0u64;
    let mut p = ctx.read_ptr(v, V_LIST, MI);
    while !p.is_null() {
        sum += ctx.read_i64(p, P_REMAIN, MI) as u64;
        p = ctx.read_ptr(p, P_NEXT, MI);
    }
    let level = ctx.read_i64(v, V_LEVEL, MI);
    if level > 0 {
        for k in 0..4usize {
            let c = ctx.read_ptr(v, V_CHILD0 + k, MI);
            sum += backlog_of(ctx, c);
        }
    }
    sum
}

/// Serial reference with the same per-village seeds and rules.
pub fn reference(size: SizeClass) -> u64 {
    struct Village {
        level: i64,
        seed: u64,
        children: Vec<usize>,
        list: Vec<(i64, u64)>, // (remain, decider)
    }
    fn build(vs: &mut Vec<Village>, level: i64, path_id: u64) -> usize {
        let idx = vs.len();
        vs.push(Village {
            level,
            seed: village_seed(path_id),
            children: Vec::new(),
            list: Vec::new(),
        });
        if level > 0 {
            for k in 0..4u64 {
                let c = build(vs, level - 1, path_id * 4 + k + 1);
                vs[idx].children.push(c);
            }
        }
        idx
    }
    let l = levels(size) as i64;
    let mut vs = Vec::new();
    let root = build(&mut vs, l - 1, 1);
    let mut treated = 0u64;
    let mut generated = 0u64;
    for _ in 0..STEPS {
        // Post-order step mirroring the instrumented traversal: each
        // village processes its own list, then absorbs children's
        // referral chains (which were produced this step).
        fn step(
            vs: &mut Vec<Village>,
            v: usize,
            treated: &mut u64,
            generated: &mut u64,
        ) -> Vec<(i64, u64)> {
            let children = vs[v].children.clone();
            let level = vs[v].level;
            // NOTE: the instrumented version spawns children first but
            // touches (absorbs) them after its own list processing; the
            // patient outcomes depend only on per-patient deciders, so
            // order does not change the counts.
            let mut referred = Vec::new();
            let mut kept = Vec::new();
            let list = std::mem::take(&mut vs[v].list);
            for (remain, decider) in list {
                let remain = remain - 1;
                if remain > 0 {
                    kept.push((remain, decider));
                } else {
                    let refer = mix2(decider, level as u64) % 100 < REFER_PCT;
                    if refer {
                        let dur = 1 + (mix2(decider, level as u64 * 7 + 1) % 3) as i64;
                        referred.push((dur, mix2(decider, 0xD0C)));
                    } else {
                        *treated += 1;
                    }
                }
            }
            if level == 0 {
                let next_seed = mix2(vs[v].seed, 0x57E9);
                vs[v].seed = next_seed;
                if next_seed % 100 < GEN_PCT {
                    *generated += 1;
                    kept.push((1 + (next_seed >> 8) as i64 % 3, mix2(next_seed, 0xDEC1DE)));
                }
            }
            for c in children {
                let chain = step(vs, c, treated, generated);
                kept.extend(chain);
            }
            vs[v].list = kept;
            referred
        }
        let chain = step(&mut vs, root, &mut treated, &mut generated);
        treated += chain.len() as u64;
    }
    let backlog: u64 = vs
        .iter()
        .flat_map(|v| v.list.iter().map(|&(r, _)| r as u64))
        .sum();
    mix2(mix2(treated, generated), backlog)
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &["Step 7:25 v->c1", "Step 8:22 v->list"];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "Step 6:25 v->c0 -> migrate",
    "Step 7:25 v->c1 -> migrate",
    "Step 8:22 v->list -> migrate",
    "Step 11:17 p->next -> cache",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
// The patient-list walk is omitted: the kernel encodes the heuristic's
// "cache" verdict for `p` as plain local reads of the village-resident
// list (`alloc_near` keeps patients on their village's processor), so
// there is no per-dereference mechanism argument to cross-check.
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[("Step", "v", Mechanism::Migrate)];

/// Static trip counts for the cost model: each of the `STEPS` ticks
/// visits every village once (4-ary tree, `(4^L - 1) / 3` villages) and
/// walks the waiting list of each of the `4^(L-1)` leaf villages.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    let l = levels(size) as u64;
    let villages = ((1u64 << (2 * l)) - 1) / 3;
    let leaves = 1u64 << (2 * (l - 1));
    let s = STEPS as u64;
    vec![("Step#0", villages * s), ("Step#1", leaves * s)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "Health",
    description: "Simulates the Columbian health care system",
    problem_size: "1365 villages",
    choice: "M+C",
    whole_program: true,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.03, 0.8), (1.5, 12.0), (0.05, 0.8), (0.08, 1.0)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn simulation_matches_reference() {
        for procs in [1, 2, 4, 8] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn something_actually_happens() {
        // Guard against a silent all-zero simulation.
        let a = reference(SizeClass::Tiny);
        let b = reference(SizeClass::Default);
        assert_ne!(a, b);
        assert_ne!(a, mix2(mix2(0, 0), 0), "patients were generated");
    }

    #[test]
    fn heuristic_tree_migrates_list_caches() {
        let sel = select(&parse(DSL).unwrap());
        let rec = sel.recursion_of("Step").unwrap();
        assert_eq!(rec.migration_var(), Some("v"), "tree traversal migrates");
        assert!(!rec.bottleneck, "v->list differs per node: no bottleneck");
        let whiles = sel.for_func("Step");
        let list_loop = whiles
            .iter()
            .find(|c| matches!(c.kind, olden_analysis::LoopKind::While { .. }))
            .unwrap();
        assert_eq!(list_loop.mech("p"), Mech::Cache, "patient list caches");
    }

    #[test]
    fn remote_list_items_are_rare() {
        let (_, rep) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Default));
        // §5: fewer than ~2 % of patients arrive from a remote processor;
        // with subtree distribution the cached remote share stays small.
        let total = rep.cache.cacheable_reads + rep.cache.cacheable_writes;
        if total > 0 {
            let remote = rep.cache.remote_reads + rep.cache.remote_writes;
            let pct = 100.0 * remote as f64 / total as f64;
            assert!(pct < 30.0, "remote cacheable share {pct}%");
        }
        assert!(rep.stats.migrations > 0, "tree traversal migrates");
    }
}
