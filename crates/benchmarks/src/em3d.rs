//! **EM3D** — electromagnetic-wave propagation in a 3D object (Table 1:
//! 2 K nodes), after Culler et al.'s Split-C application.
//!
//! The object is a bipartite graph of E nodes and H nodes. At each time
//! step every E node's value is recomputed as a weighted difference of
//! its H-node neighbours' values, then symmetrically for H nodes. Nodes
//! live on per-processor linked lists (blocked layout → the list walk has
//! high locality); a fraction of each node's neighbours live on other
//! processors (low locality).
//!
//! The heuristic chooses **migration for the node lists and software
//! caching for the edges** (§5) — and Table 2's starkest result is the
//! migrate-only column: 0.05 at 32 processors, because migrating on every
//! remote neighbour read ping-pongs the thread across the machine.

use crate::rng::{mix2, SplitMix64};
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

/// Node layout: list link, value, then `DEGREE` (neighbour ptr, weight)
/// pairs.
pub const F_NEXT: usize = 0;
pub const F_VAL: usize = 1;
const F_NBR0: usize = 2;
pub const DEGREE: usize = 10;
const NODE_WORDS: usize = F_NBR0 + 2 * DEGREE;

/// Fraction of neighbour edges that cross processors (Table 3 reports
/// 19.4 % of EM3D's cacheable reads as remote).
const REMOTE_FRAC: f64 = 0.20;

/// Cycles per node update beyond the dereferences (the weighted-sum
/// arithmetic over `DEGREE` neighbours).
const W_NODE: u64 = 150;

/// Time steps simulated.
const STEPS: usize = 4;

/// Kernel DSL: the node-list walk reading neighbour values. The list
/// update (`n = n->next`, 95 % blocked affinity) migrates; the neighbour
/// pointer `h` is not an induction variable and caches.
pub const DSL: &str = r#"
    struct enode { enode *next @ 95; hnode *nbr; int val; };
    struct hnode { hnode *next @ 95; int val; };
    void ComputeE(enode *n) {
        while (n != null) {
            hnode *h = n->nbr;
            n->val = n->val - h->val;
            n = n->next;
        }
    }
"#;

/// Nodes per side (E and H each) for a size class.
pub fn nodes(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 64,
        SizeClass::Default => 1024, // divisible by VREGIONS: regions align with processors
        SizeClass::Paper => 2048,
    }
}

fn init_val(side: usize, i: usize) -> f64 {
    1.0 + (mix2(i as u64, side as u64 ^ 0xE3D) % 4096) as f64 / 4096.0
}

fn weight(side: usize, i: usize, k: usize) -> f64 {
    ((mix2((i * DEGREE + k) as u64, side as u64 ^ 0x3E3D) % 2048) as f64 / 2048.0) * 0.1
}

/// Virtual locality regions for topology generation. Fixed (independent
/// of the machine size) so the same graph is simulated at every
/// processor count — matching the paper's methodology of one input graph
/// per problem size.
const VREGIONS: usize = 32;

/// Deterministic neighbour index for edge `k` of node `i`: mostly within
/// the node's own virtual region, `REMOTE_FRAC` of the time anywhere.
fn neighbour_index(rng_val: u64, i: usize, n: usize) -> usize {
    let block = n / VREGIONS;
    let r = SplitMix64::new(rng_val).unit_f64();
    let mut rng = SplitMix64::new(rng_val ^ 0x5eed);
    let region = (i / block.max(1)).min(VREGIONS - 1);
    if block == 0 {
        return rng.below(n as u64) as usize;
    }
    if r < REMOTE_FRAC {
        // Remote edges go to the spatially adjacent region (the graph is
        // a 3-D mesh slice): heavy line reuse keeps the miss rate low,
        // as in Table 3 (6.18 % of EM3D's remote references miss).
        let other = (region + 1) % VREGIONS;
        other * block + rng.below(block as u64) as usize
    } else {
        region * block + rng.below(block as u64) as usize
    }
}

struct Graph {
    e_heads: Vec<GPtr>,
    h_heads: Vec<GPtr>,
}

/// Build both node sets, blocked across processors, with per-processor
/// list chains (uncharged — EM3D is a kernel-time benchmark).
fn build<B: Backend>(ctx: &mut B, n: usize) -> Graph {
    let procs = ctx.nprocs();
    ctx.uncharged(|ctx| {
        let alloc_side = |ctx: &mut B, side: usize| -> Vec<GPtr> {
            (0..n)
                .map(|i| {
                    let proc = (i * procs / n) as ProcId;
                    let nd = ctx.alloc(proc, NODE_WORDS);
                    ctx.write(nd, F_VAL, init_val(side, i), Mechanism::Migrate);
                    nd
                })
                .collect()
        };
        let e_nodes = alloc_side(ctx, 0);
        let h_nodes = alloc_side(ctx, 1);
        let link = |ctx: &mut B, nodes: &[GPtr], side: usize, others: &[GPtr]| {
            for i in 0..n {
                let next = if i + 1 < n && nodes[i + 1].proc() == nodes[i].proc() {
                    nodes[i + 1]
                } else {
                    GPtr::NULL
                };
                ctx.write(nodes[i], F_NEXT, next, Mechanism::Migrate);
                for k in 0..DEGREE {
                    let key = mix2((side * n + i) as u64, k as u64);
                    let j = neighbour_index(key, i, n);
                    ctx.write(nodes[i], F_NBR0 + 2 * k, others[j], Mechanism::Migrate);
                    ctx.write(
                        nodes[i],
                        F_NBR0 + 2 * k + 1,
                        weight(side, i, k),
                        Mechanism::Migrate,
                    );
                }
            }
        };
        link(ctx, &e_nodes, 0, &h_nodes);
        link(ctx, &h_nodes, 1, &e_nodes);
        let heads = |nodes: &[GPtr]| -> Vec<GPtr> {
            let mut hs = Vec::new();
            let mut last: Option<ProcId> = None;
            for &nd in nodes {
                if last != Some(nd.proc()) {
                    hs.push(nd);
                    last = Some(nd.proc());
                }
            }
            hs
        };
        Graph {
            e_heads: heads(&e_nodes),
            h_heads: heads(&h_nodes),
        }
    })
}

/// Update one per-processor sublist: the list walk migrates, neighbour
/// reads cache. The iteration's first `node` access performs the check;
/// every later `node` access in the straight-line body is proven
/// redundant by the optimizer (`ELIDED_SITES`) — cached neighbour reads
/// between them cannot move the thread.
fn update_sublist<B: Backend>(ctx: &mut B, head: GPtr) {
    let mut node = head;
    while !node.is_null() {
        ctx.work(W_NODE);
        let mut v = ctx.read_f64(node, F_VAL, Mechanism::Migrate);
        for k in 0..DEGREE {
            let nbr = ctx.read_ptr_checked(node, F_NBR0 + 2 * k, Mechanism::Migrate, Check::Elide);
            let w =
                ctx.read_f64_checked(node, F_NBR0 + 2 * k + 1, Mechanism::Migrate, Check::Elide);
            let nv = ctx.read_f64(nbr, F_VAL, Mechanism::Cache);
            v -= w * nv;
        }
        ctx.write_checked(node, F_VAL, v, Mechanism::Migrate, Check::Elide);
        node = ctx.read_ptr_checked(node, F_NEXT, Mechanism::Migrate, Check::Elide);
    }
}

/// One half-step over a node set: a future per processor sublist, remote
/// sublists spawned first (processor 0's own sublist runs inline and
/// would delay every other fork).
fn compute<B: Backend>(ctx: &mut B, heads: &[GPtr]) {
    let handles: Vec<_> = heads
        .iter()
        .rev()
        .map(|&h| ctx.future_call(move |ctx| ctx.call(move |ctx| update_sublist(ctx, h))))
        .collect();
    for h in handles {
        ctx.touch(h);
    }
}

/// Checksum: bitwise mix of every node value after the simulation.
fn checksum<B: Backend>(ctx: &mut B, g: &Graph) -> u64 {
    let mut acc = 0u64;
    for &head in g.e_heads.iter().chain(&g.h_heads) {
        let mut node = head;
        while !node.is_null() {
            acc = mix2(acc, ctx.read(node, F_VAL, Mechanism::Cache).as_u64());
            node = ctx.read_ptr(node, F_NEXT, Mechanism::Cache);
        }
    }
    acc
}

pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = nodes(size);
    let g = build(ctx, n);
    for _ in 0..STEPS {
        compute(ctx, &g.e_heads);
        compute(ctx, &g.h_heads);
    }
    let mut out = 0;
    ctx.uncharged(|ctx| {
        out = checksum(ctx, &g);
    });
    out
}

/// Serial reference with identical arithmetic order (the topology is
/// machine-independent, so one reference covers every processor count).
pub fn reference(size: SizeClass) -> u64 {
    let n = nodes(size);
    let mut e_val: Vec<f64> = (0..n).map(|i| init_val(0, i)).collect();
    let mut h_val: Vec<f64> = (0..n).map(|i| init_val(1, i)).collect();
    let nbrs = |side: usize| -> Vec<Vec<(usize, f64)>> {
        (0..n)
            .map(|i| {
                (0..DEGREE)
                    .map(|k| {
                        let key = mix2((side * n + i) as u64, k as u64);
                        (neighbour_index(key, i, n), weight(side, i, k))
                    })
                    .collect()
            })
            .collect()
    };
    let e_nbrs = nbrs(0);
    let h_nbrs = nbrs(1);
    for _ in 0..STEPS {
        for i in 0..n {
            let mut v = e_val[i];
            for &(j, w) in &e_nbrs[i] {
                v -= w * h_val[j];
            }
            e_val[i] = v;
        }
        for i in 0..n {
            let mut v = h_val[i];
            for &(j, w) in &h_nbrs[i] {
                v -= w * e_val[j];
            }
            h_val[i] = v;
        }
    }
    let mut acc = 0u64;
    for v in e_val.iter().chain(&h_val) {
        acc = mix2(acc, v.to_bits());
    }
    acc
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[
    "ComputeE 7:22 n->val",
    "ComputeE 7:13 n->val",
    "ComputeE 8:17 n->next",
];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "ComputeE 6:24 n->nbr -> migrate",
    "ComputeE 7:22 n->val -> migrate",
    "ComputeE 7:31 h->val -> cache",
    "ComputeE 7:13 n->val -> migrate",
    "ComputeE 8:17 n->next -> migrate",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[
    ("ComputeE", "n", Mechanism::Migrate),
    ("ComputeE", "h", Mechanism::Cache),
];

/// Static trip counts for the cost model: each of the `STEPS` phases
/// relaxes both halves of the bipartite graph, one list visit per node.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    vec![("ComputeE#0", (STEPS * 2 * nodes(size)) as u64)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "EM3D",
    description: "Simulates the propagation of electro-magnetic waves in a 3D object",
    problem_size: "2K nodes",
    choice: "M+C",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.2, 1.5), (0.6, 3.0), (0.15, 1.0), (0.008, 0.8)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config, Mechanism};

    #[test]
    fn values_match_reference() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn heuristic_migrates_list_caches_neighbours() {
        let sel = select(&parse(DSL).unwrap());
        let c = &sel.for_func("ComputeE")[0];
        assert_eq!(c.mech("n"), Mech::Migrate, "node list: high locality");
        assert_eq!(c.mech("h"), Mech::Cache, "edges: low locality");
    }

    #[test]
    fn remote_read_share_near_table3() {
        // Table 3 reports 19.4 % of cacheable reads remote at 32
        // processors, where every virtual region boundary is also a
        // processor boundary.
        let (_, rep) = run_sim(Config::olden(32), |ctx| run(ctx, SizeClass::Default));
        let pct = rep.cache.read_remote_pct();
        assert!(
            (10.0..30.0).contains(&pct),
            "remote share {pct}% out of range"
        );
        assert_eq!(rep.cache.cacheable_writes, 0, "Table 3: EM3D writes 0");
    }

    #[test]
    fn migrate_only_collapses() {
        let (_, seq) = run_sim(Config::sequential(), |ctx| run(ctx, SizeClass::Default));
        let heuristic = run_sim(Config::olden(16), |ctx| run(ctx, SizeClass::Default)).1;
        let forced = run_sim(Config::olden(16).forced(Mechanism::Migrate), |ctx| {
            run(ctx, SizeClass::Default)
        })
        .1;
        let s_h = heuristic.speedup_vs(seq.makespan);
        let s_m = forced.speedup_vs(seq.makespan);
        assert!(
            s_m < s_h / 4.0,
            "migrate-only ({s_m}) must collapse vs heuristic ({s_h})"
        );
        assert!(s_m < 0.5, "Table 2: EM3D migrate-only ≈ 0.05");
    }
}
