//! **ListDist** — the Figure 2 micro-workload: one list, two
//! distributions, two mechanisms.
//!
//! A list of `N` elements evenly divided among `P` processors, traversed
//! once. With a **blocked** layout the traversal crosses a processor
//! boundary only `P − 1` times, so migration wins; with a **cyclic**
//! layout every `next` crosses, so a traversal costs `N − 1` migrations
//! but only `N(P−1)/P` remote accesses under caching. The closed forms in
//! §4 are asserted by this module's tests, and the `fig2` bench binary
//! prints the measured crossover.

use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Mechanism};

/// Field offsets of a list node (2 words).
pub const F_NEXT: usize = 0;
pub const F_VAL: usize = 1;
const NODE_WORDS: usize = 2;

/// Cycles of local computation per visited element.
const W_VISIT: u64 = 40;

/// How list elements map to processors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Distribution {
    /// Element `i` lives on processor `i * P / N` (contiguous runs).
    Blocked,
    /// Element `i` lives on processor `i mod P`.
    Cyclic,
}

/// The list-traversal kernel in the analysis DSL. At the default 70 %
/// affinity the heuristic picks caching; Figure 2's blocked layout
/// corresponds to an affinity of `1 − (P−1)/(N−1)` ≈ 99 %+, for which it
/// picks migration — exactly the §4 discussion.
pub const DSL_DEFAULT: &str = r#"
    struct list { list *next; int val; };
    int Walk(list *l) {
        int sum = 0;
        while (l != null) {
            sum = sum + l->val;
            l = l->next;
        }
        return sum;
    }
"#;

/// Same kernel with a blocked-layout affinity annotation (99 %).
pub const DSL_BLOCKED: &str = r#"
    struct list { list *next @ 99; int val; };
    int Walk(list *l) {
        int sum = 0;
        while (l != null) {
            sum = sum + l->val;
            l = l->next;
        }
        return sum;
    }
"#;

/// Number of elements for each size class.
pub fn elements(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 64,
        SizeClass::Default => 4096,
        SizeClass::Paper => 32768,
    }
}

/// Build the list (uncharged), returning its head.
pub fn build<B: Backend>(ctx: &mut B, n: usize, dist: Distribution) -> GPtr {
    let p = ctx.nprocs();
    ctx.uncharged(|ctx| {
        let mut head = GPtr::NULL;
        // Build back to front so each node links to the next.
        for i in (0..n).rev() {
            let proc = match dist {
                Distribution::Blocked => i * p / n,
                Distribution::Cyclic => i % p,
            } as ProcId;
            let node = ctx.alloc(proc, NODE_WORDS);
            ctx.write(node, F_NEXT, head, Mechanism::Migrate);
            ctx.write(node, F_VAL, (i as i64) + 1, Mechanism::Migrate);
            head = node;
        }
        head
    })
}

/// Traverse the list with the given mechanism, summing values.
pub fn walk<B: Backend>(ctx: &mut B, head: GPtr, mech: Mechanism) -> i64 {
    ctx.call(|ctx| {
        let mut sum = 0i64;
        let mut l = head;
        while !l.is_null() {
            ctx.work(W_VISIT);
            sum += ctx.read_i64(l, F_VAL, mech);
            l = ctx.read_ptr(l, F_NEXT, mech);
        }
        sum
    })
}

/// Registry entry: the default run uses the paper's default choice for a
/// list traversal (caching) on a blocked layout.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = elements(size);
    let head = build(ctx, n, Distribution::Blocked);
    walk(ctx, head, Mechanism::Cache) as u64
}

/// Serial reference: `Σ i+1 = n(n+1)/2`.
pub fn reference(size: SizeClass) -> u64 {
    let n = elements(size) as u64;
    n * (n + 1) / 2
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[];

/// Heuristic verdicts for every dereference site of `DSL_DEFAULT` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] =
    &["Walk 6:25 l->val -> cache", "Walk 7:17 l->next -> cache"];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[("Walk", "l", Mechanism::Cache)];

/// Static trip counts for the cost model: one visit per element.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    vec![("Walk#0", elements(size) as u64)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "ListDist",
    description: "Figure 2 list-distribution micro-workload",
    problem_size: "32K elements",
    choice: "-",
    whole_program: false,
    dsl: DSL_DEFAULT,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.01, 2.0), (0.01, 2.0), (0.01, 2.0), (0.01, 2.0)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    const N: usize = 64;

    #[test]
    fn sum_correct_for_all_combinations() {
        for dist in [Distribution::Blocked, Distribution::Cyclic] {
            for mech in [Mechanism::Migrate, Mechanism::Cache] {
                let (sum, _) = run_sim(Config::olden(4), |ctx| {
                    let head = build(ctx, N, dist);
                    walk(ctx, head, mech)
                });
                assert_eq!(sum as u64, (N * (N + 1) / 2) as u64, "{dist:?}/{mech:?}");
            }
        }
    }

    #[test]
    fn blocked_migrate_crosses_p_minus_1_times() {
        let p = 4;
        let (_, rep) = run_sim(Config::olden(p), |ctx| {
            let head = build(ctx, N, Distribution::Blocked);
            walk(ctx, head, Mechanism::Migrate)
        });
        assert_eq!(rep.stats.migrations as usize, p - 1, "§4: P−1 migrations");
    }

    #[test]
    fn cyclic_migrate_crosses_every_link() {
        let p = 4;
        let (_, rep) = run_sim(Config::olden(p), |ctx| {
            let head = build(ctx, N, Distribution::Cyclic);
            walk(ctx, head, Mechanism::Migrate)
        });
        // §4: N−1 migrations (the val read keeps the thread on the node's
        // processor; only the next-hop crosses).
        assert_eq!(rep.stats.migrations as usize, N - 1);
    }

    #[test]
    fn cyclic_cache_remote_share_is_p_minus_1_over_p() {
        let p = 4;
        let (_, rep) = run_sim(Config::olden(p), |ctx| {
            let head = build(ctx, N, Distribution::Cyclic);
            walk(ctx, head, Mechanism::Cache)
        });
        let remote = rep.cache.remote_reads;
        let total = rep.cache.cacheable_reads;
        // §4: N(P−1)/P remote accesses.
        let expect = (N * 2) * (p - 1) / p; // two reads per node
        assert_eq!(total as usize, N * 2);
        assert_eq!(remote as usize, expect);
        assert_eq!(rep.stats.migrations, 0);
    }

    #[test]
    fn crossover_matches_figure2() {
        // Blocked: migration beats caching. Cyclic: caching beats
        // migration. (Makespans on 4 processors.) The list must be long
        // enough for migration's fixed per-crossing cost to amortize
        // against line-granularity caching.
        let p = 4;
        let n = 512;
        let time = |dist, mech| {
            let (_, rep) = run_sim(Config::olden(p), |ctx| {
                let head = build(ctx, n, dist);
                walk(ctx, head, mech)
            });
            rep.makespan
        };
        let bm = time(Distribution::Blocked, Mechanism::Migrate);
        let bc = time(Distribution::Blocked, Mechanism::Cache);
        let cm = time(Distribution::Cyclic, Mechanism::Migrate);
        let cc = time(Distribution::Cyclic, Mechanism::Cache);
        assert!(bm < bc, "blocked: migrate {bm} should beat cache {bc}");
        assert!(cc < cm, "cyclic: cache {cc} should beat migrate {cm}");
    }

    #[test]
    fn heuristic_default_caches_blocked_hint_migrates() {
        let sel = select(&parse(DSL_DEFAULT).unwrap());
        assert_eq!(sel.mech("Walk", "l"), Mech::Cache, "70% default");
        let sel = select(&parse(DSL_BLOCKED).unwrap());
        assert_eq!(sel.mech("Walk", "l"), Mech::Migrate, "99% blocked hint");
    }

    #[test]
    fn registry_run_matches_reference() {
        let (v, _) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Tiny));
        assert_eq!(v, reference(SizeClass::Tiny));
    }
}
