//! **Voronoi** — Voronoi diagram of a point set (Table 1: 64 K points),
//! after Guibas and Stolfi.
//!
//! As in the Olden benchmark, the program computes the **Delaunay
//! triangulation** (the Voronoi diagram's planar dual — the quad-edge
//! structure represents both subdivisions simultaneously) by classic
//! divide and conquer: points are sorted by `x`, halves are triangulated
//! recursively, and the merge walks the two sub-hulls knitting them
//! together with `connect`/`delete_edge`, guided by exact `ccw` and
//! `in_circle` predicates (128-bit integer arithmetic).
//!
//! The merge "walks along two subresults, alternating between them in an
//! irregular fashion. As a result, the heuristic chooses to pin the
//! computation on the processor that owns the root of one of the
//! subresults and use software caching to bring remote subresults to the
//! computation" (§5) — merges here dereference edges with the caching
//! mechanism while construction within a leaf cell migrates. The paper
//! notes this choice is *not* optimal (a hand-tuned traverse-one/cache-
//! other version reaches 12+ on 32 processors) but is dramatically better
//! than migrate-only (Table 2: 8.76 vs 0.47).
//!
//! Quad-edge records are 8-word groups in the distributed heap (four
//! directed edges of 2 words each: `onext` link and `data`); an edge
//! reference is a pointer into the group, so `rot`/`sym` are pure
//! address arithmetic exactly as in the original representation.

use crate::rng::{mix2, SplitMix64};
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Mechanism};
use std::sync::{Arc, Mutex};

const MI: Mechanism = Mechanism::Migrate;
const CA: Mechanism = Mechanism::Cache;

/// Point record (8 words to preserve the 8-word alignment of the bump
/// allocator that edge-group address arithmetic relies on).
const P_X: usize = 0;
const P_Y: usize = 1;
const P_ID: usize = 2;
const POINT_WORDS: usize = 8;

/// Edge group: 4 directed edges × (onext, data).
const GROUP_WORDS: usize = 8;

/// Cycles per predicate evaluation / merge step.
const W_PRED: u64 = 80;

/// The merge walk in the analysis DSL: the hull-walking pointer hops
/// `onext`/`oprev` unpredictably — a search, cached by the heuristic.
pub const DSL: &str = r#"
    struct edge { edge *onext; edge *oprev; int data; };
    void MergeWalk(edge *basel) {
        while (valid(basel)) {
            if (probe(basel)) {
                basel = basel->onext;
            } else {
                basel = basel->oprev;
            }
        }
    }
"#;

/// Point count per size class.
pub fn point_count(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 24,
        SizeClass::Default => 512,
        SizeClass::Paper => 65536, // Table 1: 64K points
    }
}

/// Deterministic input: distinct points sorted by (x, y).
pub fn points(size: SizeClass) -> Vec<(i64, i64)> {
    let n = point_count(size);
    let mut rng = SplitMix64::new(0x70120_u64);
    let mut pts: Vec<(i64, i64)> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while pts.len() < n {
        let p = (rng.below(1_000_000) as i64, rng.below(1_000_000) as i64);
        if seen.insert(p) {
            pts.push(p);
        }
    }
    pts.sort_unstable();
    pts
}

// ---------------------------------------------------------------------
// Exact predicates.
// ---------------------------------------------------------------------

/// Twice the signed area of triangle (a, b, c): > 0 iff counterclockwise.
fn ccw(a: (i64, i64), b: (i64, i64), c: (i64, i64)) -> bool {
    let v = (b.0 - a.0) as i128 * (c.1 - a.1) as i128 - (b.1 - a.1) as i128 * (c.0 - a.0) as i128;
    v > 0
}

fn right_of(p: (i64, i64), org: (i64, i64), dest: (i64, i64)) -> bool {
    ccw(p, dest, org)
}

fn left_of(p: (i64, i64), org: (i64, i64), dest: (i64, i64)) -> bool {
    ccw(p, org, dest)
}

/// Is `d` strictly inside the circumcircle of ccw triangle (a, b, c)?
fn in_circle(a: (i64, i64), b: (i64, i64), c: (i64, i64), d: (i64, i64)) -> bool {
    let adx = (a.0 - d.0) as i128;
    let ady = (a.1 - d.1) as i128;
    let bdx = (b.0 - d.0) as i128;
    let bdy = (b.1 - d.1) as i128;
    let cdx = (c.0 - d.0) as i128;
    let cdy = (c.1 - d.1) as i128;
    let alift = adx * adx + ady * ady;
    let blift = bdx * bdx + bdy * bdy;
    let clift = cdx * cdx + cdy * cdy;
    let det = alift * (bdx * cdy - bdy * cdx) - blift * (adx * cdy - ady * cdx)
        + clift * (adx * bdy - ady * bdx);
    det > 0
}

// ---------------------------------------------------------------------
// Generic quad-edge implementation, abstract over storage so the
// distributed run and the serial reference execute the same algorithm.
// ---------------------------------------------------------------------

/// Storage abstraction: the distributed heap (with an [`OldenCtx`]) or a
/// plain arena (context `()`). Threading the context through every
/// operation — instead of storing it in the store — is what lets the
/// heap implementation spawn futures in [`QeStore::par2`].
trait QeStore<C> {
    type Edge: Copy + PartialEq + Send + 'static;
    /// Allocate an edge group near `region` (leaf-cell placement).
    fn make_edge(&mut self, c: &mut C, region: usize) -> Self::Edge;
    fn rot(&self, e: Self::Edge) -> Self::Edge;
    fn sym(&self, e: Self::Edge) -> Self::Edge;
    fn rot_inv(&self, e: Self::Edge) -> Self::Edge;
    fn onext(&mut self, c: &mut C, e: Self::Edge) -> Self::Edge;
    fn set_onext(&mut self, c: &mut C, e: Self::Edge, v: Self::Edge);
    fn org(&mut self, c: &mut C, e: Self::Edge) -> (i64, i64);
    fn set_org_dest(&mut self, c: &mut C, e: Self::Edge, org_id: usize, dest_id: usize);
    fn mark_deleted(&mut self, e: Self::Edge);
    fn charge(&mut self, c: &mut C, cycles: u64);
    /// Pin the computation at the subproblem's region — the heap version
    /// migrates by dereferencing the region's first point (§5: "pin the
    /// computation on the processor that owns the root of one of the
    /// subresults"); no-op for the arena.
    fn enter_region(&mut self, _c: &mut C, _point_id: usize) {}
    /// Run the two half-problems, possibly in parallel (the heap version
    /// wraps the right one in a `futurecall`). The right closure carries
    /// `Send + 'static` because a real thread backend may run the forked
    /// body on another OS thread.
    fn par2<T: Send + 'static>(
        &mut self,
        c: &mut C,
        l: impl FnOnce(&mut Self, &mut C) -> T,
        r: impl FnOnce(&mut Self, &mut C) -> T + Send + 'static,
    ) -> (T, T)
    where
        Self: Sized,
    {
        let lv = l(self, c);
        let rv = r(self, c);
        (lv, rv)
    }

    fn oprev(&mut self, c: &mut C, e: Self::Edge) -> Self::Edge {
        let r = self.rot(e);
        let n = self.onext(c, r);
        self.rot(n)
    }
    fn lnext(&mut self, c: &mut C, e: Self::Edge) -> Self::Edge {
        let r = self.rot_inv(e);
        let n = self.onext(c, r);
        self.rot(n)
    }
    fn rprev(&mut self, c: &mut C, e: Self::Edge) -> Self::Edge {
        let s = self.sym(e);
        self.onext(c, s)
    }
    fn dest(&mut self, c: &mut C, e: Self::Edge) -> (i64, i64) {
        let s = self.sym(e);
        self.org(c, s)
    }

    fn splice(&mut self, c: &mut C, a: Self::Edge, b: Self::Edge) {
        let a_next = self.onext(c, a);
        let b_next = self.onext(c, b);
        let alpha = self.rot(a_next);
        let beta = self.rot(b_next);
        let alpha_next = self.onext(c, alpha);
        let beta_next = self.onext(c, beta);
        self.set_onext(c, a, b_next);
        self.set_onext(c, b, a_next);
        self.set_onext(c, alpha, beta_next);
        self.set_onext(c, beta, alpha_next);
    }

    fn connect(
        &mut self,
        c: &mut C,
        a: Self::Edge,
        b: Self::Edge,
        region: usize,
        ids: &Ids,
    ) -> Self::Edge {
        let e = self.make_edge(c, region);
        let (da, ob) = {
            let d = self.dest(c, a);
            let o = self.org(c, b);
            (d, o)
        };
        self.set_org_dest(c, e, ids.id_of(da), ids.id_of(ob));
        let ln = self.lnext(c, a);
        self.splice(c, e, ln);
        let se = self.sym(e);
        self.splice(c, se, b);
        e
    }

    fn delete_edge(&mut self, c: &mut C, e: Self::Edge) {
        let p = self.oprev(c, e);
        self.splice(c, e, p);
        let s = self.sym(e);
        let sp = self.oprev(c, s);
        self.splice(c, s, sp);
        self.mark_deleted(e);
    }
}

/// Point-id lookup (coordinates are distinct).
struct Ids {
    map: std::collections::HashMap<(i64, i64), usize>,
}

impl Ids {
    fn new(pts: &[(i64, i64)]) -> Ids {
        Ids {
            map: pts.iter().enumerate().map(|(i, &p)| (p, i)).collect(),
        }
    }
    fn id_of(&self, p: (i64, i64)) -> usize {
        self.map[&p]
    }
}

/// Recursive Guibas–Stolfi Delaunay over `pts[lo..hi]` (sorted by x,y).
/// Returns the ccw convex-hull edges (le, re): `le` has the leftmost
/// point as origin, `re` the rightmost.
fn delaunay<C, S: QeStore<C>>(
    s: &mut S,
    c: &mut C,
    pts: &Arc<Vec<(i64, i64)>>,
    lo: usize,
    hi: usize,
    ids: &Arc<Ids>,
) -> (S::Edge, S::Edge) {
    let n = hi - lo;
    debug_assert!(n >= 2);
    let region = lo;
    s.enter_region(c, lo);
    if n == 2 {
        let a = s.make_edge(c, region);
        s.set_org_dest(c, a, lo, lo + 1);
        let sa = s.sym(a);
        return (a, sa);
    }
    if n == 3 {
        let (p1, p2, p3) = (pts[lo], pts[lo + 1], pts[lo + 2]);
        let a = s.make_edge(c, region);
        let b = s.make_edge(c, region);
        s.set_org_dest(c, a, lo, lo + 1);
        s.set_org_dest(c, b, lo + 1, lo + 2);
        let sa = s.sym(a);
        s.splice(c, sa, b);
        if ccw(p1, p2, p3) {
            let _e = s.connect(c, b, a, region, ids);
            let sb = s.sym(b);
            return (a, sb);
        } else if ccw(p1, p3, p2) {
            let e = s.connect(c, b, a, region, ids);
            let se = s.sym(e);
            return (se, e);
        } else {
            // Collinear: no triangle.
            let sb = s.sym(b);
            return (a, sb);
        }
    }
    let mid = lo + n / 2;
    let (lp, li) = (Arc::clone(pts), Arc::clone(ids));
    let (rp, ri) = (Arc::clone(pts), Arc::clone(ids));
    let ((mut ldo, ldi), (rdi, mut rdo)) = s.par2(
        c,
        move |s, c| delaunay(s, c, &lp, lo, mid, &li),
        move |s, c| delaunay(s, c, &rp, mid, hi, &ri),
    );
    s.enter_region(c, lo);
    let mut ldi = ldi;
    let mut rdi = rdi;

    // Lower common tangent of the two triangulations.
    loop {
        s.charge(c, W_PRED);
        let ldi_org = s.org(c, ldi);
        let ldi_dest = s.dest(c, ldi);
        let rdi_org = s.org(c, rdi);
        if left_of(rdi_org, ldi_org, ldi_dest) {
            ldi = s.lnext(c, ldi);
        } else {
            let rdi_dest = s.dest(c, rdi);
            if right_of(ldi_org, rdi_org, rdi_dest) {
                rdi = s.rprev(c, rdi);
            } else {
                break;
            }
        }
    }

    // Base edge of the merge.
    let srdi = s.sym(rdi);
    let mut basel = s.connect(c, srdi, ldi, region, ids);
    {
        let bl_org = s.org(c, basel);
        let bl_dest = s.dest(c, basel);
        if bl_org == s.org(c, rdo) {
            rdo = basel;
        }
        if bl_dest == s.org(c, ldo) {
            ldo = s.sym(basel);
        }
    }

    // Merge loop.
    loop {
        s.charge(c, W_PRED);
        let basel_org = s.org(c, basel);
        let basel_dest = s.dest(c, basel);
        let valid = |s: &mut S, c: &mut C, e: S::Edge| -> bool {
            let d = s.dest(c, e);
            right_of(d, basel_org, basel_dest)
        };

        let sb = s.sym(basel);
        let mut lcand = s.onext(c, sb);
        if valid(s, c, lcand) {
            loop {
                let next = s.onext(c, lcand);
                let nd = s.dest(c, next);
                let ld = s.dest(c, lcand);
                if !valid(s, c, next) {
                    break;
                }
                s.charge(c, W_PRED);
                if in_circle(basel_dest, basel_org, ld, nd) {
                    s.delete_edge(c, lcand);
                    lcand = next;
                } else {
                    break;
                }
            }
        }

        let mut rcand = s.oprev(c, basel);
        if valid(s, c, rcand) {
            loop {
                let next = s.oprev(c, rcand);
                let nd = s.dest(c, next);
                let rd = s.dest(c, rcand);
                if !valid(s, c, next) {
                    break;
                }
                s.charge(c, W_PRED);
                if in_circle(basel_dest, basel_org, rd, nd) {
                    s.delete_edge(c, rcand);
                    rcand = next;
                } else {
                    break;
                }
            }
        }

        let lvalid = valid(s, c, lcand);
        let rvalid = valid(s, c, rcand);
        if !lvalid && !rvalid {
            break;
        }
        let pick_right = if !lvalid {
            true
        } else if !rvalid {
            false
        } else {
            let ld = s.dest(c, lcand);
            let lorg = s.org(c, lcand);
            let ro = s.org(c, rcand);
            let rd = s.dest(c, rcand);
            s.charge(c, W_PRED);
            in_circle(ld, lorg, ro, rd)
        };
        if pick_right {
            let sb = s.sym(basel);
            basel = s.connect(c, rcand, sb, region, ids);
        } else {
            let sl = s.sym(lcand);
            basel = s.connect(c, s.sym(basel), sl, region, ids);
        }
    }
    (ldo, rdo)
}

// ---------------------------------------------------------------------
// Serial reference store: a plain arena.
// ---------------------------------------------------------------------

struct ArenaStore {
    /// 4 entries per group: onext links (edge refs) …
    onext: Vec<u32>,
    /// … and per-group (org, dest, alive).
    org: Vec<usize>,
    dest: Vec<usize>,
    alive: Vec<bool>,
    pts: Vec<(i64, i64)>,
}

impl ArenaStore {
    fn new(pts: &[(i64, i64)]) -> ArenaStore {
        ArenaStore {
            onext: Vec::new(),
            org: Vec::new(),
            dest: Vec::new(),
            alive: Vec::new(),
            pts: pts.to_vec(),
        }
    }
}

impl QeStore<()> for ArenaStore {
    type Edge = u32;

    fn make_edge(&mut self, _c: &mut (), _region: usize) -> u32 {
        let base = self.onext.len() as u32;
        // Canonical initialization: e.onext = e; dual edges form a loop.
        self.onext.push(base);
        self.onext.push(base + 3);
        self.onext.push(base + 2);
        self.onext.push(base + 1);
        self.org.push(usize::MAX);
        self.dest.push(usize::MAX);
        self.alive.push(true);
        base
    }
    fn rot(&self, e: u32) -> u32 {
        (e & !3) | ((e + 1) & 3)
    }
    fn sym(&self, e: u32) -> u32 {
        (e & !3) | ((e + 2) & 3)
    }
    fn rot_inv(&self, e: u32) -> u32 {
        (e & !3) | ((e + 3) & 3)
    }
    fn onext(&mut self, _c: &mut (), e: u32) -> u32 {
        self.onext[e as usize]
    }
    fn set_onext(&mut self, _c: &mut (), e: u32, v: u32) {
        self.onext[e as usize] = v;
    }
    fn org(&mut self, _c: &mut (), e: u32) -> (i64, i64) {
        let g = (e >> 2) as usize;
        let id = if e & 3 == 0 {
            self.org[g]
        } else {
            debug_assert_eq!(e & 3, 2);
            self.dest[g]
        };
        self.pts[id]
    }
    fn set_org_dest(&mut self, _c: &mut (), e: u32, org_id: usize, dest_id: usize) {
        let g = (e >> 2) as usize;
        if e & 3 == 0 {
            self.org[g] = org_id;
            self.dest[g] = dest_id;
        } else {
            debug_assert_eq!(e & 3, 2);
            self.org[g] = dest_id;
            self.dest[g] = org_id;
        }
    }
    fn mark_deleted(&mut self, e: u32) {
        self.alive[(e >> 2) as usize] = false;
    }
    fn charge(&mut self, _c: &mut (), _cycles: u64) {}
}

/// Canonicalized edge set of the triangulation.
fn arena_edges(s: &ArenaStore) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = (0..s.alive.len())
        .filter(|&g| s.alive[g])
        .map(|g| {
            let (a, b) = (s.org[g], s.dest[g]);
            (a.min(b), a.max(b))
        })
        .collect();
    out.sort_unstable();
    out
}

fn checksum_edges(edges: &[(usize, usize)]) -> u64 {
    let mut acc = edges.len() as u64;
    for &(a, b) in edges {
        acc = mix2(acc, (a as u64) << 32 | b as u64);
    }
    acc
}

/// Serial reference: the same algorithm over the arena.
pub fn reference(size: SizeClass) -> u64 {
    let pts = Arc::new(points(size));
    let ids = Arc::new(Ids::new(&pts));
    let n = pts.len();
    let mut s = ArenaStore::new(&pts);
    delaunay(&mut s, &mut (), &pts, 0, n, &ids);
    checksum_edges(&arena_edges(&s))
}

// ---------------------------------------------------------------------
// Distributed store.
// ---------------------------------------------------------------------

/// Quad-edge groups in the distributed heap. An edge reference is a
/// `GPtr` to word `base + 2r` of its 8-word group; `rot`/`sym` are pure
/// address arithmetic (the groups are 8-word aligned because every
/// allocation in this module is 8 words).
/// Host-side bookkeeping tables, behind a mutex so a forked right
/// half-problem (running on another OS thread under the thread backend)
/// can record groups concurrently with the left. The final edge set is
/// sorted before checksumming, so insertion order never reaches the
/// result. Under the simulator the fork runs inline and the lock is
/// uncontended.
#[derive(Default)]
struct StoreTables {
    /// Every group allocated (for the final edge-set extraction).
    groups: Vec<GPtr>,
    /// Group base pointer → index in `groups`.
    group_idx: std::collections::HashMap<GPtr, usize>,
    /// org/dest ids per group (kept host-side for checksumming; the heap
    /// holds the point records themselves).
    org: Vec<usize>,
    dest: Vec<usize>,
    alive: Vec<bool>,
}

impl StoreTables {
    fn group_index(&self, e: GPtr) -> usize {
        let base = GPtr::new(e.proc(), e.local() & !7);
        self.group_idx[&base]
    }
}

#[derive(Clone)]
struct HeapStore {
    tables: Arc<Mutex<StoreTables>>,
    /// Heap point records, indexed by point id (read-only after setup).
    point_recs: Arc<Vec<GPtr>>,
    /// Processor range for leaf-cell placement.
    procs: usize,
    npoints: usize,
    /// Dereference mechanism for edge records (the merge caches; §5).
    mech: Mechanism,
}

impl<B: Backend> QeStore<B> for HeapStore {
    type Edge = GPtr;

    fn make_edge(&mut self, ctx: &mut B, region: usize) -> GPtr {
        let proc = (region * self.procs / self.npoints.max(1)).min(self.procs - 1) as ProcId;
        let g = ctx.alloc(proc, GROUP_WORDS);
        debug_assert_eq!(g.local() % 8, 0, "groups stay 8-word aligned");
        // Canonical onext initialization.
        ctx.write(g, 0, g, self.mech);
        ctx.write(g, 2, g.offset(6), self.mech);
        ctx.write(g, 4, g.offset(4), self.mech);
        ctx.write(g, 6, g.offset(2), self.mech);
        let mut t = self.tables.lock().unwrap();
        let idx = t.groups.len();
        t.group_idx.insert(g, idx);
        t.groups.push(g);
        t.org.push(usize::MAX);
        t.dest.push(usize::MAX);
        t.alive.push(true);
        g
    }
    fn rot(&self, e: GPtr) -> GPtr {
        let base = e.local() & !7;
        let r = (e.local() & 7) / 2;
        GPtr::new(e.proc(), base + ((r + 1) % 4) * 2)
    }
    fn sym(&self, e: GPtr) -> GPtr {
        let base = e.local() & !7;
        let r = (e.local() & 7) / 2;
        GPtr::new(e.proc(), base + ((r + 2) % 4) * 2)
    }
    fn rot_inv(&self, e: GPtr) -> GPtr {
        let base = e.local() & !7;
        let r = (e.local() & 7) / 2;
        GPtr::new(e.proc(), base + ((r + 3) % 4) * 2)
    }
    fn onext(&mut self, ctx: &mut B, e: GPtr) -> GPtr {
        ctx.read_ptr(e, 0, self.mech)
    }
    fn set_onext(&mut self, ctx: &mut B, e: GPtr, v: GPtr) {
        ctx.write(e, 0, v, self.mech);
    }
    fn org(&mut self, ctx: &mut B, e: GPtr) -> (i64, i64) {
        let p = ctx.read_ptr(e, 1, self.mech);
        let x = ctx.read_i64(p, P_X, self.mech);
        let y = ctx.read_i64(p, P_Y, self.mech);
        (x, y)
    }
    fn set_org_dest(&mut self, ctx: &mut B, e: GPtr, org_id: usize, dest_id: usize) {
        let rec_o = self.point_recs[org_id];
        let rec_d = self.point_recs[dest_id];
        ctx.write(e, 1, rec_o, self.mech);
        let s = QeStore::<B>::sym(self, e);
        ctx.write(s, 1, rec_d, self.mech);
        let mut t = self.tables.lock().unwrap();
        let g = t.group_index(e);
        if e.local() & 7 == 0 {
            t.org[g] = org_id;
            t.dest[g] = dest_id;
        } else {
            t.org[g] = dest_id;
            t.dest[g] = org_id;
        }
    }
    fn mark_deleted(&mut self, e: GPtr) {
        let mut t = self.tables.lock().unwrap();
        let g = t.group_index(e);
        t.alive[g] = false;
    }
    fn charge(&mut self, ctx: &mut B, cycles: u64) {
        ctx.work(cycles);
    }

    /// Migrate to the region's owner by dereferencing its first point —
    /// "pin the computation on the processor that owns the root of one
    /// of the subresults" (§5). Everything else the merge touches is
    /// brought in through the software cache.
    fn enter_region(&mut self, ctx: &mut B, point_id: usize) {
        let rec = self.point_recs[point_id];
        ctx.read_i64(rec, P_ID, MI);
    }

    /// Fork the *right* half-problem: its `enter_region` migrates to the
    /// upper point range's processor (the left range shares this
    /// processor, so a left future would run inline and serialize), the
    /// vacated processor steals the spawner, and the left half proceeds
    /// locally in parallel.
    fn par2<T: Send + 'static>(
        &mut self,
        ctx: &mut B,
        l: impl FnOnce(&mut Self, &mut B) -> T,
        r: impl FnOnce(&mut Self, &mut B) -> T + Send + 'static,
    ) -> (T, T) {
        let h = {
            // The store is a handle onto shared tables: clone it into the
            // forked body instead of borrowing across the fork.
            let mut s1 = self.clone();
            ctx.future_call(move |cc| cc.call(move |cc| r(&mut s1, cc)))
        };
        let lv = {
            let s2: &mut Self = &mut *self;
            ctx.call(move |cc| l(s2, cc))
        };
        let rv = ctx.touch(h);
        (lv, rv)
    }
}

/// Distributed run: allocate point records (leaf regions own their
/// points), triangulate, checksum the edge set.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let pts = Arc::new(points(size));
    let procs = ctx.nprocs();
    let n = pts.len();
    let ids = Arc::new(Ids::new(&pts));
    let point_recs: Vec<GPtr> = ctx.uncharged(|ctx| {
        pts.iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                let proc = (i * procs / n) as ProcId;
                let r = ctx.alloc(proc, POINT_WORDS);
                ctx.write(r, P_X, x, MI);
                ctx.write(r, P_Y, y, MI);
                ctx.write(r, P_ID, i as i64, MI);
                r
            })
            .collect()
    });
    let mut store = HeapStore {
        tables: Arc::new(Mutex::new(StoreTables::default())),
        point_recs: Arc::new(point_recs),
        procs,
        npoints: n,
        mech: CA,
    };
    ctx.call(|ctx| delaunay(&mut store, ctx, &pts, 0, n, &ids));
    let t = store.tables.lock().unwrap();
    let mut edges: Vec<(usize, usize)> = (0..t.alive.len())
        .filter(|&g| t.alive[g])
        .map(|g| {
            let (a, b) = (t.org[g], t.dest[g]);
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    checksum_edges(&edges)
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "MergeWalk 6:25 basel->onext -> cache",
    "MergeWalk 8:25 basel->oprev -> cache",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[("MergeWalk", "basel", Mechanism::Cache)];

/// Static trip counts for the cost model: the divide-and-conquer merge
/// walks each edge-ring boundary a small constant number of times, ~3
/// ring steps per input point overall.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    vec![("MergeWalk#0", 3 * point_count(size) as u64)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "Voronoi",
    description: "Computes the Voronoi Diagram of a set of points",
    problem_size: "64K points",
    choice: "M+C",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.05, 2.0), (0.1, 1.5), (0.02, 1.0), (0.05, 2.0)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_runtime::{run as run_sim, Config, Mechanism};

    /// Brute-force Delaunay check: an edge (a, b) is Delaunay iff some
    /// circle through a and b is empty — for a triangulation it suffices
    /// that each triangle's circumcircle contains no other point.
    fn delaunay_triangulation_is_valid(pts: &[(i64, i64)], edges: &[(usize, usize)]) {
        use std::collections::HashSet;
        let eset: HashSet<(usize, usize)> = edges.iter().copied().collect();
        let has = |a: usize, b: usize| eset.contains(&(a.min(b), a.max(b)));
        // Every triangle formed by three mutually connected points whose
        // interior is a face must have an empty circumcircle. We check
        // all connected triples (sufficient for small tests).
        let n = pts.len();
        for a in 0..n {
            for b in a + 1..n {
                if !has(a, b) {
                    continue;
                }
                for c in b + 1..n {
                    if !(has(b, c) && has(a, c)) {
                        continue;
                    }
                    // Only check actual empty-interior triangles: skip if
                    // any point lies strictly inside the triangle.
                    let inside_tri = (0..n).any(|d| {
                        d != a
                            && d != b
                            && d != c
                            && point_in_triangle(pts[d], pts[a], pts[b], pts[c])
                    });
                    if inside_tri {
                        continue;
                    }
                    let (pa, pb, pc) = (pts[a], pts[b], pts[c]);
                    let (pa, pb, pc) = if ccw(pa, pb, pc) {
                        (pa, pb, pc)
                    } else {
                        (pa, pc, pb)
                    };
                    for (d, &pd) in pts.iter().enumerate().take(n) {
                        if d == a || d == b || d == c {
                            continue;
                        }
                        assert!(
                            !in_circle(pa, pb, pc, pd),
                            "point {d} inside circumcircle of ({a},{b},{c})"
                        );
                    }
                }
            }
        }
    }

    fn point_in_triangle(p: (i64, i64), a: (i64, i64), b: (i64, i64), c: (i64, i64)) -> bool {
        let s1 = ccw(a, b, p);
        let s2 = ccw(b, c, p);
        let s3 = ccw(c, a, p);
        s1 == s2 && s2 == s3
    }

    #[test]
    fn reference_produces_a_delaunay_triangulation() {
        let pts = Arc::new(points(SizeClass::Tiny));
        let ids = Arc::new(Ids::new(&pts));
        let mut s = ArenaStore::new(&pts);
        delaunay(&mut s, &mut (), &pts, 0, pts.len(), &ids);
        let edges = arena_edges(&s);
        // Euler bound: a triangulation of n points has ≤ 3n − 6 edges and
        // at least the hull (n for points in general position ≥ 2n−3 ...
        // use the loose bounds).
        let n = pts.len();
        assert!(edges.len() >= n - 1, "{} edges", edges.len());
        assert!(edges.len() <= 3 * n - 6, "{} edges", edges.len());
        delaunay_triangulation_is_valid(&pts, &edges);
    }

    #[test]
    fn distributed_matches_reference() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn square_grid_case() {
        // A 3x3 grid has ties everywhere; check the algorithm still
        // produces a plausible edge count on a perturbed grid.
        let mut pts: Vec<(i64, i64)> = Vec::new();
        for x in 0..3i64 {
            for y in 0..3i64 {
                pts.push((x * 1000 + x * y, y * 1000 + 7 * x));
            }
        }
        pts.sort_unstable();
        let pts = Arc::new(pts);
        let ids = Arc::new(Ids::new(&pts));
        let mut s = ArenaStore::new(&pts);
        delaunay(&mut s, &mut (), &pts, 0, pts.len(), &ids);
        let edges = arena_edges(&s);
        assert!(edges.len() >= 8 && edges.len() <= 21, "{}", edges.len());
    }

    #[test]
    fn merge_caches_and_pins() {
        let (_, rep) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Tiny));
        assert!(rep.cache.cacheable_reads > 0, "edges are cached");
        // Migrations happen only at region entries (pinning the divide
        // phase), far fewer than cacheable accesses.
        assert!(rep.stats.migrations > 0, "divide phase pins via migration");
        assert!(
            rep.stats.migrations * 20 < rep.cache.cacheable_reads,
            "merge traffic is cached, not migrated"
        );
    }

    #[test]
    fn migrate_only_is_catastrophic() {
        let (_, seq) = run_sim(Config::sequential(), |ctx| run(ctx, SizeClass::Tiny));
        let (_, heur) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Tiny));
        let (_, mig) = run_sim(Config::olden(4).forced(Mechanism::Migrate), |ctx| {
            run(ctx, SizeClass::Tiny)
        });
        let s_h = heur.speedup_vs(seq.makespan);
        let s_m = mig.speedup_vs(seq.makespan);
        // Table 2: Voronoi heuristic 8.76 vs migrate-only 0.47 at 32.
        assert!(s_m < s_h, "migrate-only {s_m} vs heuristic {s_h}");
        assert!(s_m < 1.0, "migrate-only ping-pongs: {s_m}");
    }
}
