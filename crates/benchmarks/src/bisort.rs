//! **Bisort** — adaptive bitonic sort in a binary tree (Table 1: 128 K
//! integers), after Bilardi and Nicolau.
//!
//! Values live in a perfect binary tree (plus one spare); `Bisort`
//! recursively sorts the two subtrees in opposite directions and
//! `Bimerge` merges the resulting bitonic sequence. The benchmark
//! performs two sorts — one forward, one backward — as in the paper.
//!
//! Where the textbook algorithm swaps subtree *pointers* on the merge
//! spine, the Olden version **swaps the subtrees' contents**: "swapping
//! the trees rather than pointers to the trees is expensive, but helps
//! maintain locality" (§5). The spine search uses a pair of pointers the
//! heuristic assigns to **software caching** (a tree search: averaged
//! affinity below threshold), while the recursive traversals and the
//! deep swaps use **migration** — Table 2's first M+C row.

use crate::rng::mix2;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

const MI: Mechanism = Mechanism::Migrate;
const CA: Mechanism = Mechanism::Cache;

/// Node layout.
const F_LEFT: usize = 0;
const F_RIGHT: usize = 1;
const F_VAL: usize = 2;
const NODE_WORDS: usize = 3;

/// Cycles per spine-step comparison and per recursion node.
const W_STEP: u64 = 30;

/// The merge spine in the analysis DSL: both branches update `pl`/`pr`
/// along different fields, so the join averages to the 70 % default —
/// below threshold, cached (§4.3 "tree searches will use caching"). The
/// `Bisort` recursion combines two calls to 0.91 ≥ 0.90 and migrates.
pub const DSL: &str = r#"
    struct tree { tree *left; tree *right; int value; };
    void SpineSearch(tree *pl, tree *pr, int dir) {
        while (pl != null) {
            if (cmp(pl, pr, dir)) {
                pl = pl->left;
                pr = pr->left;
            } else {
                pl = pl->right;
                pr = pr->right;
            }
        }
    }
    int Bisort(tree *root, int spr, int dir) {
        if (root == null) { return spr; }
        int v = futurecall Bisort(root->left, root->value, dir);
        touch v;
        int s = Bisort(root->right, spr, dir);
        return s;
    }
"#;

/// Tree levels (values = 2^levels including the spare).
pub fn levels(size: SizeClass) -> u32 {
    match size {
        SizeClass::Tiny => 5,     // 32 values
        SizeClass::Default => 11, // 2 048 values
        SizeClass::Paper => 17,   // 128 K values (Table 1)
    }
}

fn init_val(index: u64) -> i64 {
    (mix2(index, 0xB150) % 1_000_000) as i64
}

// ---------------------------------------------------------------------
// Plain-Rust model (the serial reference, and the oracle for tests).
// ---------------------------------------------------------------------

/// Reference tree node.
pub struct RNode {
    pub left: Option<Box<RNode>>,
    pub right: Option<Box<RNode>>,
    pub value: i64,
}

/// Build a perfect tree of `level` levels; values are assigned in-order
/// from `index`.
pub fn rbuild(level: u32, index: &mut u64) -> Option<Box<RNode>> {
    if level == 0 {
        return None;
    }
    let left = rbuild(level - 1, index);
    let value = init_val(*index);
    *index += 1;
    let right = rbuild(level - 1, index);
    Some(Box::new(RNode { left, right, value }))
}

fn rbimerge(t: &mut RNode, mut spr: i64, up: bool) -> i64 {
    let rightexchange = (t.value > spr) == up;
    if rightexchange {
        std::mem::swap(&mut t.value, &mut spr);
    }
    // Spine walk: find the crossover, swapping values and one pair of
    // subtrees at each exchanged node.
    {
        let (mut pl, mut pr) = (t.left.as_deref_mut(), t.right.as_deref_mut());
        while let (Some(l), Some(r)) = (pl, pr) {
            let elementexchange = (l.value > r.value) == up;
            if rightexchange {
                if elementexchange {
                    std::mem::swap(&mut l.value, &mut r.value);
                    std::mem::swap(&mut l.right, &mut r.right);
                    pl = l.left.as_deref_mut();
                    pr = r.left.as_deref_mut();
                } else {
                    pl = l.right.as_deref_mut();
                    pr = r.right.as_deref_mut();
                }
            } else if elementexchange {
                std::mem::swap(&mut l.value, &mut r.value);
                std::mem::swap(&mut l.left, &mut r.left);
                pl = l.right.as_deref_mut();
                pr = r.right.as_deref_mut();
            } else {
                pl = l.left.as_deref_mut();
                pr = r.left.as_deref_mut();
            }
        }
    }
    if let Some(left) = t.left.as_deref_mut() {
        t.value = rbimerge(left, t.value, up);
    }
    if let Some(right) = t.right.as_deref_mut() {
        spr = rbimerge(right, spr, up);
    }
    spr
}

/// Sort `inorder(t) ++ [spr]` ascending (`up`) or descending; returns the
/// new spare.
pub fn rbisort(t: &mut RNode, mut spr: i64, up: bool) -> i64 {
    if t.left.is_none() {
        if (t.value > spr) == up {
            std::mem::swap(&mut t.value, &mut spr);
        }
        spr
    } else {
        let v = t.value;
        t.value = rbisort(t.left.as_deref_mut().unwrap(), v, up);
        spr = rbisort(t.right.as_deref_mut().unwrap(), spr, !up);
        rbimerge(t, spr, up)
    }
}

fn rinorder(t: &RNode, out: &mut Vec<i64>) {
    if let Some(l) = &t.left {
        rinorder(l, out);
    }
    out.push(t.value);
    if let Some(r) = &t.right {
        rinorder(r, out);
    }
}

/// Serial reference: forward sort then backward sort; checksum over both
/// resulting sequences.
pub fn reference(size: SizeClass) -> u64 {
    let mut index = 0u64;
    let mut t = rbuild(levels(size), &mut index).expect("nonempty");
    let spare = init_val(index);
    let mut acc = 0u64;
    let s1 = rbisort(&mut t, spare, true);
    let mut seq = Vec::new();
    rinorder(&t, &mut seq);
    seq.push(s1);
    for v in &seq {
        acc = mix2(acc, *v as u64);
    }
    let s2 = rbisort(&mut t, s1, false);
    let mut seq = Vec::new();
    rinorder(&t, &mut seq);
    seq.push(s2);
    for v in &seq {
        acc = mix2(acc, *v as u64);
    }
    acc
}

// ---------------------------------------------------------------------
// Distributed version.
// ---------------------------------------------------------------------

/// Build the tree with subtrees distributed at a fixed depth (left child
/// takes the far half of the processor range so its future forks).
fn build<B: Backend>(ctx: &mut B, level: u32, index: &mut u64, lo: usize, hi: usize) -> GPtr {
    if level == 0 {
        return GPtr::NULL;
    }
    let t = ctx.alloc(lo as ProcId, NODE_WORDS);
    let mid = usize::midpoint(lo, hi);
    let (l_lo, l_hi, r_lo, r_hi) = if hi - lo <= 1 {
        (lo, hi, lo, hi)
    } else {
        (mid, hi, lo, mid)
    };
    let left = build(ctx, level - 1, index, l_lo, l_hi);
    ctx.write(t, F_VAL, init_val(*index), MI);
    *index += 1;
    let right = build(ctx, level - 1, index, r_lo, r_hi);
    ctx.write(t, F_LEFT, left, MI);
    ctx.write(t, F_RIGHT, right, MI);
    t
}

/// Deep swap of two isomorphic subtrees' values — the Olden locality
/// trick standing in for a pointer swap. Each subtree is walked whole
/// before touching the other, so the thread migrates a constant number
/// of times per swap: "a large amount of data is touched on each
/// processor between migrations" (§5). An interleaved node-by-node swap
/// would ping-pong between the subtrees' processors on every pair.
fn swap_trees<B: Backend>(ctx: &mut B, a: GPtr, b: GPtr) {
    if a.is_null() || b.is_null() {
        debug_assert!(a.is_null() && b.is_null(), "isomorphic shapes");
        return;
    }
    let mut av = Vec::new();
    ctx.call(|ctx| collect_preorder(ctx, a, &mut av));
    let mut bv = Vec::new();
    ctx.call(|ctx| collect_preorder(ctx, b, &mut bv));
    let mut it = bv.into_iter();
    ctx.call(|ctx| write_preorder(ctx, a, &mut it));
    let mut it = av.into_iter();
    ctx.call(|ctx| write_preorder(ctx, b, &mut it));
}

fn collect_preorder<B: Backend>(ctx: &mut B, t: GPtr, out: &mut Vec<i64>) {
    if t.is_null() {
        return;
    }
    ctx.work(W_STEP);
    out.push(ctx.read_i64(t, F_VAL, MI));
    let l = ctx.read_ptr(t, F_LEFT, MI);
    collect_preorder(ctx, l, out);
    let r = ctx.read_ptr(t, F_RIGHT, MI);
    collect_preorder(ctx, r, out);
}

fn write_preorder<B: Backend>(ctx: &mut B, t: GPtr, vals: &mut impl Iterator<Item = i64>) {
    if t.is_null() {
        return;
    }
    ctx.work(W_STEP);
    ctx.write(t, F_VAL, vals.next().expect("isomorphic shapes"), MI);
    let l = ctx.read_ptr(t, F_LEFT, MI);
    write_preorder(ctx, l, vals);
    let r = ctx.read_ptr(t, F_RIGHT, MI);
    write_preorder(ctx, r, vals);
}

fn bimerge<B: Backend>(ctx: &mut B, t: GPtr, mut spr: i64, up: bool) -> i64 {
    ctx.work(W_STEP);
    let tv = ctx.read_i64(t, F_VAL, MI);
    let rightexchange = (tv > spr) == up;
    if rightexchange {
        ctx.write(t, F_VAL, spr, MI);
        spr = tv;
    }
    // Spine search: pl/pr dereferences are cached (§5); the deep subtree
    // swaps migrate.
    let mut pl = ctx.read_ptr(t, F_LEFT, MI);
    let mut pr = ctx.read_ptr(t, F_RIGHT, MI);
    while !pl.is_null() {
        ctx.work(W_STEP);
        let lv = ctx.read_i64(pl, F_VAL, CA);
        let rv = ctx.read_i64(pr, F_VAL, CA);
        let elementexchange = (lv > rv) == up;
        if rightexchange {
            if elementexchange {
                ctx.write(pl, F_VAL, rv, CA);
                ctx.write(pr, F_VAL, lv, CA);
                let a = ctx.read_ptr(pl, F_RIGHT, CA);
                let b = ctx.read_ptr(pr, F_RIGHT, CA);
                ctx.call(|ctx| swap_trees(ctx, a, b));
                pl = ctx.read_ptr(pl, F_LEFT, CA);
                pr = ctx.read_ptr(pr, F_LEFT, CA);
            } else {
                pl = ctx.read_ptr(pl, F_RIGHT, CA);
                pr = ctx.read_ptr(pr, F_RIGHT, CA);
            }
        } else if elementexchange {
            ctx.write(pl, F_VAL, rv, CA);
            ctx.write(pr, F_VAL, lv, CA);
            let a = ctx.read_ptr(pl, F_LEFT, CA);
            let b = ctx.read_ptr(pr, F_LEFT, CA);
            ctx.call(|ctx| swap_trees(ctx, a, b));
            pl = ctx.read_ptr(pl, F_RIGHT, CA);
            pr = ctx.read_ptr(pr, F_RIGHT, CA);
        } else {
            pl = ctx.read_ptr(pl, F_LEFT, CA);
            pr = ctx.read_ptr(pr, F_LEFT, CA);
        }
    }
    let left = ctx.read_ptr(t, F_LEFT, MI);
    if !left.is_null() {
        let tv = ctx.read_i64(t, F_VAL, MI);
        let h = ctx.future_call(move |ctx| ctx.call(move |ctx| bimerge(ctx, left, tv, up)));
        let right = ctx.read_ptr(t, F_RIGHT, MI);
        let s = ctx.call(|ctx| bimerge(ctx, right, spr, up));
        let new_tv = ctx.touch(h);
        ctx.write(t, F_VAL, new_tv, MI);
        spr = s;
    }
    spr
}

fn bisort<B: Backend>(ctx: &mut B, t: GPtr, mut spr: i64, up: bool) -> i64 {
    ctx.work(W_STEP);
    let left = ctx.read_ptr(t, F_LEFT, MI);
    if left.is_null() {
        let tv = ctx.read_i64(t, F_VAL, MI);
        if (tv > spr) == up {
            ctx.write(t, F_VAL, spr, MI);
            return tv;
        }
        return spr;
    }
    // The left read above performed the check of `t`; the value and right
    // checks are proven redundant (`ELIDED_SITES`) — the future spawn does
    // not move the logical thread off `t`'s processor.
    let tv = ctx.read_i64_checked(t, F_VAL, MI, Check::Elide);
    let h = ctx.future_call(move |ctx| ctx.call(move |ctx| bisort(ctx, left, tv, up)));
    let right = ctx.read_ptr_checked(t, F_RIGHT, MI, Check::Elide);
    spr = ctx.call(|ctx| bisort(ctx, right, spr, !up));
    let new_tv = ctx.touch(h);
    ctx.write(t, F_VAL, new_tv, MI);
    ctx.call(|ctx| bimerge(ctx, t, spr, up))
}

fn collect_inorder<B: Backend>(ctx: &mut B, t: GPtr, out: &mut Vec<i64>) {
    if t.is_null() {
        return;
    }
    let l = ctx.read_ptr(t, F_LEFT, MI);
    collect_inorder(ctx, l, out);
    out.push(ctx.read_i64(t, F_VAL, MI));
    let r = ctx.read_ptr(t, F_RIGHT, MI);
    collect_inorder(ctx, r, out);
}

/// Kernel: forward sort, then backward sort (build uncharged).
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = ctx.nprocs();
    let mut index = 0u64;
    let root = ctx.uncharged(|ctx| build(ctx, levels(size), &mut index, 0, n));
    let spare = init_val(index);
    let mut acc = 0u64;
    let s1 = ctx.call(|ctx| bisort(ctx, root, spare, true));
    ctx.uncharged(|ctx| {
        let mut vals = Vec::new();
        collect_inorder(ctx, root, &mut vals);
        vals.push(s1);
        for v in vals {
            acc = mix2(acc, v as u64);
        }
    });
    let s2 = ctx.call(|ctx| bisort(ctx, root, s1, false));
    ctx.uncharged(|ctx| {
        let mut vals = Vec::new();
        collect_inorder(ctx, root, &mut vals);
        vals.push(s2);
        for v in vals {
            acc = mix2(acc, v as u64);
        }
    });
    acc
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &["Bisort 16:47 root->value", "Bisort 18:24 root->right"];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "SpineSearch 6:22 pl->left -> cache",
    "SpineSearch 7:22 pr->left -> cache",
    "SpineSearch 9:22 pl->right -> cache",
    "SpineSearch 10:22 pr->right -> cache",
    "Bisort 16:35 root->left -> migrate",
    "Bisort 16:47 root->value -> migrate",
    "Bisort 18:24 root->right -> migrate",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[
    ("Bisort", "root", Mechanism::Migrate),
    ("SpineSearch", "pl", Mechanism::Cache),
    ("SpineSearch", "pr", Mechanism::Cache),
];

/// Static trip counts for the cost model: the spine comparison visits
/// each level of each subtree (~`2^L * L`) and the merge recursion
/// touches every node of the tree (~`2 * (2^L - 1)` calls).
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    let l = levels(size) as u64;
    vec![
        ("SpineSearch#0", (1u64 << l) * l),
        ("Bisort#0", 2 * ((1u64 << l) - 1)),
    ]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "Bisort",
    description: "Sort by creating two disjoint bitonic sequences and then merging them",
    problem_size: "128K integers",
    choice: "M+C",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.08, 1.0), (0.5, 2.5), (0.1, 1.0), (0.2, 1.2)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    /// The reference model must actually sort — the oracle for everything
    /// else.
    #[test]
    fn reference_model_sorts() {
        for levels in 1..=7u32 {
            let mut index = 0u64;
            let mut t = rbuild(levels, &mut index).unwrap();
            let spare = init_val(index);
            let s = rbisort(&mut t, spare, true);
            let mut seq = Vec::new();
            rinorder(&t, &mut seq);
            seq.push(s);
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(seq, sorted, "ascending, {levels} levels");
            // And backward.
            let s = rbisort(&mut t, s, false);
            let mut seq = Vec::new();
            rinorder(&t, &mut seq);
            seq.push(s);
            let mut sorted = seq.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(seq, sorted, "descending, {levels} levels");
        }
    }

    #[test]
    fn distributed_matches_reference() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn heuristic_migrates_recursion_caches_spine() {
        let sel = select(&parse(DSL).unwrap());
        let rec = sel.recursion_of("Bisort").unwrap();
        assert_eq!(rec.migration_var(), Some("root"));
        let spine = &sel.for_func("SpineSearch")[0];
        assert_eq!(spine.mech("pl"), Mech::Cache, "tree search caches");
        assert_eq!(spine.mech("pr"), Mech::Cache);
    }

    #[test]
    fn uses_both_mechanisms() {
        let (_, rep) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Tiny));
        assert!(rep.stats.migrations > 0, "migration used");
        assert!(
            rep.cache.cacheable_reads > 0 && rep.cache.cacheable_writes > 0,
            "caching used for spine reads and writes (Table 3 row 1)"
        );
    }
}
