//! **MST** — minimum spanning tree of a graph (Table 1: 1 K nodes), after
//! Bentley's parallel algorithm.
//!
//! Vertices are distributed blocked across the processors, each holding a
//! `mindist` to the growing tree. Every iteration sweeps all blocks —
//! updating each vertex's `mindist` against the vertex added last and
//! finding the block-local minimum — then adds the global minimum to the
//! tree. The sweep visits every processor, so the number of migrations is
//! **O(N·P)**; the paper's Table 2 shows exactly the resulting poor,
//! sharply degrading speed-up (4.56 at 32 processors), and notes that
//! caching would not help because "these migrations serve mostly as a
//! mechanism for synchronization". The heuristic accordingly selects
//! migration only.
//!
//! Edge weights are an implicit symmetric function of the endpoint ids
//! (a complete graph), as in the Olden benchmark's hash-table weights.

use crate::rng::mix2;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Check, Mechanism};

const M: Mechanism = Mechanism::Migrate;

/// Vertex layout: block-list link, vertex id, current mindist.
const F_NEXT: usize = 0;
const F_ID: usize = 1;
const F_MINDIST: usize = 2;
const VERTEX_WORDS: usize = 3;

/// Cycles per vertex visited in a sweep. Calibrated from Table 2's
/// sequential time (9.81 s at 33 MHz for 1 K vertices ≈ 320 k cycles per
/// round — the Olden benchmark does a hash-table lookup per vertex).
const W_VERTEX: u64 = 500;

/// Kernel DSL: the per-block vertex-list walk. Blocked layout gives the
/// list a high affinity; the enclosing sweep is parallelizable, so the
/// walk migrates — and the bottleneck pass leaves it alone because each
/// future receives a different block head.
pub const DSL: &str = r#"
    struct vertex { vertex *next @ 96; int mindist; };
    struct block { block *next; vertex *head; };
    int SweepBlocks(block *b) {
        int best = 9999999;
        while (b != null) {
            int m = futurecall ScanBlock(b->head);
            touch m;
            if (m < best) { best = m; }
            b = b->next;
        }
        return best;
    }
    int ScanBlock(vertex *v) {
        int best = 9999999;
        while (v != null) {
            if (v->mindist < best) { best = v->mindist; }
            v = v->next;
        }
        return best;
    }
"#;

/// Vertex count per size class.
pub fn vertices(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 32,
        SizeClass::Default => 512,
        SizeClass::Paper => 1024, // Table 1: 1K nodes
    }
}

/// Symmetric implicit edge weight between vertices `i` and `j`.
pub fn weight(i: u64, j: u64) -> u64 {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    1 + mix2(a, b) % 100_000
}

const INF: i64 = i64::MAX / 2;

/// Per-processor block anchors: anchor word 0 holds the block's list head.
fn build<B: Backend>(ctx: &mut B, n: usize) -> Vec<GPtr> {
    let procs = ctx.nprocs();
    ctx.uncharged(|ctx| {
        let mut anchors = Vec::with_capacity(procs);
        for p in 0..procs {
            let anchor = ctx.alloc(p as ProcId, 1);
            ctx.write(anchor, 0, GPtr::NULL, M);
            anchors.push(anchor);
        }
        // Vertex 0 starts in the tree; vertices 1.. go on their block's
        // list with mindist = weight(0, id).
        for id in (1..n).rev() {
            let p = (id * procs / n) as ProcId;
            let v = ctx.alloc(p, VERTEX_WORDS);
            let head = ctx.read_ptr(anchors[p as usize], 0, M);
            ctx.write(v, F_NEXT, head, M);
            ctx.write(v, F_ID, id as i64, M);
            ctx.write(v, F_MINDIST, weight(0, id as u64) as i64, M);
            ctx.write(anchors[p as usize], 0, v, M);
        }
        anchors
    })
}

/// One block sweep: unlink `remove_id` if present, fold the new tree
/// vertex `last_id` into every remaining `mindist`, and report the block
/// minimum.
fn scan_block<B: Backend>(ctx: &mut B, anchor: GPtr, last_id: i64, remove_id: i64) -> (i64, i64) {
    let mut best = INF;
    let mut best_id = -1i64;
    let mut prev = anchor; // anchor's slot 0 is the head pointer
    let mut prev_field = 0usize;
    let mut v = ctx.read_ptr(anchor, 0, M);
    while !v.is_null() {
        ctx.work(W_VERTEX);
        // The id read is the iteration's first check of `v`; the optimizer
        // elides the next/mindist checks that follow (`ELIDED_SITES`).
        let id = ctx.read_i64(v, F_ID, M);
        let next = ctx.read_ptr_checked(v, F_NEXT, M, Check::Elide);
        if id == remove_id {
            // Unlink the vertex added to the tree last round.
            ctx.write(prev, prev_field, next, M);
            v = next;
            continue;
        }
        let mut md = ctx.read_i64_checked(v, F_MINDIST, M, Check::Elide);
        let w = weight(last_id as u64, id as u64) as i64;
        if w < md {
            md = w;
            ctx.write(v, F_MINDIST, md, M);
        }
        if md < best {
            best = md;
            best_id = id;
        }
        prev = v;
        prev_field = F_NEXT;
        v = next;
    }
    (best, best_id)
}

/// Compute the MST weight: N−1 rounds, each a parallel sweep over the
/// blocks followed by a serial reduction at the root.
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let n = vertices(size);
    let anchors = build(ctx, n);
    let mut total = 0u64;
    let mut last_id = 0i64; // vertex 0 seeds the tree
    let mut remove_id = -1i64;
    for _round in 1..n {
        let handles: Vec<_> = anchors
            .iter()
            .map(|&a| {
                ctx.future_call(move |ctx| {
                    ctx.call(move |ctx| scan_block(ctx, a, last_id, remove_id))
                })
            })
            .collect();
        let mut best = INF;
        let mut best_id = -1;
        for h in handles {
            let (d, id) = ctx.touch(h);
            if d < best || (d == best && id < best_id) {
                best = d;
                best_id = id;
            }
        }
        total += best as u64;
        last_id = best_id;
        remove_id = best_id;
    }
    total
}

/// Serial Prim's algorithm over the same implicit complete graph.
pub fn reference(size: SizeClass) -> u64 {
    let n = vertices(size);
    let mut mindist = vec![INF; n];
    let mut intree = vec![false; n];
    intree[0] = true;
    for (id, slot) in mindist.iter_mut().enumerate().skip(1) {
        *slot = weight(0, id as u64) as i64;
    }
    let mut total = 0u64;
    for _ in 1..n {
        let mut best = INF;
        let mut best_id = usize::MAX;
        for id in 1..n {
            if !intree[id] && (mindist[id] < best || (mindist[id] == best && id < best_id)) {
                best = mindist[id];
                best_id = id;
            }
        }
        intree[best_id] = true;
        total += best as u64;
        for id in 1..n {
            if !intree[id] {
                let w = weight(best_id as u64, id as u64) as i64;
                if w < mindist[id] {
                    mindist[id] = w;
                }
            }
        }
    }
    total
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[
    "SweepBlocks 10:17 b->next",
    "ScanBlock 17:45 v->mindist",
    "ScanBlock 18:17 v->next",
];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &[
    "SweepBlocks 7:42 b->head -> migrate",
    "SweepBlocks 10:17 b->next -> migrate",
    "ScanBlock 17:17 v->mindist -> migrate",
    "ScanBlock 17:45 v->mindist -> migrate",
    "ScanBlock 18:17 v->next -> migrate",
];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[
    ("SweepBlocks", "b", Mechanism::Migrate),
    ("ScanBlock", "v", Mechanism::Migrate),
];

/// Static trip counts for the cost model: each of the `n - 1` Prim
/// rounds sweeps all `procs` blocks, and the per-block vertex scans sum
/// to the shrinking frontier (~`n(n-1)/2` visits overall).
pub fn trips(size: SizeClass, procs: usize) -> Vec<(&'static str, u64)> {
    let n = vertices(size) as u64;
    vec![
        ("SweepBlocks#0", (n - 1) * procs as u64),
        ("ScanBlock#0", n * (n - 1) / 2),
    ]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "MST",
    description: "Computes the minimum spanning tree of a graph",
    problem_size: "1K nodes",
    choice: "M",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.2, 1.5), (0.5, 2.0), (0.2, 1.5), (0.15, 1.2)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn tree_weight_matches_prim() {
        for procs in [1, 2, 4] {
            let (w, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(w, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn migrations_scale_with_n_times_p() {
        let n = vertices(SizeClass::Tiny);
        let (_, rep4) = run_sim(Config::olden(4), |ctx| run(ctx, SizeClass::Tiny));
        let (_, rep8) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Tiny));
        // Each round sweeps every block: ≈ N·P forward migrations.
        let lo4 = ((n - 1) * 3) as u64;
        assert!(
            rep4.stats.migrations >= lo4,
            "4 procs: {} migrations < {lo4}",
            rep4.stats.migrations
        );
        assert!(
            rep8.stats.migrations > rep4.stats.migrations * 3 / 2,
            "migrations grow with P: {} vs {}",
            rep8.stats.migrations,
            rep4.stats.migrations
        );
    }

    #[test]
    fn speedup_saturates() {
        let (_, seq) = run_sim(Config::sequential(), |ctx| run(ctx, SizeClass::Default));
        let s = |p: usize| {
            let (_, rep) = run_sim(Config::olden(p), |ctx| run(ctx, SizeClass::Default));
            rep.speedup_vs(seq.makespan)
        };
        let s2 = s(2);
        let s8 = s(8);
        let s16 = s(16);
        assert!(s2 > 0.8, "2 procs {s2}");
        // The O(N·P) synchronization migrations keep MST's curve flat —
        // Table 2 shows 4.56 at 32; efficiency must fall sharply.
        assert!(s16 < 8.0, "16 procs should saturate: {s16}");
        assert!(s16 / 16.0 < s8 / 8.0, "efficiency degrades with P");
    }

    #[test]
    fn heuristic_selects_migration() {
        let sel = select(&parse(DSL).unwrap());
        let scan = &sel.for_func("ScanBlock")[0];
        assert_eq!(scan.mech("v"), Mech::Migrate, "96% blocked affinity");
        let sweep = &sel.for_func("SweepBlocks")[0];
        assert!(sweep.parallel);
        assert_eq!(sweep.mech("b"), Mech::Migrate, "parallelizable sweep");
    }
}
