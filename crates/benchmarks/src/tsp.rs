//! **TSP** — an estimate of the best Hamiltonian circuit (Table 1: 32 K
//! cities), after Karp's partitioning algorithm.
//!
//! The plane is recursively bisected (alternating axes) until cells hold
//! a handful of cities; trivial cell tours are then merged pairwise up
//! the partition tree by splicing the two cycles along their cheapest
//! connecting pair, chosen with a closest-point heuristic. Tours are
//! circular singly-linked lists in the distributed heap; each cell's
//! cities live on one processor and the partition distributes cells over
//! the machine.
//!
//! The heuristic selects **migration only** (Table 2): the divide phase
//! is a parallelizable recursion and each merge "is sequential and walks
//! through the subtrees, which requires a migration for each
//! participating processor. Using software caching in place of migration
//! would increase rather than decrease the cost of communication ...
//! because a large amount of data is accessed on each processor during
//! the subtree walk" (§5) — which is why TSP trails TreeAdd/Power in
//! Table 2 (10.08 at 16, 15.8 at 32).

use crate::rng::SplitMix64;
use crate::{Descriptor, SizeClass};
use olden_gptr::{GPtr, ProcId};
use olden_runtime::{Backend, Mechanism};

const M: Mechanism = Mechanism::Migrate;

/// City layout: tour link, x, y.
const F_NEXT: usize = 0;
const F_X: usize = 1;
const F_Y: usize = 2;
const CITY_WORDS: usize = 3;

/// Cities per leaf cell.
const LEAF_CITIES: usize = 4;

/// Cycles per city visited during a merge scan.
const W_SCAN: u64 = 60;
/// Cycles per city spent solving a leaf cell (the local tour-improvement
/// work that dominates Karp's algorithm; calibrated from Table 2's
/// 43.35 s sequential time at 33 MHz for 32 K cities).
const W_LEAF: u64 = 4000;

/// The merge's tour walk in the analysis DSL: a cycle traversal whose
/// blocked layout gives `c = c->next` a high affinity → migration.
pub const DSL: &str = r#"
    struct city { city *next @ 97; int x; int y; };
    int ScanTour(city *start) {
        int best = 99999999;
        city *c = start;
        while (c != null) {
            int d = dist(c);
            if (d < best) { best = d; }
            c = c->next;
        }
        return best;
    }
"#;

/// Number of cities (a power of two times `LEAF_CITIES`).
pub fn cities(size: SizeClass) -> usize {
    match size {
        SizeClass::Tiny => 64,
        SizeClass::Default => 2048,
        SizeClass::Paper => 32768, // Table 1: 32K cities
    }
}

/// A plain point for the reference and for coordinate generation.
#[derive(Clone, Copy, Debug)]
pub struct Pt {
    pub x: f64,
    pub y: f64,
}

fn dist(a: Pt, b: Pt) -> f64 {
    ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt()
}

/// Deterministic city coordinates: hierarchical bisection (cell
/// `[x0,x1)×[y0,y1)` splits along `axis`) so the partition tree's spatial
/// structure is identical at every processor count.
#[allow(clippy::too_many_arguments)]
fn gen_cell(
    out: &mut Vec<Pt>,
    n: usize,
    index: u64,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
    vertical: bool,
) {
    if n <= LEAF_CITIES {
        let mut rng = SplitMix64::new(index ^ 0x7599);
        for _ in 0..n {
            out.push(Pt {
                x: x0 + rng.unit_f64() * (x1 - x0),
                y: y0 + rng.unit_f64() * (y1 - y0),
            });
        }
        return;
    }
    let half = n / 2;
    if vertical {
        let xm = (x0 + x1) / 2.0;
        gen_cell(out, half, index * 2, x0, xm, y0, y1, false);
        gen_cell(out, n - half, index * 2 + 1, xm, x1, y0, y1, false);
    } else {
        let ym = (y0 + y1) / 2.0;
        gen_cell(out, half, index * 2, x0, x1, y0, ym, true);
        gen_cell(out, n - half, index * 2 + 1, x0, x1, ym, y1, true);
    }
}

/// All city coordinates, in partition order.
pub fn points(size: SizeClass) -> Vec<Pt> {
    let n = cities(size);
    let mut out = Vec::with_capacity(n);
    gen_cell(&mut out, n, 1, 0.0, 1.0, 0.0, 1.0, true);
    out
}

// ---------------------------------------------------------------------
// Shared merge logic (operating over an abstract tour representation so
// the distributed run and the serial reference are one algorithm).
// ---------------------------------------------------------------------

/// Merge two cycles: pick `a` = the city of tour 1 closest to tour 2's
/// first city, then `b` = the city of tour 2 closest to `a`; splice by
/// redirecting `a → b.next…b → a.next`. O(|T1| + |T2|).
fn splice_choice(t1: &[(usize, Pt)], t2: &[(usize, Pt)]) -> (usize, usize) {
    let probe = t2[0].1;
    let mut ai = 0;
    let mut best = f64::INFINITY;
    for (i, &(_, p)) in t1.iter().enumerate() {
        let d = dist(p, probe);
        if d < best {
            best = d;
            ai = i;
        }
    }
    let ap = t1[ai].1;
    let mut bi = 0;
    best = f64::INFINITY;
    for (i, &(_, p)) in t2.iter().enumerate() {
        let d = dist(p, ap);
        if d < best {
            best = d;
            bi = i;
        }
    }
    (ai, bi)
}

// ---------------------------------------------------------------------
// Distributed version.
// ---------------------------------------------------------------------

/// Solve a cell: returns the tour head. Cities of a leaf live on one
/// processor; the recursion splits the processor range (far half first so
/// the left future forks).
#[allow(clippy::too_many_arguments)]
fn solve<B: Backend>(
    ctx: &mut B,
    pts: &std::sync::Arc<Vec<Pt>>,
    offset: usize,
    n: usize,
    lo: usize,
    hi: usize,
) -> GPtr {
    if n <= LEAF_CITIES {
        // Build the trivial cell tour (a cycle in generation order).
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let c = ctx.alloc(lo as ProcId, CITY_WORDS);
            let p = pts[offset + i];
            ctx.write(c, F_X, p.x, M);
            ctx.write(c, F_Y, p.y, M);
            // Leaf tour-improvement work happens *after* the first write
            // has migrated the thread to the cell's processor — charging
            // it earlier would bill every leaf to the spawning processor.
            ctx.work(W_LEAF);
            nodes.push(c);
        }
        for i in 0..n {
            ctx.write(nodes[i], F_NEXT, nodes[(i + 1) % n], M);
        }
        return nodes[0];
    }
    let half = n / 2;
    let mid = usize::midpoint(lo, hi);
    let (l_lo, l_hi, r_lo, r_hi) = if hi - lo <= 1 {
        (lo, hi, lo, hi)
    } else {
        (mid, hi, lo, mid)
    };
    let h = {
        let pts = std::sync::Arc::clone(pts);
        ctx.future_call(move |ctx| ctx.call(move |ctx| solve(ctx, &pts, offset, half, l_lo, l_hi)))
    };
    let t2 = ctx.call(|ctx| solve(ctx, pts, offset + half, n - half, r_lo, r_hi));
    let t1 = ctx.touch(h);
    merge(ctx, t1, t2)
}

/// Collect a tour into `(ptr, point)` pairs by walking the cycle — the
/// §5 "subtree walk" that migrates across each participating processor.
fn collect_tour<B: Backend>(ctx: &mut B, head: GPtr) -> Vec<(GPtr, Pt)> {
    let mut out = Vec::new();
    let mut c = head;
    loop {
        ctx.work(W_SCAN);
        let x = ctx.read_f64(c, F_X, M);
        let y = ctx.read_f64(c, F_Y, M);
        out.push((c, Pt { x, y }));
        c = ctx.read_ptr(c, F_NEXT, M);
        if c == head {
            break;
        }
    }
    out
}

/// Merge two distributed tours.
fn merge<B: Backend>(ctx: &mut B, t1: GPtr, t2: GPtr) -> GPtr {
    let c1 = ctx.call(|ctx| collect_tour(ctx, t1));
    let c2 = ctx.call(|ctx| collect_tour(ctx, t2));
    let k1: Vec<(usize, Pt)> = c1.iter().enumerate().map(|(i, &(_, p))| (i, p)).collect();
    let k2: Vec<(usize, Pt)> = c2.iter().enumerate().map(|(i, &(_, p))| (i, p)).collect();
    let (ai, bi) = splice_choice(&k1, &k2);
    // Splice: a → b.next … b → a.next.
    let a = c1[ai].0;
    let b = c2[bi].0;
    let a_next = ctx.read_ptr(a, F_NEXT, M);
    let b_next = ctx.read_ptr(b, F_NEXT, M);
    ctx.write(a, F_NEXT, b_next, M);
    ctx.write(b, F_NEXT, a_next, M);
    t1
}

/// Total tour length (bit-exact accumulation order: from the head).
fn tour_length<B: Backend>(ctx: &mut B, head: GPtr) -> f64 {
    let pts = collect_tour(ctx, head);
    let mut total = 0.0;
    for i in 0..pts.len() {
        total += dist(pts[i].1, pts[(i + 1) % pts.len()].1);
    }
    total
}

/// Kernel run: the partition tours are built as part of the kernel (the
/// paper's TSP is a kernel benchmark over a pre-generated city set; the
/// coordinates here are inputs, the heap structures are the kernel's).
pub fn run<B: Backend>(ctx: &mut B, size: SizeClass) -> u64 {
    let pts = std::sync::Arc::new(points(size));
    let n = ctx.nprocs();
    let head = ctx.call(|ctx| solve(ctx, &pts, 0, pts.len(), 0, n));
    let mut len = 0.0;
    ctx.uncharged(|ctx| {
        len = tour_length(ctx, head);
    });
    len.to_bits()
}

/// Serial reference: the same partition, merges, and arithmetic over
/// plain vectors.
pub fn reference(size: SizeClass) -> u64 {
    let pts = points(size);
    fn solve_ref(pts: &[Pt], offset: usize, n: usize) -> Vec<(usize, Pt)> {
        if n <= LEAF_CITIES {
            return (0..n).map(|i| (offset + i, pts[offset + i])).collect();
        }
        let half = n / 2;
        let t1 = solve_ref(pts, offset, half);
        let t2 = solve_ref(pts, offset + half, n - half);
        let (ai, bi) = splice_choice(&t1, &t2);
        // Cycle splice on vectors: result = t1[..=ai] ++ t2[bi+1..] ++
        // t2[..=bi] ++ t1[ai+1..].
        let mut out = Vec::with_capacity(t1.len() + t2.len());
        out.extend_from_slice(&t1[..=ai]);
        out.extend_from_slice(&t2[bi + 1..]);
        out.extend_from_slice(&t2[..=bi]);
        out.extend_from_slice(&t1[ai + 1..]);
        out
    }
    let tour = solve_ref(&pts, 0, pts.len());
    // Rotate so the tour starts at city 0 — the distributed version's
    // head is the first leaf's first city, which is city 0.
    let start = tour.iter().position(|&(i, _)| i == 0).unwrap();
    let mut total = 0.0;
    let n = tour.len();
    for k in 0..n {
        let a = tour[(start + k) % n].1;
        let b = tour[(start + k + 1) % n].1;
        total += dist(a, b);
    }
    total.to_bits()
}

/// Optimizer-proven redundant check sites of `DSL` (see `Descriptor::elided_sites`).
pub const ELIDED_SITES: &[&str] = &[];

/// Heuristic verdicts for every dereference site of `DSL` (see
/// `Descriptor::selected_mechanisms`).
pub const SELECTED_MECHANISMS: &[&str] = &["ScanTour 9:17 c->next -> migrate"];

/// Principal traversal variables and the mechanisms the kernel
/// hard-codes for them (see `Descriptor::kernel_mechs`).
pub const KERNEL_MECHS: &[(&str, &str, Mechanism)] = &[("ScanTour", "c", Mechanism::Migrate)];

/// Static trip counts for the cost model: each merge level rescans the
/// tour, so the scan loop runs ~`n log2(n / LEAF_CITIES)` times total.
pub fn trips(size: SizeClass, _procs: usize) -> Vec<(&'static str, u64)> {
    let n = cities(size) as u64;
    vec![("ScanTour#0", n * (n / LEAF_CITIES as u64).ilog2() as u64)]
}

pub const DESCRIPTOR: Descriptor = Descriptor {
    name: "TSP",
    description: "Computes an estimate of the best hamiltonian circuit",
    problem_size: "32K cities",
    choice: "M",
    whole_program: false,
    dsl: DSL,
    elided_sites: ELIDED_SITES,
    selected_mechanisms: SELECTED_MECHANISMS,
    kernel_mechs: KERNEL_MECHS,
    trips,
    bands: [(0.04, 1.0), (0.5, 2.0), (0.04, 1.0), (0.02, 1.5)],
    run,
    reference,
};

#[cfg(test)]
mod tests {
    use super::*;
    use olden_analysis::{parse, select, Mech};
    use olden_runtime::{run as run_sim, Config};

    #[test]
    fn tour_length_matches_reference() {
        for procs in [1, 2, 4] {
            let (v, _) = run_sim(Config::olden(procs), |ctx| run(ctx, SizeClass::Tiny));
            assert_eq!(v, reference(SizeClass::Tiny), "procs={procs}");
        }
    }

    #[test]
    fn tour_is_a_single_cycle_visiting_every_city() {
        let n = cities(SizeClass::Tiny);
        let ((), _) = run_sim(Config::olden(4), |ctx| {
            let pts = std::sync::Arc::new(points(SizeClass::Tiny));
            let p = ctx.nprocs();
            let head = ctx.call(|ctx| solve(ctx, &pts, 0, pts.len(), 0, p));
            ctx.uncharged(|ctx| {
                let tour = collect_tour(ctx, head);
                assert_eq!(tour.len(), n, "every city exactly once");
                let mut seen = std::collections::HashSet::new();
                for &(c, _) in &tour {
                    assert!(seen.insert(c), "city repeated in tour");
                }
            });
        });
    }

    #[test]
    fn tour_is_reasonably_short() {
        // For n uniform points in the unit square the optimal tour is
        // ≈ 0.7·√n; a partition-merge estimate should be within ~2.5× of
        // that, far below a random permutation's Θ(n).
        let n = cities(SizeClass::Default) as f64;
        let len = f64::from_bits(reference(SizeClass::Default));
        assert!(len < 2.5 * 0.85 * n.sqrt(), "tour length {len}");
        assert!(len > 0.5 * n.sqrt(), "implausibly short {len}");
    }

    #[test]
    fn heuristic_migrates_tour_walk() {
        let sel = select(&parse(DSL).unwrap());
        let c = &sel.for_func("ScanTour")[0];
        assert_eq!(c.mech("c"), Mech::Migrate, "97% affinity tour walk");
    }

    #[test]
    fn merge_walks_migrate_per_processor() {
        let (_, rep) = run_sim(Config::olden(8), |ctx| run(ctx, SizeClass::Tiny));
        // Each of the log(n/4) merge levels walks both subtours across
        // their processors.
        assert!(rep.stats.migrations > 8, "{}", rep.stats.migrations);
        assert_eq!(
            rep.cache.cacheable_reads + rep.cache.cacheable_writes,
            0,
            "TSP is migration-only"
        );
    }
}
