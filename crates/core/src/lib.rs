//! # olden — Software Caching and Computation Migration
//!
//! A from-scratch Rust reproduction of *"Software Caching and Computation
//! Migration in Olden"* (Carlisle & Rogers, PPoPP 1995): the Olden
//! execution model for pointer-based programs on distributed-memory
//! machines, its two remote-data-access mechanisms, the compile-time
//! heuristic that selects between them per dereference, the three cache
//! coherence schemes of Appendix A, and the ten Olden benchmarks —
//! running on a deterministic cost-model simulator in place of the CM-5.
//!
//! This crate re-exports the whole workspace behind one API:
//!
//! * [`analysis`] — the selection heuristic (path-affinities, update
//!   matrices, bottleneck avoidance) over a restricted-C DSL;
//! * [`runtime`] — the distributed heap, futures with lazy task
//!   creation, computation migration, and the software cache;
//! * [`machine`] — the cost model, trace recording and list-scheduler
//!   replay that turn one instrumented run into Table-2 speedups;
//! * [`cache`] — the 1 K-bucket translation table and the local /
//!   global / bilateral coherence protocols;
//! * [`benchmarks`] — TreeAdd, Power, TSP, MST, Bisort, Voronoi, EM3D,
//!   Barnes-Hut, Perimeter, and Health, each verified against a plain
//!   serial reference.
//!
//! ```
//! use olden_core::prelude::*;
//!
//! // Sum a distributed tree on a simulated 8-processor machine.
//! let (sum, report) = run(Config::olden(8), |ctx| {
//!     let d = olden_core::benchmarks::treeadd::DESCRIPTOR;
//!     (d.run)(ctx, SizeClass::Tiny)
//! });
//! assert_eq!(sum, (olden_core::benchmarks::treeadd::DESCRIPTOR.reference)(SizeClass::Tiny));
//! assert!(report.makespan > 0);
//! ```

pub use olden_analysis as analysis;
pub use olden_benchmarks as benchmarks;
pub use olden_cache as cache;
pub use olden_gptr as gptr;
pub use olden_machine as machine;
pub use olden_runtime as runtime;

/// The names most programs need.
pub mod prelude {
    pub use olden_analysis::{parse, select, Mech, Selection};
    pub use olden_benchmarks::SizeClass;
    pub use olden_cache::Protocol;
    pub use olden_gptr::{GPtr, ProcId, Word};
    pub use olden_machine::CostModel;
    pub use olden_runtime::{run, speedup_curve, Config, Mechanism, OldenCtx, RunReport};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_everything() {
        let (v, rep) = run(Config::olden(4), |ctx| {
            let a = ctx.alloc(3, 1);
            ctx.write(a, 0, 7i64, Mechanism::Cache);
            ctx.read_i64(a, 0, Mechanism::Migrate)
        });
        assert_eq!(v, 7);
        assert_eq!(rep.stats.migrations, 1);
        let sel =
            select(&parse("struct l { l *n; }; void w(l *x) { while (x) { x = x->n; } }").unwrap());
        assert_eq!(sel.mech("w", "x"), Mech::Cache);
    }
}
