//! Plain-text per-processor timelines.
//!
//! Two renderings: an event-density view of a [`Recording`] (how busy
//! each processor's observability stream is over time — migration storms
//! and fetch bursts show up as dark cells), and an interval-coverage
//! view fed by the simulator's schedule (true per-processor utilization:
//! the fraction of each time slice the processor was executing
//! segments). Both are fixed-width ASCII-art meant for terminals and CI
//! logs, not precision — the Chrome trace is the precise view.

use crate::Recording;
use std::fmt::Write as _;

/// Shade ramp from idle to saturated.
const RAMP: [char; 5] = [' ', '.', ':', '+', '#'];

fn shade(frac: f64) -> char {
    let idx = (frac.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).ceil() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Event-density timeline: one row per processor, `width` time cells
/// spanning the recording's timestamp range; cell shade is that
/// processor's event count in the slice relative to the busiest cell.
pub fn event_timeline(rec: &Recording, width: usize) -> String {
    let width = width.max(1);
    let Some((lo, hi)) = rec.ts_bounds() else {
        return "(no events recorded)\n".to_string();
    };
    let span = (hi - lo).max(1);
    let mut cells = vec![vec![0u64; width]; rec.procs];
    for lane in &rec.lanes {
        for e in &lane.events {
            let cell = ((e.ts - lo) as u128 * width as u128 / (span as u128 + 1)) as usize;
            cells[e.proc as usize][cell.min(width - 1)] += 1;
        }
    }
    let peak = cells
        .iter()
        .flat_map(|row| row.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    let mut out = String::new();
    let unit = if rec.lanes.iter().any(|l| l.nanos) {
        "ns"
    } else {
        "ticks"
    };
    let _ = writeln!(
        out,
        "event density, {} events over [{lo}, {hi}] {unit} (peak {peak}/cell)",
        rec.events_stored()
    );
    for (p, row) in cells.iter().enumerate() {
        let total: u64 = row.iter().sum();
        let bar: String = row.iter().map(|&n| shade(n as f64 / peak as f64)).collect();
        let _ = writeln!(out, "p{p:02} |{bar}| {total}");
    }
    out
}

/// Interval-coverage timeline: one row per processor, each `(proc,
/// start, finish)` interval painted onto `width` cells over `[0,
/// horizon]`; cell shade is the fraction of the slice covered. The
/// simulator feeds this from its schedule (`Schedule::proc_intervals`),
/// making it the utilization figure the paper plots per processor.
pub fn interval_timeline(procs: usize, intervals: &[(u8, u64, u64)], width: usize) -> String {
    let width = width.max(1);
    let horizon = intervals.iter().map(|&(_, _, f)| f).max().unwrap_or(0);
    if horizon == 0 {
        return "(empty schedule)\n".to_string();
    }
    let cell_span = horizon as f64 / width as f64;
    let mut cover = vec![vec![0.0f64; width]; procs];
    let mut busy = vec![0u64; procs];
    for &(p, start, finish) in intervals {
        let (p, start, finish) = (p as usize, start as f64, finish as f64);
        busy[p] += (finish - start) as u64;
        let first = (start / cell_span) as usize;
        let last = ((finish / cell_span).ceil() as usize).min(width);
        for (c, cell) in cover[p].iter_mut().enumerate().take(last).skip(first) {
            let cell_lo = c as f64 * cell_span;
            let cell_hi = cell_lo + cell_span;
            let overlap = (finish.min(cell_hi) - start.max(cell_lo)).max(0.0);
            *cell += overlap / cell_span;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "utilization over [0, {horizon}] ticks");
    for (p, row) in cover.iter().enumerate() {
        let bar: String = row.iter().map(|&f| shade(f)).collect();
        let pct = 100.0 * busy[p] as f64 / horizon as f64;
        let _ = writeln!(out, "p{p:02} |{bar}| {pct:5.1}%");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Recorder, Recording};

    #[test]
    fn event_timeline_rows_per_proc() {
        let mut r = Recorder::sim();
        for _ in 0..10 {
            r.instant(EventKind::LineFetch, 0, 1);
        }
        r.instant(EventKind::Steal, 1, 0);
        let rec = Recording::new(2, vec![r.into_lane("sim".to_string())]);
        let text = event_timeline(&rec, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 procs");
        assert!(lines[1].starts_with("p00 |"));
        assert!(lines[1].ends_with(" 10"));
        assert!(lines[2].ends_with(" 1"));
        // Row width is fixed.
        assert_eq!(lines[1].find('|'), lines[2].find('|'));
    }

    #[test]
    fn empty_recording_is_handled() {
        let rec = Recording::new(2, vec![]);
        assert!(event_timeline(&rec, 10).contains("no events"));
    }

    #[test]
    fn interval_timeline_shows_coverage() {
        // p0 busy the whole horizon, p1 busy the second half.
        let text = interval_timeline(2, &[(0, 0, 100), (1, 50, 100)], 10);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("100.0%"));
        assert!(lines[2].contains("50.0%"));
        let p1 = lines[2];
        let bar = &p1[p1.find('|').unwrap() + 1..p1.rfind('|').unwrap()];
        assert!(bar.starts_with(' '), "first half idle");
        assert!(bar.ends_with('#'), "second half saturated");
        assert!(interval_timeline(1, &[], 10).contains("empty"));
    }
}
