//! Counters and histograms over recorded events.
//!
//! The registry is the aggregate face of a [`Recording`](crate::Recording)
//! — exact counters per event kind plus log₂-bucketed histograms for the
//! latency distributions (migration round trip, future-body duration)
//! the paper's cost model is calibrated against. Deliberately simple:
//! `BTreeMap`s for deterministic iteration order, `u64` values, no
//! labels/tags — names like `events.migrate-send` carry the structure.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log₂ buckets: value 0 lands in bucket 0, value `v > 0` in
/// bucket `64 - v.leading_zeros()` (so bucket `i` holds values in
/// `[2^(i-1), 2^i)`), and `u64::MAX` in bucket 64.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (tick counts or
/// nanoseconds). Fixed-size and allocation-free so a recorder can carry
/// one on a hot path if a later PR wants online aggregation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in [0, 1]); 0 when empty. Log₂ resolution — good enough to
    /// tell a 2× regression from noise, which is all CI needs.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "empty".to_string();
        }
        format!(
            "n={} mean={:.1} min={} p50≤{} p99≤{} max={}",
            self.count,
            self.mean(),
            self.min,
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

/// Named counters and histograms with deterministic iteration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Merge a whole histogram under `name`.
    pub fn observe_all(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Counter value (0 when absent — counters that never fired read as
    /// zero, matching how `RunStats` fields behave).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Human-readable dump, one metric per line, sorted by name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:width$}  {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name:width$}  {}", h.summary());
        }
        out
    }

    /// Counters as a JSON object (histograms are a display surface, not
    /// part of the machine-readable perf baseline — log₂ bucket edges
    /// would make `--check` brittle).
    pub fn counters_json(&self) -> Json {
        Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::u64(*v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 106);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 2);
        assert!(h.quantile(1.0) >= 100 / 2); // bucket upper bound ≥ sample/2
        assert_eq!(Histogram::new().quantile(0.5), 0);
        assert_eq!(Histogram::new().summary(), "empty");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.observe(1);
        let mut b = Histogram::new();
        b.observe(1000);
        a.merge(&b);
        assert_eq!((a.count, a.min, a.max), (2, 1, 1000));
        a.merge(&Histogram::new()); // empty merge is a no-op
        assert_eq!(a.count, 2);
    }

    #[test]
    fn registry_is_deterministic_and_zero_defaulting() {
        let mut r = MetricsRegistry::new();
        r.add("b", 2);
        r.add("a", 1);
        r.add("b", 3);
        r.observe("lat", 7);
        assert_eq!(r.counter("b"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.histogram("lat").unwrap().count, 1);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(r.counters_json().render(), "{\"a\":1,\"b\":5}");
        assert!(r.render().contains("lat"));
    }
}
