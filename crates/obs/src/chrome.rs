//! Chrome `trace_event` JSON export.
//!
//! Emits the "JSON Array Format" the Chrome/Perfetto trace viewers load
//! (`chrome://tracing`, <https://ui.perfetto.dev>): one object per event
//! with `ph` `"B"`/`"E"` for spans and `"i"` (thread-scoped) for
//! instants, `ts` in *microseconds*. Each `(&str, &Recording)` group
//! becomes one `pid` — so a sim run and an exec run of the same
//! benchmark sit side by side in the viewer — and each lane becomes one
//! `tid`, both named through `"M"` metadata events. Simulator lanes
//! carry logical timestamps; we emit one viewer-microsecond per tick
//! rather than rescale, so span lengths stay proportional to logical
//! time.

use crate::json::Json;
use crate::{Phase, Recording};

/// Render one or more recordings as a complete Chrome trace document.
pub fn trace_json(groups: &[(&str, &Recording)]) -> String {
    let mut events = Vec::new();
    for (pid, (label, rec)) in groups.iter().enumerate() {
        let pid = pid as u64;
        events.push(meta_event("process_name", pid, None, label));
        for (tid, lane) in rec.lanes.iter().enumerate() {
            let tid = tid as u64;
            let unit = if lane.nanos { "ns" } else { "ticks" };
            events.push(meta_event(
                "thread_name",
                pid,
                Some(tid),
                &format!("{} ({unit})", lane.label),
            ));
            // Monotonic-nanosecond lanes scale to real microseconds;
            // logical lanes map one tick to one microsecond.
            let ts_of = |ts: u64| {
                if lane.nanos {
                    ts as f64 / 1000.0
                } else {
                    ts as f64
                }
            };
            let mut open: Vec<(u64, &'static str)> = Vec::new();
            let mut last_ts = 0.0f64;
            for e in &lane.events {
                let ts = ts_of(e.ts);
                last_ts = last_ts.max(ts);
                let ph = match e.phase {
                    Phase::Begin => {
                        open.push((tid, e.kind.name()));
                        "B"
                    }
                    Phase::End => {
                        open.pop();
                        "E"
                    }
                    Phase::Instant => "i",
                };
                let mut obj = vec![
                    ("name".to_string(), Json::str(e.kind.name())),
                    ("ph".to_string(), Json::str(ph)),
                    ("ts".to_string(), Json::Num(ts)),
                    ("pid".to_string(), Json::u64(pid)),
                    ("tid".to_string(), Json::u64(tid)),
                ];
                if e.phase == Phase::Instant {
                    // Thread-scoped instant (a tick mark on the lane).
                    obj.push(("s".to_string(), Json::str("t")));
                }
                // `u64::MAX` is the whole-cache invalidation sentinel; it
                // (and anything past f64 exactness) renders as a string.
                let arg = if e.arg == u64::MAX {
                    Json::str("all")
                } else if e.arg <= (1 << 53) {
                    Json::u64(e.arg)
                } else {
                    Json::str(e.arg.to_string())
                };
                obj.push((
                    "args".to_string(),
                    Json::Obj(vec![
                        ("proc".to_string(), Json::u64(e.proc as u64)),
                        ("arg".to_string(), arg),
                    ]),
                ));
                events.push(Json::Obj(obj));
            }
            // A lane that dropped its tail may hold begins whose ends
            // were never stored; close them at the lane's horizon so the
            // viewer doesn't render spans to infinity.
            if lane.dropped > 0 {
                for (tid, name) in open.into_iter().rev() {
                    events.push(Json::Obj(vec![
                        ("name".to_string(), Json::str(name)),
                        ("ph".to_string(), Json::str("E")),
                        ("ts".to_string(), Json::Num(last_ts)),
                        ("pid".to_string(), Json::u64(pid)),
                        ("tid".to_string(), Json::u64(tid)),
                    ]));
                }
            }
        }
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ])
    .render()
}

fn meta_event(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Json {
    let mut obj = vec![
        ("name".to_string(), Json::str(kind)),
        ("ph".to_string(), Json::str("M")),
        ("pid".to_string(), Json::u64(pid)),
    ];
    if let Some(tid) = tid {
        obj.push(("tid".to_string(), Json::u64(tid)));
    }
    obj.push((
        "args".to_string(),
        Json::Obj(vec![("name".to_string(), Json::str(name))]),
    ));
    events_ts_zero(obj)
}

fn events_ts_zero(mut obj: Vec<(String, Json)>) -> Json {
    obj.push(("ts".to_string(), Json::u64(0)));
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Recorder, Recording};

    fn sample() -> Recording {
        let mut r = Recorder::sim();
        r.instant(EventKind::MigrateSend, 0, 1);
        r.instant(EventKind::MigrateRecv, 1, 0);
        r.begin(EventKind::FutureBody, 1, 0);
        r.end(EventKind::FutureBody, 1);
        Recording::new(2, vec![r.into_lane("sim".to_string())])
    }

    #[test]
    fn emits_parseable_trace_with_balanced_spans() {
        let text = trace_json(&[("sim", &sample())]);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phs: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phs.iter().filter(|p| **p == "E").count(), 1);
        assert_eq!(phs.iter().filter(|p| **p == "i").count(), 2);
        assert_eq!(phs.iter().filter(|p| **p == "M").count(), 2);
        // Instants are thread-scoped.
        let inst = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .unwrap();
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(
            inst.get("args").unwrap().get("arg").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn groups_become_pids() {
        let a = sample();
        let b = sample();
        let text = trace_json(&[("sim", &a), ("exec", &b)]);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").unwrap().as_u64())
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter(|e| e.get("name").unwrap().as_str() == Some("process_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["sim", "exec"]);
    }

    #[test]
    fn dropped_lane_gets_synthetic_ends() {
        let mut r = Recorder::sim().with_cap(1);
        r.begin(EventKind::FutureBody, 0, 0);
        r.end(EventKind::FutureBody, 0); // dropped past cap
        let rec = Recording::new(1, vec![r.into_lane("sim".to_string())]);
        let text = trace_json(&[("sim", &rec)]);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let b = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .count();
        assert_eq!((b, e), (1, 1), "synthetic E closes the truncated span");
    }
}
