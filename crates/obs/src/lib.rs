//! olden-obs: structured observability for both Olden backends.
//!
//! The paper's evaluation is built on per-processor event counts and
//! timelines; this crate is the layer that captures them. A [`Recorder`]
//! collects typed spans and instants — future bodies, migration
//! send/receive pairs, return-stub bounces, cache-line fetches,
//! invalidations, touch stalls — into a bounded per-thread event buffer.
//! The simulator owns one recorder (its single logical thread stamps
//! events with a logical clock); the thread backend gives every logical
//! thread and every worker its own recorder (stamped with monotonic
//! nanoseconds from a shared epoch) and drains them at shutdown, so the
//! hot path never takes a lock — each buffer is touched by exactly one
//! thread until the run ends.
//!
//! A finished run's buffers become a [`Recording`]: lanes of events plus
//! exact per-kind counts (maintained past the buffer cap, so counters
//! always reconcile with `RunStats`/`ExecReport` even when a trace is
//! truncated). Export paths live in the submodules: Chrome `trace_event`
//! JSON ([`chrome`]), plain-text per-processor timelines ([`timeline`]),
//! and a counters-and-histograms [`MetricsRegistry`] ([`metrics`]) that
//! serializes through the hand-rolled [`json`] module.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod timeline;

pub use metrics::{Histogram, MetricsRegistry};

use std::time::Instant;

/// Everything the recorder knows how to capture. A closed vocabulary, so
/// exporters and parity tests can enumerate it (`ALL`, like the machine
/// crate's `EdgeKind`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// Span: a future body, from spawn to completion.
    FutureBody,
    /// Span: a touch that is a real join — the toucher waits for (and
    /// then acquires from) a forked body.
    TouchStall,
    /// Instant at the vacated processor: a forward migration departs
    /// (`arg` = destination processor).
    MigrateSend,
    /// Instant at the destination: the migrated thread arrives
    /// (`arg` = source processor).
    MigrateRecv,
    /// Instant: a return-stub migration departs (`arg` = the caller's
    /// processor it bounces back to).
    ReturnSend,
    /// Instant: the return stub arrives back at the caller's processor
    /// (`arg` = the processor it returned from).
    ReturnRecv,
    /// Instant at the spawn processor: an idle processor grabbed a
    /// future's continuation (lazy task creation turned real).
    Steal,
    /// Instant at the accessing processor: a software-cache miss fetched
    /// one line from its home (`arg` = home processor).
    LineFetch,
    /// Instant at the arriving processor: the migration-acquire
    /// invalidation (`arg` = written-home count for a return acquire,
    /// `u64::MAX` for a call acquire's whole-cache clear).
    Invalidate,
    /// Instant: the chaos fault layer dropped a send and the client is
    /// retrying (`arg` = attempt number). Never recorded on a fault-free
    /// run.
    Retry,
}

/// Where an event is recorded on the thread backend: by the logical
/// client thread itself, or by the worker that owns the processor. The
/// simulator records both classes into its one lane; the parity tests
/// filter by site so the two backends' per-processor sequences compare
/// like for like.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Site {
    Client,
    Worker,
}

impl EventKind {
    pub const ALL: [EventKind; 10] = [
        EventKind::FutureBody,
        EventKind::TouchStall,
        EventKind::MigrateSend,
        EventKind::MigrateRecv,
        EventKind::ReturnSend,
        EventKind::ReturnRecv,
        EventKind::Steal,
        EventKind::LineFetch,
        EventKind::Invalidate,
        EventKind::Retry,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EventKind::FutureBody => "future-body",
            EventKind::TouchStall => "touch-stall",
            EventKind::MigrateSend => "migrate-send",
            EventKind::MigrateRecv => "migrate-recv",
            EventKind::ReturnSend => "return-send",
            EventKind::ReturnRecv => "return-recv",
            EventKind::Steal => "steal",
            EventKind::LineFetch => "line-fetch",
            EventKind::Invalidate => "invalidate",
            EventKind::Retry => "retry",
        }
    }

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }

    /// Spans are recorded as a begin/end pair; everything else is an
    /// instant.
    pub fn is_span(self) -> bool {
        matches!(self, EventKind::FutureBody | EventKind::TouchStall)
    }

    pub fn site(self) -> Site {
        match self {
            EventKind::Invalidate => Site::Worker,
            _ => Site::Client,
        }
    }
}

/// Which half of a span an event is (instants carry [`Phase::Instant`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    Begin,
    End,
    Instant,
}

/// One recorded event. `ts` is a logical counter in the simulator and
/// monotonic nanoseconds since the run's epoch on the thread backend;
/// `arg` is kind-specific (see [`EventKind`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    pub kind: EventKind,
    pub phase: Phase,
    pub proc: u8,
    pub ts: u64,
    pub arg: u64,
}

/// Default per-lane event capacity (~1.5 MiB of events). Past it, events
/// are counted but not stored — the same drop-the-tail discipline as the
/// machine crate's `FaultLog`, keeping the stored prefix well-formed and
/// the per-kind counts exact.
pub const LANE_CAP: usize = 1 << 16;

#[derive(Clone, Copy, Debug)]
enum ObsClock {
    /// The simulator's logical time: one tick per recorded event.
    Logical(u64),
    /// The thread backend's time: nanoseconds since the run's epoch.
    Monotonic(Instant),
}

/// A single-owner event collector. Cheap when events are few, bounded
/// when they are not; never shared between threads (the thread backend
/// drains one per client/worker at shutdown instead of locking on the
/// hot path).
#[derive(Clone, Debug)]
pub struct Recorder {
    clock: ObsClock,
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
    counts: [u64; EventKind::ALL.len()],
}

impl Recorder {
    /// A recorder on the simulator's logical clock.
    pub fn sim() -> Recorder {
        Recorder::with_clock(ObsClock::Logical(0))
    }

    /// A recorder on monotonic nanoseconds since `epoch` (one shared
    /// epoch per run, so lanes from different threads align).
    pub fn exec(epoch: Instant) -> Recorder {
        Recorder::with_clock(ObsClock::Monotonic(epoch))
    }

    fn with_clock(clock: ObsClock) -> Recorder {
        Recorder {
            clock,
            events: Vec::new(),
            cap: LANE_CAP,
            dropped: 0,
            counts: [0; EventKind::ALL.len()],
        }
    }

    /// Same recorder with a different event capacity (tests).
    pub fn with_cap(mut self, cap: usize) -> Recorder {
        self.cap = cap;
        self
    }

    fn now(&mut self) -> u64 {
        match &mut self.clock {
            ObsClock::Logical(t) => {
                let ts = *t;
                *t += 1;
                ts
            }
            ObsClock::Monotonic(epoch) => epoch.elapsed().as_nanos() as u64,
        }
    }

    fn push(&mut self, kind: EventKind, phase: Phase, proc: u8, arg: u64) {
        // Count begins and instants (a span counts once); counts stay
        // exact past the cap.
        if !matches!(phase, Phase::End) {
            self.counts[kind.index()] += 1;
        }
        let ts = self.now();
        if self.events.len() < self.cap {
            self.events.push(Event {
                kind,
                phase,
                proc,
                ts,
                arg,
            });
        } else {
            self.dropped += 1;
        }
    }

    pub fn instant(&mut self, kind: EventKind, proc: u8, arg: u64) {
        debug_assert!(!kind.is_span(), "spans use begin/end");
        self.push(kind, Phase::Instant, proc, arg);
    }

    pub fn begin(&mut self, kind: EventKind, proc: u8, arg: u64) {
        debug_assert!(kind.is_span(), "instants use instant()");
        self.push(kind, Phase::Begin, proc, arg);
    }

    pub fn end(&mut self, kind: EventKind, proc: u8) {
        debug_assert!(kind.is_span(), "instants use instant()");
        self.push(kind, Phase::End, proc, 0);
    }

    /// Exact number of events of `kind` recorded so far (spans count
    /// their begins), including any past the buffer cap.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Freeze this recorder into a named lane.
    pub fn into_lane(self, label: String) -> Lane {
        Lane {
            label,
            nanos: matches!(self.clock, ObsClock::Monotonic(_)),
            events: self.events,
            dropped: self.dropped,
            counts: self.counts,
        }
    }
}

/// One thread's worth of events in a finished [`Recording`].
#[derive(Clone, Debug, PartialEq)]
pub struct Lane {
    /// Stable display name; lanes sort by it, so `clientNNNN` /
    /// `workerNN` labels give a deterministic lane order.
    pub label: String,
    /// Whether `ts` is monotonic nanoseconds (thread backend) rather
    /// than logical ticks (simulator).
    pub nanos: bool,
    pub events: Vec<Event>,
    /// Events past [`LANE_CAP`] that were counted but not stored.
    pub dropped: u64,
    counts: [u64; EventKind::ALL.len()],
}

impl Lane {
    /// Exact per-kind count (spans count their begins), including
    /// events dropped past the cap.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Reassemble a lane from its serialized parts (the network backend
    /// ships worker lanes between processes); `counts` is the per-kind
    /// table in [`EventKind::ALL`] order, as produced by
    /// [`Lane::count`] over all kinds.
    pub fn from_parts(
        label: String,
        nanos: bool,
        events: Vec<Event>,
        dropped: u64,
        counts: [u64; EventKind::ALL.len()],
    ) -> Lane {
        Lane {
            label,
            nanos,
            events,
            dropped,
            counts,
        }
    }
}

/// Everything one run recorded: the lanes of every logical thread and
/// (on the thread backend) every worker, in label order.
#[derive(Clone, Debug)]
pub struct Recording {
    /// Processors in the run's configuration.
    pub procs: usize,
    pub lanes: Vec<Lane>,
}

impl Recording {
    /// Assemble a recording; lanes are sorted by label so the result is
    /// deterministic however the threads finished.
    pub fn new(procs: usize, mut lanes: Vec<Lane>) -> Recording {
        lanes.sort_by(|a, b| a.label.cmp(&b.label));
        Recording { procs, lanes }
    }

    /// Exact event count of `kind` across all lanes (spans count once).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.lanes.iter().map(|l| l.count(kind)).sum()
    }

    /// Events dropped past the per-lane cap, across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Events actually stored, across all lanes.
    pub fn events_stored(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// The `(kind, phase, arg)` sequence of `site`-class events per
    /// processor, lanes visited in label order. Timestamps are omitted
    /// deliberately: this is the surface on which the simulator's
    /// logical-time events and the thread backend's wall-time events
    /// must agree exactly (the lockstep parity oracle).
    pub fn site_sequences(&self, site: Site) -> Vec<Vec<(EventKind, Phase, u64)>> {
        let mut out = vec![Vec::new(); self.procs];
        for lane in &self.lanes {
            for e in &lane.events {
                if e.kind.site() == site {
                    out[e.proc as usize].push((e.kind, e.phase, e.arg));
                }
            }
        }
        out
    }

    /// Check that every lane's span events nest: each end matches the
    /// kind on top of that lane's open-span stack. Spans left open are
    /// an error unless the lane dropped events past its cap (the end
    /// may have been among the dropped tail).
    pub fn span_nesting_ok(&self) -> Result<(), String> {
        for lane in &self.lanes {
            let mut stack: Vec<EventKind> = Vec::new();
            for e in &lane.events {
                match e.phase {
                    Phase::Begin => stack.push(e.kind),
                    Phase::End => match stack.pop() {
                        Some(open) if open == e.kind => {}
                        Some(open) => {
                            return Err(format!(
                                "lane {}: end of {} closes an open {}",
                                lane.label,
                                e.kind.name(),
                                open.name()
                            ));
                        }
                        None => {
                            return Err(format!(
                                "lane {}: end of {} with no open span",
                                lane.label,
                                e.kind.name()
                            ));
                        }
                    },
                    Phase::Instant => {}
                }
            }
            if !stack.is_empty() && lane.dropped == 0 {
                return Err(format!(
                    "lane {}: {} span(s) left open",
                    lane.label,
                    stack.len()
                ));
            }
        }
        Ok(())
    }

    /// Earliest and latest timestamp stored, if any events were.
    pub fn ts_bounds(&self) -> Option<(u64, u64)> {
        let mut bounds: Option<(u64, u64)> = None;
        for lane in &self.lanes {
            for e in &lane.events {
                bounds = Some(match bounds {
                    None => (e.ts, e.ts),
                    Some((lo, hi)) => (lo.min(e.ts), hi.max(e.ts)),
                });
            }
        }
        bounds
    }

    /// Latencies between each `from` instant and the next `to` instant
    /// in the same lane (e.g. `MigrateSend` → `MigrateRecv` is the
    /// migration latency, retries included).
    pub fn latencies(&self, from: EventKind, to: EventKind) -> Histogram {
        let mut h = Histogram::new();
        for lane in &self.lanes {
            let mut pending: Option<u64> = None;
            for e in &lane.events {
                if e.kind == from {
                    pending = Some(e.ts);
                } else if e.kind == to {
                    if let Some(t0) = pending.take() {
                        h.observe(e.ts.saturating_sub(t0));
                    }
                }
            }
        }
        h
    }

    /// Durations of every completed span of `kind` (begins pair with
    /// ends through a per-lane stack, so nested future bodies pair
    /// correctly).
    pub fn span_durations(&self, kind: EventKind) -> Histogram {
        let mut h = Histogram::new();
        for lane in &self.lanes {
            let mut stack: Vec<u64> = Vec::new();
            for e in &lane.events {
                if e.kind != kind {
                    continue;
                }
                match e.phase {
                    Phase::Begin => stack.push(e.ts),
                    Phase::End => {
                        if let Some(t0) = stack.pop() {
                            h.observe(e.ts.saturating_sub(t0));
                        }
                    }
                    Phase::Instant => {}
                }
            }
        }
        h
    }

    /// The recording summarized as a metrics registry: one counter per
    /// event kind plus the latency/duration histograms the paper's
    /// evaluation cares about.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::default();
        for kind in EventKind::ALL {
            reg.set(&format!("events.{}", kind.name()), self.count(kind));
        }
        reg.set("events.dropped", self.dropped());
        for (name, h) in [
            (
                "migration_latency",
                self.latencies(EventKind::MigrateSend, EventKind::MigrateRecv),
            ),
            (
                "return_latency",
                self.latencies(EventKind::ReturnSend, EventKind::ReturnRecv),
            ),
            ("future_body", self.span_durations(EventKind::FutureBody)),
            ("touch_stall", self.span_durations(EventKind::TouchStall)),
        ] {
            if h.count > 0 {
                reg.observe_all(name, &h);
            }
        }
        reg
    }

    /// Chrome `trace_event` JSON of this recording alone (see
    /// [`chrome::trace_json`] to combine several runs in one trace).
    pub fn chrome_trace(&self) -> String {
        chrome::trace_json(&[("run", self)])
    }

    /// Plain-text per-processor event-density timeline.
    pub fn timeline(&self, width: usize) -> String {
        timeline::event_timeline(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(label: &str, rec: Recorder) -> Lane {
        rec.into_lane(label.to_string())
    }

    #[test]
    fn logical_clock_ticks_per_event() {
        let mut r = Recorder::sim();
        r.instant(EventKind::Steal, 0, 0);
        r.begin(EventKind::FutureBody, 1, 0);
        r.end(EventKind::FutureBody, 1);
        let l = lane("sim", r);
        assert_eq!(
            l.events.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(!l.nanos);
    }

    #[test]
    fn counts_stay_exact_past_the_cap() {
        let mut r = Recorder::sim().with_cap(4);
        for _ in 0..10 {
            r.instant(EventKind::LineFetch, 0, 1);
        }
        assert_eq!(r.count(EventKind::LineFetch), 10);
        let l = lane("sim", r);
        assert_eq!(l.events.len(), 4);
        assert_eq!(l.dropped, 6);
        assert_eq!(l.count(EventKind::LineFetch), 10);
        let rec = Recording::new(1, vec![l]);
        assert_eq!(rec.count(EventKind::LineFetch), 10);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn ends_do_not_double_count_spans() {
        let mut r = Recorder::sim();
        r.begin(EventKind::FutureBody, 0, 0);
        r.end(EventKind::FutureBody, 0);
        assert_eq!(r.count(EventKind::FutureBody), 1);
    }

    #[test]
    fn lanes_sort_by_label() {
        let rec = Recording::new(
            2,
            vec![
                lane("worker01", Recorder::sim()),
                lane("client0000", Recorder::sim()),
                lane("worker00", Recorder::sim()),
            ],
        );
        let labels: Vec<&str> = rec.lanes.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, vec!["client0000", "worker00", "worker01"]);
    }

    #[test]
    fn site_sequences_split_by_processor_and_site() {
        let mut r = Recorder::sim();
        r.instant(EventKind::MigrateSend, 0, 2);
        r.instant(EventKind::Invalidate, 2, u64::MAX);
        r.instant(EventKind::MigrateRecv, 2, 0);
        let rec = Recording::new(4, vec![lane("sim", r)]);
        let client = rec.site_sequences(Site::Client);
        assert_eq!(client[0], vec![(EventKind::MigrateSend, Phase::Instant, 2)]);
        assert_eq!(client[2], vec![(EventKind::MigrateRecv, Phase::Instant, 0)]);
        let worker = rec.site_sequences(Site::Worker);
        assert_eq!(
            worker[2],
            vec![(EventKind::Invalidate, Phase::Instant, u64::MAX)]
        );
        assert!(worker[0].is_empty());
    }

    #[test]
    fn nesting_checker_accepts_nested_and_rejects_mismatched() {
        let mut r = Recorder::sim();
        r.begin(EventKind::FutureBody, 0, 0);
        r.begin(EventKind::FutureBody, 0, 0);
        r.end(EventKind::FutureBody, 0);
        r.end(EventKind::FutureBody, 0);
        r.begin(EventKind::TouchStall, 0, 0);
        r.end(EventKind::TouchStall, 0);
        let ok = Recording::new(1, vec![lane("a", r)]);
        assert!(ok.span_nesting_ok().is_ok());

        let mut r = Recorder::sim();
        r.begin(EventKind::FutureBody, 0, 0);
        r.end(EventKind::TouchStall, 0);
        let bad = Recording::new(1, vec![lane("a", r)]);
        assert!(bad.span_nesting_ok().is_err());

        let mut r = Recorder::sim();
        r.begin(EventKind::FutureBody, 0, 0);
        let open = Recording::new(1, vec![lane("a", r)]);
        assert!(open.span_nesting_ok().is_err(), "unclosed span, no drops");
    }

    #[test]
    fn latency_pairs_and_span_durations() {
        let mut r = Recorder::sim();
        r.instant(EventKind::MigrateSend, 0, 1); // ts 0
        r.instant(EventKind::MigrateRecv, 1, 0); // ts 1
        r.begin(EventKind::FutureBody, 1, 0); // ts 2
        r.end(EventKind::FutureBody, 1); // ts 3
        let rec = Recording::new(2, vec![lane("sim", r)]);
        let mig = rec.latencies(EventKind::MigrateSend, EventKind::MigrateRecv);
        assert_eq!((mig.count, mig.min, mig.max), (1, 1, 1));
        let body = rec.span_durations(EventKind::FutureBody);
        assert_eq!((body.count, body.sum), (1, 1));
        assert_eq!(rec.ts_bounds(), Some((0, 3)));
        let m = rec.metrics();
        assert_eq!(m.counter("events.migrate-send"), 1);
        assert_eq!(m.counter("events.dropped"), 0);
        assert!(m.histogram("migration_latency").is_some());
    }

    #[test]
    fn exec_clock_is_monotonic_nanos() {
        let mut r = Recorder::exec(Instant::now());
        r.instant(EventKind::Steal, 0, 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        r.instant(EventKind::Steal, 0, 0);
        let l = lane("w", r);
        assert!(l.nanos);
        assert!(l.events[1].ts > l.events[0].ts);
    }
}
