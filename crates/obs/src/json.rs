//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! Hand-rolled because the workspace is intentionally dependency-free:
//! tier-1 verification must pass with no network access, so we cannot
//! lean on serde. The subset is exactly what the exporters need — the
//! six JSON value kinds, numbers as `f64` (exact for the `u64` counters
//! we emit as long as they stay below 2^53, which event counts and
//! nanosecond wall times of CI-sized runs comfortably do), and strict
//! parsing of what [`render`](Json::render) produces plus ordinary
//! whitespace, so round-trip tests and `oldenc bench --check` can read
//! files we or a previous CI run wrote.

use std::fmt::Write as _;

/// A parsed or to-be-rendered JSON value. Object members keep insertion
/// order (a `Vec`, not a map), so rendering is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// `u64` → number. Callers keep values below 2^53 (documented above);
    /// debug builds check.
    pub fn u64(n: u64) -> Json {
        debug_assert!(n <= (1u64 << 53), "u64 beyond f64 exactness: {n}");
        Json::Num(n as f64)
    }

    /// Member lookup on an object (first match; `None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numbers that are exact non-negative integers, as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace); deterministic because objects
    /// keep member order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the exporters never produce them, but
        // render *something* parseable rather than panic.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_str(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs never occur in what we emit;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let v = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("int".into(), Json::u64(12345)),
            ("frac".into(), Json::Num(1.5)),
            ("neg".into(), Json::Num(-7.0)),
            (
                "text".into(),
                Json::str("tab\there \"quoted\" \\ and\nnewline"),
            ),
            (
                "arr".into(),
                Json::Arr(vec![Json::u64(1), Json::Bool(false), Json::Null]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // And rendering is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parses_whitespace_and_rejects_garbage() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(0).render(), "0");
        assert_eq!(Json::u64(9007199254740992).render(), "9007199254740992");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
    }
}
