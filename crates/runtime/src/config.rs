//! Run configuration and the per-dereference mechanism choice.

use olden_cache::Protocol;
use olden_machine::CostModel;

/// The two remote-data-access mechanisms of §3. The Olden compiler's
/// heuristic (reproduced in `olden-analysis`) selects one per pointer
/// dereference; benchmark code passes the selected mechanism at each
/// access site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mechanism {
    /// Computation migration: the thread moves to the data (§3.1).
    Migrate,
    /// Software caching: the data's line moves to the thread (§3.2).
    Cache,
}

impl Mechanism {
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Migrate => "migrate",
            Mechanism::Cache => "cache",
        }
    }
}

/// Configuration of one simulated run.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Processor count.
    pub procs: usize,
    /// Cycle costs.
    pub cost: CostModel,
    /// Coherence protocol for the software cache.
    pub protocol: Protocol,
    /// When set, every dereference uses this mechanism regardless of what
    /// the benchmark requested — reproduces Table 2's "Migrate-only"
    /// column (and allows cache-only experiments).
    pub force: Option<Mechanism>,
    /// Record every heap access for the happens-before race sanitizer
    /// (the dynamic half of `olden-racecheck`). Off by default: the log
    /// costs memory proportional to the access count.
    pub sanitize: bool,
}

impl Config {
    /// An Olden machine with `procs` processors, CM-5 costs, and the local
    /// knowledge coherence scheme the paper's results use.
    pub fn olden(procs: usize) -> Config {
        Config {
            procs,
            cost: CostModel::cm5(),
            protocol: Protocol::LocalKnowledge,
            force: None,
            sanitize: false,
        }
    }

    /// The sequential baseline: one processor, no Olden overheads.
    pub fn sequential() -> Config {
        Config {
            procs: 1,
            cost: CostModel::sequential(),
            protocol: Protocol::LocalKnowledge,
            force: None,
            sanitize: false,
        }
    }

    /// Same configuration with a forced mechanism.
    pub fn forced(mut self, m: Mechanism) -> Config {
        self.force = Some(m);
        self
    }

    /// Same configuration with the happens-before sanitizer recording.
    pub fn sanitized(mut self) -> Config {
        self.sanitize = true;
        self
    }

    /// Same configuration under a different coherence protocol.
    pub fn with_protocol(mut self, p: Protocol) -> Config {
        self.protocol = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = Config::olden(32).forced(Mechanism::Migrate);
        assert_eq!(c.procs, 32);
        assert_eq!(c.force, Some(Mechanism::Migrate));
        let c = Config::olden(8).with_protocol(Protocol::Bilateral);
        assert_eq!(c.protocol, Protocol::Bilateral);
        assert!(Config::sequential().cost.ptr_test == 0);
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(Mechanism::Migrate.name(), "migrate");
        assert_eq!(Mechanism::Cache.name(), "cache");
    }
}
