//! Run configuration and the per-dereference mechanism choice.

use olden_cache::Protocol;
use olden_machine::CostModel;

/// The two remote-data-access mechanisms of §3. The Olden compiler's
/// heuristic (reproduced in `olden-analysis`) selects one per pointer
/// dereference; benchmark code passes the selected mechanism at each
/// access site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mechanism {
    /// Computation migration: the thread moves to the data (§3.1).
    Migrate,
    /// Software caching: the data's line moves to the thread (§3.2).
    Cache,
}

impl Mechanism {
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Migrate => "migrate",
            Mechanism::Cache => "cache",
        }
    }
}

/// The static optimizer's verdict for one dereference site, carried by
/// benchmark code into the `*_checked` access methods.
///
/// `Elide` is a *hint with a proof obligation already discharged
/// statically*: the `olden-analysis` must-availability pass showed that on
/// every path to the site the same object was already checked and nothing
/// (migration, touch, release, reassignment, conflicting store) has
/// invalidated that fact. The runtime still verifies the fact cheaply
/// (a residence test it was going to pass anyway) and falls back to the
/// byte-exact `Perform` path when the hint is stale — values and coherence
/// behavior can never change, only the check/probe counters move.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Check {
    /// Run the compiler-inserted pointer test / cache lookup as usual.
    #[default]
    Perform,
    /// The optimizer proved the check redundant: take the fast path.
    Elide,
}

/// Configuration of one simulated run.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Processor count.
    pub procs: usize,
    /// Cycle costs.
    pub cost: CostModel,
    /// Coherence protocol for the software cache.
    pub protocol: Protocol,
    /// When set, every dereference uses this mechanism regardless of what
    /// the benchmark requested — reproduces Table 2's "Migrate-only"
    /// column (and allows cache-only experiments).
    pub force: Option<Mechanism>,
    /// Record every heap access for the happens-before race sanitizer
    /// (the dynamic half of `olden-racecheck`). Off by default: the log
    /// costs memory proportional to the access count.
    pub sanitize: bool,
    /// Honor [`Check::Elide`] verdicts at `*_checked` access sites. Off by
    /// default so every existing configuration keeps its exact cycle
    /// accounting; `forced` runs ignore it regardless (the verdicts were
    /// computed against the heuristic's mechanism assignment, which a
    /// force override invalidates wholesale).
    pub elide_checks: bool,
    /// Capture an `olden-obs` event recording of the run (migrations,
    /// line fetches, future bodies, …), returned in
    /// [`RunReport::recording`](crate::RunReport). Off by default: the
    /// hooks are a branch-on-`None` when disabled, so plain runs pay
    /// nothing.
    pub record: bool,
}

impl Config {
    /// An Olden machine with `procs` processors, CM-5 costs, and the local
    /// knowledge coherence scheme the paper's results use.
    pub fn olden(procs: usize) -> Config {
        Config {
            procs,
            cost: CostModel::cm5(),
            protocol: Protocol::LocalKnowledge,
            force: None,
            sanitize: false,
            elide_checks: false,
            record: false,
        }
    }

    /// The sequential baseline: one processor, no Olden overheads.
    pub fn sequential() -> Config {
        Config {
            procs: 1,
            cost: CostModel::sequential(),
            protocol: Protocol::LocalKnowledge,
            force: None,
            sanitize: false,
            elide_checks: false,
            record: false,
        }
    }

    /// Same configuration with a forced mechanism.
    pub fn forced(mut self, m: Mechanism) -> Config {
        self.force = Some(m);
        self
    }

    /// Same configuration with the happens-before sanitizer recording.
    pub fn sanitized(mut self) -> Config {
        self.sanitize = true;
        self
    }

    /// Same configuration under a different coherence protocol.
    pub fn with_protocol(mut self, p: Protocol) -> Config {
        self.protocol = p;
        self
    }

    /// Same configuration with the static optimizer's check elisions
    /// honored.
    pub fn optimized(mut self) -> Config {
        self.elide_checks = true;
        self
    }

    /// Same configuration with event recording on.
    pub fn recorded(mut self) -> Config {
        self.record = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = Config::olden(32).forced(Mechanism::Migrate);
        assert_eq!(c.procs, 32);
        assert_eq!(c.force, Some(Mechanism::Migrate));
        let c = Config::olden(8).with_protocol(Protocol::Bilateral);
        assert_eq!(c.protocol, Protocol::Bilateral);
        assert!(Config::sequential().cost.ptr_test == 0);
        assert!(!Config::olden(4).elide_checks);
        assert!(Config::olden(4).optimized().elide_checks);
        assert!(!Config::olden(4).record);
        assert!(Config::olden(4).recorded().record);
        assert_eq!(Check::default(), Check::Perform);
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(Mechanism::Migrate.name(), "migrate");
        assert_eq!(Mechanism::Cache.name(), "cache");
    }
}
