//! The Olden runtime: distributed heap, computation migration, software
//! caching, and futures with lazy task creation.
//!
//! This crate is the programmer-facing layer of the reproduction. A
//! benchmark is an ordinary Rust function over [`OldenCtx`]; it allocates
//! structures in the distributed heap with [`OldenCtx::alloc`] (naming the
//! owning processor, exactly like Olden's `ALLOC`), dereferences global
//! pointers with an explicit [`Mechanism`] (the choice the Olden compiler's
//! heuristic makes per program point), and expresses parallelism with
//! [`OldenCtx::future_call`] / [`OldenCtx::touch`].
//!
//! Execution is *sequential and exact* — every value a benchmark computes
//! is the real value, verified against plain serial references — while the
//! context records a timing trace (segments bound to processors, migration
//! and steal edges, touch joins) that `olden-machine`'s list scheduler
//! replays to produce the parallel makespan. See DESIGN.md §5 for the full
//! model.

pub mod backend;
pub mod config;
pub mod ctx;
pub mod heap;
pub mod interp;
pub mod report;
pub mod sanitize;

pub use backend::Backend;
pub use config::{Check, Config, Mechanism};
pub use ctx::{FutureHandle, OldenCtx};
pub use heap::DistributedHeap;
pub use interp::{run_ir, RunOutcome, Value, DEFAULT_FUEL};
pub use olden_cache::{Access, CacheStats, Protocol};
pub use olden_gptr::{GPtr, ProcId, Word};
pub use olden_machine::{
    segment_clocks, CostModel, EdgeKind, FaultEvent, FaultLog, FaultTag, VClock,
};
pub use olden_obs::{
    EventKind, Histogram, Lane, MetricsRegistry, Phase, Recorder, Recording, Site,
};
pub use report::{run, speedup_curve, RunReport, RunStats, TransportStats};
pub use sanitize::{check_trace, LineKey, LineSanitizer, RaceViolation};
