//! The executable-IR interpreter: generated DSL programs running for
//! real on any [`Backend`].
//!
//! `olden_analysis::lower` flattens a type-checked DSL program into
//! basic blocks whose only heap operations are check-site-annotated
//! loads and stores; this module executes that IR against the simulator
//! (`OldenCtx`), the thread backend (`olden_exec::ExecCtx`), or any
//! other `Backend` — which is what makes whole-stack differential
//! testing possible: the *same* program, under the *same* olden-select
//! verdicts, on executors that must agree byte-for-byte.
//!
//! ## Determinism contract
//!
//! Every semantic decision here is a pure function of computed values,
//! never of backend internals, so lockstep runs on different backends
//! take identical paths:
//!
//! * **Heap inputs** are built by a seeded builder from the DSL struct
//!   declarations — allocation order, placement (honoring the declared
//!   path affinities), and field values are functions of the seed alone,
//!   so the bump allocators on both backends hand out identical gptrs.
//! * **Null dereferences** yield the field type's zero without touching
//!   the heap; null-based stores are no-ops.
//! * **Extern calls** (`ext0(...)` and friends) return a deterministic
//!   hash of the callee name and argument values.
//! * **Arithmetic** wraps; division and remainder by zero yield zero.
//! * **Runaway programs** (generated heap cycles or unbounded mutual
//!   recursion) are cut by an instruction *fuel* budget and a call-depth
//!   cap — both counted in execution order, so the cut lands on the same
//!   instruction everywhere.

use crate::backend::Backend;
use crate::config::Mechanism;
use olden_analysis::ir::{BinOp, Inst, IrProgram, IrSite, IrTy, Term, UnOp};
use olden_analysis::Mech;
use olden_gptr::{GPtr, ProcId, Word};
use olden_rng::{mix2, SplitMix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Default instruction budget for one program run: far above what any
/// generated program needs to terminate, small enough that a generated
/// heap cycle or accidental mutual recursion halts in microseconds.
pub const DEFAULT_FUEL: i64 = 60_000;

/// Call-depth cap (stack safety on worker threads; generated recursion
/// over builder-made data never gets near it).
const MAX_CALL_DEPTH: u32 = 40;

/// Per-root node budget and depth bound for the heap builder.
const BUILD_NODES: i64 = 48;
const BUILD_DEPTH: u32 = 5;

/// A dynamically-typed IR value. The DSL is typechecked before lowering,
/// so in practice each register holds one kind for its whole life; the
/// dynamic representation keeps the interpreter total on odd corpus
/// programs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Ptr(GPtr),
}

impl Value {
    fn truthy(self) -> bool {
        match self {
            Value::Int(n) => n != 0,
            Value::Ptr(p) => !p.is_null(),
        }
    }

    /// Integer view. Pointers coerce to 0/1 (null/non-null), never to
    /// their raw bits: heap addresses are backend-specific, and any
    /// integer derived from one would silently break sim-vs-exec parity.
    fn as_i64(self) -> i64 {
        match self {
            Value::Int(n) => n,
            Value::Ptr(p) => i64::from(!p.is_null()),
        }
    }

    fn word(self) -> Word {
        match self {
            Value::Int(n) => Word::from(n),
            Value::Ptr(p) => Word::from(p),
        }
    }

    /// Backend-independent digest for checksums and extern hashing:
    /// integers contribute their bits, pointers only their nullness.
    fn digest(self) -> u64 {
        match self {
            Value::Int(n) => n as u64,
            Value::Ptr(p) => u64::from(!p.is_null()),
        }
    }
}

/// Shared run accounting: instruction fuel, per-control-loop trip
/// counters (indexed like `IrProgram::trip_keys`), and whether any
/// budget cut fired.
struct RunState {
    fuel: AtomicI64,
    halted: AtomicBool,
    trips: Vec<AtomicU64>,
}

/// What one IR run produced, beyond the backend's own counters.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// FNV/splitmix fold of every top-level function's return value —
    /// the "byte-equal values" surface of the differential harness.
    pub checksum: u64,
    /// Measured trips per control loop, aligned with
    /// `IrProgram::trip_keys` (recursion loops count invocations).
    pub trips: Vec<(String, u64)>,
    /// True when the fuel or depth cut fired (still deterministic; the
    /// harness compares it across backends like any other value).
    pub halted: bool,
}

#[derive(Clone)]
struct Interp {
    prog: Arc<IrProgram>,
    state: Arc<RunState>,
    /// Override every site's mechanism (the flip experiment); `None`
    /// honors the live olden-select verdicts baked into the IR.
    force: Option<Mech>,
}

impl Interp {
    fn mech(&self, site: &IrSite) -> Mechanism {
        match self.force.unwrap_or(site.mech) {
            Mech::Migrate => Mechanism::Migrate,
            Mech::Cache => Mechanism::Cache,
        }
    }

    /// A DSL-level call: a procedure-call boundary on the backend, like
    /// the hand-written kernels wrap every call.
    fn call_func<B: Backend>(&self, ctx: &mut B, fi: usize, args: Vec<Value>, depth: u32) -> Value {
        ctx.call(|c| self.exec_func(c, fi, args, depth))
    }

    fn exec_func<B: Backend>(&self, ctx: &mut B, fi: usize, args: Vec<Value>, depth: u32) -> Value {
        let f = &self.prog.funcs[fi];
        if depth > MAX_CALL_DEPTH {
            self.state.halted.store(true, Ordering::Relaxed);
            return Value::Int(0);
        }
        if let Some(slot) = f.rec_slot {
            self.state.trips[slot].fetch_add(1, Ordering::Relaxed);
        }
        let mut regs = vec![Value::Int(0); f.nregs.max(args.len())];
        regs[..args.len()].copy_from_slice(&args);
        let mut futures: HashMap<usize, B::Handle<Value>> = HashMap::new();
        let mut bi = 0usize;
        loop {
            let b = &f.blocks[bi];
            let cost = b.insts.len() as i64 + 1;
            if self.state.fuel.fetch_sub(cost, Ordering::Relaxed) <= cost {
                self.state.halted.store(true, Ordering::Relaxed);
                return Value::Int(0);
            }
            if let Some(slot) = b.trip_slot {
                self.state.trips[slot].fetch_add(1, Ordering::Relaxed);
            }
            for inst in &b.insts {
                match inst {
                    Inst::ConstInt { dst, val } => regs[*dst] = Value::Int(*val),
                    Inst::ConstNull { dst } => regs[*dst] = Value::Ptr(GPtr::NULL),
                    Inst::Copy { dst, src } => regs[*dst] = regs[*src],
                    Inst::Un { dst, op, arg } => {
                        let a = regs[*arg];
                        regs[*dst] = Value::Int(match op {
                            UnOp::Neg => a.as_i64().wrapping_neg(),
                            UnOp::Not => i64::from(!a.truthy()),
                        });
                    }
                    Inst::Bin { dst, op, lhs, rhs } => {
                        regs[*dst] = bin_op(*op, regs[*lhs], regs[*rhs]);
                    }
                    Inst::Load { dst, base, site } => {
                        let s = &f.sites[*site];
                        regs[*dst] = match regs[*base] {
                            Value::Ptr(p) if !p.is_null() => {
                                let w = ctx.read(p, s.field, self.mech(s));
                                if s.loads_ptr {
                                    Value::Ptr(w.as_ptr())
                                } else {
                                    Value::Int(w.as_i64())
                                }
                            }
                            // Null (or non-pointer) base: the field
                            // type's zero, no heap traffic.
                            _ if s.loads_ptr => Value::Ptr(GPtr::NULL),
                            _ => Value::Int(0),
                        };
                    }
                    Inst::Store { base, src, site } => {
                        let s = &f.sites[*site];
                        if let Value::Ptr(p) = regs[*base] {
                            if !p.is_null() {
                                ctx.write_word(p, s.field, regs[*src].word(), self.mech(s));
                            }
                        }
                    }
                    Inst::Call { dst, func, args } => {
                        let argv: Vec<Value> = args.iter().map(|&r| regs[r]).collect();
                        regs[*dst] = self.call_func(ctx, *func, argv, depth + 1);
                    }
                    Inst::FutureCall { dst, func, args } => {
                        let argv: Vec<Value> = args.iter().map(|&r| regs[r]).collect();
                        let me = self.clone();
                        let (callee, d) = (*func, depth + 1);
                        let h = ctx.future_call(move |c| me.call_func(c, callee, argv, d));
                        futures.insert(*dst, h);
                        regs[*dst] = Value::Int(0);
                    }
                    Inst::ExternCall { dst, name, args } => {
                        let mut h = 0xcbf29ce484222325u64;
                        for byte in name.bytes() {
                            h = (h ^ u64::from(byte)).wrapping_mul(0x100000001b3);
                        }
                        for &r in args {
                            h = mix2(h, regs[r].digest());
                        }
                        regs[*dst] = Value::Int((h % 97) as i64);
                    }
                    Inst::Touch { reg } => {
                        if let Some(h) = futures.remove(reg) {
                            regs[*reg] = ctx.touch(h);
                        }
                    }
                }
            }
            match &b.term {
                Term::Jump(t) => bi = *t,
                Term::Branch { cond, then_, else_ } => {
                    bi = if regs[*cond].truthy() { *then_ } else { *else_ };
                }
                Term::Ret(Some(r)) => return regs[*r],
                Term::Ret(None) => return Value::Int(0),
            }
        }
    }
}

fn bin_op(op: BinOp, l: Value, r: Value) -> Value {
    // Pointer identity (`p == q` between two pointer registers) compares
    // the actual references: whether two registers name the same object
    // is a program property, equal on every backend, unlike any ordering
    // or arithmetic over raw addresses (which `as_i64` refuses to leak).
    if let (Value::Ptr(p), Value::Ptr(q)) = (l, r) {
        match op {
            BinOp::Eq => return Value::Int(i64::from(p.bits() == q.bits())),
            BinOp::Ne => return Value::Int(i64::from(p.bits() != q.bits())),
            _ => {}
        }
    }
    let (a, b) = (l.as_i64(), r.as_i64());
    Value::Int(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::And => i64::from(l.truthy() && r.truthy()),
        BinOp::Or => i64::from(l.truthy() || r.truthy()),
    })
}

/// Build one heap instance of `structs[si]` rooted on `proc`, honoring
/// each pointer field's declared affinity: the child lands on the
/// parent's processor with probability `affinity`, elsewhere uniformly
/// otherwise — so the static cost model's affinity assumptions hold *in
/// distribution* on the actual input data.
fn build_node<B: Backend>(
    ctx: &mut B,
    prog: &IrProgram,
    rng: &mut SplitMix64,
    si: usize,
    proc: usize,
    depth: u32,
    budget: &mut i64,
) -> GPtr {
    if *budget <= 0 || depth >= BUILD_DEPTH {
        return GPtr::NULL;
    }
    *budget -= 1;
    let nprocs = ctx.nprocs();
    let s = &prog.structs[si];
    let p = ctx.alloc(proc as ProcId, s.words);
    for fld in &s.fields {
        if fld.is_pointer {
            let extend = match depth {
                0 => 0.95,
                1 => 0.80,
                2 => 0.60,
                3 => 0.40,
                _ => 0.20,
            };
            let child = match fld.target {
                Some(t) if rng.chance(extend) => {
                    let child_proc = if nprocs > 1 && !rng.chance(fld.affinity) {
                        (proc + 1 + rng.below(nprocs as u64 - 1) as usize) % nprocs
                    } else {
                        proc
                    };
                    build_node(ctx, prog, rng, t, child_proc, depth + 1, budget)
                }
                _ => GPtr::NULL,
            };
            ctx.write(p, fld.word, child, Mechanism::Migrate);
        } else {
            ctx.write(p, fld.word, rng.below(9) as i64 + 1, Mechanism::Migrate);
        }
    }
    p
}

/// Execute a lowered program: build seeded inputs for every function's
/// parameters (uncharged, like the kernels' build phases), invoke each
/// function under a procedure-call boundary, and fold the returns into a
/// checksum. `force` overrides every site's mechanism; `None` executes
/// the live olden-select verdicts.
pub fn run_ir<B: Backend>(
    ctx: &mut B,
    prog: &Arc<IrProgram>,
    seed: u64,
    fuel: i64,
    force: Option<Mech>,
) -> RunOutcome {
    let state = Arc::new(RunState {
        fuel: AtomicI64::new(fuel),
        halted: AtomicBool::new(false),
        trips: prog.trip_keys.iter().map(|_| AtomicU64::new(0)).collect(),
    });
    let interp = Interp {
        prog: Arc::clone(prog),
        state: Arc::clone(&state),
        force,
    };
    let mut rng = SplitMix64::new(mix2(seed, 0x01dead5eed));
    let mut checksum = 0xcbf29ce484222325u64;
    let nprocs = ctx.nprocs();
    // Build phase: *every* function's inputs, before *any* function
    // runs — the kernels' own build-then-compute discipline. This is
    // load-bearing for cross-backend parity, not just style: the
    // builder's uncharged writes bypass the coherence machinery, and
    // heap layout is backend-specific, so an object allocated after some
    // line was cached may share that line on one backend and not the
    // other — making a later cached read see the stale pre-build
    // snapshot on exactly one side. With no allocation after the first
    // charged read, the scenario cannot arise.
    let all_args: Vec<Vec<Value>> = prog
        .funcs
        .iter()
        .map(|f| {
            f.params
                .iter()
                .map(|ty| match ty {
                    IrTy::Int => Value::Int(rng.below(7) as i64 + 1),
                    IrTy::Ptr(si) => {
                        let root_proc = rng.below(nprocs as u64) as usize;
                        let (si, r) = (*si, &mut rng);
                        let ptr = ctx.uncharged(|c| {
                            let mut budget = BUILD_NODES;
                            build_node(c, prog, r, si, root_proc, 0, &mut budget)
                        });
                        Value::Ptr(ptr)
                    }
                })
                .collect()
        })
        .collect();
    for (fi, args) in all_args.into_iter().enumerate() {
        let v = interp.call_func(ctx, fi, args, 0);
        checksum = mix2(checksum, mix2(fi as u64, v.digest()));
    }
    RunOutcome {
        checksum,
        trips: prog
            .trip_keys
            .iter()
            .zip(&state.trips)
            .map(|(k, t)| (k.clone(), t.load(Ordering::Relaxed)))
            .collect(),
        halted: state.halted.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::ctx::OldenCtx;
    use olden_analysis::compile;

    fn run_sim(src: &str, seed: u64) -> (RunOutcome, OldenCtx) {
        let (_, _, ir) = compile(src).unwrap_or_else(|e| panic!("{e}"));
        let ir = Arc::new(ir);
        let mut ctx = OldenCtx::new(Config::olden(4));
        let out = run_ir(&mut ctx, &ir, seed, DEFAULT_FUEL, None);
        (out, ctx)
    }

    /// A hand-checkable program: walk a built list, summing values. The
    /// interpreter must do real heap traffic (checks performed) and
    /// terminate on the builder's null spine end.
    #[test]
    fn list_walk_sums_and_checks() {
        let src = "struct node { node *next @ 80; int v; }\n\
                   int walk(node *p) {\n\
                       s = 0;\n\
                       while (p != null) {\n\
                           s = s + p->v;\n\
                           p = p->next;\n\
                       }\n\
                       return s;\n\
                   }\n";
        let (out, ctx) = run_sim(src, 7);
        assert!(!out.halted);
        assert!(ctx.stats().checks_performed > 0, "real heap traffic");
        let walked = out.trips.iter().find(|(k, _)| k == "walk#0").unwrap().1;
        assert!(walked > 0, "the builder made a non-empty list");
        // Same seed, same everything — the run is a pure function.
        let (again, _) = run_sim(src, 7);
        assert_eq!(out, again);
        // A different seed builds different data.
        let (other, _) = run_sim(src, 8);
        assert_ne!(out.checksum, other.checksum);
    }

    /// Empty future bodies: spawning and touching a future whose body
    /// does nothing is legal and terminates.
    #[test]
    fn empty_future_body_runs() {
        let src = "struct s { s *n; int v; }\n\
                   void nop(s *p) { }\n\
                   int main(s *p) {\n\
                       h = futurecall nop(p);\n\
                       touch h;\n\
                       futurecall nop(p);\n\
                       return 1;\n\
                   }\n";
        let (out, ctx) = run_sim(src, 0);
        assert!(!out.halted);
        assert_eq!(ctx.stats().futures, 2, "both spawns happened");
        assert_eq!(ctx.stats().touches, 1, "fire-and-forget stays untouched");
    }

    /// Zero-trip loops: a while whose condition is false on entry
    /// executes no body and measures zero trips.
    #[test]
    fn zero_trip_loop_measures_zero() {
        let src = "struct s { s *n; int v; }\n\
                   int f(s *p) {\n\
                       i = 0;\n\
                       while (i > 0) { i = i - 1; x = p->v; }\n\
                       return i;\n\
                   }\n";
        let (out, ctx) = run_sim(src, 3);
        assert!(!out.halted);
        assert_eq!(out.trips, vec![("f#0".to_string(), 0)]);
        assert_eq!(ctx.stats().checks_performed, 0, "the body load never ran");
    }

    /// Null-based paths (`Unknown`-typed after `p = null`): loads yield
    /// zero, stores are no-ops, and no checks reach the backend.
    #[test]
    fn null_based_paths_are_inert() {
        let src = "struct s { s *n; int v; }\n\
                   int f(s *unused) {\n\
                       p = null;\n\
                       x = p->v;\n\
                       p->v = 9;\n\
                       q = p->n->n->v;\n\
                       return x + q;\n\
                   }\n";
        let (_, _, ir) = compile(src).unwrap();
        let ir = Arc::new(ir);
        let mut ctx = OldenCtx::new(Config::olden(4));
        // Build nothing: pass seed whose builder output is irrelevant —
        // the function ignores its parameter.
        let out = run_ir(&mut ctx, &ir, 0, DEFAULT_FUEL, None);
        assert!(!out.halted);
        assert_eq!(ctx.stats().checks_performed, 0, "null paths skip the heap");
        assert_eq!(ctx.stats().checks_elided, 0);
    }

    /// A generated heap cycle (pointer stores can tie the structure into
    /// a loop) cannot hang the interpreter: fuel cuts the run, and the
    /// cut is seed-deterministic.
    #[test]
    fn heap_cycle_is_cut_by_fuel() {
        let src = "struct s { s *n; int v; }\n\
                   int f(s *p) {\n\
                       p->n = p;\n\
                       s = 0;\n\
                       while (p != null) { s = s + p->v; p = p->n; }\n\
                       return s;\n\
                   }\n";
        let (out, _) = run_sim(src, 1);
        assert!(out.halted, "the self-loop must hit the fuel cut");
        let (again, _) = run_sim(src, 1);
        assert_eq!(out, again, "the cut lands on the same instruction");
    }

    /// Mutual recursion with no data descent terminates via the depth
    /// cap, deterministically.
    #[test]
    fn mutual_recursion_is_cut_by_depth() {
        let src = "struct s { s *n; int v; }\n\
                   int a(s *p) { return b(p); }\n\
                   int b(s *p) { return a(p); }\n";
        let (out, _) = run_sim(src, 2);
        assert!(out.halted);
        let (again, _) = run_sim(src, 2);
        assert_eq!(out, again);
    }

    /// Forcing a mechanism really changes what the backend executes.
    #[test]
    fn forced_mechanism_changes_counters() {
        let src = "struct node { node *next @ 40; int v; }\n\
                   int walk(node *p) {\n\
                       s = 0;\n\
                       while (p != null) { s = s + p->v; p = p->next; }\n\
                       return s;\n\
                   }\n";
        let (_, _, ir) = compile(src).unwrap();
        let ir = Arc::new(ir);
        let run = |force| {
            let mut ctx = OldenCtx::new(Config::olden(4));
            let out = run_ir(&mut ctx, &ir, 11, DEFAULT_FUEL, force);
            (out, ctx.stats().migrations, ctx.cache().stats().misses)
        };
        let (v_m, mig_m, miss_m) = run(Some(Mech::Migrate));
        let (v_c, mig_c, miss_c) = run(Some(Mech::Cache));
        assert_eq!(v_m.checksum, v_c.checksum, "mechanism never changes values");
        assert!(mig_m > 0 && mig_c == 0, "only migrate-forced runs migrate");
        assert!(
            miss_c > 0 && miss_m == 0,
            "only cache-forced runs fetch lines"
        );
    }
}
