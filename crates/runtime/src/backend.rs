//! The [`Backend`] trait: the Olden programming model, abstracted over
//! *how* it executes.
//!
//! A benchmark is ordinary Rust code over some `B: Backend`. Two backends
//! implement the trait:
//!
//! * [`OldenCtx`](crate::OldenCtx) — the **simulator**: runs the program
//!   once, sequentially, computing exact values while recording the task
//!   DAG that `olden-machine` replays into a cycle-accurate parallel
//!   makespan;
//! * `olden_exec::ExecCtx` — the **thread backend**: really executes the
//!   program across one OS worker thread per simulated processor,
//!   realizing migrations, cache fills, and future steals as typed
//!   messages between mailboxes.
//!
//! The two must agree: identical values always, and (in the thread
//! backend's lockstep mode) identical event counters — each backend is the
//! other's correctness oracle.
//!
//! ### Why the future-body closures are `Send + 'static`
//!
//! The simulator runs future bodies inline on the caller's stack, but the
//! thread backend may hand a body to another OS thread (that is the whole
//! point). The trait therefore demands `Send + 'static` of bodies and
//! their results; benchmark kernels pass small `move` closures capturing
//! [`GPtr`]s and scalars, which satisfy the bounds for free.

use crate::config::{Check, Mechanism};
use crate::ctx::{FutureHandle, OldenCtx};
use crate::report::TransportStats;
use crate::sanitize::RaceViolation;
use olden_gptr::{GPtr, ProcId, Word};

/// The Olden execution interface: `ALLOC`, mechanism-annotated
/// dereferences, procedure-call boundaries, and futures with lazy task
/// creation. See the crate docs of `olden-runtime` for the model and §2–3
/// of the paper for the source semantics.
pub trait Backend: Sized {
    /// A pending future's value, claimed by [`Backend::touch`].
    type Handle<T: Send + 'static>;

    /// Number of processors in this configuration (for placement math).
    fn nprocs(&self) -> usize;

    /// Processor the thread is currently executing on.
    fn cur_proc(&self) -> ProcId;

    /// Charge `cycles` of benchmark-specific local computation. The
    /// simulator adds them to the current segment; the thread backend
    /// spins a calibrated delay so wall-clock scaling reflects them.
    fn work(&mut self, cycles: u64);

    /// `ALLOC(proc, words)`: allocate on the named processor (§2).
    fn alloc(&mut self, proc: ProcId, words: usize) -> GPtr;

    /// Allocate on the processor that owns `near` (a common idiom).
    fn alloc_near(&mut self, near: GPtr, words: usize) -> GPtr {
        self.alloc(near.proc(), words)
    }

    /// Read field `field` of the object at `ptr`, resolving remote data
    /// with `mech`.
    fn read(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> Word;

    /// Write field `field` of the object at `ptr` (monomorphic form; use
    /// [`Backend::write`] from benchmark code).
    fn write_word(&mut self, ptr: GPtr, field: usize, value: Word, mech: Mechanism);

    /// Write field `field` of the object at `ptr`.
    fn write(&mut self, ptr: GPtr, field: usize, value: impl Into<Word>, mech: Mechanism) {
        self.write_word(ptr, field, value.into(), mech);
    }

    /// Read a pointer-valued field.
    fn read_ptr(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> GPtr {
        self.read(ptr, field, mech).as_ptr()
    }

    /// Read an integer field.
    fn read_i64(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> i64 {
        self.read(ptr, field, mech).as_i64()
    }

    /// Read a floating-point field.
    fn read_f64(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> f64 {
        self.read(ptr, field, mech).as_f64()
    }

    /// [`Backend::read`] carrying the static optimizer's verdict for this
    /// site (`olden-analysis`' redundant-check elimination). The default
    /// ignores the verdict, so backends without an elision fast path stay
    /// correct for free.
    fn read_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> Word {
        let _ = check;
        self.read(ptr, field, mech)
    }

    /// [`Backend::write_word`] carrying the optimizer's verdict.
    fn write_word_checked(
        &mut self,
        ptr: GPtr,
        field: usize,
        value: Word,
        mech: Mechanism,
        check: Check,
    ) {
        let _ = check;
        self.write_word(ptr, field, value, mech);
    }

    /// [`Backend::write`] carrying the optimizer's verdict.
    fn write_checked(
        &mut self,
        ptr: GPtr,
        field: usize,
        value: impl Into<Word>,
        mech: Mechanism,
        check: Check,
    ) {
        self.write_word_checked(ptr, field, value.into(), mech, check);
    }

    /// [`Backend::read_ptr`] carrying the optimizer's verdict.
    fn read_ptr_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> GPtr {
        self.read_checked(ptr, field, mech, check).as_ptr()
    }

    /// [`Backend::read_i64`] carrying the optimizer's verdict.
    fn read_i64_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> i64 {
        self.read_checked(ptr, field, mech, check).as_i64()
    }

    /// [`Backend::read_f64`] carrying the optimizer's verdict.
    fn read_f64_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> f64 {
        self.read_checked(ptr, field, mech, check).as_f64()
    }

    /// Execute `f` without charging costs or recording events: values are
    /// still computed and allocations still placed. Used to exclude
    /// data-structure-building phases from kernel-time runs (§5).
    fn uncharged<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R;

    /// A procedure-call boundary. If the body migrates, the return stub
    /// migrates the thread back to the caller's processor (§3.1).
    fn call<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R;

    /// `futurecall f(...)`: lazy task creation (§2). The body forks into
    /// a real parallel task only if it migrates off the spawning
    /// processor.
    fn future_call<T, F>(&mut self, f: F) -> Self::Handle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static;

    /// `touch`: claim a future's value, joining with the body thread if
    /// it forked.
    fn touch<T: Send + 'static>(&mut self, h: Self::Handle<T>) -> T;

    /// Happens-before violations the backend's dynamic race sanitizer has
    /// detected so far (the `olden-racecheck` oracle). The default is for
    /// backends without a sanitizer — and sanitizer-off runs report none.
    fn race_violations(&mut self) -> Vec<RaceViolation> {
        Vec::new()
    }

    /// Message-transport counters accumulated so far (the `olden-chaos`
    /// observation surface). The default is for backends that pass no real
    /// messages — the simulator's transport is trivially perfect, so it
    /// reports all zeros; the thread backend counts every envelope.
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Take the structured event recording accumulated so far (the
    /// `olden-obs` observation surface), once. The default is for
    /// backends that never record. The simulator records into the
    /// context itself, so it overrides this; the thread backend's lanes
    /// live with its worker threads and are only assembled at shutdown —
    /// its recording arrives in `ExecReport::recording` instead.
    fn take_recording(&mut self) -> Option<olden_obs::Recording> {
        None
    }

    /// Spawn one future per element and touch them all: the `do in
    /// parallel` idiom of Figure 5.
    fn parallel_for<I, T, F>(&mut self, items: I, body: F) -> Vec<T>
    where
        I: IntoIterator,
        I::Item: Send + 'static,
        T: Send + 'static,
        F: FnMut(&mut Self, I::Item) -> T + Clone + Send + 'static,
    {
        let handles: Vec<Self::Handle<T>> = items
            .into_iter()
            .map(|it| {
                let mut body = body.clone();
                self.future_call(move |ctx| body(ctx, it))
            })
            .collect();
        handles.into_iter().map(|h| self.touch(h)).collect()
    }
}

/// The simulator is a backend: every trait method delegates to the
/// identically-named inherent method (inherent methods win name
/// resolution, so existing `OldenCtx`-typed code is untouched).
impl Backend for OldenCtx {
    type Handle<T: Send + 'static> = FutureHandle<T>;

    fn nprocs(&self) -> usize {
        OldenCtx::nprocs(self)
    }

    fn cur_proc(&self) -> ProcId {
        OldenCtx::cur_proc(self)
    }

    fn work(&mut self, cycles: u64) {
        OldenCtx::work(self, cycles);
    }

    fn alloc(&mut self, proc: ProcId, words: usize) -> GPtr {
        OldenCtx::alloc(self, proc, words)
    }

    fn read(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> Word {
        OldenCtx::read(self, ptr, field, mech)
    }

    fn write_word(&mut self, ptr: GPtr, field: usize, value: Word, mech: Mechanism) {
        OldenCtx::write(self, ptr, field, value, mech);
    }

    fn read_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> Word {
        OldenCtx::read_checked(self, ptr, field, mech, check)
    }

    fn write_word_checked(
        &mut self,
        ptr: GPtr,
        field: usize,
        value: Word,
        mech: Mechanism,
        check: Check,
    ) {
        OldenCtx::write_checked(self, ptr, field, value, mech, check);
    }

    fn uncharged<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        OldenCtx::uncharged(self, f)
    }

    fn call<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        OldenCtx::call(self, f)
    }

    fn future_call<T, F>(&mut self, f: F) -> FutureHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static,
    {
        OldenCtx::future_call(self, f)
    }

    fn touch<T: Send + 'static>(&mut self, h: FutureHandle<T>) -> T {
        OldenCtx::touch(self, h)
    }

    fn race_violations(&mut self) -> Vec<RaceViolation> {
        OldenCtx::race_violations(self)
    }

    fn take_recording(&mut self) -> Option<olden_obs::Recording> {
        OldenCtx::take_recording(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn sum_tree<B: Backend>(ctx: &mut B, node: GPtr) -> i64 {
        let v = ctx.read_i64(node, 0, Mechanism::Migrate);
        let l = ctx.read_ptr(node, 1, Mechanism::Migrate);
        let r = ctx.read_ptr(node, 2, Mechanism::Migrate);
        let mut total = v;
        if !l.is_null() {
            total += ctx.call(|c| sum_tree(c, l));
        }
        if !r.is_null() {
            total += ctx.call(|c| sum_tree(c, r));
        }
        total
    }

    /// A kernel written against the trait behaves identically to the same
    /// kernel written against `OldenCtx` directly.
    #[test]
    fn generic_kernel_runs_on_sim_backend() {
        let mut c = OldenCtx::new(Config::olden(4));
        let root = c.uncharged(|c| {
            let root = c.alloc(0, 3);
            let l = c.alloc(1, 3);
            let r = c.alloc(2, 3);
            c.write(root, 0, 1i64, Mechanism::Migrate);
            c.write(root, 1, l, Mechanism::Migrate);
            c.write(root, 2, r, Mechanism::Migrate);
            for (n, v) in [(l, 10i64), (r, 100i64)] {
                c.write(n, 0, v, Mechanism::Migrate);
                c.write(n, 1, GPtr::NULL, Mechanism::Migrate);
                c.write(n, 2, GPtr::NULL, Mechanism::Migrate);
            }
            root
        });
        assert_eq!(sum_tree(&mut c, root), 111);
        assert!(c.stats().migrations > 0, "kernel really migrated");
    }

    #[test]
    fn generic_future_call_forks_on_migration() {
        let mut c = OldenCtx::new(Config::olden(4));
        let a = c.uncharged(|c| {
            let a = c.alloc(2, 1);
            c.write(a, 0, 21i64, Mechanism::Migrate);
            a
        });
        fn go<B: Backend>(ctx: &mut B, a: GPtr) -> i64 {
            let h = ctx.future_call(move |c| c.call(move |c| c.read_i64(a, 0, Mechanism::Migrate)));
            ctx.touch(h)
        }
        assert_eq!(go(&mut c, a), 21);
        assert_eq!(c.stats().steals, 1, "body migrated, continuation stolen");
    }
}
