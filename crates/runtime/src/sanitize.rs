//! The dynamic half of `olden-racecheck`: a happens-before sanitizer
//! over cache-line accesses.
//!
//! The static pass (`olden_analysis::racecheck`) reports every *pair of
//! syntactic accesses* that release consistency might leave unordered;
//! this module is its runtime oracle. Each heap access is stamped with
//! the vector clock of the thread segment performing it
//! ([`olden_machine::VClock`]); the [`LineSanitizer`] keeps, per cache
//! line, the join of all read clocks and the join of all write clocks
//! seen so far, and flags any access not ordered after every conflicting
//! predecessor — the FastTrack check collapsed to two clocks per line.
//!
//! Feeding order: accesses must be fed in **some linearization of
//! happens-before** (if `a` happens before `b`, `a` is fed first).
//! The simulator's log order qualifies (it executes depth-first and
//! every trace edge points forward); in the thread backend each line's
//! home worker qualifies (clients only send a request after all their
//! happens-before predecessors' round trips completed).
//!
//! Because the per-processor clock bump aliases unordered same-processor
//! segments (see `olden_machine::clocks`), the sanitizer can *miss*
//! races but never invents one — the safe direction for the
//! cross-validation claim that static warnings are a superset of dynamic
//! detections.

use olden_gptr::{LineInPage, PageNum, ProcId};
use olden_machine::{segment_clocks, SegId, Trace, VClock};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A cache line named globally: (home processor, page, line-in-page).
pub type LineKey = (ProcId, PageNum, LineInPage);

/// Two accesses to one cache line, at least one a write, unordered by
/// happens-before. One violation is reported per line (the first pair
/// detected); later pairs on the same line are suppressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceViolation {
    /// The line both accesses touched.
    pub line: LineKey,
    /// Whether the later (detected) access was a write.
    pub write: bool,
    /// Whether the earlier conflicting access was a write.
    pub prev_write: bool,
}

impl RaceViolation {
    /// "write-write", "write-read", or "read-write" (earlier-later).
    pub fn kind(&self) -> &'static str {
        match (self.prev_write, self.write) {
            (true, true) => "write-write",
            (true, false) => "write-read",
            (false, true) => "read-write",
            (false, false) => "read-read",
        }
    }
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (home, page, line) = self.line;
        write!(f, "{} race on line {}:{}:{}", self.kind(), home, page, line)
    }
}

#[derive(Default)]
struct LineState {
    /// Join of the clocks of every read so far.
    read: VClock,
    /// Join of the clocks of every write so far.
    write: VClock,
}

/// Per-line happens-before race detector.
///
/// A read with clock `C` requires `write ≤ C`; a write requires both
/// `write ≤ C` and `read ≤ C`. Keeping only the two joined clocks is
/// sound for detection-or-not: if any individual conflicting predecessor
/// is unordered with `C`, the join is too.
#[derive(Default)]
pub struct LineSanitizer {
    lines: HashMap<LineKey, LineState>,
    flagged: BTreeSet<LineKey>,
    violations: Vec<RaceViolation>,
}

impl LineSanitizer {
    pub fn new() -> LineSanitizer {
        LineSanitizer::default()
    }

    /// Feed one access. Calls must arrive in a linearization of
    /// happens-before (see module docs).
    pub fn access(&mut self, line: LineKey, write: bool, clock: &VClock) {
        let st = self.lines.entry(line).or_default();
        let prev_write = if !st.write.leq(clock) {
            Some(true)
        } else if write && !st.read.leq(clock) {
            Some(false)
        } else {
            None
        };
        if let Some(prev_write) = prev_write {
            if self.flagged.insert(line) {
                self.violations.push(RaceViolation {
                    line,
                    write,
                    prev_write,
                });
            }
        }
        if write {
            st.write.join(clock);
        } else {
            st.read.join(clock);
        }
    }

    /// Violations detected so far, in detection order.
    pub fn violations(&self) -> &[RaceViolation] {
        &self.violations
    }

    pub fn into_violations(self) -> Vec<RaceViolation> {
        self.violations
    }
}

/// Offline check of a simulator run: compute every segment's vector clock
/// from the recorded trace, then replay the access log (segment, line,
/// is-write) through a [`LineSanitizer`].
///
/// The log's append order is a valid happens-before linearization: the
/// simulator executes depth-first and every trace edge goes from an
/// earlier to a later segment, so nothing recorded later can happen
/// before anything recorded earlier.
pub fn check_trace(trace: &Trace, log: &[(SegId, LineKey, bool)]) -> Vec<RaceViolation> {
    let clocks = segment_clocks(trace);
    let mut san = LineSanitizer::new();
    for &(seg, line, write) in log {
        san.access(line, write, &clocks[seg.index()]);
    }
    san.into_violations()
}

#[cfg(test)]
mod tests {
    use crate::config::{Config, Mechanism};
    use crate::ctx::OldenCtx;

    fn ctx() -> OldenCtx {
        OldenCtx::new(Config::olden(4).sanitized())
    }

    #[test]
    fn stolen_continuation_write_write_races_with_body() {
        let mut c = ctx();
        let a = c.alloc(1, 1);
        // The body migrates to proc 1 (making the continuation stealable)
        // and writes a's line; the continuation writes the same line
        // before the touch orders them.
        let h = c.future_call(move |c| c.call(move |c| c.write(a, 0, 1i64, Mechanism::Migrate)));
        assert!(h.is_parallel());
        c.write(a, 0, 2i64, Mechanism::Cache);
        c.touch(h);
        let races = c.race_violations();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].kind(), "write-write");
        assert_eq!(races[0].line.0, 1, "line homed on proc 1");
    }

    #[test]
    fn touch_before_conflicting_write_is_clean() {
        let mut c = ctx();
        let a = c.alloc(1, 1);
        let h = c.future_call(move |c| c.call(move |c| c.write(a, 0, 1i64, Mechanism::Migrate)));
        c.touch(h); // join: everything after is ordered behind the body
        c.write(a, 0, 2i64, Mechanism::Cache);
        assert!(c.race_violations().is_empty());
    }

    #[test]
    fn sibling_futures_writing_one_line_race() {
        let mut c = ctx();
        let shared = c.alloc(2, 1);
        let b1 = c.alloc(1, 1);
        let b3 = c.alloc(3, 1);
        let mk = |probe: olden_gptr::GPtr| {
            move |c: &mut OldenCtx| {
                c.call(move |c| {
                    c.read(probe, 0, Mechanism::Migrate); // migrate away
                    c.write(shared, 0, 1i64, Mechanism::Cache);
                })
            }
        };
        let h1 = c.future_call(mk(b1));
        let h2 = c.future_call(mk(b3));
        c.touch(h1);
        c.touch(h2);
        let races = c.race_violations();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].kind(), "write-write");
        assert_eq!(races[0].line.0, 2, "the shared cell's line");
    }

    #[test]
    fn read_only_siblings_are_clean() {
        let mut c = ctx();
        let shared = c.alloc(2, 1);
        let b1 = c.alloc(1, 1);
        let b3 = c.alloc(3, 1);
        let mk = |probe: olden_gptr::GPtr| {
            move |c: &mut OldenCtx| {
                c.call(move |c| {
                    c.read(probe, 0, Mechanism::Migrate);
                    c.read(shared, 0, Mechanism::Cache);
                })
            }
        };
        let h1 = c.future_call(mk(b1));
        let h2 = c.future_call(mk(b3));
        c.touch(h1);
        c.touch(h2);
        assert!(c.race_violations().is_empty());
    }

    #[test]
    fn body_read_vs_continuation_write_races() {
        let mut c = ctx();
        let a = c.alloc(1, 1);
        let probe = c.alloc(3, 1);
        let h = c.future_call(move |c| {
            c.call(move |c| {
                c.read(probe, 0, Mechanism::Migrate); // migrate away first
                c.read(a, 0, Mechanism::Cache); // then read the contested line
            })
        });
        c.write(a, 0, 2i64, Mechanism::Cache); // continuation writes it
        c.touch(h);
        let races = c.race_violations();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].kind(), "read-write");
    }

    #[test]
    fn sanitizer_off_records_nothing() {
        let mut c = OldenCtx::new(Config::olden(4));
        let a = c.alloc(1, 1);
        let h = c.future_call(move |c| c.call(move |c| c.write(a, 0, 1i64, Mechanism::Migrate)));
        c.write(a, 0, 2i64, Mechanism::Cache);
        c.touch(h);
        assert!(c.race_violations().is_empty(), "no log, no findings");
    }
}
