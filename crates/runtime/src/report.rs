//! Running a program and summarizing what happened.

use crate::config::Config;
use crate::ctx::OldenCtx;
use crate::sanitize::RaceViolation;
use olden_cache::CacheStats;
use olden_machine::{sched, trace::EdgeKind};

/// Runtime event counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Forward thread migrations (remote dereference under the migrate
    /// mechanism).
    pub migrations: u64,
    /// Return-stub migrations back to a caller's processor.
    pub return_migrations: u64,
    /// Futures spawned.
    pub futures: u64,
    /// Futures whose continuation was actually stolen (real forks).
    pub steals: u64,
    /// Touches executed.
    pub touches: u64,
    /// `ALLOC` calls.
    pub allocs: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Dereferences under the migrate mechanism that were local.
    pub migrate_local: u64,
    /// Dereferences under the migrate mechanism that were remote (each
    /// one is a migration).
    pub migrate_remote: u64,
    /// Charged dereferences whose compiler-inserted check ran (the
    /// pointer test, plus the cache lookup when remote). Every plain
    /// access performs its check; a `*_checked` access performs it unless
    /// its `Check::Elide` hint verified. `checks_performed + checks_elided`
    /// is therefore invariant under `Config::elide_checks`.
    pub checks_performed: u64,
    /// Charged dereferences whose check the optimizer elided and whose
    /// availability fact verified at runtime, skipping the check cost
    /// entirely.
    pub checks_elided: u64,
}

/// Everything measured about one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Processors in the configuration.
    pub procs: usize,
    /// Parallel completion time (cycles) from the list-scheduler replay.
    pub makespan: u64,
    /// Total work across all segments (cycles).
    pub total_work: u64,
    /// DAG critical path (cycles): a lower bound on the makespan.
    pub critical_path: u64,
    /// Number of recorded segments.
    pub segments: usize,
    /// Runtime event counters.
    pub stats: RunStats,
    /// Software-cache counters (Table 3 shape).
    pub cache: CacheStats,
    /// Distinct pages ever cached across all processors.
    pub pages_cached: u64,
    /// Mean translation-table chain length (§3.2: ≈ 1).
    pub mean_chain_length: f64,
    /// Happens-before violations found by the dynamic race sanitizer
    /// (empty unless the run was configured with `Config::sanitized`).
    pub races: Vec<RaceViolation>,
}

impl RunReport {
    /// Speedup relative to a sequential-baseline makespan.
    pub fn speedup_vs(&self, seq_makespan: u64) -> f64 {
        seq_makespan as f64 / self.makespan as f64
    }
}

/// Execute `program` under `cfg`, replay the trace, and report.
///
/// Returns the program's result alongside the report so benchmarks can
/// verify values against their serial references.
pub fn run<R>(cfg: Config, program: impl FnOnce(&mut OldenCtx) -> R) -> (R, RunReport) {
    let mut ctx = OldenCtx::new(cfg);
    let result = program(&mut ctx);
    let stats = *ctx.stats();
    let races = if cfg.sanitize {
        ctx.race_violations()
    } else {
        Vec::new()
    };
    let (trace, _, cache_sys) = {
        let (t, s, c) = ctx.into_parts();
        debug_assert_eq!(s, stats);
        (t, s, c)
    };
    let schedule = sched::schedule(&trace, cfg.procs).expect("trace must be schedulable");
    let report = RunReport {
        procs: cfg.procs,
        makespan: schedule.makespan,
        total_work: trace.total_cost(),
        critical_path: sched::critical_path(&trace),
        segments: trace.len(),
        stats,
        cache: *cache_sys.stats(),
        pages_cached: cache_sys.pages_cached(),
        mean_chain_length: cache_sys.mean_chain_length(),
        races,
    };
    debug_assert_eq!(
        trace.count_edges(EdgeKind::Migrate) as u64,
        stats.migrations
    );
    (result, report)
}

/// Table-2-style speedup curve: run the sequential baseline once, then the
/// Olden configuration at each processor count, and report
/// `T_seq / makespan(P)`.
///
/// `make_cfg` maps a processor count to the Olden configuration (so
/// callers can force mechanisms or switch protocols).
pub fn speedup_curve<F>(
    program: F,
    procs: &[usize],
    make_cfg: impl Fn(usize) -> Config,
) -> Vec<(usize, f64)>
where
    F: Fn(&mut OldenCtx),
{
    let (_, seq) = run(Config::sequential(), &program);
    procs
        .iter()
        .map(|&p| {
            let (_, rep) = run(make_cfg(p), &program);
            (p, rep.speedup_vs(seq.makespan))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;

    #[test]
    fn run_reports_consistent_totals() {
        let (sum, rep) = run(Config::olden(4), |ctx| {
            let mut total = 0i64;
            for p in 0..4u8 {
                let a = ctx.alloc(p, 2);
                ctx.write(a, 0, p as i64, Mechanism::Migrate);
                total += ctx.read_i64(a, 0, Mechanism::Migrate);
            }
            total
        });
        assert_eq!(sum, 1 + 2 + 3);
        assert!(rep.makespan >= rep.critical_path);
        assert!(rep.makespan <= rep.total_work + 10_000);
        assert_eq!(rep.procs, 4);
        assert!(rep.stats.migrations >= 3);
    }

    #[test]
    fn sequential_makespan_equals_total_work() {
        let (_, rep) = run(Config::sequential(), |ctx| {
            let a = ctx.alloc(0, 4);
            for i in 0..4 {
                ctx.write(a, i, i as i64, Mechanism::Migrate);
            }
            ctx.work(1000);
        });
        assert_eq!(rep.makespan, rep.total_work, "one processor, no gaps");
    }

    #[test]
    fn speedup_curve_monotone_for_embarrassing_parallelism() {
        // Four independent chunks of pure work (a fixed problem size),
        // placed so the spawning loop hops processors: each remote body
        // migrates, the vacated processor steals the continuation, and the
        // loop keeps spawning — Olden's way of parallelizing a flat loop.
        const CHUNKS: usize = 4;
        let program = |ctx: &mut OldenCtx| {
            let n = ctx.nprocs();
            let ptrs: Vec<_> = (0..CHUNKS)
                .map(|i| {
                    let a = ctx.alloc(((i + 1) % n) as u8, 1);
                    ctx.uncharged(|c| c.write(a, 0, 1i64, Mechanism::Migrate));
                    a
                })
                .collect();
            let hs: Vec<_> = ptrs
                .iter()
                .map(|&a| {
                    ctx.future_call(move |c| {
                        c.call(move |c| {
                            c.read_i64(a, 0, Mechanism::Migrate);
                            c.work(2_000_000);
                        })
                    })
                })
                .collect();
            for h in hs {
                ctx.touch(h);
            }
        };
        let curve = speedup_curve(program, &[1, 2, 4], Config::olden);
        assert!(curve[0].1 <= 1.02, "1 proc: {}", curve[0].1);
        assert!(curve[0].1 > 0.9, "1 proc overhead too high: {}", curve[0].1);
        assert!(curve[1].1 > 1.7, "2 procs: {}", curve[1].1);
        assert!(curve[2].1 > 3.0, "4 procs: {}", curve[2].1);
        assert!(curve[2].1 <= 4.0 + 1e-9);
    }
}
