//! Running a program and summarizing what happened.

use crate::config::Config;
use crate::ctx::OldenCtx;
use crate::sanitize::RaceViolation;
use olden_cache::CacheStats;
use olden_machine::{sched, trace::EdgeKind};

/// Runtime event counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Forward thread migrations (remote dereference under the migrate
    /// mechanism).
    pub migrations: u64,
    /// Return-stub migrations back to a caller's processor.
    pub return_migrations: u64,
    /// Futures spawned.
    pub futures: u64,
    /// Futures whose continuation was actually stolen (real forks).
    pub steals: u64,
    /// Touches executed.
    pub touches: u64,
    /// `ALLOC` calls.
    pub allocs: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Dereferences under the migrate mechanism that were local.
    pub migrate_local: u64,
    /// Dereferences under the migrate mechanism that were remote (each
    /// one is a migration).
    pub migrate_remote: u64,
    /// Charged dereferences whose compiler-inserted check ran (the
    /// pointer test, plus the cache lookup when remote). Every plain
    /// access performs its check; a `*_checked` access performs it unless
    /// its `Check::Elide` hint verified. `checks_performed + checks_elided`
    /// is therefore invariant under `Config::elide_checks`.
    pub checks_performed: u64,
    /// Charged dereferences whose check the optimizer elided and whose
    /// availability fact verified at runtime, skipping the check cost
    /// entirely.
    pub checks_elided: u64,
}

impl RunStats {
    /// Every counter as a `(stable_name, value)` list — the shape a
    /// metrics registry or a bench-JSON emitter ingests. Names are part
    /// of the `BENCH_*.json` schema; do not rename.
    pub fn counters(&self) -> [(&'static str, u64); 11] {
        [
            ("migrations", self.migrations),
            ("return_migrations", self.return_migrations),
            ("futures", self.futures),
            ("steals", self.steals),
            ("touches", self.touches),
            ("allocs", self.allocs),
            ("words_allocated", self.words_allocated),
            ("migrate_local", self.migrate_local),
            ("migrate_remote", self.migrate_remote),
            ("checks_performed", self.checks_performed),
            ("checks_elided", self.checks_elided),
        ]
    }
}

/// Message-transport counters for one run, in the shape every backend
/// shares (the chaos layer's observation surface).
///
/// The simulator performs no real message passing, so its transport is
/// trivially perfect: all fields zero. The thread backend counts every
/// envelope its mailbox transport carries; under fault injection the
/// counters must satisfy the **conservation law** checked by
/// [`TransportStats::conservation_violation`] — nothing is ever lost
/// silently, every drop is paid for by a retry or surfaces as a typed
/// error.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Envelopes handed to the transport: every transmission attempt,
    /// including retries and duplicates (and attempts the fault layer
    /// then lost in transit).
    pub sends: u64,
    /// Envelopes that arrived at a receiver, including duplicates the
    /// receiver then suppressed.
    pub deliveries: u64,
    /// Attempts lost in transit by the fault layer.
    pub drops: u64,
    /// Re-transmissions after a drop.
    pub retries: u64,
    /// Arrived envelopes discarded by sequence-number dedupe.
    pub dupes_suppressed: u64,
}

impl TransportStats {
    /// Check the conservation law for a *successfully completed* run.
    /// `serviced` is the number of messages the receivers actually
    /// processed (exactly-once: each logical message once). Returns a
    /// description of the first violated equation, or `None` when all
    /// hold:
    ///
    /// 1. `sends = deliveries + drops` — every attempt either arrived or
    ///    was dropped;
    /// 2. `retries = drops` — every drop was retried (a run that gave up
    ///    fails with a typed error and never reports at all);
    /// 3. `deliveries = serviced + dupes_suppressed` — every arrival was
    ///    processed exactly once or discarded as a known duplicate.
    pub fn conservation_violation(&self, serviced: u64) -> Option<String> {
        if self.sends != self.deliveries + self.drops {
            return Some(format!(
                "sends {} != deliveries {} + drops {}",
                self.sends, self.deliveries, self.drops
            ));
        }
        if self.retries != self.drops {
            return Some(format!(
                "retries {} != drops {} (an unretried drop leaked)",
                self.retries, self.drops
            ));
        }
        if self.deliveries != serviced + self.dupes_suppressed {
            return Some(format!(
                "deliveries {} != serviced {} + dupes_suppressed {}",
                self.deliveries, serviced, self.dupes_suppressed
            ));
        }
        None
    }

    /// Fold another run's counters into this one (aggregation across
    /// seeds in the chaos harness).
    pub fn absorb(&mut self, other: &TransportStats) {
        self.sends += other.sends;
        self.deliveries += other.deliveries;
        self.drops += other.drops;
        self.retries += other.retries;
        self.dupes_suppressed += other.dupes_suppressed;
    }
}

/// Everything measured about one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Processors in the configuration.
    pub procs: usize,
    /// Parallel completion time (cycles) from the list-scheduler replay.
    pub makespan: u64,
    /// Total work across all segments (cycles).
    pub total_work: u64,
    /// DAG critical path (cycles): a lower bound on the makespan.
    pub critical_path: u64,
    /// Number of recorded segments.
    pub segments: usize,
    /// Runtime event counters.
    pub stats: RunStats,
    /// Software-cache counters (Table 3 shape).
    pub cache: CacheStats,
    /// Distinct pages ever cached across all processors.
    pub pages_cached: u64,
    /// Mean translation-table chain length (§3.2: ≈ 1).
    pub mean_chain_length: f64,
    /// Happens-before violations found by the dynamic race sanitizer
    /// (empty unless the run was configured with `Config::sanitized`).
    pub races: Vec<RaceViolation>,
    /// Structured event recording (`None` unless the run was configured
    /// with `Config::recorded`).
    pub recording: Option<olden_obs::Recording>,
}

impl RunReport {
    /// Speedup relative to a sequential-baseline makespan.
    pub fn speedup_vs(&self, seq_makespan: u64) -> f64 {
        seq_makespan as f64 / self.makespan as f64
    }
}

/// Execute `program` under `cfg`, replay the trace, and report.
///
/// Returns the program's result alongside the report so benchmarks can
/// verify values against their serial references.
pub fn run<R>(cfg: Config, program: impl FnOnce(&mut OldenCtx) -> R) -> (R, RunReport) {
    let mut ctx = OldenCtx::new(cfg);
    let result = program(&mut ctx);
    let stats = *ctx.stats();
    let races = if cfg.sanitize {
        ctx.race_violations()
    } else {
        Vec::new()
    };
    let recording = ctx.take_recording();
    let (trace, _, cache_sys) = {
        let (t, s, c) = ctx.into_parts();
        debug_assert_eq!(s, stats);
        (t, s, c)
    };
    let schedule = sched::schedule(&trace, cfg.procs).expect("trace must be schedulable");
    let report = RunReport {
        procs: cfg.procs,
        makespan: schedule.makespan,
        total_work: trace.total_cost(),
        critical_path: sched::critical_path(&trace),
        segments: trace.len(),
        stats,
        cache: *cache_sys.stats(),
        pages_cached: cache_sys.pages_cached(),
        mean_chain_length: cache_sys.mean_chain_length(),
        races,
        recording,
    };
    debug_assert_eq!(
        trace.count_edges(EdgeKind::Migrate) as u64,
        stats.migrations
    );
    (result, report)
}

/// Table-2-style speedup curve: run the sequential baseline once, then the
/// Olden configuration at each processor count, and report
/// `T_seq / makespan(P)`.
///
/// `make_cfg` maps a processor count to the Olden configuration (so
/// callers can force mechanisms or switch protocols).
pub fn speedup_curve<F>(
    program: F,
    procs: &[usize],
    make_cfg: impl Fn(usize) -> Config,
) -> Vec<(usize, f64)>
where
    F: Fn(&mut OldenCtx),
{
    let (_, seq) = run(Config::sequential(), &program);
    procs
        .iter()
        .map(|&p| {
            let (_, rep) = run(make_cfg(p), &program);
            (p, rep.speedup_vs(seq.makespan))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;

    #[test]
    fn transport_conservation_law() {
        // A fault-free transport: sends == deliveries == serviced.
        let quiet = TransportStats {
            sends: 10,
            deliveries: 10,
            ..Default::default()
        };
        assert_eq!(quiet.conservation_violation(10), None);
        // A faulty but conserved run: 3 drops all retried, 2 dupes
        // suppressed, 10 logical messages serviced exactly once.
        let chaotic = TransportStats {
            sends: 15,
            deliveries: 12,
            drops: 3,
            retries: 3,
            dupes_suppressed: 2,
        };
        assert_eq!(chaotic.conservation_violation(10), None);
        // Each law violated in turn.
        let lost = TransportStats {
            sends: 11,
            deliveries: 10,
            ..Default::default()
        };
        assert!(lost.conservation_violation(10).unwrap().contains("drops"));
        let unretried = TransportStats {
            sends: 11,
            deliveries: 10,
            drops: 1,
            retries: 0,
            dupes_suppressed: 0,
        };
        assert!(unretried
            .conservation_violation(10)
            .unwrap()
            .contains("retries"));
        let double_serviced = TransportStats {
            sends: 11,
            deliveries: 11,
            ..Default::default()
        };
        assert!(double_serviced
            .conservation_violation(10)
            .unwrap()
            .contains("dupes_suppressed"));
        let mut agg = quiet;
        agg.absorb(&chaotic);
        assert_eq!(agg.sends, 25);
        assert_eq!(agg.conservation_violation(20), None);
    }

    #[test]
    fn run_reports_consistent_totals() {
        let (sum, rep) = run(Config::olden(4), |ctx| {
            let mut total = 0i64;
            for p in 0..4u8 {
                let a = ctx.alloc(p, 2);
                ctx.write(a, 0, p as i64, Mechanism::Migrate);
                total += ctx.read_i64(a, 0, Mechanism::Migrate);
            }
            total
        });
        assert_eq!(sum, 1 + 2 + 3);
        assert!(rep.makespan >= rep.critical_path);
        assert!(rep.makespan <= rep.total_work + 10_000);
        assert_eq!(rep.procs, 4);
        assert!(rep.stats.migrations >= 3);
    }

    #[test]
    fn recording_reconciles_with_stats() {
        use olden_obs::EventKind;
        let program = |ctx: &mut OldenCtx| {
            let a = ctx.alloc(1, 2);
            ctx.write(a, 0, 5i64, Mechanism::Cache); // miss (write-allocate)
            ctx.read_i64(a, 0, Mechanism::Cache); // hit
            let h = ctx.future_call(move |c| c.call(move |c| c.read_i64(a, 1, Mechanism::Migrate)));
            ctx.touch(h);
        };
        let (_, plain) = run(Config::olden(4), program);
        assert!(plain.recording.is_none(), "recording is opt-in");
        let (_, rep) = run(Config::olden(4).recorded(), program);
        let rec = rep.recording.as_ref().expect("recorded run");
        assert_eq!(rec.count(EventKind::MigrateRecv), rep.stats.migrations);
        assert_eq!(
            rec.count(EventKind::ReturnRecv),
            rep.stats.return_migrations
        );
        assert_eq!(rec.count(EventKind::FutureBody), rep.stats.futures);
        assert_eq!(rec.count(EventKind::Steal), rep.stats.steals);
        assert_eq!(rec.count(EventKind::LineFetch), rep.cache.misses);
        assert_eq!(
            rec.count(EventKind::Invalidate),
            rep.stats.migrations + rep.stats.return_migrations + rec.count(EventKind::TouchStall),
            "every arrival acquire records exactly one invalidation"
        );
        rec.span_nesting_ok().unwrap();
        // The recorded run's measurements are unperturbed by recording.
        assert_eq!(rep.makespan, plain.makespan);
        assert_eq!(rep.stats, plain.stats);
    }

    #[test]
    fn run_stats_counters_cover_every_field() {
        let (_, rep) = run(Config::olden(4), |ctx| {
            let a = ctx.alloc(1, 1);
            ctx.write(a, 0, 1i64, Mechanism::Migrate);
        });
        let c = rep.stats.counters();
        assert_eq!(c.len(), 11);
        assert!(c
            .iter()
            .any(|&(n, v)| n == "migrations" && v == rep.stats.migrations));
        assert!(c
            .iter()
            .any(|&(n, v)| n == "allocs" && v == rep.stats.allocs));
    }

    #[test]
    fn sequential_makespan_equals_total_work() {
        let (_, rep) = run(Config::sequential(), |ctx| {
            let a = ctx.alloc(0, 4);
            for i in 0..4 {
                ctx.write(a, i, i as i64, Mechanism::Migrate);
            }
            ctx.work(1000);
        });
        assert_eq!(rep.makespan, rep.total_work, "one processor, no gaps");
    }

    #[test]
    fn speedup_curve_monotone_for_embarrassing_parallelism() {
        // Four independent chunks of pure work (a fixed problem size),
        // placed so the spawning loop hops processors: each remote body
        // migrates, the vacated processor steals the continuation, and the
        // loop keeps spawning — Olden's way of parallelizing a flat loop.
        const CHUNKS: usize = 4;
        let program = |ctx: &mut OldenCtx| {
            let n = ctx.nprocs();
            let ptrs: Vec<_> = (0..CHUNKS)
                .map(|i| {
                    let a = ctx.alloc(((i + 1) % n) as u8, 1);
                    ctx.uncharged(|c| c.write(a, 0, 1i64, Mechanism::Migrate));
                    a
                })
                .collect();
            let hs: Vec<_> = ptrs
                .iter()
                .map(|&a| {
                    ctx.future_call(move |c| {
                        c.call(move |c| {
                            c.read_i64(a, 0, Mechanism::Migrate);
                            c.work(2_000_000);
                        })
                    })
                })
                .collect();
            for h in hs {
                ctx.touch(h);
            }
        };
        let curve = speedup_curve(program, &[1, 2, 4], Config::olden);
        assert!(curve[0].1 <= 1.02, "1 proc: {}", curve[0].1);
        assert!(curve[0].1 > 0.9, "1 proc overhead too high: {}", curve[0].1);
        assert!(curve[1].1 > 1.7, "2 procs: {}", curve[1].1);
        assert!(curve[2].1 > 3.0, "4 procs: {}", curve[2].1);
        assert!(curve[2].1 <= 4.0 + 1e-9);
    }
}
