//! The distributed heap: one section per processor, word-addressed.
//!
//! `ALLOC` (paper §2) "allocates memory on a specified processor, and
//! returns a pointer that encodes both the processor name and the local
//! address". Each section is a simple bump allocator over 8-byte words;
//! word 0 of every section is reserved so that the all-zero [`GPtr`]
//! encoding stays null.

use olden_gptr::{GPtr, ProcId, Word, LINE_WORDS};

/// Per-processor heap sections holding the authoritative ("home") copy of
/// every word. The software cache holds metadata only; values are always
/// read from here (see `olden-cache` crate docs).
#[derive(Clone, Debug)]
pub struct DistributedHeap {
    sections: Vec<Vec<Word>>,
}

impl DistributedHeap {
    /// A heap with `procs` empty sections.
    pub fn new(procs: usize) -> DistributedHeap {
        DistributedHeap {
            // Word 0 reserved (null); start each section one line in so
            // that an allocation never straddles address zero's line.
            sections: vec![vec![Word::ZERO; LINE_WORDS]; procs],
        }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.sections.len()
    }

    /// Allocate `words` words on `proc`, zero-initialized.
    pub fn alloc(&mut self, proc: ProcId, words: usize) -> GPtr {
        assert!(words > 0, "zero-size allocation");
        let sec = &mut self.sections[proc as usize];
        let base = sec.len() as u64;
        sec.resize(sec.len() + words, Word::ZERO);
        GPtr::new(proc, base)
    }

    /// Read the home copy of a word.
    #[inline]
    pub fn read(&self, ptr: GPtr) -> Word {
        debug_assert!(!ptr.is_null(), "null dereference");
        self.sections[ptr.proc() as usize][ptr.local() as usize]
    }

    /// Write the home copy of a word.
    #[inline]
    pub fn write(&mut self, ptr: GPtr, value: Word) {
        debug_assert!(!ptr.is_null(), "null dereference");
        self.sections[ptr.proc() as usize][ptr.local() as usize] = value;
    }

    /// Words allocated on `proc` (excluding the reserved first line).
    pub fn allocated_words(&self, proc: ProcId) -> usize {
        self.sections[proc as usize].len() - LINE_WORDS
    }

    /// Total words allocated across all sections.
    pub fn total_allocated(&self) -> usize {
        (0..self.procs())
            .map(|p| self.allocated_words(p as ProcId))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_encodes_proc_and_address() {
        let mut h = DistributedHeap::new(4);
        let a = h.alloc(2, 3);
        assert_eq!(a.proc(), 2);
        assert_eq!(a.local(), LINE_WORDS as u64);
        let b = h.alloc(2, 5);
        assert_eq!(b.local(), LINE_WORDS as u64 + 3);
        let c = h.alloc(0, 1);
        assert_eq!(c.proc(), 0);
    }

    #[test]
    fn first_allocation_is_never_null() {
        let mut h = DistributedHeap::new(1);
        assert!(!h.alloc(0, 1).is_null());
    }

    #[test]
    fn read_write_roundtrip() {
        let mut h = DistributedHeap::new(2);
        let a = h.alloc(1, 4);
        h.write(a.offset(2), Word::from(-7i64));
        assert_eq!(h.read(a.offset(2)).as_i64(), -7);
        assert_eq!(h.read(a).as_u64(), 0, "zero-initialized");
    }

    #[test]
    fn accounting() {
        let mut h = DistributedHeap::new(2);
        h.alloc(0, 10);
        h.alloc(1, 20);
        h.alloc(1, 5);
        assert_eq!(h.allocated_words(0), 10);
        assert_eq!(h.allocated_words(1), 25);
        assert_eq!(h.total_allocated(), 35);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_alloc_rejected() {
        DistributedHeap::new(1).alloc(0, 0);
    }
}
