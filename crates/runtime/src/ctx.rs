//! The execution context: Olden's runtime system as seen by a program.
//!
//! A benchmark runs *once*, sequentially, computing exact values; the
//! context meanwhile simulates where each instruction would have executed
//! (the current processor follows migrations), what the software cache
//! would have done, and how futures would have forked, recording the task
//! DAG that `olden-machine` replays into a parallel makespan.
//!
//! ### Futures and lazy task creation (paper §2)
//!
//! `futurecall` saves the caller's continuation on a work list and runs
//! the body directly. Only if a migration occurs during the body does the
//! now-idle processor *steal* the continuation, turning the annotation
//! into real parallelism. [`OldenCtx::future_call`] mirrors this exactly:
//! the body closure runs inline; if it migrated off the spawning
//! processor, the continuation is re-anchored there (a `Steal` edge) and
//! the matching [`OldenCtx::touch`] becomes a join (`Join` edge carrying
//! the value-return message). An untouched-by-migration future costs only
//! the spawn bookkeeping, as in the original system.
//!
//! ### Write-set scopes
//!
//! The local-knowledge refinement ("on returns we need only invalidate
//! cached copies of lines from processors whose memories have been written
//! by the returning thread") needs per-procedure write sets; so does the
//! eager scheme's dirty tracking. The context keeps a stack of written
//! processor sets, pushed by [`OldenCtx::call`] and [`OldenCtx::future_call`].

use crate::config::{Check, Config, Mechanism};
use crate::heap::DistributedHeap;
use crate::report::RunStats;
use crate::sanitize::{check_trace, LineKey, RaceViolation};
use olden_cache::{Access, Arrival, CacheSystem};
use olden_gptr::{GPtr, ProcId, Word};
use olden_machine::trace::{EdgeKind, SegId, Trace};
use olden_obs::{EventKind, Recorder, Recording};

/// A pending future's bookkeeping while its body runs.
struct FutureFrame {
    /// Processor the future was spawned from (where its continuation
    /// waits on the work list).
    spawn_proc: ProcId,
    /// Set when a migration vacates `spawn_proc` during the body: the
    /// segment whose end lets the idle processor grab the continuation.
    stolen: Option<SegId>,
}

/// The result of a [`OldenCtx::future_call`], to be claimed by
/// [`OldenCtx::touch`].
#[must_use = "a future must be touched before its value is used"]
pub struct FutureHandle<T> {
    value: T,
    /// `Some(body_end_segment)` if the body migrated and the continuation
    /// was stolen (a real fork); `None` if it completed inline.
    parallel: Option<SegId>,
    /// Processors written by the body (for the return-acquire).
    written: Vec<ProcId>,
}

impl<T> FutureHandle<T> {
    /// Whether this future turned into a real parallel task.
    pub fn is_parallel(&self) -> bool {
        self.parallel.is_some()
    }
}

/// The Olden runtime context.
pub struct OldenCtx {
    cfg: Config,
    heap: DistributedHeap,
    cache: CacheSystem,
    trace: Trace,
    cur_proc: ProcId,
    cur_seg: SegId,
    frames: Vec<FutureFrame>,
    write_scopes: Vec<Vec<ProcId>>,
    stats: RunStats,
    /// When > 0, execution is in an uncharged region: values are computed
    /// but no costs, traffic, or statistics are recorded (used to exclude
    /// structure-building phases from kernel-time benchmarks, §5).
    free_depth: u32,
    /// Sanitizer access log: (segment, line, is-write) per charged heap
    /// access. Empty unless `Config::sanitize` is set.
    access_log: Vec<(SegId, LineKey, bool)>,
    /// Structured event recorder (`Config::record` runs only); `None`
    /// otherwise, so unrecorded runs pay one branch per hook.
    rec: Option<Recorder>,
}

impl OldenCtx {
    pub fn new(cfg: Config) -> OldenCtx {
        assert!(cfg.procs >= 1 && cfg.procs <= olden_gptr::MAX_PROCS);
        let mut trace = Trace::new();
        let cur_seg = trace.new_segment(0);
        OldenCtx {
            heap: DistributedHeap::new(cfg.procs),
            cache: CacheSystem::new(cfg.procs, cfg.protocol),
            trace,
            cur_proc: 0,
            cur_seg,
            frames: Vec::new(),
            write_scopes: vec![Vec::new()],
            stats: RunStats::default(),
            free_depth: 0,
            access_log: Vec::new(),
            rec: cfg.record.then(Recorder::sim),
            cfg,
        }
    }

    /// Number of processors in this configuration (for placement math).
    pub fn nprocs(&self) -> usize {
        self.cfg.procs
    }

    /// Processor the thread is currently executing on.
    pub fn cur_proc(&self) -> ProcId {
        self.cur_proc
    }

    /// Run configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Runtime statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Cache system (stats, protocol state) so far.
    pub fn cache(&self) -> &CacheSystem {
        &self.cache
    }

    /// Happens-before violations among the heap accesses recorded so far
    /// (always empty unless the run was configured with
    /// [`Config::sanitized`]). Replays the access log against the
    /// trace-derived segment clocks, so it can be called mid-run.
    pub fn race_violations(&self) -> Vec<RaceViolation> {
        check_trace(&self.trace, &self.access_log)
    }

    /// Take the run's event recording (once; `None` unless the run was
    /// configured with [`Config::recorded`]). The simulator's one logical
    /// thread makes a single lane, labeled `sim`; the lane's timestamps
    /// are logical (one tick per event), its `proc` fields follow the
    /// thread's migrations.
    pub fn take_recording(&mut self) -> Option<Recording> {
        let rec = self.rec.take()?;
        Some(Recording::new(
            self.cfg.procs,
            vec![rec.into_lane("sim".to_string())],
        ))
    }

    #[inline]
    fn rec_instant(&mut self, kind: EventKind, proc: ProcId, arg: u64) {
        if let Some(r) = self.rec.as_mut() {
            r.instant(kind, proc, arg);
        }
    }

    #[inline]
    fn rec_begin(&mut self, kind: EventKind, proc: ProcId) {
        if let Some(r) = self.rec.as_mut() {
            r.begin(kind, proc, 0);
        }
    }

    #[inline]
    fn rec_end(&mut self, kind: EventKind, proc: ProcId) {
        if let Some(r) = self.rec.as_mut() {
            r.end(kind, proc);
        }
    }

    /// The recorded trace (consumed by the report layer).
    pub(crate) fn into_parts(self) -> (Trace, RunStats, CacheSystem) {
        (self.trace, self.stats, self.cache)
    }

    /// Public variant of [`Self::into_parts`] for external tools that
    /// inspect raw traces (debug binaries, custom reports).
    pub fn into_parts_public(self) -> (Trace, RunStats, CacheSystem) {
        (self.trace, self.stats, self.cache)
    }

    #[inline]
    fn charge(&mut self, cycles: u64) {
        if self.free_depth == 0 && cycles > 0 {
            self.trace.charge(self.cur_seg, cycles);
        }
    }

    /// Charge `cycles` of benchmark-specific local computation.
    #[inline]
    pub fn work(&mut self, cycles: u64) {
        self.charge(cycles);
    }

    /// Execute `f` without charging costs or recording traffic: values
    /// are still computed and allocations still placed. Used to exclude
    /// data-structure-building phases from kernel-time runs.
    pub fn uncharged<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.free_depth += 1;
        let r = f(self);
        self.free_depth -= 1;
        r
    }

    /// `ALLOC(proc, words)`: allocate on the named processor (§2).
    pub fn alloc(&mut self, proc: ProcId, words: usize) -> GPtr {
        assert!(
            (proc as usize) < self.cfg.procs,
            "ALLOC on unknown processor"
        );
        self.charge(self.cfg.cost.alloc);
        if self.free_depth == 0 {
            self.stats.allocs += 1;
            self.stats.words_allocated += words as u64;
        }
        self.heap.alloc(proc, words)
    }

    /// Allocate on the processor that owns `near` (a common idiom).
    pub fn alloc_near(&mut self, near: GPtr, words: usize) -> GPtr {
        self.alloc(near.proc(), words)
    }

    // ------------------------------------------------------------------
    // Dereferences
    // ------------------------------------------------------------------

    /// Read field `field` of the object at `ptr`, resolving remote data
    /// with `mech`.
    pub fn read(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> Word {
        self.read_checked(ptr, field, mech, Check::Perform)
    }

    /// Write field `field` of the object at `ptr`.
    pub fn write(&mut self, ptr: GPtr, field: usize, value: impl Into<Word>, mech: Mechanism) {
        self.write_checked(ptr, field, value, mech, Check::Perform);
    }

    /// Read a pointer-valued field.
    pub fn read_ptr(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> GPtr {
        self.read(ptr, field, mech).as_ptr()
    }

    /// Read an integer field.
    pub fn read_i64(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> i64 {
        self.read(ptr, field, mech).as_i64()
    }

    /// Read a floating-point field.
    pub fn read_f64(&mut self, ptr: GPtr, field: usize, mech: Mechanism) -> f64 {
        self.read(ptr, field, mech).as_f64()
    }

    /// [`Self::read`] carrying the static optimizer's verdict for the site.
    pub fn read_checked(&mut self, ptr: GPtr, field: usize, mech: Mechanism, check: Check) -> Word {
        let p = ptr.offset(field as u64);
        self.resolve(p, false, mech, check);
        self.heap.read(p)
    }

    /// [`Self::write`] carrying the static optimizer's verdict for the site.
    pub fn write_checked(
        &mut self,
        ptr: GPtr,
        field: usize,
        value: impl Into<Word>,
        mech: Mechanism,
        check: Check,
    ) {
        let p = ptr.offset(field as u64);
        self.resolve(p, true, mech, check);
        self.heap.write(p, value.into());
    }

    /// The pointer test + mechanism simulation for one word access.
    ///
    /// With `Check::Elide` (honored only when the configuration opted in
    /// and no force override is active), the compiler-inserted check is
    /// skipped when the optimizer's availability fact verifies against
    /// live state: a migrate-mechanism pointer that is local, a
    /// cache-mechanism pointer that is local, or a remote line already
    /// valid in the cache. A stale hint falls back to the byte-exact
    /// perform path — values, coherence actions, and every other counter
    /// are unchanged; only check cycles and lookup counters move.
    fn resolve(&mut self, ptr: GPtr, write: bool, mech: Mechanism, check: Check) {
        debug_assert!(!ptr.is_null(), "null dereference");
        if self.free_depth > 0 {
            return;
        }
        let mech = self.cfg.force.unwrap_or(mech);
        let want = check == Check::Elide && self.cfg.elide_checks && self.cfg.force.is_none();
        let mut elided = false;
        match mech {
            Mechanism::Migrate => {
                if ptr.is_local_to(self.cur_proc) {
                    self.stats.migrate_local += 1;
                    if want {
                        // Fact verified: the thread is already where the
                        // data lives, exactly what the pointer test would
                        // have concluded. Skip it.
                        elided = true;
                    } else {
                        self.charge(self.cfg.cost.ptr_test);
                    }
                } else {
                    // A stale elision hint performs the full check.
                    self.charge(self.cfg.cost.ptr_test);
                    self.stats.migrate_remote += 1;
                    self.migrate_to(ptr.proc());
                }
                self.charge(self.cfg.cost.local_ref);
            }
            Mechanism::Cache => {
                if write {
                    self.cache.stats_mut().cacheable_writes += 1;
                } else {
                    self.cache.stats_mut().cacheable_reads += 1;
                }
                if ptr.is_local_to(self.cur_proc) {
                    if want {
                        elided = true;
                    } else {
                        self.charge(self.cfg.cost.ptr_test);
                    }
                    self.charge(self.cfg.cost.local_ref);
                } else {
                    let before = self.cache.stats().checks_elided;
                    let acc = self.cache.access_checked(
                        self.cur_proc,
                        ptr.proc(),
                        ptr.page(),
                        ptr.line_in_page(),
                        write,
                        want,
                    );
                    if self.cache.stats().checks_elided > before {
                        // Verified cached hit: pointer test and hash probe
                        // both skipped; the access costs a local
                        // reference (plus the write-through a cached
                        // write always pays).
                        elided = true;
                        self.charge(self.cfg.cost.local_ref);
                    } else {
                        self.charge(self.cfg.cost.ptr_test);
                        self.charge(self.cfg.cost.cache_lookup);
                        if let Access::Miss { .. } = acc {
                            self.charge(self.cfg.cost.miss_service);
                            self.rec_instant(
                                EventKind::LineFetch,
                                self.cur_proc,
                                ptr.proc() as u64,
                            );
                        }
                    }
                    if write {
                        // Write-through: the word travels home.
                        self.charge(self.cfg.cost.write_through);
                    }
                }
            }
        }
        if elided {
            self.stats.checks_elided += 1;
        } else {
            self.stats.checks_performed += 1;
        }
        if write {
            // Compiler-inserted write tracking (global/bilateral schemes)
            // applies to every heap write, however it was resolved.
            let track =
                self.cache
                    .note_write(self.cur_proc, ptr.proc(), ptr.page(), ptr.line_in_page());
            self.charge(track);
            self.note_written(ptr.proc());
        }
        if self.cfg.sanitize {
            // After any migration, so the segment is the one that really
            // performs the access.
            self.access_log.push((
                self.cur_seg,
                (ptr.proc(), ptr.page(), ptr.line_in_page()),
                write,
            ));
        }
    }

    fn note_written(&mut self, home: ProcId) {
        let top = self.write_scopes.last_mut().expect("write scope stack");
        if !top.contains(&home) {
            top.push(home);
        }
    }

    /// Thread migration to `target` (§3.1): release at the origin, send
    /// registers + PC + frame, acquire at the destination. Any futures
    /// spawned from the vacated processor become stealable.
    fn migrate_to(&mut self, target: ProcId) {
        let from = self.cur_proc;
        debug_assert_ne!(from, target);
        self.stats.migrations += 1;
        self.rec_instant(EventKind::MigrateSend, from, target as u64);
        let inval = self.cache.depart(from, self.cfg.cost.write_through);
        self.charge(inval);
        self.charge(self.cfg.cost.mig_send);
        self.mark_steals(from);
        let seg = self.trace.new_segment(target);
        self.trace
            .add_edge(self.cur_seg, seg, self.cfg.cost.mig_wire, EdgeKind::Migrate);
        self.cur_seg = seg;
        self.cur_proc = target;
        self.charge(self.cfg.cost.mig_recv);
        self.cache.arrive(target, Arrival::Call);
        // The call-arrival acquire clears the whole destination cache
        // (`u64::MAX` = everything, matching the exec worker's event).
        self.rec_instant(EventKind::Invalidate, target, u64::MAX);
        self.rec_instant(EventKind::MigrateRecv, target, from as u64);
    }

    /// A migration just vacated `proc`: every unstolen future spawned
    /// from it becomes stealable from this instant. The list scheduler
    /// serializes multiple stolen continuations on the processor, so all
    /// of them anchor at the same departure segment.
    fn mark_steals(&mut self, proc: ProcId) {
        let src = self.cur_seg;
        for f in self.frames.iter_mut().rev() {
            if f.spawn_proc == proc && f.stolen.is_none() {
                f.stolen = Some(src);
            }
        }
    }

    // ------------------------------------------------------------------
    // Procedure calls and futures
    // ------------------------------------------------------------------

    /// A procedure-call boundary. If the body migrates, the return stub
    /// migrates the thread back to the caller's processor (§3.1) — an
    /// acquire that invalidates only lines homed on processors the callee
    /// wrote (§3.2's local-knowledge refinement).
    pub fn call<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.free_depth > 0 {
            return f(self);
        }
        let entry = self.cur_proc;
        self.write_scopes.push(Vec::new());
        let r = f(self);
        let written = self.write_scopes.pop().expect("scope underflow");
        self.merge_written(&written);
        if self.cur_proc != entry {
            self.stats.return_migrations += 1;
            let from = self.cur_proc;
            self.rec_instant(EventKind::ReturnSend, from, entry as u64);
            let inval = self.cache.depart(from, self.cfg.cost.write_through);
            self.charge(inval);
            self.charge(self.cfg.cost.ret_send);
            self.mark_steals(from);
            let seg = self.trace.new_segment(entry);
            self.trace
                .add_edge(self.cur_seg, seg, self.cfg.cost.ret_wire, EdgeKind::Return);
            self.cur_seg = seg;
            self.cur_proc = entry;
            self.charge(self.cfg.cost.ret_recv);
            self.cache.arrive(
                entry,
                Arrival::Return {
                    written_homes: &written,
                },
            );
            // Return acquire: only lines homed on written processors.
            self.rec_instant(EventKind::Invalidate, entry, written.len() as u64);
            self.rec_instant(EventKind::ReturnRecv, entry, from as u64);
        }
        r
    }

    fn merge_written(&mut self, written: &[ProcId]) {
        for &p in written {
            self.note_written(p);
        }
    }

    /// `futurecall f(...)`: run the body inline, forking for real only if
    /// it migrates (lazy task creation, §2).
    pub fn future_call<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> FutureHandle<T> {
        if self.free_depth > 0 {
            let value = f(self);
            return FutureHandle {
                value,
                parallel: None,
                written: Vec::new(),
            };
        }
        self.charge(self.cfg.cost.future_spawn);
        self.stats.futures += 1;
        let spawn_proc = self.cur_proc;
        self.rec_begin(EventKind::FutureBody, spawn_proc);
        self.frames.push(FutureFrame {
            spawn_proc,
            stolen: None,
        });
        self.write_scopes.push(Vec::new());
        let value = f(self);
        let written = self.write_scopes.pop().expect("scope underflow");
        self.merge_written(&written);
        let frame = self.frames.pop().expect("frame underflow");
        self.rec_end(EventKind::FutureBody, self.cur_proc);
        match frame.stolen {
            Some(steal_src) => {
                self.stats.steals += 1;
                // The body thread releases and sends its value home.
                let inval = self
                    .cache
                    .depart(self.cur_proc, self.cfg.cost.write_through);
                self.charge(inval);
                self.charge(self.cfg.cost.ret_send);
                let body_end = self.cur_seg;
                // The idle spawn processor grabs the continuation.
                let cont = self.trace.new_segment(spawn_proc);
                self.trace.add_edge(steal_src, cont, 0, EdgeKind::Steal);
                self.cur_seg = cont;
                self.cur_proc = spawn_proc;
                self.charge(self.cfg.cost.steal);
                self.rec_instant(EventKind::Steal, spawn_proc, 0);
                FutureHandle {
                    value,
                    parallel: Some(body_end),
                    written,
                }
            }
            None => {
                debug_assert_eq!(self.cur_proc, spawn_proc, "unstolen body cannot move");
                FutureHandle {
                    value,
                    parallel: None,
                    written,
                }
            }
        }
    }

    /// `touch`: claim a future's value, joining with the body thread if
    /// it forked.
    pub fn touch<T>(&mut self, h: FutureHandle<T>) -> T {
        if self.free_depth > 0 {
            return h.value;
        }
        self.charge(self.cfg.cost.touch);
        self.stats.touches += 1;
        if let Some(body_end) = h.parallel {
            self.rec_begin(EventKind::TouchStall, self.cur_proc);
            let post = self.trace.new_segment(self.cur_proc);
            self.trace.add_edge(self.cur_seg, post, 0, EdgeKind::Seq);
            self.trace
                .add_edge(body_end, post, self.cfg.cost.ret_wire, EdgeKind::Join);
            self.cur_seg = post;
            self.charge(self.cfg.cost.ret_recv);
            // Receiving the future's value is a migration receipt: acquire
            // with the body's write set (local-knowledge refinement).
            self.cache.arrive(
                self.cur_proc,
                Arrival::Return {
                    written_homes: &h.written,
                },
            );
            self.rec_instant(EventKind::Invalidate, self.cur_proc, h.written.len() as u64);
            self.rec_end(EventKind::TouchStall, self.cur_proc);
        }
        h.value
    }

    /// Spawn one future per element and touch them all: the `do in
    /// parallel` idiom of Figure 5.
    pub fn parallel_for<I, T>(
        &mut self,
        items: I,
        mut body: impl FnMut(&mut Self, I::Item) -> T,
    ) -> Vec<T>
    where
        I: IntoIterator,
    {
        let handles: Vec<FutureHandle<T>> = items
            .into_iter()
            .map(|it| self.future_call(|ctx| body(ctx, it)))
            .collect();
        handles.into_iter().map(|h| self.touch(h)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_cache::Protocol;

    fn ctx(procs: usize) -> OldenCtx {
        OldenCtx::new(Config::olden(procs))
    }

    #[test]
    fn local_deref_does_not_migrate() {
        let mut c = ctx(4);
        let a = c.alloc(0, 2);
        c.write(a, 0, 5i64, Mechanism::Migrate);
        assert_eq!(c.read_i64(a, 0, Mechanism::Migrate), 5);
        assert_eq!(c.cur_proc(), 0);
        assert_eq!(c.stats().migrations, 0);
    }

    #[test]
    fn remote_migrate_deref_moves_thread() {
        let mut c = ctx(4);
        let a = c.alloc(2, 2);
        c.write(a, 1, 9i64, Mechanism::Migrate);
        assert_eq!(c.cur_proc(), 2);
        assert_eq!(c.stats().migrations, 1);
        assert_eq!(c.read_i64(a, 1, Mechanism::Migrate), 9);
        assert_eq!(c.stats().migrations, 1, "second access is local");
    }

    #[test]
    fn remote_cache_deref_stays_put() {
        let mut c = ctx(4);
        let a = c.alloc(2, 2);
        c.write(a, 0, 7i64, Mechanism::Cache);
        assert_eq!(c.cur_proc(), 0);
        assert_eq!(c.stats().migrations, 0);
        assert_eq!(c.read_i64(a, 0, Mechanism::Cache), 7);
        let cs = c.cache().stats();
        assert_eq!(cs.remote_writes, 1);
        assert_eq!(cs.remote_reads, 1);
        assert_eq!(cs.misses, 1, "write-allocate miss");
        assert_eq!(cs.hits, 1, "read hits the allocated line");
    }

    #[test]
    fn force_override_controls_mechanism() {
        let mut c = OldenCtx::new(Config::olden(4).forced(Mechanism::Migrate));
        let a = c.alloc(3, 1);
        c.write(a, 0, 1i64, Mechanism::Cache); // forced to migrate
        assert_eq!(c.cur_proc(), 3);
        assert_eq!(c.stats().migrations, 1);
        assert_eq!(c.cache().stats().remote_writes, 0);
    }

    #[test]
    fn call_returns_thread_to_caller_processor() {
        let mut c = ctx(4);
        let a = c.alloc(1, 1);
        c.write(a, 0, 3i64, Mechanism::Cache);
        let v = c.call(|c| c.read_i64(a, 0, Mechanism::Migrate));
        assert_eq!(v, 3);
        assert_eq!(c.cur_proc(), 0, "return stub migrated back");
        assert_eq!(c.stats().return_migrations, 1);
    }

    #[test]
    fn unstolen_future_is_cheap_and_inline() {
        let mut c = ctx(4);
        let a = c.alloc(0, 1);
        c.write(a, 0, 11i64, Mechanism::Migrate);
        let h = c.future_call(|c| c.read_i64(a, 0, Mechanism::Migrate));
        assert!(!h.is_parallel(), "no migration, no new thread");
        assert_eq!(c.touch(h), 11);
        assert_eq!(c.stats().futures, 1);
        assert_eq!(c.stats().steals, 0);
    }

    #[test]
    fn migrating_future_forks() {
        let mut c = ctx(4);
        let a = c.alloc(2, 1);
        c.uncharged(|c| c.write(a, 0, 21i64, Mechanism::Migrate));
        let h = c.future_call(|c| c.call(|c| c.read_i64(a, 0, Mechanism::Migrate)));
        assert!(h.is_parallel(), "body migrated: continuation stolen");
        assert_eq!(c.cur_proc(), 0, "continuation runs at spawn proc");
        assert_eq!(c.touch(h), 21);
        assert_eq!(c.stats().steals, 1);
    }

    #[test]
    fn local_knowledge_migration_clears_cache() {
        let mut c = ctx(4);
        let a = c.alloc(1, 1);
        let b = c.alloc(2, 1);
        c.uncharged(|c| {
            c.write(a, 0, 1i64, Mechanism::Migrate);
            c.write(b, 0, 2i64, Mechanism::Migrate);
        });
        // Cache a's line on proc 0, then migrate to proc 2 and back home
        // is not needed: a second cached read after a migration through
        // proc 2 must miss again.
        c.read(a, 0, Mechanism::Cache); // miss
        c.read(a, 0, Mechanism::Cache); // hit
        assert_eq!(c.cache().stats().hits, 1);
        c.read(b, 0, Mechanism::Migrate); // migrate 0 -> 2 (acquire clears 2's cache; 0's stays)
        assert_eq!(c.cur_proc(), 2);
        c.read(a, 0, Mechanism::Cache); // proc 2's cache: miss
        assert_eq!(c.cache().stats().misses, 2);
    }

    #[test]
    fn uncharged_region_records_nothing() {
        let mut c = ctx(4);
        let a = c.uncharged(|c| {
            let a = c.alloc(3, 2);
            c.write(a, 0, 5i64, Mechanism::Migrate);
            c.write(a, 1, 6i64, Mechanism::Cache);
            a
        });
        assert_eq!(c.stats().allocs, 0);
        assert_eq!(c.stats().migrations, 0);
        assert_eq!(c.cache().stats().cacheable_writes, 0);
        assert_eq!(c.cur_proc(), 0);
        // Values are real.
        assert_eq!(c.read_i64(a, 0, Mechanism::Cache), 5);
        assert_eq!(c.read_i64(a, 1, Mechanism::Cache), 6);
    }

    #[test]
    fn parallel_for_touches_everything() {
        let mut c = ctx(4);
        let ptrs: Vec<GPtr> = (0..4u8)
            .map(|p| {
                let a = c.alloc(p, 1);
                c.uncharged(|c| c.write(a, 0, p as i64 * 10, Mechanism::Migrate));
                a
            })
            .collect();
        let vals = c.parallel_for(ptrs, |c, p| {
            c.call(|c| c.read_i64(p, 0, Mechanism::Migrate))
        });
        assert_eq!(vals, vec![0, 10, 20, 30]);
        assert_eq!(c.stats().futures, 4);
        assert!(c.stats().steals >= 3, "remote bodies forked");
    }

    #[test]
    fn write_sets_flow_to_return_acquire() {
        // A thread caches a line from proc 1, calls a procedure that
        // migrates to proc 2 and writes proc 1's memory; on return the
        // local-knowledge refinement must drop the cached line.
        let mut c = ctx(4);
        let a = c.alloc(1, 8);
        let b = c.alloc(2, 1);
        c.uncharged(|c| {
            c.write(a, 0, 1i64, Mechanism::Migrate);
            c.write(b, 0, 2i64, Mechanism::Migrate);
        });
        c.read(a, 0, Mechanism::Cache); // miss; cached on proc 0
        c.call(|c| {
            c.read(b, 0, Mechanism::Migrate); // migrate to proc 2
            c.write(a, 0, 99i64, Mechanism::Cache); // write proc 1's memory
        });
        assert_eq!(c.cur_proc(), 0);
        // The cached copy of a's line must be gone.
        let before = c.cache().stats().misses;
        assert_eq!(c.read_i64(a, 0, Mechanism::Cache), 99);
        assert_eq!(c.cache().stats().misses, before + 1);
    }

    #[test]
    fn return_acquire_preserves_unwritten_homes() {
        let mut c = ctx(4);
        let a = c.alloc(1, 8);
        let b = c.alloc(3, 1);
        c.uncharged(|c| {
            c.write(a, 0, 1i64, Mechanism::Migrate);
            c.write(b, 0, 2i64, Mechanism::Migrate);
        });
        c.read(a, 0, Mechanism::Cache); // cached from home 1
        c.call(|c| {
            c.read(b, 0, Mechanism::Migrate); // migrate to 3, write nothing on 1
        });
        let before = c.cache().stats().hits;
        c.read(a, 0, Mechanism::Cache);
        assert_eq!(c.cache().stats().hits, before + 1, "line survived return");
    }

    #[test]
    fn elision_gates_on_config_and_counts() {
        // Default config: Elide verdicts are ignored but still counted as
        // performed checks.
        let mut c = ctx(4);
        let a = c.alloc(0, 1);
        c.write(a, 0, 5i64, Mechanism::Migrate);
        let before = c.stats().checks_performed;
        let v = c.read_checked(a, 0, Mechanism::Migrate, Check::Elide);
        assert_eq!(v.as_i64(), 5);
        assert_eq!(c.stats().checks_performed, before + 1);
        assert_eq!(c.stats().checks_elided, 0);

        // Optimized config: the verified fact skips the check.
        let mut c = OldenCtx::new(Config::olden(4).optimized());
        let a = c.alloc(0, 1);
        c.write(a, 0, 5i64, Mechanism::Migrate);
        let v = c.read_checked(a, 0, Mechanism::Migrate, Check::Elide);
        assert_eq!(v.as_i64(), 5);
        assert_eq!(c.stats().checks_elided, 1);
    }

    #[test]
    fn stale_elision_hint_falls_back_exactly() {
        // A remote migrate pointer under a (wrong) Elide hint must behave
        // byte-for-byte like the perform path: migrate, same counters.
        let mut c = OldenCtx::new(Config::olden(4).optimized());
        let a = c.alloc(2, 1);
        c.uncharged(|c| c.write(a, 0, 9i64, Mechanism::Migrate));
        let v = c.read_checked(a, 0, Mechanism::Migrate, Check::Elide);
        assert_eq!(v.as_i64(), 9);
        assert_eq!(c.cur_proc(), 2, "stale hint still migrated");
        assert_eq!(c.stats().migrations, 1);
        assert_eq!(c.stats().checks_performed, 1);
        assert_eq!(c.stats().checks_elided, 0);
    }

    #[test]
    fn cache_elision_skips_lookup_on_verified_hit() {
        let mut c = OldenCtx::new(Config::olden(4).optimized());
        let a = c.alloc(1, 1);
        c.uncharged(|c| c.write(a, 0, 7i64, Mechanism::Migrate));
        c.read(a, 0, Mechanism::Cache); // miss: line becomes resident
        let (hits, lookups) = {
            let cs = c.cache().stats();
            (cs.hits, c.cache().cache(0).lookups())
        };
        let v = c.read_checked(a, 0, Mechanism::Cache, Check::Elide);
        assert_eq!(v.as_i64(), 7);
        let cs = *c.cache().stats();
        assert_eq!(cs.hits, hits + 1, "elided access still a hit");
        assert_eq!(c.cache().cache(0).lookups(), lookups, "no hash probe");
        assert_eq!(cs.checks_elided, 1);
        assert_eq!(c.stats().checks_elided, 1);
    }

    #[test]
    fn forced_runs_ignore_elision() {
        let mut c = OldenCtx::new(Config::olden(4).optimized().forced(Mechanism::Cache));
        let a = c.alloc(0, 1);
        c.write(a, 0, 1i64, Mechanism::Migrate);
        c.read_checked(a, 0, Mechanism::Migrate, Check::Elide);
        assert_eq!(c.stats().checks_elided, 0, "force override disables hints");
    }

    #[test]
    fn protocols_agree_on_values() {
        for proto in [
            Protocol::LocalKnowledge,
            Protocol::GlobalKnowledge,
            Protocol::Bilateral,
        ] {
            let mut c = OldenCtx::new(Config::olden(4).with_protocol(proto));
            let a = c.alloc(1, 4);
            c.write(a, 0, 42i64, Mechanism::Cache);
            c.read(a, 1, Mechanism::Migrate);
            c.write(a, 1, 43i64, Mechanism::Cache);
            assert_eq!(c.read_i64(a, 0, Mechanism::Cache), 42, "{proto:?}");
            assert_eq!(c.read_i64(a, 1, Mechanism::Cache), 43, "{proto:?}");
        }
    }
}
