//! Recorder overhead on the exec backend.
//!
//! With recording off, every trace hook is a branch on a `None` option —
//! the acceptance bar is that a record-off run stays within 5% of itself
//! run-to-run and, more importantly, that turning recording *on* costs
//! little enough that profiling real runs is routine. The off/off pair
//! bounds harness noise; off-vs-on is the recorder's true price.

use olden_bench::microbench::{black_box, Bench};
use olden_benchmarks::{generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig};

fn run_once(name: &'static str, record: bool) -> u64 {
    let cfg = if record {
        ExecConfig::lockstep(8).recorded()
    } else {
        ExecConfig::lockstep(8)
    };
    let (v, rep) = run_exec(cfg, move |ctx| {
        generic_run(name, ctx, SizeClass::Tiny).unwrap()
    });
    black_box(v.wrapping_add(rep.messages))
}

fn main() {
    let b = Bench::new("obs_overhead").samples(5);
    for name in ["TreeAdd", "Power", "Health"] {
        let off = b.run(&format!("{name}/record-off"), || run_once(name, false));
        let off2 = b.run(&format!("{name}/record-off-again"), || {
            run_once(name, false)
        });
        let on = b.run(&format!("{name}/record-on"), || run_once(name, true));
        if let (Some(off), Some(off2), Some(on)) = (off, off2, on) {
            let noise = off2.median.as_nanos() as f64 / off.median.as_nanos() as f64;
            let cost = on.median.as_nanos() as f64 / off.median.as_nanos().max(1) as f64;
            println!(
                "{name}: record-off run-to-run {:+.1}%, record-on vs off {:+.1}%",
                (noise - 1.0) * 100.0,
                (cost - 1.0) * 100.0
            );
        }
    }
}
