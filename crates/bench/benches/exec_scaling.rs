//! Wall-clock scaling of the thread backend: the same benchmark executed
//! for real on 1..N worker threads, in both modes.
//!
//! Lockstep puts every worker behind one logical thread (pure message
//! overhead, no body parallelism); parallel mode lets stolen futures run
//! concurrently. On a many-core host the parallel rows shrink with worker
//! count; on a constrained CI box the bench still guards the backend's
//! message-path performance from regressing.

use olden_bench::microbench::{black_box, Bench};
use olden_benchmarks::{generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig};

fn main() {
    let b = Bench::new("exec_scaling").samples(5);
    for procs in [1usize, 2, 4, 8] {
        for name in ["TreeAdd", "EM3D", "Health"] {
            b.run(&format!("lockstep/{name}/p{procs}"), || {
                let (v, rep) = run_exec(ExecConfig::lockstep(procs), move |ctx| {
                    generic_run(name, ctx, SizeClass::Tiny).unwrap()
                });
                black_box((v, rep.messages))
            });
        }
    }
    for procs in [2usize, 4] {
        for name in ["TreeAdd", "EM3D"] {
            b.run(&format!("parallel/{name}/p{procs}"), || {
                let (v, rep) = run_exec(ExecConfig::parallel(procs), move |ctx| {
                    generic_run(name, ctx, SizeClass::Tiny).unwrap()
                });
                black_box((v, rep.clients))
            });
        }
    }
}
