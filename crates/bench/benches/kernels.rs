//! One bench entry per Table-1 benchmark: the wall-clock cost of one
//! fully instrumented simulation (Tiny size, 8 processors), guarding the
//! simulator's own performance.

use olden_bench::microbench::{black_box, Bench};
use olden_benchmarks::{all, SizeClass};
use olden_runtime::{run, Config};

fn main() {
    let b = Bench::new("table1_kernels").samples(5);
    for d in all() {
        b.run(d.name, || {
            let (v, rep) = run(Config::olden(8), |ctx| (d.run)(ctx, SizeClass::Tiny));
            black_box((v, rep.makespan))
        });
    }
}
