//! One criterion entry per Table-1 benchmark: the wall-clock cost of one
//! fully instrumented simulation (Tiny size, 8 processors), guarding the
//! simulator's own performance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use olden_benchmarks::{all, SizeClass};
use olden_runtime::{run, Config};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_kernels");
    g.sample_size(10);
    for d in all() {
        g.bench_function(d.name, |b| {
            b.iter(|| {
                let (v, rep) = run(Config::olden(8), |ctx| (d.run)(ctx, SizeClass::Tiny));
                black_box((v, rep.makespan))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
