//! Micro-benchmarks of the Figure-1 software cache: the hash-table
//! lookup the compiler inserts before every cached dereference, the
//! page-allocation path, and the three protocols' coherence events.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use olden_cache::{Arrival, CacheSystem, ProcCache, Protocol};

fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_table");
    g.bench_function("lookup_hit", |b| {
        let mut t = ProcCache::new();
        for p in 0..512u64 {
            t.insert((p % 32) as u8, p).set_line(0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(t.lookup((i % 32) as u8, i).is_some())
        });
    });
    g.bench_function("lookup_miss", |b| {
        let mut t = ProcCache::new();
        for p in 0..512u64 {
            t.insert((p % 32) as u8, p);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(t.lookup(7, 100_000 + i).is_none())
        });
    });
    g.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence");
    for proto in Protocol::ALL {
        g.bench_function(format!("access_cycle_{}", proto.name()), |b| {
            let mut sys = CacheSystem::new(32, proto);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let page = i % 256;
                sys.access(0, 1, page, (i % 32) as u8, i % 3 == 0);
                if i % 64 == 0 {
                    sys.depart(0, 30);
                    sys.arrive(0, Arrival::Call);
                }
                black_box(sys.stats().misses)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table, bench_protocols);
criterion_main!(benches);
