//! Micro-benchmarks of the Figure-1 software cache: the hash-table
//! lookup the compiler inserts before every cached dereference, the
//! page-allocation path, and the three protocols' coherence events.

use olden_bench::microbench::{black_box, Bench};
use olden_cache::{Arrival, CacheSystem, ProcCache, Protocol};

fn bench_table() {
    let b = Bench::new("translation_table");
    b.run("lookup_hit", {
        let mut t = ProcCache::new();
        for p in 0..512u64 {
            t.insert((p % 32) as u8, p).set_line(0);
        }
        let mut i = 0u64;
        move || {
            i = (i + 1) % 512;
            black_box(t.lookup((i % 32) as u8, i).is_some())
        }
    });
    b.run("lookup_miss", {
        let mut t = ProcCache::new();
        for p in 0..512u64 {
            t.insert((p % 32) as u8, p);
        }
        let mut i = 0u64;
        move || {
            i += 1;
            black_box(t.lookup(7, 100_000 + i).is_none())
        }
    });
}

fn bench_protocols() {
    let b = Bench::new("coherence");
    for proto in Protocol::ALL {
        b.run(&format!("access_cycle_{}", proto.name()), {
            let mut sys = CacheSystem::new(32, proto);
            let mut i = 0u64;
            move || {
                i += 1;
                let page = i % 256;
                sys.access(0, 1, page, (i % 32) as u8, i.is_multiple_of(3));
                if i.is_multiple_of(64) {
                    sys.depart(0, 30);
                    sys.arrive(0, Arrival::Call);
                }
                black_box(sys.stats().misses)
            }
        });
    }
}

fn main() {
    bench_table();
    bench_protocols();
}
