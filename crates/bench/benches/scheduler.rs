//! The list-scheduler replay: throughput on wide and chained DAGs.

use olden_bench::microbench::{black_box, Bench};
use olden_machine::sched;
use olden_machine::trace::{EdgeKind, Trace};

fn wide_trace(n: usize, procs: u8) -> Trace {
    let mut t = Trace::new();
    let root = t.new_segment(0);
    t.charge(root, 10);
    let join = t.new_segment(0);
    for i in 0..n {
        let s = t.new_segment((i % procs as usize) as u8);
        t.charge(s, 100 + (i as u64 % 37));
        t.add_edge(root, s, 540, EdgeKind::Migrate);
        t.add_edge(s, join, 300, EdgeKind::Join);
    }
    t
}

fn chain_trace(n: usize, procs: u8) -> Trace {
    let mut t = Trace::new();
    let mut prev = t.new_segment(0);
    t.charge(prev, 5);
    for i in 1..n {
        let s = t.new_segment((i % procs as usize) as u8);
        t.charge(s, 50);
        t.add_edge(prev, s, 540, EdgeKind::Migrate);
        prev = s;
    }
    t
}

fn main() {
    let b = Bench::new("list_scheduler");
    for n in [1_000usize, 10_000] {
        let wide = wide_trace(n, 32);
        b.run(&format!("wide_{n}"), || {
            black_box(sched::schedule(&wide, 32).unwrap().makespan)
        });
        let chain = chain_trace(n, 32);
        b.run(&format!("chain_{n}"), || {
            black_box(sched::schedule(&chain, 32).unwrap().makespan)
        });
        b.run(&format!("critical_path_{n}"), || {
            black_box(sched::critical_path(&wide))
        });
    }
}
