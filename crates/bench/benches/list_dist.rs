//! Figure 2 as a wall-clock bench: simulated communication cost of one
//! list traversal under {blocked, cyclic} × {migrate, cache}.

use olden_bench::microbench::{black_box, Bench};
use olden_benchmarks::listdist::{build, walk, Distribution};
use olden_runtime::{run, Config, Mechanism};

fn main() {
    let b = Bench::new("figure2");
    for (dist, dname) in [
        (Distribution::Blocked, "blocked"),
        (Distribution::Cyclic, "cyclic"),
    ] {
        for (mech, mname) in [(Mechanism::Migrate, "migrate"), (Mechanism::Cache, "cache")] {
            b.run(&format!("{dname}_{mname}"), || {
                let (_, rep) = run(Config::olden(8), |ctx| {
                    let head = build(ctx, 512, dist);
                    walk(ctx, head, mech)
                });
                black_box(rep.makespan)
            });
        }
    }
}
