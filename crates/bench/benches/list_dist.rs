//! Figure 2 as a criterion bench: simulated communication cost of one
//! list traversal under {blocked, cyclic} × {migrate, cache}.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use olden_benchmarks::listdist::{build, walk, Distribution};
use olden_runtime::{run, Config, Mechanism};

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2");
    for (dist, dname) in [
        (Distribution::Blocked, "blocked"),
        (Distribution::Cyclic, "cyclic"),
    ] {
        for (mech, mname) in [(Mechanism::Migrate, "migrate"), (Mechanism::Cache, "cache")] {
            g.bench_function(format!("{dname}_{mname}"), |b| {
                b.iter(|| {
                    let (_, rep) = run(Config::olden(8), |ctx| {
                        let head = build(ctx, 512, dist);
                        walk(ctx, head, mech)
                    });
                    black_box(rep.makespan)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
