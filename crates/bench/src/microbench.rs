//! A tiny self-contained wall-clock bench harness.
//!
//! The workspace builds with no external dependencies (tier-1 must pass
//! offline), so the `benches/` targets use this module instead of
//! criterion: each `harness = false` bench is a plain `main()` that calls
//! [`Bench::run`] per case. The harness warms up, auto-scales the
//! iteration count to a time budget, reports median / mean / min of the
//! per-iteration time over several samples, and honors a
//! `MICROBENCH_FILTER` environment variable for name filtering.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Re-export so benches keep the familiar `black_box` spelling.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

/// One bench group's configuration and output.
pub struct Bench {
    group: String,
    /// Target wall time per sample.
    sample_budget: Duration,
    /// Samples per case (median over these is reported).
    samples: usize,
    filter: Option<String>,
}

/// Result of one case, returned for programmatic use (scaling benches
/// assert on these).
#[derive(Clone, Copy, Debug)]
pub struct CaseResult {
    pub iters_per_sample: u64,
    pub median: Duration,
    pub mean: Duration,
    pub min: Duration,
}

impl Bench {
    pub fn new(group: &str) -> Bench {
        Bench {
            group: group.to_string(),
            sample_budget: Duration::from_millis(30),
            samples: 7,
            filter: std::env::var("MICROBENCH_FILTER").ok(),
        }
    }

    /// Override the per-sample time budget (default 30 ms).
    pub fn sample_budget(mut self, d: Duration) -> Bench {
        self.sample_budget = d;
        self
    }

    /// Override the sample count (default 7).
    pub fn samples(mut self, n: usize) -> Bench {
        assert!(n > 0);
        self.samples = n;
        self
    }

    /// Run one case: calibrate an iteration count to the sample budget,
    /// take samples, and print a one-line summary. Returns `None` when the
    /// case is filtered out by `MICROBENCH_FILTER`.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Option<CaseResult> {
        let full = format!("{}/{}", self.group, name);
        if let Some(filt) = &self.filter {
            if !full.contains(filt.as_str()) {
                return None;
            }
        }
        // Warm up and calibrate: double iterations until a batch exceeds
        // a tenth of the budget, then scale to the budget.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                bb(f());
            }
            let el = t.elapsed();
            if el >= self.sample_budget / 10 {
                break el / iters as u32;
            }
            iters = iters.saturating_mul(2);
        };
        let iters = (self.sample_budget.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;

        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    bb(f());
                }
                t.elapsed() / iters as u32
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let min = times[0];
        println!(
            "{full:<40} {:>12} median {:>12} mean {:>12} min   ({iters} iters x {} samples)",
            fmt_dur(median),
            fmt_dur(mean),
            fmt_dur(min),
            self.samples,
        );
        Some(CaseResult {
            iters_per_sample: iters,
            median,
            mean,
            min,
        })
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let b = Bench::new("t")
            .sample_budget(Duration::from_millis(2))
            .samples(3);
        let r = b
            .run("count", || (0..100u64).map(black_box).sum::<u64>())
            .unwrap();
        assert!(r.median > Duration::ZERO);
        assert!(r.min <= r.median);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn filter_env_is_respected_via_full_name() {
        // Can't mutate the environment safely in tests; exercise the
        // filter logic by constructing a Bench with one set.
        let b = Bench {
            group: "g".into(),
            sample_budget: Duration::from_millis(1),
            samples: 1,
            filter: Some("nomatch".into()),
        };
        assert!(b.run("case", || 1).is_none());
    }
}
