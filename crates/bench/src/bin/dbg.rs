//! Ad-hoc scaling diagnostics: per-benchmark makespan vs critical path.
use olden_benchmarks::{by_name, SizeClass};
use olden_runtime::{run, Config};
fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Health".into());
    let d = by_name(&name).unwrap();
    let (_, seq) = run(Config::sequential(), |ctx| (d.run)(ctx, SizeClass::Default));
    println!("{name} seq {}", seq.makespan);
    for p in [2usize, 8, 32] {
        let (_, rep) = run(Config::olden(p), |ctx| (d.run)(ctx, SizeClass::Default));
        println!(
            "P={p:2} speedup {:.2} makespan {} cp {} work {} segs {} mig {} ret {} steals {} misses {}",
            rep.speedup_vs(seq.makespan), rep.makespan, rep.critical_path, rep.total_work,
            rep.segments, rep.stats.migrations, rep.stats.return_migrations, rep.stats.steals,
            rep.cache.misses
        );
        println!("   cache: {:?}", rep.cache);
        println!("   stats: {:?}", rep.stats);
    }
}
