//! Regenerates the Figure 2 analysis: one list, blocked vs cyclic
//! distribution, migration vs caching — reporting the §4 closed-form
//! communication counts alongside the measured makespans.

use olden_benchmarks::listdist::{build, walk, Distribution};
use olden_runtime::{run, Config, Mechanism};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 4096usize;
    let mut procs = 32usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--elements" => {
                i += 1;
                n = args[i].parse().unwrap();
            }
            "--procs" => {
                i += 1;
                procs = args[i].parse().unwrap();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("Figure 2: list of {n} elements over {procs} processors");
    println!(
        "paper closed forms: blocked+migrate = P-1 = {}, cyclic+migrate = N-1 = {},",
        procs - 1,
        n - 1
    );
    println!(
        "                    cyclic+cache remote accesses = N(P-1)/P = {}",
        n * (procs - 1) / procs
    );
    println!("{:-<84}", "");
    println!(
        "{:<10} {:<9} {:>12} {:>14} {:>12} {:>12}",
        "layout", "mechanism", "migrations", "remote refs", "misses", "makespan"
    );
    println!("{:-<84}", "");
    let (_, seq) = run(Config::sequential(), |ctx| {
        let head = build(ctx, n, Distribution::Blocked);
        walk(ctx, head, Mechanism::Cache)
    });
    for dist in [Distribution::Blocked, Distribution::Cyclic] {
        for mech in [Mechanism::Migrate, Mechanism::Cache] {
            let (_, rep) = run(Config::olden(procs), |ctx| {
                let head = build(ctx, n, dist);
                walk(ctx, head, mech)
            });
            println!(
                "{:<10} {:<9} {:>12} {:>14} {:>12} {:>12}",
                format!("{dist:?}"),
                mech.name(),
                rep.stats.migrations,
                rep.cache.remote_reads + rep.cache.remote_writes,
                rep.cache.misses,
                rep.makespan
            );
        }
    }
    println!("{:-<84}", "");
    println!(
        "sequential makespan (single processor, no overheads): {}",
        seq.makespan
    );
}
