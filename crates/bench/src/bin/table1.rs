//! Regenerates the paper's Table 1: benchmark descriptions and sizes.

fn main() {
    println!("Table 1: Benchmark Descriptions");
    println!("{:-<88}", "");
    println!(
        "{:<12} {:<55} {:<18}",
        "Benchmark", "Description", "Problem Size"
    );
    println!("{:-<88}", "");
    for d in olden_benchmarks::all() {
        println!(
            "{:<12} {:<55} {:<18}",
            d.name, d.description, d.problem_size
        );
    }
}
