//! Dump the raw trace of a small Barnes-Hut run.
use olden_benchmarks::{barneshut, SizeClass};
use olden_runtime::{Config, OldenCtx};
fn main() {
    let cfg = Config::olden(2);
    let mut ctx = OldenCtx::new(cfg);
    barneshut::run(&mut ctx, SizeClass::Tiny);
    let (trace, stats, _) = ctx.into_parts_public();
    println!("stats {stats:?}");
    for (i, s) in trace.segments().iter().enumerate() {
        println!("seg {i}: proc {} cost {}", s.proc, s.cost);
    }
    for e in trace.edges() {
        println!(
            "edge {:?} -> {:?} lat {} {:?}",
            e.from, e.to, e.latency, e.kind
        );
    }
}
