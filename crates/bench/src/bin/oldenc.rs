//! `oldenc` — the static race linter over the Olden DSL.
//!
//! Subcommands:
//!
//! * `oldenc lint [--json | --golden PATH]` runs the release-consistency
//!   race analysis over the DSL renditions of all ten Table-1 benchmarks
//!   and prints one line per finding (or `name: clean`). With `--golden`
//!   the output must match the recorded file exactly; any drift — a new
//!   warning or a silently vanished one — fails the run. CI pins the
//!   benchmark lint surface this way. `--json` emits the same findings
//!   machine-readably (the text surface stays byte-identical).
//! * `oldenc typecheck [FILE...] [--json]` runs the TC0xx front gate —
//!   struct/field/pointer types, future-handle touch discipline, loop
//!   induction variables, call arity — over the given files, or with no
//!   files over the registry benchmarks plus the racy corpus (all of
//!   which must be type-clean: races are a scheduling property, not a
//!   typing one). Exit 1 on any diagnostic.
//! * `oldenc gen [--seed S] [--count N] [--golden PATH]` prints N
//!   well-typed DSL programs from consecutive seeds, each under a
//!   `// seed S` header. A pure function of the seeds, so the surface
//!   pins with `--golden` like the other report subcommands.
//! * `oldenc fuzz [--seeds N] [--start S]` runs the metamorphic
//!   verification sweep from `olden_analysis::verify` over N consecutive
//!   seeds: per generated program, pretty-print→reparse round-trip, a
//!   clean typecheck, totality and cross-pass consistency of every
//!   analysis, metamorphic invariance (α-rename, dead-statement insert,
//!   touch insert, trip monotonicity), and rejection of seeded ill-typed
//!   mutations with the matching TC0xx code. A failing seed is
//!   delta-debugged to a minimal reproducer saved under `tests/corpus/`
//!   (replayed forever by the `corpus_repros_replay_clean` test). At 100
//!   seeds or more, every mutation class must have fired — the
//!   non-vacuity gate. The CI fuzz-smoke stage runs 500 seeds.
//! * `oldenc opt [--golden PATH]` runs the check-elision and touch-
//!   placement optimizer over the same DSL renditions and prints each
//!   benchmark's per-site verdicts (site, span, mechanism, verdict,
//!   reason) plus touch findings. `--golden` pins the surface exactly
//!   like `lint` does.
//! * `oldenc select [BENCH] [--golden PATH]` runs the §4 mechanism-
//!   selection heuristic over the DSL renditions and prints each
//!   benchmark's whole-program decision surface: the per-control-loop
//!   selection summary (induction variable, affinity vs the 90 %
//!   threshold, parallel/bottleneck flags) and one verdict line per
//!   dereference site. `--golden` pins the surface; the descriptors'
//!   `selected_mechanisms` lists are cross-checked against the same
//!   table by `select_parity`.
//! * `oldenc scheme [BENCH] [--golden PATH]` runs the Appendix-A
//!   coherence-scheme selection pass over the DSL renditions and prints
//!   each benchmark's verdict: the signals it was derived from
//!   (migration density, cached write-set size, parallel fan-out,
//!   shared-root bottlenecks, race findings) and the chosen scheme with
//!   reasons. `--golden` pins the surface like `select` does.
//! * `oldenc run BENCH [--procs N] [--protocol P]` executes one
//!   benchmark on the thread backend under the given coherence scheme
//!   (`local`, `global`, `bilateral`, or `auto` — the default — which
//!   asks the scheme pass), holds the run byte-equal to the simulator,
//!   and prints the value plus the Table-3 counter block.
//! * `oldenc predict [BENCH] [--json]` runs the static cost model over
//!   the same DSL renditions: per benchmark, the size-derived trip
//!   counts it consumed and the predicted dynamic counters (migrations,
//!   line fetches, invalidations, remote touches) at the Tiny size on 8
//!   processors — the numbers `select_parity` holds within each
//!   descriptor's accepted ratio bands of both backends' measurements.
//! * `oldenc elide` runs every optimizer-annotated benchmark on the
//!   simulator with elision enabled and prints the runtime check
//!   counters. Exit 1 if any annotated benchmark elides zero checks —
//!   the CI gate against the hints silently going dead.
//! * `oldenc chaos [--seeds N] [--golden PATH]` runs every benchmark on
//!   the thread backend under N seeded fault schedules (message drops,
//!   duplicates, reorders) and checks each run's value and event
//!   counters byte-equal to the fault-free simulator's. Prints one
//!   deterministic summary line per benchmark (fault totals are pure
//!   functions of the seeds, so the surface pins with `--golden`). Exit
//!   1 on any divergence.
//! * `oldenc difftest [--seeds N] [--protocol P] [--golden PATH]`
//!   differentially fuzzes the whole stack: N generated programs, each
//!   type-checked, mechanism-selected, lowered to the executable IR, and
//!   executed on the simulator and the lockstep thread backend from the
//!   same input seed — byte-equal in checksum, per-loop trips, and every
//!   counter. `--protocol` runs both sides under one Appendix-A
//!   coherence scheme (default `local`); the CI scheme-matrix stage
//!   sweeps all three against per-scheme goldens. Every 8th seed re-runs
//!   under fault injection; per seed, the static cost model at the
//!   measured trips must bracket the executed counters. Any divergence
//!   is delta-debugged to a minimal reproducer under `tests/corpus/`.
//!   Exit 1 on any divergence or band miss.
//! * `oldenc profile <bench> [--trace out.json]` runs one benchmark
//!   recorded on both backends, reconciles each recording's exact event
//!   counts against the run's own counters (exit 1 on any mismatch), and
//!   prints per-processor utilization timelines. `--trace` additionally
//!   writes a Chrome `trace_event` JSON file — open it at
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `oldenc net [BENCH] [--procs N] [--seeds N] [--protocol P]
//!   [--stall-timeout SECS]` runs benchmarks on the network backend —
//!   one worker OS process per simulated processor, loopback TCP — and
//!   holds each run's value and full counter set byte-equal to the
//!   simulator; `--seeds` additionally sweeps that many chaos schedules
//!   per benchmark over the real sockets, and `--protocol` runs the
//!   whole fleet under one coherence scheme (the name travels to each
//!   worker process on its command line). Exit 1 on any divergence. The
//!   CI net-parity gate. (The worker processes re-enter this binary
//!   through a hidden `net-worker` subcommand, so a single installed
//!   `oldenc` is the whole fleet.)
//! * `oldenc bench [--json PATH] [--check BASE --tolerance F]` measures
//!   every benchmark on the thread backend (wall time + all deterministic
//!   counters) and optionally compares against a committed baseline:
//!   counters must match exactly, wall times within the tolerance after
//!   calibration-normalizing for host speed. With `--net` each point
//!   also gets a network-backend wall column (counters must match the
//!   thread backend exactly). The CI perf-smoke gate.
//! * `oldenc check FILE...` lints DSL source files, printing full
//!   multi-line diagnostics. Exit 1 when anything is reported, 2 on
//!   parse errors.
//!
//! Every golden-backed subcommand takes `--bless` to re-record its golden
//! file in place, and a mismatch prints the exact command to do so.

use olden_analysis::gen::gen_source;
use olden_analysis::optimize_src;
use olden_analysis::racecheck::racecheck_src;
use olden_analysis::typeck::typecheck_src;
use olden_analysis::verify::{shrink, source_fails, verify_seed, Coverage};
use olden_bench::{benchjson, profile};
use olden_benchmarks::SizeClass;
use olden_obs::json::Json;
use std::fmt::Write as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: oldenc lint [--json | --golden PATH [--bless]]");
    eprintln!("       oldenc typecheck [FILE...] [--json]");
    eprintln!("       oldenc gen [--seed S] [--count N] [--golden PATH [--bless]]");
    eprintln!("       oldenc fuzz [--seeds N] [--start S]");
    eprintln!("       oldenc opt [--golden PATH [--bless]]");
    eprintln!("       oldenc select [BENCH] [--golden PATH [--bless]]");
    eprintln!("       oldenc scheme [BENCH] [--golden PATH [--bless]]");
    eprintln!("       oldenc run BENCH [--procs N] [--protocol local|global|bilateral|auto]");
    eprintln!("       oldenc predict [BENCH] [--json]");
    eprintln!("       oldenc elide");
    eprintln!("       oldenc chaos [--seeds N] [--stall-timeout SECS] [--golden PATH [--bless]]");
    eprintln!("       oldenc difftest [--seeds N] [--protocol P] [--golden PATH [--bless]]");
    eprintln!("       oldenc profile BENCH [--trace PATH] [--procs N] [--width N] [--net]");
    eprintln!("       oldenc net [BENCH] [--procs N] [--seeds N] [--protocol P]");
    eprintln!("                  [--stall-timeout SECS]");
    eprintln!("       oldenc bench [--json PATH] [--check BASE] [--tolerance F]");
    eprintln!("                    [--procs N] [--reps N] [--net]");
    eprintln!("       oldenc check FILE...");
    ExitCode::from(2)
}

/// The `lint` report: one `name: ...` line per benchmark finding, in
/// registry (paper Table 1) order. Diagnostics come out of the checker
/// already sorted, so the report is deterministic.
fn lint_report() -> String {
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        let diags = match racecheck_src(d.dsl) {
            Ok(diags) => diags,
            Err(e) => {
                // A benchmark DSL that stops parsing is a bug in the
                // repo, not in the user's input; surface it in the
                // report so the golden comparison catches it.
                let _ = writeln!(out, "{}: parse error: {e}", d.name);
                continue;
            }
        };
        if diags.is_empty() {
            let _ = writeln!(out, "{}: clean", d.name);
        } else {
            for diag in diags {
                let _ = writeln!(out, "{}: {}", d.name, diag.one_line());
            }
        }
    }
    out
}

/// One diagnostic as a JSON object: stable code, severity name, 1-based
/// position, and the rendered message.
fn diag_json(d: &olden_analysis::diag::Diagnostic) -> Json {
    Json::Obj(vec![
        ("code".into(), Json::str(d.code)),
        ("severity".into(), Json::str(d.severity.name())),
        ("line".into(), Json::u64(u64::from(d.span.line))),
        ("col".into(), Json::u64(u64::from(d.span.col))),
        ("message".into(), Json::str(d.message.clone())),
    ])
}

/// The `lint --json` report: the same racecheck sweep as [`lint_report`]
/// rendered machine-readably — one object per benchmark with its
/// diagnostics array. The text surface stays golden-pinned and
/// byte-identical; this is the programmatic view of the same data.
fn lint_json_report() -> Result<String, String> {
    let mut rows = Vec::new();
    for d in olden_benchmarks::all() {
        let diags = racecheck_src(d.dsl).map_err(|e| format!("{} DSL: {e}", d.name))?;
        rows.push(Json::Obj(vec![
            ("name".into(), Json::str(d.name)),
            (
                "diagnostics".into(),
                Json::Arr(diags.iter().map(diag_json).collect()),
            ),
        ]));
    }
    Ok(Json::Arr(rows).render())
}

/// `oldenc typecheck [FILE...] [--json]`: the TC0xx front gate. With no
/// files it sweeps the registry benchmarks plus the racy corpus, all of
/// which must be type-clean (races are a scheduling property, not a
/// typing one); with files it checks each one. Exit 1 on any
/// diagnostic, 2 on read or parse errors.
fn typecheck_cmd(files: &[String], json: bool) -> ExitCode {
    let mut units: Vec<(String, String)> = Vec::new();
    if files.is_empty() {
        for d in olden_benchmarks::all() {
            units.push((d.name.to_string(), d.dsl.to_string()));
        }
        for s in olden_benchmarks::racy::seeds() {
            units.push((format!("racy/{}", s.name), s.dsl.to_string()));
        }
    } else {
        for path in files {
            match std::fs::read_to_string(path) {
                Ok(src) => units.push((path.clone(), src)),
                Err(e) => {
                    eprintln!("oldenc: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let mut findings = 0usize;
    let mut rows = Vec::new();
    for (name, src) in &units {
        let diags = match typecheck_src(src) {
            Ok(diags) => diags,
            Err(e) => {
                eprintln!("{name}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        findings += diags.len();
        if json {
            rows.push(Json::Obj(vec![
                ("name".into(), Json::str(name.clone())),
                (
                    "diagnostics".into(),
                    Json::Arr(diags.iter().map(diag_json).collect()),
                ),
            ]));
        } else if diags.is_empty() {
            println!("{name}: clean");
        } else {
            for d in &diags {
                println!("{name}: {}", d.one_line());
            }
        }
    }
    if json {
        println!("{}", Json::Arr(rows).render());
    }
    if findings == 0 {
        if !json {
            eprintln!("oldenc: {} unit(s) type-clean", units.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {findings} type error(s)");
        ExitCode::FAILURE
    }
}

/// The `gen` report: `count` well-typed programs from consecutive seeds
/// starting at `seed`, each under a `// seed N` header. A pure function
/// of the seeds, so the surface pins with `--golden`.
fn gen_report(seed: u64, count: u64) -> String {
    let mut out = String::new();
    for s in seed..seed.saturating_add(count) {
        let _ = writeln!(out, "// seed {s}");
        out.push_str(&gen_source(s));
    }
    out
}

fn gen_cmd(seed: u64, count: u64, golden: Option<&str>, bless: bool) -> ExitCode {
    let regen = format!("gen --seed {seed} --count {count}");
    golden_check("gen", &regen, &gen_report(seed, count), golden, bless)
}

/// The mutation classes `verify_seed` seeds into generated programs;
/// each must be rejected with its matching TC0xx code somewhere in any
/// sweep of at least [`NON_VACUITY_SEEDS`] seeds.
const MUTATION_CLASSES: [&str; 5] = [
    "drop-touch",
    "break-arity",
    "retype-arg",
    "retype-field",
    "double-touch",
];

/// Sweep length from which the non-vacuity gate is enforced: every
/// class provably fires within any 100 consecutive seeds starting at 0
/// (pinned by `every_mutation_class_is_exercised`).
const NON_VACUITY_SEEDS: u64 = 100;

/// `oldenc fuzz`: the metamorphic verification sweep as a CLI gate. A
/// failing seed is delta-debugged to a minimal reproducer written under
/// `tests/corpus/`, where the `corpus_repros_replay_clean` test replays
/// it on every future `cargo test`.
fn fuzz_cmd(seeds: u64, start: u64) -> ExitCode {
    let mut cov = Coverage::default();
    for seed in start..start.saturating_add(seeds) {
        if let Err(f) = verify_seed(seed, &mut cov) {
            eprintln!("oldenc: {f}");
            let small = shrink(&f.source, &source_fails);
            let path = format!("tests/corpus/fail-seed{seed}.dsl");
            match std::fs::write(&path, &small) {
                Ok(()) => eprintln!("oldenc: shrunken reproducer written to {path}"),
                Err(e) => {
                    eprintln!("oldenc: cannot write {path}: {e}; reproducer:\n{small}");
                }
            }
            return ExitCode::FAILURE;
        }
    }
    print!("{}", cov.render());
    if seeds >= NON_VACUITY_SEEDS {
        for class in MUTATION_CLASSES {
            if cov.mutations.get(class).copied().unwrap_or(0) == 0 {
                eprintln!("oldenc: mutation class `{class}` never fired over {seeds} seed(s)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `opt` report: each benchmark's full elision report under a
/// `== name ==` header, in registry order. [`OptReport::render`] is
/// deterministic, so the whole surface pins bit-for-bit.
fn opt_report() -> String {
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        let _ = writeln!(out, "== {} ==", d.name);
        match optimize_src(d.dsl) {
            Ok(r) => out.push_str(&r.render()),
            Err(e) => {
                let _ = writeln!(out, "parse error: {e}");
            }
        }
    }
    out
}

/// The `select` report: each benchmark's whole-program mechanism table —
/// the per-loop selection summary followed by one verdict line per
/// dereference site — under a `== name ==` header, in registry order.
/// [`olden_analysis::MechTable::render`] is deterministic, so the
/// surface pins bit-for-bit.
fn select_report(bench: Option<&str>) -> String {
    use olden_analysis::{mech_table, parse};
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        if bench.is_some_and(|b| !d.name.eq_ignore_ascii_case(b)) {
            continue;
        }
        let _ = writeln!(out, "== {} ==", d.name);
        match parse(d.dsl) {
            Ok(prog) => out.push_str(&mech_table(&prog).render()),
            Err(e) => {
                let _ = writeln!(out, "parse error: {e}");
            }
        }
    }
    out
}

fn select_cmd(bench: Option<&str>, golden: Option<&str>, bless: bool) -> ExitCode {
    if let Some(b) = bench {
        if olden_benchmarks::by_name(b).is_none() {
            eprintln!("oldenc: unknown benchmark {b:?}; known:");
            for d in olden_benchmarks::all() {
                eprintln!("  {}", d.name);
            }
            return ExitCode::from(2);
        }
    }
    let regen = match bench {
        Some(b) => format!("select {b}"),
        None => "select".to_string(),
    };
    golden_check("select", &regen, &select_report(bench), golden, bless)
}

/// The `scheme` report: each benchmark's coherence-scheme verdict — the
/// signal summary and the chosen Appendix-A scheme with reasons — under
/// a `== name ==` header, in registry order.
/// [`olden_analysis::SchemeVerdict::render`] is deterministic, so the
/// surface pins bit-for-bit.
fn scheme_report(bench: Option<&str>) -> String {
    use olden_analysis::select_scheme_src;
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        if bench.is_some_and(|b| !d.name.eq_ignore_ascii_case(b)) {
            continue;
        }
        let _ = writeln!(out, "== {} ==", d.name);
        match select_scheme_src(d.dsl) {
            Ok(v) => out.push_str(&v.render()),
            Err(e) => {
                let _ = writeln!(out, "parse error: {e}");
            }
        }
    }
    out
}

fn scheme_cmd(bench: Option<&str>, golden: Option<&str>, bless: bool) -> ExitCode {
    if let Some(b) = bench {
        if olden_benchmarks::by_name(b).is_none() {
            eprintln!("oldenc: unknown benchmark {b:?}; known:");
            for d in olden_benchmarks::all() {
                eprintln!("  {}", d.name);
            }
            return ExitCode::from(2);
        }
    }
    let regen = match bench {
        Some(b) => format!("scheme {b}"),
        None => "scheme".to_string(),
    };
    golden_check("scheme", &regen, &scheme_report(bench), golden, bless)
}

/// `oldenc run`: one benchmark on the thread backend under a chosen (or
/// scheme-pass-selected) coherence protocol, held byte-equal to the
/// simulator, with the Table-3 counter block printed.
fn run_cmd(bench: &str, procs: usize, protocol: Option<olden_runtime::Protocol>) -> ExitCode {
    use olden_benchmarks::generic_run;
    use olden_exec::{run_exec, ExecConfig};
    use olden_runtime::{Config, OldenCtx, Protocol};
    let Some(d) = olden_benchmarks::by_name(bench) else {
        eprintln!("oldenc: unknown benchmark {bench:?}; known:");
        for d in olden_benchmarks::all() {
            eprintln!("  {}", d.name);
        }
        return ExitCode::from(2);
    };
    let (protocol, why) = match protocol {
        Some(p) => (p, "requested"),
        None => {
            // `auto`: ask the scheme-selection pass.
            let v = match olden_analysis::select_scheme_src(d.dsl) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("oldenc: {} DSL: {e}", d.name);
                    return ExitCode::from(2);
                }
            };
            let p = Protocol::from_name(v.scheme.name()).expect("scheme names match protocols");
            (p, "scheme pass")
        }
    };
    let name = d.name;
    let mut sim = OldenCtx::new(Config::olden(procs).with_protocol(protocol));
    let sim_val = generic_run(name, &mut sim, SizeClass::Tiny).expect("registry benchmark");
    let (val, rep) = run_exec(
        ExecConfig::lockstep(procs).with_protocol(protocol),
        move |ctx| generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark"),
    );
    println!(
        "{name} on {procs} procs, protocol {} ({why}): value {val}",
        protocol.name()
    );
    let cols: Vec<String> = rep
        .cache
        .counters()
        .iter()
        .map(|(k, n)| format!("{k}={n}"))
        .collect();
    println!("cache: {}", cols.join(" "));
    println!(
        "runtime: migrations={} futures={} steals={} messages={}",
        rep.stats.migrations, rep.stats.futures, rep.stats.steals, rep.messages
    );
    if val == sim_val && rep.stats == *sim.stats() && rep.cache == *sim.cache().stats() {
        println!("parity: byte-equal to the simulator");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "oldenc: {name} DIVERGED from the simulator under {}",
            protocol.name()
        );
        ExitCode::FAILURE
    }
}

/// `oldenc predict`: the static cost model (§4 affinities pushed through
/// the selected mechanisms and size-derived trip counts) evaluated at
/// the same point `select_parity` measures — `SizeClass::Tiny` on 8
/// processors — so the printed numbers are exactly the ones the parity
/// gate compares against both backends.
fn predict_cmd(bench: Option<&str>, json: bool) -> ExitCode {
    use olden_analysis::{mech_table, parse, predict};
    const PROCS: usize = 8;
    if let Some(b) = bench {
        if olden_benchmarks::by_name(b).is_none() {
            eprintln!("oldenc: unknown benchmark {b:?}; known:");
            for d in olden_benchmarks::all() {
                eprintln!("  {}", d.name);
            }
            return ExitCode::from(2);
        }
    }
    let mut out = String::new();
    let mut objects = Vec::new();
    for d in olden_benchmarks::all() {
        if bench.is_some_and(|b| !d.name.eq_ignore_ascii_case(b)) {
            continue;
        }
        let prog = match parse(d.dsl) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("oldenc: {} DSL: {e}", d.name);
                return ExitCode::from(2);
            }
        };
        let table = mech_table(&prog);
        let trips = (d.trips)(SizeClass::Tiny, PROCS);
        let p = predict(&prog, &table, &trips, PROCS);
        if json {
            let trips_json: Vec<String> =
                trips.iter().map(|(k, n)| format!("\"{k}\": {n}")).collect();
            let counters_json: Vec<String> = p
                .counters()
                .iter()
                .map(|(k, n)| format!("\"{k}\": {n}"))
                .collect();
            objects.push(format!(
                "  {{\"name\": \"{}\", \"procs\": {PROCS}, \"trips\": {{{}}}, \
                 \"predicted\": {{{}}}}}",
                d.name,
                trips_json.join(", "),
                counters_json.join(", ")
            ));
        } else {
            let _ = writeln!(out, "== {} ==", d.name);
            let trip_cols: Vec<String> = trips.iter().map(|(k, n)| format!("{k}={n}")).collect();
            let _ = writeln!(out, "trips ({PROCS} procs): {}", trip_cols.join(" "));
            let counter_cols: Vec<String> = p
                .counters()
                .iter()
                .map(|(k, n)| format!("{k}={n}"))
                .collect();
            let _ = writeln!(out, "predicted: {}", counter_cols.join(" "));
        }
    }
    if json {
        println!("[\n{}\n]", objects.join(",\n"));
    } else {
        print!("{out}");
    }
    ExitCode::SUCCESS
}

/// Compare `report` to the golden file (or, with `--bless`, re-record
/// it). `regen` is the subcommand with any arguments needed to reproduce
/// this exact report, so a mismatch prints a ready-to-run bless command.
fn golden_check(
    what: &str,
    regen: &str,
    report: &str,
    golden: Option<&str>,
    bless: bool,
) -> ExitCode {
    print!("{report}");
    let Some(path) = golden else {
        return ExitCode::SUCCESS;
    };
    if bless {
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("oldenc: cannot write golden file {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("oldenc: blessed {what} output into {path}");
        return ExitCode::SUCCESS;
    }
    let want = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oldenc: cannot read golden file {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if report == want {
        eprintln!("oldenc: {what} output matches {path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {what} output diverges from {path}:");
        for diff in diff_lines(&want, report) {
            eprintln!("  {diff}");
        }
        eprintln!(
            "re-record with: cargo run --release -q -p olden-bench --bin oldenc -- \
             {regen} --golden {path} --bless"
        );
        ExitCode::FAILURE
    }
}

fn lint(golden: Option<&str>, bless: bool) -> ExitCode {
    golden_check("lint", "lint", &lint_report(), golden, bless)
}

fn opt(golden: Option<&str>, bless: bool) -> ExitCode {
    golden_check("opt", "opt", &opt_report(), golden, bless)
}

/// Run every annotated benchmark with elision on and report the runtime
/// check counters. A benchmark whose descriptor carries elision sites
/// but whose run elides nothing means the `Check::Elide` hints in its
/// kernel went dead — fail so CI catches the regression.
fn elide() -> ExitCode {
    use olden_benchmarks::{generic_run, SizeClass};
    use olden_runtime::{Config, OldenCtx};
    let mut dead = 0usize;
    for d in olden_benchmarks::all() {
        if d.elided_sites.is_empty() {
            continue;
        }
        let mut ctx = OldenCtx::new(Config::olden(8).optimized());
        generic_run(d.name, &mut ctx, SizeClass::Tiny).expect("registry benchmark");
        let s = ctx.stats();
        let total = s.checks_performed + s.checks_elided;
        println!(
            "{}: {} static sites, {} of {} runtime checks elided ({:.1}%)",
            d.name,
            d.elided_sites.len(),
            s.checks_elided,
            total,
            100.0 * s.checks_elided as f64 / total.max(1) as f64
        );
        if s.checks_elided == 0 {
            eprintln!("oldenc: {} is annotated but elided no checks", d.name);
            dead += 1;
        }
    }
    if dead == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {dead} benchmark(s) with dead elision hints");
        ExitCode::FAILURE
    }
}

/// The `chaos` report: every benchmark, executed for real on worker
/// threads under `seeds` seeded fault schedules, held byte-equal — in
/// value, runtime event counters, cache hit/miss totals, pages cached,
/// and serviced-message count — to the fault-free simulator run.
///
/// Fault verdicts are pure integer functions of the seed and each
/// message's identity, and lockstep execution sends a deterministic
/// message sequence, so the per-benchmark fault totals are reproducible
/// bit-for-bit: the whole surface pins with `--golden`. Returns the
/// report and the number of divergent runs.
///
/// Seeds are swept in parallel across the host's cores: each seed's run
/// is fully independent, and the per-benchmark lines aggregate plain
/// sums over results collected back into seed order — so the report is
/// byte-identical to a sequential sweep.
fn chaos_report(seeds: u64, stall: Option<std::time::Duration>) -> (String, usize) {
    use olden_benchmarks::{generic_run, SizeClass};
    use olden_exec::{run_exec, ExecConfig, ExecReport};
    use olden_runtime::{Config, FaultTag, OldenCtx, RunStats, TransportStats};
    use std::sync::atomic::{AtomicU64, Ordering};
    const PROCS: usize = 8;

    /// Apply the CLI stall override, if any, on top of the default
    /// watchdog timeout.
    fn with_stall(cfg: ExecConfig, stall: Option<std::time::Duration>) -> ExecConfig {
        match stall {
            Some(d) => cfg.with_stall_timeout(d),
            None => cfg,
        }
    }

    /// What every faulted run must byte-equal (snapshotted before the
    /// sweep so worker threads share it by reference).
    struct Expect {
        sim_val: u64,
        base_val: u64,
        stats: RunStats,
        hits: u64,
        misses: u64,
        pages: u64,
        messages: u64,
    }
    struct SeedOutcome {
        equivalent: bool,
        transport: TransportStats,
        injected: [u64; 3], // drops, duplicates, delayed duplicates
    }

    fn run_seed(
        name: &'static str,
        seed: u64,
        e: &Expect,
        stall: Option<std::time::Duration>,
    ) -> SeedOutcome {
        let (v, rep): (u64, ExecReport) = run_exec(
            with_stall(ExecConfig::lockstep(PROCS).chaotic(seed), stall),
            move |ctx| generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark"),
        );
        SeedOutcome {
            equivalent: v == e.base_val
                && v == e.sim_val
                && rep.stats == e.stats
                && (rep.cache.hits, rep.cache.misses) == (e.hits, e.misses)
                && rep.pages_cached == e.pages
                && rep.messages == e.messages,
            transport: rep.transport,
            injected: [
                rep.faults.count(FaultTag::Dropped),
                rep.faults.count(FaultTag::Duplicated),
                rep.faults.count(FaultTag::DelayedDuplicate),
            ],
        }
    }

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(seeds as usize)
        .max(1);
    let mut out = String::new();
    let mut divergent = 0usize;
    for d in olden_benchmarks::all() {
        let name = d.name;
        let mut sim = OldenCtx::new(Config::olden(PROCS));
        let sim_val = generic_run(name, &mut sim, SizeClass::Tiny).expect("registry benchmark");
        let (base_val, base) =
            run_exec(with_stall(ExecConfig::lockstep(PROCS), stall), move |ctx| {
                generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark")
            });
        let expect = Expect {
            sim_val,
            base_val,
            stats: *sim.stats(),
            hits: sim.cache().stats().hits,
            misses: sim.cache().stats().misses,
            pages: sim.cache().pages_cached(),
            messages: base.messages,
        };
        // Work-stealing sweep: an atomic next-seed index, results slotted
        // back by seed so aggregation order never depends on scheduling.
        let next = AtomicU64::new(0);
        let mut results: Vec<Option<SeedOutcome>> = (0..seeds).map(|_| None).collect();
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<(u64, SeedOutcome)>();
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, expect) = (&next, &expect);
                s.spawn(move || loop {
                    let seed = next.fetch_add(1, Ordering::Relaxed);
                    if seed >= seeds {
                        break;
                    }
                    tx.send((seed, run_seed(name, seed, expect, stall)))
                        .expect("collector alive");
                });
            }
            drop(tx);
            for (seed, r) in rx {
                results[seed as usize] = Some(r);
            }
        });
        let mut bad = 0usize;
        let mut agg = TransportStats::default();
        let mut injected = [0u64; 3];
        for (seed, r) in results.iter().enumerate() {
            let r = r.as_ref().expect("every seed ran");
            if !r.equivalent {
                let _ = writeln!(out, "{name}: seed {seed} DIVERGED from the fault-free run");
                bad += 1;
            }
            agg.absorb(&r.transport);
            for (slot, n) in injected.iter_mut().zip(r.injected) {
                *slot += n;
            }
        }
        let _ = writeln!(
            out,
            "{name}: {}/{seeds} seeds equivalent; injected drops={} dups={} delayed={}; \
             retries={} suppressed={}",
            seeds - bad as u64,
            injected[0],
            injected[1],
            injected[2],
            agg.retries,
            agg.dupes_suppressed,
        );
        divergent += bad;
    }
    let runs = olden_benchmarks::all().len() as u64 * seeds;
    let _ = writeln!(
        out,
        "chaos: {}/{runs} faulted runs byte-equal to the fault-free simulator",
        runs - divergent as u64
    );
    (out, divergent)
}

fn chaos(
    seeds: u64,
    stall: Option<std::time::Duration>,
    golden: Option<&str>,
    bless: bool,
) -> ExitCode {
    let (report, divergent) = chaos_report(seeds, stall);
    let regen = format!("chaos --seeds {seeds}");
    let code = golden_check("chaos", &regen, &report, golden, bless);
    if divergent > 0 {
        eprintln!("oldenc: {divergent} chaotic run(s) diverged");
        return ExitCode::FAILURE;
    }
    code
}

/// Processor count for the differential sweep. Smaller than the chaos
/// gate's 8 so generated heaps spread across procs without drowning the
/// migrate/cache signal in placement noise.
const DIFF_PROCS: usize = 4;

/// Every `CHAOS_EVERY`-th seed also runs under seeded fault injection
/// (seed 0, 8, 16, … — 25 chaotic runs per 200-seed sweep).
const DIFF_CHAOS_EVERY: u64 = 8;

/// Accepted band on `(predicted + 1) / (measured + 1)` per counter. The
/// static model is order-of-magnitude on benchmark-shaped code, but
/// generated programs hit corners it deliberately smooths over — above
/// all loops whose pointer goes null early, where the model charges
/// every predicted trip while execution skips the heap entirely — so the
/// per-seed gate only catches catastrophic breakage. The *pinned* part
/// is the golden file, which records the exact live spread: any model or
/// runtime change that moves a counter shows up as a diff there, and the
/// tight-band claim lives on the mixed-mechanism flip seed (asserted at
/// [0.05, 20] by `mechanism_mix_drives_execution_within_cost_bands`).
const DIFF_BAND: (f64, f64) = (0.01, 5000.0);

/// True when `src` still reproduces a sim-vs-lockstep divergence for
/// `seed`'s input data: values/trips unequal, any counter unequal, the
/// exec backend erroring out, or either side panicking. This is the
/// predicate the delta-debugging shrinker minimizes under; sources that
/// stop compiling don't count (the divergence must survive the front
/// gate to be a *differential* finding).
fn difftest_diverges(src: &str, seed: u64, protocol: olden_runtime::Protocol) -> bool {
    use olden_analysis::compile;
    use olden_exec::{try_run_exec, ExecConfig};
    use olden_runtime::{run_ir, Config, OldenCtx, DEFAULT_FUEL};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    let Ok((_, _, ir)) = compile(src) else {
        return false;
    };
    let ir = Arc::new(ir);
    catch_unwind(AssertUnwindSafe(|| {
        let mut sim = OldenCtx::new(Config::olden(DIFF_PROCS).with_protocol(protocol));
        let out_sim = run_ir(&mut sim, &ir, seed, DEFAULT_FUEL, None);
        let stats = *sim.stats();
        let cache = *sim.cache().stats();
        let pages = sim.cache().pages_cached();
        let ir2 = Arc::clone(&ir);
        match try_run_exec(
            ExecConfig::lockstep(DIFF_PROCS).with_protocol(protocol),
            move |ctx| run_ir(ctx, &ir2, seed, DEFAULT_FUEL, None),
        ) {
            Ok((out, rep)) => {
                out != out_sim
                    || rep.stats != stats
                    || rep.cache != cache
                    || rep.pages_cached != pages
            }
            Err(_) => true,
        }
    }))
    .unwrap_or(true)
}

/// The `difftest` report: `seeds` generated programs, each type-checked,
/// mechanism-selected, lowered to the executable IR, and run on the
/// simulator and the lockstep thread backend from the same input seed —
/// held byte-equal in checksum, per-loop trip counts, every runtime
/// event counter, cache hit/miss totals, and pages cached. Every
/// [`DIFF_CHAOS_EVERY`]-th seed re-runs under seeded fault injection and
/// must stay equal to the fault-free simulator (plus lockstep's serviced
/// message count). Per seed, the static cost model evaluated at the
/// *measured* trip counts must bracket the executed counters within
/// [`DIFF_BAND`].
///
/// Everything printed is a pure function of the seeds, so the surface
/// pins with `--golden`. Seeds sweep in parallel work-stealing style
/// (results slotted back by seed before aggregation, as in
/// [`chaos_report`]). Returns the report, the divergent seeds
/// (parity or chaos), and the band-miss count.
fn difftest_report(seeds: u64, protocol: olden_runtime::Protocol) -> (String, Vec<u64>, usize) {
    use olden_analysis::{compile, predict, Mech};
    use olden_exec::{run_exec, ExecConfig};
    use olden_runtime::{run_ir, Config, OldenCtx, Protocol, DEFAULT_FUEL};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct SeedOutcome {
        parity_ok: bool,
        /// Some(equal) when this seed also ran under fault injection.
        chaos_ok: Option<bool>,
        /// `(pred + 1)/(meas + 1)` for migrations, line fetches, remote
        /// touches.
        ratios: [f64; 3],
        mixed: bool,
        fuel_cut: bool,
        /// migrations, cache misses, steals, checks performed.
        totals: [u64; 4],
    }

    fn run_seed(seed: u64, protocol: Protocol) -> SeedOutcome {
        let src = gen_source(seed);
        let (prog, table, ir) =
            compile(&src).unwrap_or_else(|e| panic!("seed {seed} failed to lower: {e}"));
        let ir = Arc::new(ir);
        let mut sim = OldenCtx::new(Config::olden(DIFF_PROCS).with_protocol(protocol));
        let out_sim = run_ir(&mut sim, &ir, seed, DEFAULT_FUEL, None);
        let stats = *sim.stats();
        let cache = *sim.cache().stats();
        let misses = cache.misses;
        let pages = sim.cache().pages_cached();
        let ir2 = Arc::clone(&ir);
        let (out_exec, rep) = run_exec(
            ExecConfig::lockstep(DIFF_PROCS).with_protocol(protocol),
            move |ctx| run_ir(ctx, &ir2, seed, DEFAULT_FUEL, None),
        );
        let parity_ok = out_exec == out_sim
            && rep.stats == stats
            && rep.cache == cache
            && rep.pages_cached == pages;
        let chaos_ok = seed.is_multiple_of(DIFF_CHAOS_EVERY).then(|| {
            let ir3 = Arc::clone(&ir);
            let (cv, crep) = run_exec(
                ExecConfig::lockstep(DIFF_PROCS)
                    .with_protocol(protocol)
                    .chaotic(seed),
                move |ctx| run_ir(ctx, &ir3, seed, DEFAULT_FUEL, None),
            );
            cv == out_sim
                && crep.stats == stats
                && crep.cache == cache
                && crep.pages_cached == pages
                && crep.messages == rep.messages
        });
        let trips: Vec<(&str, u64)> = out_sim
            .trips
            .iter()
            .map(|(k, n)| (k.as_str(), *n))
            .collect();
        let p = predict(&prog, &table, &trips, DIFF_PROCS);
        let pairs = [
            (p.migrations, stats.migrations),
            (p.line_fetches, misses),
            (p.remote_touches, stats.steals),
        ];
        let migrate = table
            .sites
            .iter()
            .filter(|s| s.mech == Mech::Migrate)
            .count();
        SeedOutcome {
            parity_ok,
            chaos_ok,
            ratios: pairs.map(|(pr, m)| (pr + 1.0) / (m as f64 + 1.0)),
            mixed: migrate > 0 && migrate < table.sites.len(),
            fuel_cut: out_sim.halted,
            totals: [
                stats.migrations,
                misses,
                stats.steals,
                stats.checks_performed,
            ],
        }
    }

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(seeds as usize)
        .max(1);
    let next = AtomicU64::new(0);
    let mut results: Vec<Option<SeedOutcome>> = (0..seeds).map(|_| None).collect();
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel::<(u64, SeedOutcome)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= seeds {
                    break;
                }
                tx.send((seed, run_seed(seed, protocol)))
                    .expect("collector alive");
            });
        }
        drop(tx);
        for (seed, r) in rx {
            results[seed as usize] = Some(r);
        }
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "difftest: {seeds} generated programs on {DIFF_PROCS} procs, \
         fuel {}, protocol {}, input seed = program seed",
        olden_runtime::DEFAULT_FUEL,
        protocol.name()
    );
    let mut divergent = Vec::new();
    let mut parity_bad = 0u64;
    let (mut chaos_runs, mut chaos_ok) = (0u64, 0u64);
    let mut band_misses = 0usize;
    let (mut mixed, mut fuel_cut) = (0u64, 0u64);
    let mut totals = [0u64; 4];
    let mut spread = [(f64::INFINITY, f64::NEG_INFINITY); 3];
    for (seed, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("every seed ran");
        if !r.parity_ok {
            let _ = writeln!(out, "seed {seed} DIVERGED: sim vs exec-lockstep");
            divergent.push(seed as u64);
            parity_bad += 1;
        }
        if let Some(ok) = r.chaos_ok {
            chaos_runs += 1;
            if ok {
                chaos_ok += 1;
            } else {
                let _ = writeln!(out, "seed {seed} chaos DIVERGED from the fault-free run");
                if r.parity_ok {
                    divergent.push(seed as u64);
                }
            }
        }
        let in_band = r
            .ratios
            .iter()
            .all(|x| (DIFF_BAND.0..=DIFF_BAND.1).contains(x));
        if !in_band {
            let _ = writeln!(
                out,
                "seed {seed} OUT OF BAND: migrations {:.3} line-fetches {:.3} \
                 remote-touches {:.3}",
                r.ratios[0], r.ratios[1], r.ratios[2]
            );
            band_misses += 1;
        }
        for (slot, x) in spread.iter_mut().zip(r.ratios) {
            *slot = (slot.0.min(x), slot.1.max(x));
        }
        mixed += u64::from(r.mixed);
        fuel_cut += u64::from(r.fuel_cut);
        for (slot, n) in totals.iter_mut().zip(r.totals) {
            *slot += n;
        }
    }
    let _ = writeln!(
        out,
        "parity: {}/{seeds} programs byte-equal on sim vs exec-lockstep \
         (checksum, trips, runtime counters, cache, pages)",
        seeds - parity_bad
    );
    let _ = writeln!(
        out,
        "chaos: {chaos_ok}/{chaos_runs} fault-injected runs byte-equal to the \
         fault-free simulator"
    );
    let _ = writeln!(
        out,
        "bands: {}/{seeds} seeds inside [{:.2}, {:.1}] on (predicted+1)/(measured+1); \
         spread migrations [{:.3}, {:.3}] line-fetches [{:.3}, {:.3}] \
         remote-touches [{:.3}, {:.3}]",
        seeds - band_misses as u64,
        DIFF_BAND.0,
        DIFF_BAND.1,
        spread[0].0,
        spread[0].1,
        spread[1].0,
        spread[1].1,
        spread[2].0,
        spread[2].1,
    );
    let _ = writeln!(
        out,
        "mix: {mixed}/{seeds} programs select both mechanisms; {fuel_cut} fuel-cut"
    );
    // The mechanism-flip experiment: on the first mixed-mechanism seed,
    // the live verdicts must execute differently from forcing either
    // mechanism everywhere — proof the selection *drives* execution.
    if let Some(seed) = (0..seeds).find(|&s| results[s as usize].as_ref().unwrap().mixed) {
        let src = gen_source(seed);
        let (_, _, ir) = compile(&src).expect("mixed seed lowers");
        let ir = Arc::new(ir);
        let counters = |force: Option<Mech>| {
            let mut ctx = OldenCtx::new(Config::olden(DIFF_PROCS).with_protocol(protocol));
            run_ir(&mut ctx, &ir, seed, DEFAULT_FUEL, force);
            (ctx.stats().migrations, ctx.cache().stats().misses)
        };
        let live = counters(None);
        let mig = counters(Some(Mech::Migrate));
        let cache = counters(Some(Mech::Cache));
        let _ = writeln!(
            out,
            "flip seed {seed}: live migrations={} misses={} | all-migrate \
             migrations={} misses={} | all-cache migrations={} misses={}",
            live.0, live.1, mig.0, mig.1, cache.0, cache.1
        );
    }
    let _ = writeln!(
        out,
        "totals: migrations={} line-fetches={} steals={} checks={}",
        totals[0], totals[1], totals[2], totals[3]
    );
    let _ = writeln!(out, "difftest: {} divergence(s)", divergent.len());
    (out, divergent, band_misses)
}

fn difftest(
    seeds: u64,
    protocol: olden_runtime::Protocol,
    golden: Option<&str>,
    bless: bool,
) -> ExitCode {
    let (report, divergent, band_misses) = difftest_report(seeds, protocol);
    let regen = format!("difftest --seeds {seeds} --protocol {}", protocol.name());
    let code = golden_check("difftest", &regen, &report, golden, bless);
    // Any divergence gets delta-debugged down to a minimal reproducer in
    // the corpus, where `corpus_repros_execute_differentially` replays it
    // on both backends forever.
    for seed in &divergent {
        let seed = *seed;
        let small = shrink(&gen_source(seed), &|s| difftest_diverges(s, seed, protocol));
        let path = format!("tests/corpus/difftest-seed{}-{}.dsl", seed, protocol.name());
        match std::fs::write(&path, &small) {
            Ok(()) => eprintln!("oldenc: shrunken reproducer written to {path}"),
            Err(e) => eprintln!("oldenc: cannot write {path}: {e}; reproducer:\n{small}"),
        }
    }
    if !divergent.is_empty() || band_misses > 0 {
        eprintln!(
            "oldenc: {} divergence(s), {band_misses} band miss(es)",
            divergent.len()
        );
        return ExitCode::FAILURE;
    }
    code
}

/// The command prefix that re-enters this binary as a net worker: the
/// parent appends `<proc> <parent_port> <record> <protocol>` per
/// process.
fn self_worker_cmd() -> Result<Vec<String>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let exe = exe
        .into_os_string()
        .into_string()
        .map_err(|p| format!("own binary path is not unicode: {p:?}"))?;
    Ok(vec![exe, "net-worker".to_string()])
}

/// `oldenc net`: every benchmark (or one) executed on the multi-process
/// network backend — worker processes over loopback TCP — held to value
/// and counter parity with the simulator, plus an optional chaos-seed
/// sweep over the real sockets. Exit 1 on any divergence: the CI
/// net-parity gate.
fn net_run_cmd(
    bench: Option<&str>,
    procs: usize,
    seeds: u64,
    protocol: olden_runtime::Protocol,
    stall: Option<std::time::Duration>,
) -> ExitCode {
    use olden_benchmarks::generic_run;
    use olden_exec::ExecConfig;
    use olden_net::{loopback_available, run_net, NetConfig};
    use olden_runtime::{Config, OldenCtx};
    use std::time::Instant;

    if !loopback_available() {
        // Distinct from a parity failure: the environment cannot run the
        // backend at all. CI treats this exit as "skip".
        eprintln!("oldenc: loopback TCP unavailable; cannot run the net backend here");
        return ExitCode::from(3);
    }
    let worker_cmd = match self_worker_cmd() {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("oldenc: {e}");
            return ExitCode::from(2);
        }
    };
    let exec_cfg = || {
        let cfg = ExecConfig::lockstep(procs).with_protocol(protocol);
        match stall {
            Some(d) => cfg.with_stall_timeout(d),
            None => cfg,
        }
    };
    let net_with = |name: &'static str, cfg: ExecConfig| {
        run_net(NetConfig::new(cfg, worker_cmd.clone()), move |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark")
        })
    };

    let descriptors: Vec<_> = olden_benchmarks::all()
        .iter()
        .filter(|d| bench.is_none_or(|b| d.name == b))
        .cloned()
        .collect();
    if descriptors.is_empty() {
        eprintln!(
            "oldenc: unknown benchmark {:?}; known:",
            bench.unwrap_or("")
        );
        for d in olden_benchmarks::all() {
            eprintln!("  {}", d.name);
        }
        return ExitCode::from(2);
    }

    let mut divergent = 0usize;
    for d in &descriptors {
        let name = d.name;
        let mut sim = OldenCtx::new(Config::olden(procs).with_protocol(protocol));
        let sim_val = generic_run(name, &mut sim, SizeClass::Tiny).expect("registry benchmark");
        let t = Instant::now();
        let (val, rep) = net_with(name, exec_cfg());
        let wall_ms = t.elapsed().as_nanos() as f64 / 1e6;
        let clean = val == sim_val
            && rep.stats == *sim.stats()
            && rep.cache == *sim.cache().stats()
            && rep.pages_cached == sim.cache().pages_cached();
        if !clean {
            println!("{name}: DIVERGED from the simulator over TCP");
            divergent += 1;
        }
        let mut chaos_bad = 0usize;
        for seed in 0..seeds {
            let (cv, crep) = net_with(name, exec_cfg().chaotic(seed));
            if cv != sim_val || crep.stats != *sim.stats() || crep.messages != rep.messages {
                println!("{name}: chaos seed {seed} DIVERGED over TCP");
                chaos_bad += 1;
            }
        }
        divergent += chaos_bad;
        println!(
            "{name}: {} on {procs} worker processes, {} frames, {wall_ms:.2} ms{}",
            if clean { "parity ok" } else { "PARITY BROKEN" },
            rep.messages,
            if seeds > 0 {
                format!(", chaos {}/{seeds} seeds ok", seeds as usize - chaos_bad)
            } else {
                String::new()
            }
        );
    }
    if divergent == 0 {
        println!(
            "net: {} benchmark(s) byte-equal to the simulator across process boundaries \
             (protocol {})",
            descriptors.len(),
            protocol.name()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {divergent} net run(s) diverged");
        ExitCode::FAILURE
    }
}

/// `oldenc profile`: one benchmark recorded on both backends, the
/// recordings reconciled against the runs' counters, timelines printed,
/// and optionally a Chrome trace written.
fn profile_cmd(
    bench: &str,
    trace: Option<&str>,
    procs: usize,
    width: usize,
    net: bool,
) -> ExitCode {
    let Some(d) = olden_benchmarks::by_name(bench) else {
        eprintln!("oldenc: unknown benchmark {bench:?}; known:");
        for d in olden_benchmarks::all() {
            eprintln!("  {}", d.name);
        }
        return ExitCode::from(2);
    };
    let sim = profile::profile_sim(&d, procs, SizeClass::Tiny);
    let exec = profile::profile_exec(&d, procs, SizeClass::Tiny);
    let net_prof = if net {
        if !olden_net::loopback_available() {
            eprintln!("oldenc: --net requires loopback TCP, unavailable here");
            return ExitCode::from(3);
        }
        match self_worker_cmd() {
            Ok(cmd) => Some(profile::profile_net(&d, procs, SizeClass::Tiny, cmd)),
            Err(e) => {
                eprintln!("oldenc: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let mut broken = 0usize;
    let mut surfaces = vec![("sim", sim.reconcile()), ("exec", exec.reconcile())];
    if let Some(n) = &net_prof {
        surfaces.push(("net", n.reconcile()));
    }
    for (which, bad) in surfaces {
        for b in &bad {
            eprintln!(
                "oldenc: {} {which} recording does not reconcile: {b}",
                d.name
            );
        }
        broken += bad.len();
    }
    if broken > 0 {
        eprintln!("oldenc: trace untrustworthy; nothing written");
        return ExitCode::FAILURE;
    }
    println!(
        "{} on {procs} procs: makespan {} cycles (sim), wall {:.2} ms (exec lockstep){}",
        d.name,
        sim.report.makespan,
        exec.wall_ns as f64 / 1e6,
        match &net_prof {
            Some(n) => format!(", wall {:.2} ms (net lockstep)", n.wall_ns as f64 / 1e6),
            None => String::new(),
        }
    );
    println!(
        "events: {} stored (sim) / {} stored (exec){}; counters reconcile on every backend",
        sim.recording.events_stored(),
        exec.recording.events_stored(),
        match &net_prof {
            Some(n) => format!(" / {} stored (net)", n.recording.events_stored()),
            None => String::new(),
        }
    );
    let metrics = exec.recording.metrics();
    print!("{}", metrics.render());
    println!("-- sim lane activity (logical time) --");
    print!(
        "{}",
        olden_obs::timeline::event_timeline(&sim.recording, width)
    );
    println!("-- exec lane activity (wall time) --");
    print!(
        "{}",
        olden_obs::timeline::event_timeline(&exec.recording, width)
    );
    if let Some(n) = &net_prof {
        println!("-- net lane activity (wall time, per-process epochs) --");
        print!(
            "{}",
            olden_obs::timeline::event_timeline(&n.recording, width)
        );
    }
    if let Some(path) = trace {
        let mut groups = vec![("sim", &sim.recording), ("exec", &exec.recording)];
        if let Some(n) = &net_prof {
            groups.push(("net", &n.recording));
        }
        let text = olden_obs::chrome::trace_json(&groups);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("oldenc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote Chrome trace to {path} (open at https://ui.perfetto.dev)");
    }
    ExitCode::SUCCESS
}

/// `oldenc bench`: measure every benchmark, optionally write the JSON
/// and/or gate against a baseline (the CI perf-smoke stage).
fn bench_cmd(
    json: Option<&str>,
    check_path: Option<&str>,
    tolerance: f64,
    procs: usize,
    reps: usize,
    net: bool,
) -> ExitCode {
    let net_cmd = if net {
        if !olden_net::loopback_available() {
            eprintln!("oldenc: --net requires loopback TCP, unavailable here");
            return ExitCode::from(3);
        }
        match self_worker_cmd() {
            Ok(cmd) => Some(cmd),
            Err(e) => {
                eprintln!("oldenc: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let file = benchjson::measure(procs, SizeClass::Tiny, reps, net_cmd.as_deref());
    println!(
        "{} benchmarks on {procs} procs, best of {reps}; calibration {:.2} ms",
        file.points.len(),
        file.calib_ns as f64 / 1e6
    );
    for p in &file.points {
        let net_col = match p.net_wall_ns {
            Some(ns) => format!("  net {:>9.3} ms", ns as f64 / 1e6),
            None => String::new(),
        };
        println!(
            "  {:<10} {:>9.3} ms{net_col}  migrations={} misses={} messages={}",
            p.name,
            p.wall_ns as f64 / 1e6,
            p.counters["migrations"],
            p.counters["misses"],
            p.counters["messages"]
        );
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(path, file.render()) {
            eprintln!("oldenc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    let Some(base_path) = check_path else {
        return ExitCode::SUCCESS;
    };
    let base = match std::fs::read_to_string(base_path)
        .map_err(|e| e.to_string())
        .and_then(|s| benchjson::BenchFile::parse(&s))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("oldenc: cannot load baseline {base_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let out = benchjson::check(&file, &base, tolerance);
    for n in &out.notes {
        eprintln!("oldenc: note: {n}");
    }
    if out.violations.is_empty() {
        eprintln!(
            "oldenc: perf-smoke clean against {base_path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for v in &out.violations {
            eprintln!("oldenc: perf-smoke violation: {v}");
        }
        eprintln!(
            "re-baseline with: cargo run --release -q -p olden-bench --bin oldenc -- \
             bench --procs {procs} --reps {reps} --json {base_path}"
        );
        ExitCode::FAILURE
    }
}

/// Minimal line diff: every golden line not in the output (`-`) and
/// every output line not in the golden (`+`), in file order.
fn diff_lines(want: &str, got: &str) -> Vec<String> {
    let want: Vec<&str> = want.lines().collect();
    let got: Vec<&str> = got.lines().collect();
    let mut out = Vec::new();
    for w in &want {
        if !got.contains(w) {
            out.push(format!("- {w}"));
        }
    }
    for g in &got {
        if !want.contains(g) {
            out.push(format!("+ {g}"));
        }
    }
    out
}

fn check(files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut findings = 0usize;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("oldenc: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match racecheck_src(&src) {
            Ok(diags) => {
                for d in &diags {
                    println!("{path}: {d}");
                }
                findings += diags.len();
            }
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if findings == 0 {
        eprintln!("oldenc: {} file(s) clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {findings} finding(s)");
        ExitCode::FAILURE
    }
}

/// Parse a `--protocol` value: an Appendix-A scheme name.
fn parse_protocol(s: &str) -> Option<olden_runtime::Protocol> {
    olden_runtime::Protocol::from_name(s)
}

/// Parse `[--golden PATH] [--bless]`.
fn golden_flags(args: &[String]) -> Option<(Option<String>, bool)> {
    let (mut golden, mut bless) = (None, false);
    let mut rest = args.iter();
    loop {
        match rest.next().map(String::as_str) {
            None => break,
            Some("--golden") => golden = Some(rest.next()?.clone()),
            Some("--bless") => bless = true,
            Some(_) => return None,
        }
    }
    if bless && golden.is_none() {
        return None; // --bless needs a file to bless
    }
    Some((golden, bless))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.len() == 2 && args[1] == "--json" => match lint_json_report() {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("oldenc: {e}");
                ExitCode::from(2)
            }
        },
        Some("lint") => match golden_flags(&args[1..]) {
            Some((golden, bless)) => lint(golden.as_deref(), bless),
            None => usage(),
        },
        Some("typecheck") => {
            let mut json = false;
            let mut files = Vec::new();
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    f if !f.starts_with("--") => files.push(f.to_string()),
                    _ => return usage(),
                }
            }
            typecheck_cmd(&files, json)
        }
        Some("gen") => {
            let (mut seed, mut count) = (0u64, 1u64);
            let (mut golden, mut bless) = (None::<String>, false);
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--seed") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) => seed = n,
                        _ => return usage(),
                    },
                    Some("--count") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if (1..=10_000).contains(&n) => count = n,
                        _ => return usage(),
                    },
                    Some("--golden") => match rest.next() {
                        Some(p) => golden = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--bless") => bless = true,
                    Some(_) => return usage(),
                }
            }
            if bless && golden.is_none() {
                return usage();
            }
            gen_cmd(seed, count, golden.as_deref(), bless)
        }
        Some("fuzz") => {
            let (mut seeds, mut start) = (NON_VACUITY_SEEDS, 0u64);
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--seeds") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n > 0 => seeds = n,
                        _ => return usage(),
                    },
                    Some("--start") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) => start = n,
                        _ => return usage(),
                    },
                    Some(_) => return usage(),
                }
            }
            fuzz_cmd(seeds, start)
        }
        Some("opt") => match golden_flags(&args[1..]) {
            Some((golden, bless)) => opt(golden.as_deref(), bless),
            None => usage(),
        },
        Some("select") => {
            let bench = args.get(1).filter(|a| !a.starts_with("--")).cloned();
            let flags_from = if bench.is_some() { 2 } else { 1 };
            match golden_flags(&args[flags_from..]) {
                Some((golden, bless)) => select_cmd(bench.as_deref(), golden.as_deref(), bless),
                None => usage(),
            }
        }
        Some("scheme") => {
            let bench = args.get(1).filter(|a| !a.starts_with("--")).cloned();
            let flags_from = if bench.is_some() { 2 } else { 1 };
            match golden_flags(&args[flags_from..]) {
                Some((golden, bless)) => scheme_cmd(bench.as_deref(), golden.as_deref(), bless),
                None => usage(),
            }
        }
        Some("run") => {
            let Some(bench) = args.get(1).filter(|a| !a.starts_with("--")).cloned() else {
                return usage();
            };
            let mut procs = 8usize;
            let mut protocol = None;
            let mut rest = args[2..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--procs") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if (1..=64).contains(&n) => procs = n,
                        _ => return usage(),
                    },
                    Some("--protocol") => match rest.next().map(String::as_str) {
                        Some("auto") => protocol = None,
                        Some(p) => match parse_protocol(p) {
                            Some(p) => protocol = Some(p),
                            None => return usage(),
                        },
                        None => return usage(),
                    },
                    Some(_) => return usage(),
                }
            }
            run_cmd(&bench, procs, protocol)
        }
        Some("predict") => {
            let bench = args.get(1).filter(|a| !a.starts_with("--")).cloned();
            let flags_from = if bench.is_some() { 2 } else { 1 };
            let mut json = false;
            for a in &args[flags_from..] {
                match a.as_str() {
                    "--json" => json = true,
                    _ => return usage(),
                }
            }
            predict_cmd(bench.as_deref(), json)
        }
        Some("elide") if args.len() == 1 => elide(),
        // Hidden: the net backend's worker processes re-enter this binary
        // here. Spawned by the orchestrator, never typed by a user, so it
        // stays out of usage().
        Some("net-worker") if args.len() == 5 => {
            let proc: u8 = args[1].parse().expect("net-worker: <proc> must be a u8");
            let port: u16 = args[2]
                .parse()
                .expect("net-worker: <parent_port> must be a u16");
            let record = match args[3].as_str() {
                "0" => false,
                "1" => true,
                other => panic!("net-worker: <record> must be 0 or 1, got {other:?}"),
            };
            let protocol = olden_exec::Protocol::from_name(&args[4])
                .unwrap_or_else(|| panic!("net-worker: unknown protocol {:?}", args[4]));
            olden_net::worker::worker_main(proc, port, record, protocol);
        }
        Some("chaos") => {
            let (mut seeds, mut golden, mut bless) = (32u64, None::<String>, false);
            let mut stall = None;
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--seeds") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n > 0 => seeds = n,
                        _ => return usage(),
                    },
                    Some("--stall-timeout") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(secs) if secs > 0.0 && secs <= 3600.0 => {
                            stall = Some(std::time::Duration::from_secs_f64(secs));
                        }
                        _ => return usage(),
                    },
                    Some("--golden") => match rest.next() {
                        Some(p) => golden = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--bless") => bless = true,
                    Some(_) => return usage(),
                }
            }
            if bless && golden.is_none() {
                return usage();
            }
            chaos(seeds, stall, golden.as_deref(), bless)
        }
        Some("difftest") => {
            let (mut seeds, mut golden, mut bless) = (200u64, None::<String>, false);
            let mut protocol = olden_runtime::Protocol::LocalKnowledge;
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--seeds") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n > 0 => seeds = n,
                        _ => return usage(),
                    },
                    Some("--protocol") => match rest.next().and_then(|s| parse_protocol(s)) {
                        Some(p) => protocol = p,
                        None => return usage(),
                    },
                    Some("--golden") => match rest.next() {
                        Some(p) => golden = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--bless") => bless = true,
                    Some(_) => return usage(),
                }
            }
            if bless && golden.is_none() {
                return usage();
            }
            difftest(seeds, protocol, golden.as_deref(), bless)
        }
        Some("net") => {
            let bench = args.get(1).filter(|a| !a.starts_with("--")).cloned();
            let flags_from = if bench.is_some() { 2 } else { 1 };
            let (mut procs, mut seeds) = (4usize, 0u64);
            let mut protocol = olden_runtime::Protocol::LocalKnowledge;
            let mut stall = None;
            let mut rest = args[flags_from..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--procs") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if (1..=64).contains(&n) => procs = n,
                        _ => return usage(),
                    },
                    Some("--seeds") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) => seeds = n,
                        _ => return usage(),
                    },
                    Some("--protocol") => match rest.next().and_then(|s| parse_protocol(s)) {
                        Some(p) => protocol = p,
                        None => return usage(),
                    },
                    Some("--stall-timeout") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(secs) if secs > 0.0 && secs <= 3600.0 => {
                            stall = Some(std::time::Duration::from_secs_f64(secs));
                        }
                        _ => return usage(),
                    },
                    Some(_) => return usage(),
                }
            }
            net_run_cmd(bench.as_deref(), procs, seeds, protocol, stall)
        }
        Some("profile") => {
            let Some(bench) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let (mut trace, mut procs, mut width) = (None::<String>, 8usize, 72usize);
            let mut net = false;
            let mut rest = args[2..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--trace") => match rest.next() {
                        Some(p) => trace = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--procs") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if (1..=64).contains(&n) => procs = n,
                        _ => return usage(),
                    },
                    Some("--width") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n >= 8 => width = n,
                        _ => return usage(),
                    },
                    Some("--net") => net = true,
                    Some(_) => return usage(),
                }
            }
            profile_cmd(bench, trace.as_deref(), procs, width, net)
        }
        Some("bench") => {
            let (mut json, mut check_path) = (None::<String>, None::<String>);
            let (mut tolerance, mut procs, mut reps) = (0.35f64, 8usize, 3usize);
            let mut net = false;
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--json") => match rest.next() {
                        Some(p) => json = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--check") => match rest.next() {
                        Some(p) => check_path = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--tolerance") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(t) if (0.0..10.0).contains(&t) => tolerance = t,
                        _ => return usage(),
                    },
                    Some("--procs") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if (1..=64).contains(&n) => procs = n,
                        _ => return usage(),
                    },
                    Some("--reps") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if (1..=100).contains(&n) => reps = n,
                        _ => return usage(),
                    },
                    Some("--net") => net = true,
                    Some(_) => return usage(),
                }
            }
            bench_cmd(
                json.as_deref(),
                check_path.as_deref(),
                tolerance,
                procs,
                reps,
                net,
            )
        }
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in golden file is exactly what `oldenc lint` prints
    /// today. `ci.sh` re-asserts this through the real binary; this test
    /// keeps `cargo test` self-contained.
    #[test]
    fn golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-benchmarks.txt");
        assert_eq!(
            lint_report(),
            want,
            "benchmark lint surface drifted; re-record tests/golden/oldenc-benchmarks.txt"
        );
    }

    /// Same pinning for the optimizer surface: `tests/golden/oldenc-opt.txt`
    /// is exactly what `oldenc opt` prints today.
    #[test]
    fn opt_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-opt.txt");
        assert_eq!(
            opt_report(),
            want,
            "benchmark opt surface drifted; re-record tests/golden/oldenc-opt.txt"
        );
    }

    /// The generator surface pins too: `tests/golden/oldenc-gen.txt` is
    /// exactly what `oldenc gen --seed 0 --count 5` prints today. Any
    /// grammar or seeding change to `olden_analysis::gen` shows up here
    /// as a reviewable diff rather than silently shifting every fuzz
    /// seed.
    #[test]
    fn gen_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-gen.txt");
        assert_eq!(
            gen_report(0, 5),
            want,
            "generator surface drifted; re-record tests/golden/oldenc-gen.txt"
        );
    }

    /// `lint --json` parses back through the same hand-rolled JSON layer
    /// and carries one row per registry benchmark.
    #[test]
    fn lint_json_round_trips() {
        let report = lint_json_report().unwrap();
        let parsed = Json::parse(&report).unwrap();
        let rows = parsed.as_arr().unwrap();
        assert_eq!(rows.len(), olden_benchmarks::all().len());
        for row in rows {
            assert!(row.get("name").and_then(Json::as_str).is_some());
            assert!(row.get("diagnostics").and_then(Json::as_arr).is_some());
        }
    }

    /// The default `typecheck` sweep units — registry benchmarks and the
    /// racy corpus — are all type-clean: the TC0xx front gate must never
    /// reject a program the later passes are specified over.
    #[test]
    fn typecheck_sweep_units_are_clean() {
        for d in olden_benchmarks::all() {
            let diags = typecheck_src(d.dsl).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert!(diags.is_empty(), "{}: {}", d.name, diags[0].one_line());
        }
        for s in olden_benchmarks::racy::seeds() {
            let diags = typecheck_src(s.dsl).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(diags.is_empty(), "{}: {}", s.name, diags[0].one_line());
        }
    }

    /// The chaos surface pins too: fault totals are pure functions of
    /// the seeds, so `tests/golden/oldenc-chaos.txt` is exactly what
    /// `oldenc chaos --seeds 32` prints today — and zero runs diverge.
    #[test]
    fn chaos_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-chaos.txt");
        let (report, divergent) = chaos_report(32, None);
        assert_eq!(divergent, 0, "chaotic runs diverged:\n{report}");
        assert_eq!(
            report, want,
            "chaos surface drifted; re-record tests/golden/oldenc-chaos.txt"
        );
    }

    /// The differential surface pins as well: every counter, ratio
    /// spread, and the flip experiment are pure functions of the seeds,
    /// so `tests/golden/oldenc-difftest.txt` is exactly what
    /// `oldenc difftest --seeds 25` prints today — with zero divergences
    /// and zero band misses. (CI's ci.sh stage sweeps the full 200 seeds
    /// through the real binary; 25 keeps `cargo test` fast while still
    /// crossing several chaos seeds and the flip demonstration.)
    #[test]
    fn difftest_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-difftest-25.txt");
        let (report, divergent, band_misses) =
            difftest_report(25, olden_runtime::Protocol::LocalKnowledge);
        assert!(
            divergent.is_empty(),
            "divergent seeds {divergent:?}:\n{report}"
        );
        assert_eq!(band_misses, 0, "cost-model band misses:\n{report}");
        assert_eq!(
            report, want,
            "difftest surface drifted; re-record tests/golden/oldenc-difftest-25.txt"
        );
    }

    /// The differential harness is clean under the other two Appendix-A
    /// schemes as well — a narrow sweep here (the 200-seed-per-scheme
    /// matrix lives in ci.sh) that still crosses one chaos seed each and
    /// compares the *full* cache-counter block, scheme-specific Table-3
    /// columns included.
    #[test]
    fn difftest_clean_under_every_scheme() {
        use olden_runtime::Protocol;
        for protocol in [Protocol::GlobalKnowledge, Protocol::Bilateral] {
            let (report, divergent, band_misses) = difftest_report(8, protocol);
            assert!(
                divergent.is_empty(),
                "{protocol:?} divergent seeds {divergent:?}:\n{report}"
            );
            assert_eq!(band_misses, 0, "{protocol:?} band misses:\n{report}");
            assert!(
                report.contains(&format!("protocol {}", protocol.name())),
                "{protocol:?} report must name its scheme:\n{report}"
            );
        }
    }

    /// Same pinning for the coherence-scheme surface:
    /// `tests/golden/oldenc-scheme.txt` is exactly what `oldenc scheme`
    /// prints today.
    #[test]
    fn scheme_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-scheme.txt");
        assert_eq!(
            scheme_report(None),
            want,
            "scheme-selection surface drifted; re-record tests/golden/oldenc-scheme.txt"
        );
    }

    /// Every scheme verdict names a scheme the runtime can actually run:
    /// the analysis-side `Scheme` spellings and the runtime's `Protocol`
    /// spellings are the same namespace.
    #[test]
    fn scheme_verdicts_name_runnable_protocols() {
        for d in olden_benchmarks::all() {
            let v = olden_analysis::select_scheme_src(d.dsl)
                .unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
            assert!(
                olden_runtime::Protocol::from_name(v.scheme.name()).is_some(),
                "{}: scheme {:?} has no runtime protocol",
                d.name,
                v.scheme
            );
        }
    }

    /// Every descriptor's recorded `elided_sites` list is byte-equal to
    /// what the live optimizer proves on its DSL — the runtime trusts
    /// these keys, so they must never go stale.
    #[test]
    fn descriptor_elided_sites_match_optimizer() {
        for d in olden_benchmarks::all() {
            let rep = optimize_src(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
            let live = rep.elided_keys();
            let recorded: Vec<String> = d.elided_sites.iter().map(|s| s.to_string()).collect();
            assert_eq!(
                recorded, live,
                "{}: descriptor elided_sites diverge from the optimizer",
                d.name
            );
        }
    }

    /// Same pinning for the selection surface:
    /// `tests/golden/oldenc-select.txt` is exactly what `oldenc select`
    /// prints today.
    #[test]
    fn select_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-select.txt");
        assert_eq!(
            select_report(None),
            want,
            "benchmark selection surface drifted; re-record tests/golden/oldenc-select.txt"
        );
    }

    /// Every descriptor's recorded `selected_mechanisms` list is
    /// byte-equal to what the live heuristic decides on its DSL — same
    /// discipline as `elided_sites`. (`select_parity` re-asserts this
    /// plus kernel conformance; this keeps `cargo test -p olden-bench`
    /// self-contained.)
    #[test]
    fn descriptor_selected_mechanisms_match_heuristic() {
        use olden_analysis::{mech_table, parse};
        for d in olden_benchmarks::all() {
            let prog = parse(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
            let live = mech_table(&prog).keys();
            let recorded: Vec<String> = d
                .selected_mechanisms
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert_eq!(
                recorded, live,
                "{}: descriptor selected_mechanisms diverge from the heuristic",
                d.name
            );
        }
    }

    #[test]
    fn every_benchmark_dsl_parses() {
        for d in olden_benchmarks::all() {
            racecheck_src(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
        }
    }
}
