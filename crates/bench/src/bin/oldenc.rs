//! `oldenc` — the static race linter over the Olden DSL.
//!
//! Two subcommands:
//!
//! * `oldenc lint [--golden PATH]` runs the release-consistency race
//!   analysis over the DSL renditions of all ten Table-1 benchmarks and
//!   prints one line per finding (or `name: clean`). With `--golden` the
//!   output must match the recorded file exactly; any drift — a new
//!   warning or a silently vanished one — fails the run. CI pins the
//!   benchmark lint surface this way.
//! * `oldenc opt [--golden PATH]` runs the check-elision and touch-
//!   placement optimizer over the same DSL renditions and prints each
//!   benchmark's per-site verdicts (site, span, mechanism, verdict,
//!   reason) plus touch findings. `--golden` pins the surface exactly
//!   like `lint` does.
//! * `oldenc elide` runs every optimizer-annotated benchmark on the
//!   simulator with elision enabled and prints the runtime check
//!   counters. Exit 1 if any annotated benchmark elides zero checks —
//!   the CI gate against the hints silently going dead.
//! * `oldenc chaos [--seeds N] [--golden PATH]` runs every benchmark on
//!   the thread backend under N seeded fault schedules (message drops,
//!   duplicates, reorders) and checks each run's value and event
//!   counters byte-equal to the fault-free simulator's. Prints one
//!   deterministic summary line per benchmark (fault totals are pure
//!   functions of the seeds, so the surface pins with `--golden`). Exit
//!   1 on any divergence.
//! * `oldenc check FILE...` lints DSL source files, printing full
//!   multi-line diagnostics. Exit 1 when anything is reported, 2 on
//!   parse errors.

use olden_analysis::optimize_src;
use olden_analysis::racecheck::racecheck_src;
use std::fmt::Write as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: oldenc lint [--golden PATH]");
    eprintln!("       oldenc opt [--golden PATH]");
    eprintln!("       oldenc elide");
    eprintln!("       oldenc chaos [--seeds N] [--golden PATH]");
    eprintln!("       oldenc check FILE...");
    ExitCode::from(2)
}

/// The `lint` report: one `name: ...` line per benchmark finding, in
/// registry (paper Table 1) order. Diagnostics come out of the checker
/// already sorted, so the report is deterministic.
fn lint_report() -> String {
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        let diags = match racecheck_src(d.dsl) {
            Ok(diags) => diags,
            Err(e) => {
                // A benchmark DSL that stops parsing is a bug in the
                // repo, not in the user's input; surface it in the
                // report so the golden comparison catches it.
                let _ = writeln!(out, "{}: parse error: {e}", d.name);
                continue;
            }
        };
        if diags.is_empty() {
            let _ = writeln!(out, "{}: clean", d.name);
        } else {
            for diag in diags {
                let _ = writeln!(out, "{}: {}", d.name, diag.one_line());
            }
        }
    }
    out
}

/// The `opt` report: each benchmark's full elision report under a
/// `== name ==` header, in registry order. [`OptReport::render`] is
/// deterministic, so the whole surface pins bit-for-bit.
fn opt_report() -> String {
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        let _ = writeln!(out, "== {} ==", d.name);
        match optimize_src(d.dsl) {
            Ok(r) => out.push_str(&r.render()),
            Err(e) => {
                let _ = writeln!(out, "parse error: {e}");
            }
        }
    }
    out
}

fn golden_check(what: &str, report: &str, golden: Option<&str>) -> ExitCode {
    print!("{report}");
    let Some(path) = golden else {
        return ExitCode::SUCCESS;
    };
    let want = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oldenc: cannot read golden file {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if report == want {
        eprintln!("oldenc: {what} output matches {path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {what} output diverges from {path}:");
        for diff in diff_lines(&want, report) {
            eprintln!("  {diff}");
        }
        eprintln!("(re-record with: oldenc {what} > {path})");
        ExitCode::FAILURE
    }
}

fn lint(golden: Option<&str>) -> ExitCode {
    golden_check("lint", &lint_report(), golden)
}

fn opt(golden: Option<&str>) -> ExitCode {
    golden_check("opt", &opt_report(), golden)
}

/// Run every annotated benchmark with elision on and report the runtime
/// check counters. A benchmark whose descriptor carries elision sites
/// but whose run elides nothing means the `Check::Elide` hints in its
/// kernel went dead — fail so CI catches the regression.
fn elide() -> ExitCode {
    use olden_benchmarks::{generic_run, SizeClass};
    use olden_runtime::{Config, OldenCtx};
    let mut dead = 0usize;
    for d in olden_benchmarks::all() {
        if d.elided_sites.is_empty() {
            continue;
        }
        let mut ctx = OldenCtx::new(Config::olden(8).optimized());
        generic_run(d.name, &mut ctx, SizeClass::Tiny).expect("registry benchmark");
        let s = ctx.stats();
        let total = s.checks_performed + s.checks_elided;
        println!(
            "{}: {} static sites, {} of {} runtime checks elided ({:.1}%)",
            d.name,
            d.elided_sites.len(),
            s.checks_elided,
            total,
            100.0 * s.checks_elided as f64 / total.max(1) as f64
        );
        if s.checks_elided == 0 {
            eprintln!("oldenc: {} is annotated but elided no checks", d.name);
            dead += 1;
        }
    }
    if dead == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {dead} benchmark(s) with dead elision hints");
        ExitCode::FAILURE
    }
}

/// The `chaos` report: every benchmark, executed for real on worker
/// threads under `seeds` seeded fault schedules, held byte-equal — in
/// value, runtime event counters, cache hit/miss totals, pages cached,
/// and serviced-message count — to the fault-free simulator run.
///
/// Fault verdicts are pure integer functions of the seed and each
/// message's identity, and lockstep execution sends a deterministic
/// message sequence, so the per-benchmark fault totals are reproducible
/// bit-for-bit: the whole surface pins with `--golden`. Returns the
/// report and the number of divergent runs.
fn chaos_report(seeds: u64) -> (String, usize) {
    use olden_benchmarks::{generic_run, SizeClass};
    use olden_exec::{run_exec, ExecConfig};
    use olden_runtime::{Config, FaultTag, OldenCtx, TransportStats};
    const PROCS: usize = 8;
    let mut out = String::new();
    let mut divergent = 0usize;
    for d in olden_benchmarks::all() {
        let name = d.name;
        let mut sim = OldenCtx::new(Config::olden(PROCS));
        let sim_val = generic_run(name, &mut sim, SizeClass::Tiny).expect("registry benchmark");
        let (base_val, base) = run_exec(ExecConfig::lockstep(PROCS), move |ctx| {
            generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark")
        });
        let mut bad = 0usize;
        let mut agg = TransportStats::default();
        let mut injected = [0u64; 3]; // drops, duplicates, delayed duplicates
        for seed in 0..seeds {
            let (v, rep) = run_exec(ExecConfig::lockstep(PROCS).chaotic(seed), move |ctx| {
                generic_run(name, ctx, SizeClass::Tiny).expect("registry benchmark")
            });
            let equivalent = v == base_val
                && v == sim_val
                && rep.stats == *sim.stats()
                && (rep.cache.hits, rep.cache.misses)
                    == (sim.cache().stats().hits, sim.cache().stats().misses)
                && rep.pages_cached == sim.cache().pages_cached()
                && rep.messages == base.messages;
            if !equivalent {
                let _ = writeln!(out, "{name}: seed {seed} DIVERGED from the fault-free run");
                bad += 1;
            }
            agg.absorb(&rep.transport);
            injected[0] += rep.faults.count(FaultTag::Dropped);
            injected[1] += rep.faults.count(FaultTag::Duplicated);
            injected[2] += rep.faults.count(FaultTag::DelayedDuplicate);
        }
        let _ = writeln!(
            out,
            "{name}: {}/{seeds} seeds equivalent; injected drops={} dups={} delayed={}; \
             retries={} suppressed={}",
            seeds - bad as u64,
            injected[0],
            injected[1],
            injected[2],
            agg.retries,
            agg.dupes_suppressed,
        );
        divergent += bad;
    }
    let runs = olden_benchmarks::all().len() as u64 * seeds;
    let _ = writeln!(
        out,
        "chaos: {}/{runs} faulted runs byte-equal to the fault-free simulator",
        runs - divergent as u64
    );
    (out, divergent)
}

fn chaos(seeds: u64, golden: Option<&str>) -> ExitCode {
    let (report, divergent) = chaos_report(seeds);
    let code = golden_check("chaos", &report, golden);
    if divergent > 0 {
        eprintln!("oldenc: {divergent} chaotic run(s) diverged");
        return ExitCode::FAILURE;
    }
    code
}

/// Minimal line diff: every golden line not in the output (`-`) and
/// every output line not in the golden (`+`), in file order.
fn diff_lines(want: &str, got: &str) -> Vec<String> {
    let want: Vec<&str> = want.lines().collect();
    let got: Vec<&str> = got.lines().collect();
    let mut out = Vec::new();
    for w in &want {
        if !got.contains(w) {
            out.push(format!("- {w}"));
        }
    }
    for g in &got {
        if !want.contains(g) {
            out.push(format!("+ {g}"));
        }
    }
    out
}

fn check(files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut findings = 0usize;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("oldenc: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match racecheck_src(&src) {
            Ok(diags) => {
                for d in &diags {
                    println!("{path}: {d}");
                }
                findings += diags.len();
            }
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if findings == 0 {
        eprintln!("oldenc: {} file(s) clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {findings} finding(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match args.get(1).map(String::as_str) {
            None => lint(None),
            Some("--golden") if args.len() == 3 => lint(Some(&args[2])),
            _ => usage(),
        },
        Some("opt") => match args.get(1).map(String::as_str) {
            None => opt(None),
            Some("--golden") if args.len() == 3 => opt(Some(&args[2])),
            _ => usage(),
        },
        Some("elide") if args.len() == 1 => elide(),
        Some("chaos") => {
            let (mut seeds, mut golden) = (32u64, None::<String>);
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--seeds") => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(n) if n > 0 => seeds = n,
                        _ => return usage(),
                    },
                    Some("--golden") => match rest.next() {
                        Some(p) => golden = Some(p.clone()),
                        None => return usage(),
                    },
                    Some(_) => return usage(),
                }
            }
            chaos(seeds, golden.as_deref())
        }
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in golden file is exactly what `oldenc lint` prints
    /// today. `ci.sh` re-asserts this through the real binary; this test
    /// keeps `cargo test` self-contained.
    #[test]
    fn golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-benchmarks.txt");
        assert_eq!(
            lint_report(),
            want,
            "benchmark lint surface drifted; re-record tests/golden/oldenc-benchmarks.txt"
        );
    }

    /// Same pinning for the optimizer surface: `tests/golden/oldenc-opt.txt`
    /// is exactly what `oldenc opt` prints today.
    #[test]
    fn opt_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-opt.txt");
        assert_eq!(
            opt_report(),
            want,
            "benchmark opt surface drifted; re-record tests/golden/oldenc-opt.txt"
        );
    }

    /// The chaos surface pins too: fault totals are pure functions of
    /// the seeds, so `tests/golden/oldenc-chaos.txt` is exactly what
    /// `oldenc chaos --seeds 32` prints today — and zero runs diverge.
    #[test]
    fn chaos_golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-chaos.txt");
        let (report, divergent) = chaos_report(32);
        assert_eq!(divergent, 0, "chaotic runs diverged:\n{report}");
        assert_eq!(
            report, want,
            "chaos surface drifted; re-record tests/golden/oldenc-chaos.txt"
        );
    }

    /// Every descriptor's recorded `elided_sites` list is byte-equal to
    /// what the live optimizer proves on its DSL — the runtime trusts
    /// these keys, so they must never go stale.
    #[test]
    fn descriptor_elided_sites_match_optimizer() {
        for d in olden_benchmarks::all() {
            let rep = optimize_src(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
            let live = rep.elided_keys();
            let recorded: Vec<String> = d.elided_sites.iter().map(|s| s.to_string()).collect();
            assert_eq!(
                recorded, live,
                "{}: descriptor elided_sites diverge from the optimizer",
                d.name
            );
        }
    }

    #[test]
    fn every_benchmark_dsl_parses() {
        for d in olden_benchmarks::all() {
            racecheck_src(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
        }
    }
}
