//! `oldenc` — the static race linter over the Olden DSL.
//!
//! Two subcommands:
//!
//! * `oldenc lint [--golden PATH]` runs the release-consistency race
//!   analysis over the DSL renditions of all ten Table-1 benchmarks and
//!   prints one line per finding (or `name: clean`). With `--golden` the
//!   output must match the recorded file exactly; any drift — a new
//!   warning or a silently vanished one — fails the run. CI pins the
//!   benchmark lint surface this way.
//! * `oldenc check FILE...` lints DSL source files, printing full
//!   multi-line diagnostics. Exit 1 when anything is reported, 2 on
//!   parse errors.

use olden_analysis::racecheck::racecheck_src;
use std::fmt::Write as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: oldenc lint [--golden PATH]");
    eprintln!("       oldenc check FILE...");
    ExitCode::from(2)
}

/// The `lint` report: one `name: ...` line per benchmark finding, in
/// registry (paper Table 1) order. Diagnostics come out of the checker
/// already sorted, so the report is deterministic.
fn lint_report() -> String {
    let mut out = String::new();
    for d in olden_benchmarks::all() {
        let diags = match racecheck_src(d.dsl) {
            Ok(diags) => diags,
            Err(e) => {
                // A benchmark DSL that stops parsing is a bug in the
                // repo, not in the user's input; surface it in the
                // report so the golden comparison catches it.
                let _ = writeln!(out, "{}: parse error: {e}", d.name);
                continue;
            }
        };
        if diags.is_empty() {
            let _ = writeln!(out, "{}: clean", d.name);
        } else {
            for diag in diags {
                let _ = writeln!(out, "{}: {}", d.name, diag.one_line());
            }
        }
    }
    out
}

fn lint(golden: Option<&str>) -> ExitCode {
    let report = lint_report();
    print!("{report}");
    let Some(path) = golden else {
        return ExitCode::SUCCESS;
    };
    let want = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oldenc: cannot read golden file {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if report == want {
        eprintln!("oldenc: lint output matches {path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: lint output diverges from {path}:");
        for diff in diff_lines(&want, &report) {
            eprintln!("  {diff}");
        }
        eprintln!("(re-record with: oldenc lint > {path})");
        ExitCode::FAILURE
    }
}

/// Minimal line diff: every golden line not in the output (`-`) and
/// every output line not in the golden (`+`), in file order.
fn diff_lines(want: &str, got: &str) -> Vec<String> {
    let want: Vec<&str> = want.lines().collect();
    let got: Vec<&str> = got.lines().collect();
    let mut out = Vec::new();
    for w in &want {
        if !got.contains(w) {
            out.push(format!("- {w}"));
        }
    }
    for g in &got {
        if !want.contains(g) {
            out.push(format!("+ {g}"));
        }
    }
    out
}

fn check(files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut findings = 0usize;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("oldenc: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match racecheck_src(&src) {
            Ok(diags) => {
                for d in &diags {
                    println!("{path}: {d}");
                }
                findings += diags.len();
            }
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if findings == 0 {
        eprintln!("oldenc: {} file(s) clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("oldenc: {findings} finding(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match args.get(1).map(String::as_str) {
            None => lint(None),
            Some("--golden") if args.len() == 3 => lint(Some(&args[2])),
            _ => usage(),
        },
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in golden file is exactly what `oldenc lint` prints
    /// today. `ci.sh` re-asserts this through the real binary; this test
    /// keeps `cargo test` self-contained.
    #[test]
    fn golden_file_is_current() {
        let want = include_str!("../../../../tests/golden/oldenc-benchmarks.txt");
        assert_eq!(
            lint_report(),
            want,
            "benchmark lint surface drifted; re-record tests/golden/oldenc-benchmarks.txt"
        );
    }

    #[test]
    fn every_benchmark_dsl_parses() {
        for d in olden_benchmarks::all() {
            racecheck_src(d.dsl).unwrap_or_else(|e| panic!("{} DSL: {e}", d.name));
        }
    }
}
