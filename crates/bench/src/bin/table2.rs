//! Regenerates the paper's Table 2: heuristic choice, sequential time,
//! speedups at 1–32 processors, and the migrate-only speedup at 32 for
//! the M+C benchmarks.
//!
//! Usage: `table2 [--bench NAME] [--paper-sizes] [--procs N,N,...]
//!                [--migrate-only]`
//!
//! Sequential "time" is reported in simulated mega-cycles (the cost-model
//! substitute for the CM-5's wall-clock seconds; see DESIGN.md §5).

use olden_bench::{table2_row, TABLE2_PROCS};
use olden_benchmarks::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = SizeClass::Default;
    let mut only: Option<String> = None;
    let mut procs: Vec<usize> = TABLE2_PROCS.to_vec();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-sizes" => size = SizeClass::Paper,
            "--tiny" => size = SizeClass::Tiny,
            "--bench" => {
                i += 1;
                only = Some(args[i].clone());
            }
            "--procs" => {
                i += 1;
                procs = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("processor count"))
                    .collect();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("Table 2: Results ({size:?} sizes)");
    println!("{:-<110}", "");
    print!("{:<12} {:<7} {:>12} ", "Benchmark", "Choice", "Seq (Mcyc)");
    for p in &procs {
        print!("{:>7} ", p);
    }
    println!("{:>12}", "Mig-only(32)");
    println!("{:-<110}", "");

    for d in olden_benchmarks::all() {
        if let Some(name) = &only {
            if !d.name.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let row = table2_row(&d, &procs, size);
        let label = if row.whole_program {
            format!("{}(W)", row.name)
        } else {
            row.name.to_string()
        };
        print!(
            "{:<12} {:<7} {:>12.2} ",
            label,
            row.choice,
            row.seq_makespan as f64 / 1e6
        );
        for (_, s) in &row.speedups {
            print!("{:>7.2} ", s);
        }
        match row.migrate_only {
            Some(m) => println!("{:>12.2}", m),
            None => println!("{:>12}", "-"),
        }
    }
}
