//! Regenerates the paper's Table 3: caching statistics for the M+C
//! benchmarks under the local-knowledge, global-knowledge, and bilateral
//! coherence schemes — one full run per scheme per benchmark, with the
//! Appendix-A bookkeeping columns (pushed invalidations, spurious
//! invalidations, revalidation round trips) printed per scheme.
//!
//! Usage: `table3 [--procs N] [--paper-sizes] [--tiny]`
//! (the paper reports 32 processors).

use olden_bench::table3_row;
use olden_benchmarks::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = SizeClass::Default;
    let mut procs = 32usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-sizes" => size = SizeClass::Paper,
            "--tiny" => size = SizeClass::Tiny,
            "--procs" => {
                i += 1;
                procs = args[i].parse().expect("processor count");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("Table 3: Caching Statistics on {procs} processors ({size:?} sizes)");
    println!("{:-<112}", "");
    println!(
        "{:<12} {:>12} {:>8} {:>13} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "Benchmark",
        "Cache Wr",
        "%Remote",
        "Cache Rd",
        "%Remote",
        "local%",
        "global%",
        "bilat%",
        "Pages"
    );
    println!("{:-<112}", "");
    let rows: Vec<_> = olden_benchmarks::all()
        .iter()
        .filter(|d| d.choice == "M+C")
        .map(|d| table3_row(d, procs, size))
        .collect();
    for row in &rows {
        let miss = row.miss_pct();
        println!(
            "{:<12} {:>12} {:>8.3} {:>13} {:>8.3} {:>8.2} {:>8.2} {:>8.2} {:>10}",
            row.name,
            row.cacheable_writes,
            row.write_remote_pct,
            row.cacheable_reads,
            row.read_remote_pct,
            miss[0],
            miss[1],
            miss[2],
            row.pages_cached
        );
    }

    // The scheme × benchmark sweep: what each scheme's bookkeeping
    // actually did. Local knowledge has no columns here by construction
    // (it tracks nothing), so the block prints global and bilateral.
    println!();
    println!("Appendix A bookkeeping per scheme");
    println!("{:-<76}", "");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14}",
        "Benchmark", "inval sent", "spurious", "spur%", "revalidations"
    );
    println!("{:-<76}", "");
    for row in &rows {
        let g = &row.schemes[1];
        let b = &row.schemes[2];
        let spur_pct = if g.invalidations_sent == 0 {
            0.0
        } else {
            100.0 * g.invalidations_spurious as f64 / g.invalidations_sent as f64
        };
        println!(
            "{:<12} {:>12} {:>12} {:>10.1} {:>14}",
            row.name, g.invalidations_sent, g.invalidations_spurious, spur_pct, b.revalidations
        );
    }
}
