//! Regenerates the paper's Table 3: caching statistics for the M+C
//! benchmarks under the local-knowledge, global-knowledge, and bilateral
//! coherence schemes.
//!
//! Usage: `table3 [--procs N] [--paper-sizes] [--tiny]`
//! (the paper reports 32 processors).

use olden_bench::table3_row;
use olden_benchmarks::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = SizeClass::Default;
    let mut procs = 32usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-sizes" => size = SizeClass::Paper,
            "--tiny" => size = SizeClass::Tiny,
            "--procs" => {
                i += 1;
                procs = args[i].parse().expect("processor count");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("Table 3: Caching Statistics on {procs} processors ({size:?} sizes)");
    println!("{:-<112}", "");
    println!(
        "{:<12} {:>12} {:>8} {:>13} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "Benchmark",
        "Cache Wr",
        "%Remote",
        "Cache Rd",
        "%Remote",
        "local%",
        "global%",
        "bilat%",
        "Pages"
    );
    println!("{:-<112}", "");
    for d in olden_benchmarks::all() {
        if d.choice != "M+C" {
            continue;
        }
        let row = table3_row(&d, procs, size);
        println!(
            "{:<12} {:>12} {:>8.3} {:>13} {:>8.3} {:>8.2} {:>8.2} {:>10.2} {:>10}",
            row.name,
            row.cacheable_writes,
            row.write_remote_pct,
            row.cacheable_reads,
            row.read_remote_pct,
            row.miss_pct[0],
            row.miss_pct[1],
            row.miss_pct[2],
            row.pages_cached
        );
    }
}
