//! `oldenc bench`: machine-readable benchmark points and the perf-smoke
//! comparison CI runs against a committed baseline.
//!
//! Each point is one benchmark executed for real on the thread backend:
//! its wall time plus every deterministic counter the run produces
//! (runtime events, cache traffic, messages serviced). The counters pin
//! exactly — any drift is a behavior change, not noise. Wall times are
//! compared through a **calibration ratio**: both files record how long a
//! fixed integer spin took on their host, and a point only fails when its
//! *normalized* time (benchmark wall / calibration wall) slows down by
//! more than the tolerance. That keeps the gate meaningful across CI
//! machines of very different speeds.

use olden_benchmarks::{all, generic_run, Descriptor, SizeClass};
use olden_exec::{run_exec, ExecConfig};
use olden_net::{run_net, NetConfig};
use olden_obs::json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// Schema tag; bump on any incompatible shape change.
pub const SCHEMA: &str = "olden-bench/v1";

/// One benchmark's measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    pub name: String,
    /// Best-of-reps wall time of the lockstep execution, nanoseconds.
    pub wall_ns: u64,
    /// Best-of-reps wall time of the same run on the network backend
    /// (worker processes over loopback TCP), when measured with
    /// `oldenc bench --net`. Absent from files produced without `--net`
    /// and from baselines that predate the column; the counters need no
    /// second column — a net run whose counters diverge from the
    /// lockstep execution fails the measurement itself.
    pub net_wall_ns: Option<u64>,
    /// Deterministic counters; exact across hosts for a fixed config.
    pub counters: BTreeMap<String, u64>,
}

/// A full `oldenc bench` output file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    pub procs: usize,
    /// Wall time of [`calibration_ns`]'s fixed spin on the producing
    /// host: the denominator that normalizes wall times across machines.
    pub calib_ns: u64,
    pub points: Vec<BenchPoint>,
}

/// Time a fixed integer workload (an xorshift spin) on this host. Pure
/// ALU work with no allocation: a stable yardstick for "how fast is this
/// machine today".
pub fn calibration_ns() -> u64 {
    let t = Instant::now();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..8_000_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as u64
}

/// Measure one benchmark: best-of-`reps` wall time plus the run's full
/// counter set (identical across reps — lockstep runs are deterministic).
///
/// With `net_cmd` set, the same benchmark is also run best-of-`reps` on
/// the network backend (worker processes spawned from that command) and
/// its wall time recorded in the `net` column. Lockstep runs are
/// transport-independent, so the net run's value and every counter must
/// equal the thread-backend run's *exactly* — a divergence is a
/// correctness bug and panics rather than producing a misleading point.
pub fn point(
    d: &Descriptor,
    procs: usize,
    size: SizeClass,
    reps: usize,
    net_cmd: Option<&[String]>,
) -> BenchPoint {
    let name = d.name;
    let mut best = u64::MAX;
    let mut counters = BTreeMap::new();
    let collect = |report: &olden_exec::ExecReport, into: &mut BTreeMap<String, u64>| {
        for (k, v) in report.stats.counters() {
            into.insert(k.to_string(), v);
        }
        for (k, v) in report.cache.counters() {
            into.insert(k.to_string(), v);
        }
        into.insert("messages".to_string(), report.messages);
        into.insert("pages_cached".to_string(), report.pages_cached);
    };
    for rep in 0..reps.max(1) {
        let t = Instant::now();
        let (value, report) = run_exec(ExecConfig::lockstep(procs), move |ctx| {
            generic_run(name, ctx, size).expect("registry benchmark")
        });
        best = best.min(t.elapsed().as_nanos() as u64);
        assert_eq!(value, (d.reference)(size), "{name}: value diverged");
        if rep == 0 {
            collect(&report, &mut counters);
        }
    }
    let net_wall_ns = net_cmd.map(|cmd| {
        let mut net_best = u64::MAX;
        for _ in 0..reps.max(1) {
            let cfg = NetConfig::new(ExecConfig::lockstep(procs), cmd.to_vec());
            let t = Instant::now();
            let (value, report) = run_net(cfg, move |ctx| {
                generic_run(name, ctx, size).expect("registry benchmark")
            });
            net_best = net_best.min(t.elapsed().as_nanos() as u64);
            assert_eq!(value, (d.reference)(size), "{name}: net value diverged");
            let mut net_counters = BTreeMap::new();
            collect(&report, &mut net_counters);
            assert_eq!(
                net_counters, counters,
                "{name}: net counters diverged from the thread backend"
            );
        }
        net_best
    });
    BenchPoint {
        name: name.to_string(),
        wall_ns: best,
        net_wall_ns,
        counters,
    }
}

/// Measure every registry benchmark. `net_cmd`, when set, adds the
/// network-backend wall column (see [`point`]).
pub fn measure(
    procs: usize,
    size: SizeClass,
    reps: usize,
    net_cmd: Option<&[String]>,
) -> BenchFile {
    BenchFile {
        procs,
        calib_ns: calibration_ns(),
        points: all()
            .iter()
            .map(|d| point(d, procs, size, reps, net_cmd))
            .collect(),
    }
}

impl BenchFile {
    pub fn render(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("name".into(), Json::str(&p.name)),
                    ("wall_ns".into(), Json::u64(p.wall_ns)),
                ];
                // Optional column: omitted entirely when not measured,
                // so files without --net render byte-identically to the
                // pre-net schema and old baselines stay valid.
                if let Some(n) = p.net_wall_ns {
                    fields.push(("net_wall_ns".into(), Json::u64(n)));
                }
                fields.push((
                    "counters".into(),
                    Json::Obj(
                        p.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::u64(*v)))
                            .collect(),
                    ),
                ));
                Json::Obj(fields)
            })
            .collect();
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("procs".into(), Json::u64(self.procs as u64)),
            ("calib_ns".into(), Json::u64(self.calib_ns)),
            ("points".into(), Json::Arr(points)),
        ]);
        let mut s = doc.render();
        s.push('\n');
        s
    }

    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let doc = Json::parse(text)?;
        let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let schema = field("schema")?.as_str().ok_or("schema is not a string")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let procs = field("procs")?.as_u64().ok_or("procs is not an integer")? as usize;
        let calib_ns = field("calib_ns")?
            .as_u64()
            .ok_or("calib_ns is not an integer")?;
        let mut points = Vec::new();
        for p in field("points")?.as_arr().ok_or("points is not an array")? {
            let name = p
                .get("name")
                .and_then(Json::as_str)
                .ok_or("point without a name")?
                .to_string();
            let wall_ns = p
                .get("wall_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: wall_ns missing"))?;
            let net_wall_ns = match p.get("net_wall_ns") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| format!("{name}: net_wall_ns is not an integer"))?,
                ),
            };
            let mut counters = BTreeMap::new();
            for (k, v) in p
                .get("counters")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("{name}: counters missing"))?
            {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("{name}: counter {k:?} is not an integer"))?;
                counters.insert(k.clone(), v);
            }
            points.push(BenchPoint {
                name,
                wall_ns,
                net_wall_ns,
                counters,
            });
        }
        Ok(BenchFile {
            procs,
            calib_ns,
            points,
        })
    }
}

/// Outcome of comparing a fresh measurement against a baseline.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Hard failures: counter drift, missing benchmarks, or a normalized
    /// slowdown beyond the tolerance. Non-empty fails CI.
    pub violations: Vec<String>,
    /// Informational lines (e.g. speedups); never fail the run.
    pub notes: Vec<String>,
}

/// Compare `cur` against `base`. Counters must match exactly; wall times
/// are normalized by each file's calibration spin and must not slow down
/// by more than `tolerance` (0.35 = 35%).
pub fn check(cur: &BenchFile, base: &BenchFile, tolerance: f64) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    if cur.procs != base.procs {
        out.violations.push(format!(
            "processor counts differ: current {} vs baseline {}",
            cur.procs, base.procs
        ));
        return out;
    }
    for b in &base.points {
        let Some(c) = cur.points.iter().find(|p| p.name == b.name) else {
            out.violations
                .push(format!("{}: present in baseline, missing from run", b.name));
            continue;
        };
        for (k, bv) in &b.counters {
            match c.counters.get(k) {
                Some(cv) if cv == bv => {}
                Some(cv) => out.violations.push(format!(
                    "{}: counter {k} drifted: baseline {bv}, current {cv}",
                    b.name
                )),
                None => out
                    .violations
                    .push(format!("{}: counter {k} missing from run", b.name)),
            }
        }
        for k in c.counters.keys() {
            if !b.counters.contains_key(k) {
                out.notes
                    .push(format!("{}: new counter {k} (not in baseline)", b.name));
            }
        }
        // Normalized ratio: >1 means this run is slower than the baseline
        // after accounting for host speed.
        let ratio =
            (c.wall_ns as f64 / cur.calib_ns as f64) / (b.wall_ns as f64 / base.calib_ns as f64);
        if ratio > 1.0 + tolerance {
            out.violations.push(format!(
                "{}: {:.2}x normalized slowdown (tolerance {:.0}%)",
                b.name,
                ratio,
                tolerance * 100.0
            ));
        } else if ratio < 1.0 / (1.0 + tolerance) {
            out.notes.push(format!(
                "{}: {:.2}x normalized speedup",
                b.name,
                1.0 / ratio
            ));
        }
        // The net column gates the same way, but only when both sides
        // carry it — a baseline from before the column (or measured
        // without --net) neither fails nor warns, so adopting the column
        // never breaks an existing perf-smoke gate.
        match (c.net_wall_ns, b.net_wall_ns) {
            (Some(cn), Some(bn)) => {
                let ratio = (cn as f64 / cur.calib_ns as f64) / (bn as f64 / base.calib_ns as f64);
                if ratio > 1.0 + tolerance {
                    out.violations.push(format!(
                        "{}: {:.2}x normalized net-backend slowdown (tolerance {:.0}%)",
                        b.name,
                        ratio,
                        tolerance * 100.0
                    ));
                }
            }
            (Some(_), None) => out.notes.push(format!(
                "{}: net column measured but absent from baseline",
                b.name
            )),
            (None, Some(_)) => out.notes.push(format!(
                "{}: baseline has a net column this run did not measure (pass --net)",
                b.name
            )),
            (None, None) => {}
        }
    }
    for c in &cur.points {
        if !base.points.iter().any(|b| b.name == c.name) {
            out.notes
                .push(format!("{}: new benchmark (not in baseline)", c.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_benchmarks::by_name;

    fn sample() -> BenchFile {
        let d = by_name("TreeAdd").unwrap();
        BenchFile {
            procs: 8,
            calib_ns: 10_000_000,
            points: vec![point(&d, 8, SizeClass::Tiny, 1, None)],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let f = sample();
        let parsed = BenchFile::parse(&f.render()).expect("own output parses");
        assert_eq!(parsed, f);
        assert!(
            f.points[0].counters["futures"] > 0,
            "TreeAdd spawns futures"
        );
        assert!(f.points[0].counters.contains_key("messages"));
    }

    /// The perf-smoke gate really fires: a synthetic 2x slowdown on one
    /// benchmark (same calibration) is a violation at 35% tolerance.
    #[test]
    fn synthetic_double_slowdown_is_a_violation() {
        let base = sample();
        let mut cur = base.clone();
        cur.points[0].wall_ns *= 2;
        let out = check(&cur, &base, 0.35);
        assert!(
            out.violations.iter().any(|v| v.contains("slowdown")),
            "2x slowdown not flagged: {out:?}"
        );
        // And the same wall times pass clean.
        assert!(check(&base, &base, 0.35).violations.is_empty());
    }

    /// A twice-as-fast *host* is not a slowdown: the calibration ratio
    /// cancels machine speed out.
    #[test]
    fn calibration_normalizes_host_speed() {
        let base = sample();
        let mut cur = base.clone();
        cur.calib_ns *= 2; // slower host...
        cur.points[0].wall_ns *= 2; // ...slows the benchmark equally
        assert!(check(&cur, &base, 0.35).violations.is_empty());
    }

    #[test]
    fn counter_drift_is_a_violation() {
        let base = sample();
        let mut cur = base.clone();
        *cur.points[0].counters.get_mut("migrations").unwrap() += 1;
        let out = check(&cur, &base, 0.35);
        assert!(
            out.violations.iter().any(|v| v.contains("migrations")),
            "counter drift not flagged: {out:?}"
        );
    }

    /// The net column survives render → parse, and a file measured
    /// without `--net` renders with no trace of the column at all.
    #[test]
    fn net_column_round_trips_and_is_truly_optional() {
        let mut f = sample();
        assert!(
            !f.render().contains("net_wall_ns"),
            "unmeasured net column must not appear in the JSON"
        );
        f.points[0].net_wall_ns = Some(123_456_789);
        let parsed = BenchFile::parse(&f.render()).expect("own output parses");
        assert_eq!(parsed, f);
        assert_eq!(parsed.points[0].net_wall_ns, Some(123_456_789));
    }

    /// A net-backend slowdown beyond tolerance is a violation when both
    /// files carry the column; a column mismatch is only a note, so a
    /// pre-net baseline keeps gating exactly as before.
    #[test]
    fn net_column_gates_symmetrically_and_skips_asymmetrically() {
        let mut base = sample();
        base.points[0].net_wall_ns = Some(50_000_000);
        let mut cur = base.clone();
        cur.points[0].net_wall_ns = Some(200_000_000);
        let out = check(&cur, &base, 0.35);
        assert!(
            out.violations.iter().any(|v| v.contains("net-backend")),
            "4x net slowdown not flagged: {out:?}"
        );

        let old_base = sample(); // no net column, as committed baselines predate it
        let out = check(&cur, &old_base, 0.35);
        assert!(
            out.violations.is_empty(),
            "a pre-net baseline must keep passing: {out:?}"
        );
        assert!(out.notes.iter().any(|n| n.contains("absent from baseline")));
    }

    #[test]
    fn missing_benchmark_is_a_violation() {
        let base = sample();
        let cur = BenchFile {
            procs: 8,
            calib_ns: base.calib_ns,
            points: Vec::new(),
        };
        let out = check(&cur, &base, 0.35);
        assert!(out.violations.iter().any(|v| v.contains("missing")));
    }
}
