//! `oldenc bench`: machine-readable benchmark points and the perf-smoke
//! comparison CI runs against a committed baseline.
//!
//! Each point is one benchmark executed for real on the thread backend:
//! its wall time plus every deterministic counter the run produces
//! (runtime events, cache traffic, messages serviced). The counters pin
//! exactly — any drift is a behavior change, not noise. Wall times are
//! compared through a **calibration ratio**: both files record how long a
//! fixed integer spin took on their host, and a point only fails when its
//! *normalized* time (benchmark wall / calibration wall) slows down by
//! more than the tolerance. That keeps the gate meaningful across CI
//! machines of very different speeds.

use olden_benchmarks::{all, generic_run, Descriptor, SizeClass};
use olden_exec::{run_exec, ExecConfig};
use olden_obs::json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// Schema tag; bump on any incompatible shape change.
pub const SCHEMA: &str = "olden-bench/v1";

/// One benchmark's measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    pub name: String,
    /// Best-of-reps wall time of the lockstep execution, nanoseconds.
    pub wall_ns: u64,
    /// Deterministic counters; exact across hosts for a fixed config.
    pub counters: BTreeMap<String, u64>,
}

/// A full `oldenc bench` output file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    pub procs: usize,
    /// Wall time of [`calibration_ns`]'s fixed spin on the producing
    /// host: the denominator that normalizes wall times across machines.
    pub calib_ns: u64,
    pub points: Vec<BenchPoint>,
}

/// Time a fixed integer workload (an xorshift spin) on this host. Pure
/// ALU work with no allocation: a stable yardstick for "how fast is this
/// machine today".
pub fn calibration_ns() -> u64 {
    let t = Instant::now();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..8_000_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as u64
}

/// Measure one benchmark: best-of-`reps` wall time plus the run's full
/// counter set (identical across reps — lockstep runs are deterministic).
pub fn point(d: &Descriptor, procs: usize, size: SizeClass, reps: usize) -> BenchPoint {
    let name = d.name;
    let mut best = u64::MAX;
    let mut counters = BTreeMap::new();
    for rep in 0..reps.max(1) {
        let t = Instant::now();
        let (value, report) = run_exec(ExecConfig::lockstep(procs), move |ctx| {
            generic_run(name, ctx, size).expect("registry benchmark")
        });
        best = best.min(t.elapsed().as_nanos() as u64);
        assert_eq!(value, (d.reference)(size), "{name}: value diverged");
        if rep == 0 {
            for (k, v) in report.stats.counters() {
                counters.insert(k.to_string(), v);
            }
            for (k, v) in report.cache.counters() {
                counters.insert(k.to_string(), v);
            }
            counters.insert("messages".to_string(), report.messages);
            counters.insert("pages_cached".to_string(), report.pages_cached);
        }
    }
    BenchPoint {
        name: name.to_string(),
        wall_ns: best,
        counters,
    }
}

/// Measure every registry benchmark.
pub fn measure(procs: usize, size: SizeClass, reps: usize) -> BenchFile {
    BenchFile {
        procs,
        calib_ns: calibration_ns(),
        points: all().iter().map(|d| point(d, procs, size, reps)).collect(),
    }
}

impl BenchFile {
    pub fn render(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&p.name)),
                    ("wall_ns".into(), Json::u64(p.wall_ns)),
                    (
                        "counters".into(),
                        Json::Obj(
                            p.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::u64(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("procs".into(), Json::u64(self.procs as u64)),
            ("calib_ns".into(), Json::u64(self.calib_ns)),
            ("points".into(), Json::Arr(points)),
        ]);
        let mut s = doc.render();
        s.push('\n');
        s
    }

    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let doc = Json::parse(text)?;
        let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let schema = field("schema")?.as_str().ok_or("schema is not a string")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let procs = field("procs")?.as_u64().ok_or("procs is not an integer")? as usize;
        let calib_ns = field("calib_ns")?
            .as_u64()
            .ok_or("calib_ns is not an integer")?;
        let mut points = Vec::new();
        for p in field("points")?.as_arr().ok_or("points is not an array")? {
            let name = p
                .get("name")
                .and_then(Json::as_str)
                .ok_or("point without a name")?
                .to_string();
            let wall_ns = p
                .get("wall_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: wall_ns missing"))?;
            let mut counters = BTreeMap::new();
            for (k, v) in p
                .get("counters")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("{name}: counters missing"))?
            {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("{name}: counter {k:?} is not an integer"))?;
                counters.insert(k.clone(), v);
            }
            points.push(BenchPoint {
                name,
                wall_ns,
                counters,
            });
        }
        Ok(BenchFile {
            procs,
            calib_ns,
            points,
        })
    }
}

/// Outcome of comparing a fresh measurement against a baseline.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Hard failures: counter drift, missing benchmarks, or a normalized
    /// slowdown beyond the tolerance. Non-empty fails CI.
    pub violations: Vec<String>,
    /// Informational lines (e.g. speedups); never fail the run.
    pub notes: Vec<String>,
}

/// Compare `cur` against `base`. Counters must match exactly; wall times
/// are normalized by each file's calibration spin and must not slow down
/// by more than `tolerance` (0.35 = 35%).
pub fn check(cur: &BenchFile, base: &BenchFile, tolerance: f64) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    if cur.procs != base.procs {
        out.violations.push(format!(
            "processor counts differ: current {} vs baseline {}",
            cur.procs, base.procs
        ));
        return out;
    }
    for b in &base.points {
        let Some(c) = cur.points.iter().find(|p| p.name == b.name) else {
            out.violations
                .push(format!("{}: present in baseline, missing from run", b.name));
            continue;
        };
        for (k, bv) in &b.counters {
            match c.counters.get(k) {
                Some(cv) if cv == bv => {}
                Some(cv) => out.violations.push(format!(
                    "{}: counter {k} drifted: baseline {bv}, current {cv}",
                    b.name
                )),
                None => out
                    .violations
                    .push(format!("{}: counter {k} missing from run", b.name)),
            }
        }
        for k in c.counters.keys() {
            if !b.counters.contains_key(k) {
                out.notes
                    .push(format!("{}: new counter {k} (not in baseline)", b.name));
            }
        }
        // Normalized ratio: >1 means this run is slower than the baseline
        // after accounting for host speed.
        let ratio =
            (c.wall_ns as f64 / cur.calib_ns as f64) / (b.wall_ns as f64 / base.calib_ns as f64);
        if ratio > 1.0 + tolerance {
            out.violations.push(format!(
                "{}: {:.2}x normalized slowdown (tolerance {:.0}%)",
                b.name,
                ratio,
                tolerance * 100.0
            ));
        } else if ratio < 1.0 / (1.0 + tolerance) {
            out.notes.push(format!(
                "{}: {:.2}x normalized speedup",
                b.name,
                1.0 / ratio
            ));
        }
    }
    for c in &cur.points {
        if !base.points.iter().any(|b| b.name == c.name) {
            out.notes
                .push(format!("{}: new benchmark (not in baseline)", c.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_benchmarks::by_name;

    fn sample() -> BenchFile {
        let d = by_name("TreeAdd").unwrap();
        BenchFile {
            procs: 8,
            calib_ns: 10_000_000,
            points: vec![point(&d, 8, SizeClass::Tiny, 1)],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let f = sample();
        let parsed = BenchFile::parse(&f.render()).expect("own output parses");
        assert_eq!(parsed, f);
        assert!(
            f.points[0].counters["futures"] > 0,
            "TreeAdd spawns futures"
        );
        assert!(f.points[0].counters.contains_key("messages"));
    }

    /// The perf-smoke gate really fires: a synthetic 2x slowdown on one
    /// benchmark (same calibration) is a violation at 35% tolerance.
    #[test]
    fn synthetic_double_slowdown_is_a_violation() {
        let base = sample();
        let mut cur = base.clone();
        cur.points[0].wall_ns *= 2;
        let out = check(&cur, &base, 0.35);
        assert!(
            out.violations.iter().any(|v| v.contains("slowdown")),
            "2x slowdown not flagged: {out:?}"
        );
        // And the same wall times pass clean.
        assert!(check(&base, &base, 0.35).violations.is_empty());
    }

    /// A twice-as-fast *host* is not a slowdown: the calibration ratio
    /// cancels machine speed out.
    #[test]
    fn calibration_normalizes_host_speed() {
        let base = sample();
        let mut cur = base.clone();
        cur.calib_ns *= 2; // slower host...
        cur.points[0].wall_ns *= 2; // ...slows the benchmark equally
        assert!(check(&cur, &base, 0.35).violations.is_empty());
    }

    #[test]
    fn counter_drift_is_a_violation() {
        let base = sample();
        let mut cur = base.clone();
        *cur.points[0].counters.get_mut("migrations").unwrap() += 1;
        let out = check(&cur, &base, 0.35);
        assert!(
            out.violations.iter().any(|v| v.contains("migrations")),
            "counter drift not flagged: {out:?}"
        );
    }

    #[test]
    fn missing_benchmark_is_a_violation() {
        let base = sample();
        let cur = BenchFile {
            procs: 8,
            calib_ns: base.calib_ns,
            points: Vec::new(),
        };
        let out = check(&cur, &base, 0.35);
        assert!(out.violations.iter().any(|v| v.contains("missing")));
    }
}
