//! `oldenc profile`: one benchmark, recorded on either backend, with the
//! recording reconciled against the run's own counters before export.
//!
//! The reconciliation is the layer's trust anchor: a Chrome trace is only
//! worth opening if its event counts are *exactly* the run's counters —
//! `count(migrate-recv) == stats.migrations`, `count(line-fetch) ==
//! cache.misses`, and so on. Both profile constructors run that identity
//! and the caller decides whether a mismatch is fatal (`oldenc profile`
//! exits 1).

use olden_benchmarks::{generic_run, Descriptor, SizeClass};
use olden_exec::{run_exec, ExecConfig, ExecReport};
use olden_net::{run_net, NetConfig};
use olden_obs::{EventKind, Recording};
use olden_runtime::{run, Config, RunReport};
use std::time::Instant;

/// A recorded simulator run.
pub struct SimProfile {
    pub report: RunReport,
    pub recording: Recording,
}

/// A recorded lockstep execution on the thread backend.
pub struct ExecProfile {
    pub report: ExecReport,
    pub recording: Recording,
    /// Wall-clock time of the run (excluding reporting).
    pub wall_ns: u64,
}

pub fn profile_sim(d: &Descriptor, procs: usize, size: SizeClass) -> SimProfile {
    let (value, mut report) = run(Config::olden(procs).recorded(), |ctx| (d.run)(ctx, size));
    assert_eq!(value, (d.reference)(size), "{}: value diverged", d.name);
    let recording = report
        .recording
        .take()
        .expect("recorded run yields a recording");
    SimProfile { report, recording }
}

pub fn profile_exec(d: &Descriptor, procs: usize, size: SizeClass) -> ExecProfile {
    let name = d.name;
    let t = Instant::now();
    let (value, mut report) = run_exec(ExecConfig::lockstep(procs).recorded(), move |ctx| {
        generic_run(name, ctx, size).expect("registry benchmark")
    });
    let wall_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(value, (d.reference)(size), "{}: value diverged", d.name);
    let recording = report
        .recording
        .take()
        .expect("recorded run yields a recording");
    ExecProfile {
        report,
        recording,
        wall_ns,
    }
}

/// A recorded lockstep run on the multi-process net backend. The shape
/// is `ExecProfile` — same report type, same reconciliation — but every
/// event in the worker lanes was recorded in a different OS process and
/// shipped home in that worker's shutdown report.
pub fn profile_net(
    d: &Descriptor,
    procs: usize,
    size: SizeClass,
    worker_cmd: Vec<String>,
) -> ExecProfile {
    let name = d.name;
    let t = Instant::now();
    let (value, mut report) = run_net(
        NetConfig::new(ExecConfig::lockstep(procs).recorded(), worker_cmd),
        move |ctx| generic_run(name, ctx, size).expect("registry benchmark"),
    );
    let wall_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(value, (d.reference)(size), "{}: value diverged", d.name);
    let recording = report
        .recording
        .take()
        .expect("recorded run yields a recording");
    ExecProfile {
        report,
        recording,
        wall_ns,
    }
}

/// The count identities a recording must satisfy against its run's
/// counters. Returns every broken identity (empty = trustworthy trace).
pub fn reconcile(
    rec: &Recording,
    migrations: u64,
    return_migrations: u64,
    futures: u64,
    steals: u64,
    misses: u64,
) -> Vec<String> {
    let mut bad = Vec::new();
    let mut check = |what: &str, got: u64, want: u64| {
        if got != want {
            bad.push(format!("{what}: recording says {got}, counters say {want}"));
        }
    };
    check(
        "migrate-send",
        rec.count(EventKind::MigrateSend),
        migrations,
    );
    check(
        "migrate-recv",
        rec.count(EventKind::MigrateRecv),
        migrations,
    );
    check(
        "return-send",
        rec.count(EventKind::ReturnSend),
        return_migrations,
    );
    check(
        "return-recv",
        rec.count(EventKind::ReturnRecv),
        return_migrations,
    );
    check("future-body", rec.count(EventKind::FutureBody), futures);
    check("steal", rec.count(EventKind::Steal), steals);
    check("line-fetch", rec.count(EventKind::LineFetch), misses);
    check(
        "invalidate",
        rec.count(EventKind::Invalidate),
        migrations + return_migrations + rec.count(EventKind::TouchStall),
    );
    if let Err(e) = rec.span_nesting_ok() {
        bad.push(format!("span nesting: {e}"));
    }
    bad
}

impl SimProfile {
    pub fn reconcile(&self) -> Vec<String> {
        reconcile(
            &self.recording,
            self.report.stats.migrations,
            self.report.stats.return_migrations,
            self.report.stats.futures,
            self.report.stats.steals,
            self.report.cache.misses,
        )
    }
}

impl ExecProfile {
    pub fn reconcile(&self) -> Vec<String> {
        reconcile(
            &self.recording,
            self.report.stats.migrations,
            self.report.stats.return_migrations,
            self.report.stats.futures,
            self.report.stats.steals,
            self.report.cache.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_benchmarks::by_name;
    use olden_obs::json::Json;

    /// The acceptance identity, end to end: `profile treeadd` yields a
    /// Chrome trace whose migration/fetch span counts equal the run's
    /// counters — on both backends.
    #[test]
    fn treeadd_trace_event_counts_equal_run_counters() {
        let d = by_name("TreeAdd").unwrap();
        let sim = profile_sim(&d, 8, SizeClass::Tiny);
        let exec = profile_exec(&d, 8, SizeClass::Tiny);
        assert!(sim.reconcile().is_empty(), "{:?}", sim.reconcile());
        assert!(exec.reconcile().is_empty(), "{:?}", exec.reconcile());

        let text =
            olden_obs::chrome::trace_json(&[("sim", &sim.recording), ("exec", &exec.recording)]);
        let doc = Json::parse(&text).expect("emitted trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // Count by (pid-group, name, phase) straight off the parsed JSON —
        // the same numbers a human reads in the trace viewer.
        let count = |pid: u64, name: &str, ph: &str| {
            events
                .iter()
                .filter(|e| {
                    e.get("pid").and_then(Json::as_u64) == Some(pid)
                        && e.get("name").and_then(Json::as_str) == Some(name)
                        && e.get("ph").and_then(Json::as_str) == Some(ph)
                })
                .count() as u64
        };
        for (pid, migrations, misses, futures) in [
            (
                0,
                sim.report.stats.migrations,
                sim.report.cache.misses,
                sim.report.stats.futures,
            ),
            (
                1,
                exec.report.stats.migrations,
                exec.report.cache.misses,
                exec.report.stats.futures,
            ),
        ] {
            assert_eq!(count(pid, "migrate-recv", "i"), migrations, "pid {pid}");
            assert_eq!(count(pid, "line-fetch", "i"), misses, "pid {pid}");
            assert_eq!(count(pid, "future-body", "B"), futures, "pid {pid}");
        }
        assert!(sim.report.stats.migrations > 0, "TreeAdd migrates");
    }

    /// A deliberately broken identity is reported, not swallowed.
    #[test]
    fn reconcile_flags_a_mismatch() {
        let d = by_name("TreeAdd").unwrap();
        let p = profile_sim(&d, 4, SizeClass::Tiny);
        let bad = reconcile(
            &p.recording,
            p.report.stats.migrations + 1, // off by one
            p.report.stats.return_migrations,
            p.report.stats.futures,
            p.report.stats.steals,
            p.report.cache.misses,
        );
        assert!(
            bad.iter().any(|b| b.contains("migrate-send")),
            "mismatch not reported: {bad:?}"
        );
    }
}
