//! Benchmark harness utilities shared by the table regenerators and the
//! wall-clock benches.

pub mod benchjson;
pub mod microbench;
pub mod profile;

use olden_benchmarks::{Descriptor, SizeClass};
use olden_runtime::{run, Config, Mechanism, Protocol, RunReport};

/// Processor counts evaluated in the paper's Table 2.
pub const TABLE2_PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Run one benchmark at one configuration, verifying the value against
/// its serial reference.
pub fn run_checked(d: &Descriptor, cfg: Config, size: SizeClass) -> RunReport {
    let (value, rep) = run(cfg, |ctx| (d.run)(ctx, size));
    assert_eq!(
        value,
        (d.reference)(size),
        "{}: simulated value diverged from the serial reference",
        d.name
    );
    rep
}

/// A full Table-2 row: sequential makespan, per-processor-count speedups,
/// and the migrate-only speedup at the largest count.
pub struct Table2Row {
    pub name: &'static str,
    pub choice: &'static str,
    pub whole_program: bool,
    pub seq_makespan: u64,
    pub speedups: Vec<(usize, f64)>,
    pub migrate_only: Option<f64>,
}

/// Compute a Table-2 row.
pub fn table2_row(d: &Descriptor, procs: &[usize], size: SizeClass) -> Table2Row {
    let seq = run_checked(d, Config::sequential(), size);
    let speedups = procs
        .iter()
        .map(|&p| {
            let rep = run_checked(d, Config::olden(p), size);
            (p, rep.speedup_vs(seq.makespan))
        })
        .collect();
    let migrate_only = if d.choice == "M+C" {
        let p = *procs.last().unwrap();
        let rep = run_checked(d, Config::olden(p).forced(Mechanism::Migrate), size);
        Some(rep.speedup_vs(seq.makespan))
    } else {
        None
    };
    Table2Row {
        name: d.name,
        choice: d.choice,
        whole_program: d.whole_program,
        seq_makespan: seq.makespan,
        speedups,
        migrate_only,
    }
}

/// One coherence scheme's column block in a Table-3 row: the miss rate
/// plus the Appendix-A bookkeeping counters that distinguish the
/// schemes (pushed invalidations and how many were spurious under
/// global knowledge, revalidation round trips under bilateral).
#[derive(Clone, Copy, Default)]
pub struct SchemeStats {
    pub miss_pct: f64,
    pub invalidations_sent: u64,
    pub invalidations_spurious: u64,
    pub revalidations: u64,
}

/// A Table-3 row: caching statistics under each coherence protocol.
pub struct Table3Row {
    pub name: &'static str,
    pub cacheable_writes: u64,
    pub write_remote_pct: f64,
    pub cacheable_reads: u64,
    pub read_remote_pct: f64,
    /// Per-scheme blocks in [`Protocol::ALL`] order (local, global,
    /// bilateral).
    pub schemes: [SchemeStats; 3],
    pub pages_cached: u64,
}

impl Table3Row {
    /// Miss rates in scheme order — the paper's three `%` columns.
    pub fn miss_pct(&self) -> [f64; 3] {
        [
            self.schemes[0].miss_pct,
            self.schemes[1].miss_pct,
            self.schemes[2].miss_pct,
        ]
    }
}

/// Compute a Table-3 row at `procs` processors: one full run per
/// Appendix-A scheme, with the traffic columns taken from the
/// local-knowledge baseline (they are scheme-independent and the parity
/// suites hold them equal).
pub fn table3_row(d: &Descriptor, procs: usize, size: SizeClass) -> Table3Row {
    let mut schemes = [SchemeStats::default(); 3];
    let mut base = None;
    for (i, proto) in Protocol::ALL.into_iter().enumerate() {
        let rep = run_checked(d, Config::olden(procs).with_protocol(proto), size);
        schemes[i] = SchemeStats {
            miss_pct: rep.cache.miss_pct(),
            invalidations_sent: rep.cache.invalidations_sent,
            invalidations_spurious: rep.cache.invalidations_spurious,
            revalidations: rep.cache.revalidations,
        };
        if i == 0 {
            base = Some(rep);
        }
    }
    let rep = base.unwrap();
    Table3Row {
        name: d.name,
        cacheable_writes: rep.cache.cacheable_writes,
        write_remote_pct: rep.cache.write_remote_pct(),
        cacheable_reads: rep.cache.cacheable_reads,
        read_remote_pct: rep.cache.read_remote_pct(),
        schemes,
        pages_cached: rep.pages_cached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olden_benchmarks::by_name;

    #[test]
    fn table2_row_smoke() {
        let d = by_name("TreeAdd").unwrap();
        let row = table2_row(&d, &[1, 4], SizeClass::Tiny);
        assert_eq!(row.speedups.len(), 2);
        assert!(row.migrate_only.is_none(), "TreeAdd is M-only");
        assert!(row.seq_makespan > 0);
    }

    #[test]
    fn table3_row_smoke() {
        let d = by_name("EM3D").unwrap();
        let row = table3_row(&d, 4, SizeClass::Tiny);
        assert!(row.cacheable_reads > 0);
        assert!(row.miss_pct().iter().all(|&m| (0.0..=100.0).contains(&m)));
        assert!(row.pages_cached > 0);
        // Scheme bookkeeping shows up in the right columns only: local
        // knowledge does neither, global never revalidates, bilateral
        // never pushes invalidations.
        let [local, global, bilateral] = row.schemes;
        assert_eq!(local.invalidations_sent, 0);
        assert_eq!(local.revalidations, 0);
        assert_eq!(global.revalidations, 0);
        assert_eq!(bilateral.invalidations_sent, 0);
        assert!(global.invalidations_spurious <= global.invalidations_sent);
    }
}
