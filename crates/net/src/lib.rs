//! `olden-net`: the multi-process distributed backend.
//!
//! The third backend of the stack. The simulator models an Olden machine
//! in one thread; `olden-exec` runs real worker *threads* over in-process
//! mailboxes; this crate runs real worker *processes* — one per simulated
//! processor — speaking a hand-rolled, length-prefixed binary protocol
//! over loopback TCP (see [`wire`]). Everything above the transport is
//! shared with the thread backend through `olden_exec`'s [`Transport`]
//! abstraction: the client logic (`ExecCtx`), the worker serve loop, the
//! chaos fault layer, sequence-number dedup, the stall watchdog, obs
//! recording, and the vector-clock sanitizer are byte-for-byte the same
//! code, so lockstep runs reconcile with the simulator exactly as the
//! thread backend does.
//!
//! Topology per run:
//!
//! - The parent binds a **rendezvous** listener and spawns one worker
//!   process per processor, passing the rendezvous port on the command
//!   line ([`NetConfig::worker_cmd`] names the binary).
//! - Each worker binds its own data listener, dials the rendezvous port,
//!   and announces `(proc, data_port)` in a `Hello` frame. The
//!   rendezvous connection stays open as a parent-death tether (worker
//!   side: EOF ⇒ exit), and the parent kills the fleet via
//!   [`FleetGuard`] on any error path, so neither side can leak
//!   processes.
//! - Clients (the root logical thread, and one thread per spawned future
//!   in parallel mode) each get a [`ClientConn`] holding one lazy TCP
//!   connection per worker. Clients block for the reply to each request,
//!   so a connection never has more than one frame in flight per
//!   direction, and the worker can route replies purely by envelope
//!   `src`.
//! - Shutdown drains the fleet in processor order over a control
//!   connection (src = `CONTROL_SRC`, bypasses dedup), collecting each
//!   worker's [`WorkerReport`] — cache counters, receiver-side transport
//!   counts, races, and its obs lane — then waits for every child to
//!   exit 0.
//!
//! Chaos over real sockets: fault verdicts are *sender-side* (a `Drop`
//! is counted as a send but never written to the socket), so TCP's
//! reliability is not in tension with the fault model — every frame that
//! is actually transmitted is delivered, and the conservation law
//! (`sends = deliveries + drops`) holds exactly, which
//! `assemble_report` self-checks on every run.

pub mod wire;
pub mod worker;

use olden_exec::msg::{Envelope, Reply, Request, WorkerReport, CONTROL_SRC};
use olden_exec::{
    assemble_report, drive_root, dump_clients, ClientConn, ExecConfig, ExecCtx, ExecError,
    ExecReport, Shared, Transport, TransportCounters,
};
use olden_gptr::{ProcId, MAX_PROCS};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;
use wire::{decode_hello, decode_reply, encode_envelope, read_frame, write_frame};

/// Configuration for one network-backend run: the shared exec-layer
/// settings plus the process-orchestration knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The transport-independent settings (procs, mode, fault plan,
    /// stall timeout, sanitizer, recording, …), interpreted identically
    /// to the thread backend.
    pub exec: ExecConfig,
    /// Command prefix that execs one worker process; the orchestrator
    /// appends `<proc> <parent_port> <record> <protocol>`. Tests use the
    /// `olden-net-worker` binary; `oldenc` uses itself with a hidden
    /// `net-worker` subcommand.
    pub worker_cmd: Vec<String>,
    /// How long to wait for the whole fleet to dial back after spawning
    /// before declaring the run stalled.
    pub handshake_timeout: Duration,
}

impl NetConfig {
    pub fn new(exec: ExecConfig, worker_cmd: Vec<String>) -> NetConfig {
        NetConfig {
            exec,
            worker_cmd,
            handshake_timeout: Duration::from_secs(30),
        }
    }
}

/// Whether loopback TCP works in this environment (sandboxes sometimes
/// deny even 127.0.0.1 binds). CI uses this to skip the net suite
/// gracefully instead of failing it.
pub fn loopback_available() -> bool {
    TcpListener::bind(("127.0.0.1", 0)).is_ok()
}

// ---------------------------------------------------------------------
// Client-side transport
// ---------------------------------------------------------------------

/// [`Transport`] over loopback TCP: knows every worker's data port and
/// mints one [`TcpConn`] per client.
struct TcpTransport {
    ports: Vec<u16>,
}

impl Transport for TcpTransport {
    fn connect(&self, _client: u64) -> Box<dyn ClientConn> {
        Box::new(TcpConn::new(self.ports.clone(), None))
    }
}

/// One client's connections to the fleet, dialed lazily on first use so
/// a client that never touches a worker costs that worker nothing.
struct TcpConn {
    ports: Vec<u16>,
    streams: Vec<Option<TcpStream>>,
    /// Set on the control connection only: a worker that hangs during
    /// the shutdown drain should fail the run loudly, not wedge it.
    read_timeout: Option<Duration>,
}

impl TcpConn {
    fn new(ports: Vec<u16>, read_timeout: Option<Duration>) -> TcpConn {
        let n = ports.len();
        TcpConn {
            ports,
            streams: (0..n).map(|_| None).collect(),
            read_timeout,
        }
    }

    fn stream(&mut self, dst: ProcId) -> &mut TcpStream {
        let i = dst as usize;
        if self.streams[i].is_none() {
            let s = TcpStream::connect(("127.0.0.1", self.ports[i]))
                .expect("net: connect to worker data port");
            s.set_nodelay(true).expect("net: set NODELAY");
            s.set_read_timeout(self.read_timeout)
                .expect("net: set read timeout");
            self.streams[i] = Some(s);
        }
        self.streams[i].as_mut().unwrap()
    }
}

impl ClientConn for TcpConn {
    fn send(&mut self, dst: ProcId, env: &Envelope) {
        write_frame(self.stream(dst), &encode_envelope(env))
            .expect("net: worker connection lost mid-send");
    }

    fn recv_reply(&mut self, dst: ProcId) -> Reply {
        let body = read_frame(self.stream(dst))
            .expect("net: read reply frame")
            .expect("net: worker closed connection mid-request");
        match decode_reply(&body) {
            Ok(reply) => reply,
            Err(e) => panic!("net: malformed reply frame from worker {dst}: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Fleet lifecycle
// ---------------------------------------------------------------------

/// Kills the worker fleet if the run unwinds before the orderly
/// shutdown drain; disarmed once every child has been waited on.
struct FleetGuard {
    children: Vec<Child>,
    armed: bool,
}

impl FleetGuard {
    fn new() -> FleetGuard {
        FleetGuard {
            children: Vec::new(),
            armed: true,
        }
    }

    /// Wait for every child to exit cleanly (the success path).
    fn join(mut self) {
        self.armed = false;
        for child in &mut self.children {
            let status = child.wait().expect("net: wait for worker process");
            assert!(status.success(), "net: worker process exited with {status}");
        }
    }
}

impl Drop for FleetGuard {
    fn drop(&mut self) {
        if self.armed {
            for child in &mut self.children {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Spawn the fleet and collect the handshake: every worker's data port,
/// plus the rendezvous connections kept open as tethers.
fn spawn_fleet(
    cfg: &NetConfig,
    guard: &mut FleetGuard,
) -> Result<(Vec<u16>, Vec<TcpStream>), ExecError> {
    let procs = cfg.exec.procs;
    let rendezvous = TcpListener::bind(("127.0.0.1", 0)).expect("net: bind rendezvous listener");
    let parent_port = rendezvous
        .local_addr()
        .expect("net: rendezvous address")
        .port();

    let (bin, prefix) = cfg
        .worker_cmd
        .split_first()
        .expect("net: worker_cmd must name a binary");
    for p in 0..procs {
        let child = Command::new(bin)
            .args(prefix)
            .arg(p.to_string())
            .arg(parent_port.to_string())
            .arg(if cfg.exec.record { "1" } else { "0" })
            .arg(cfg.exec.protocol.name())
            .spawn()
            .unwrap_or_else(|e| panic!("net: spawn worker {p} ({bin}): {e}"));
        guard.children.push(child);
    }

    // Collector thread: accept and decode hellos; the main thread owns
    // the timeout so a half-arrived fleet turns into a typed error.
    let (htx, hrx) = mpsc::channel();
    let collector = thread::Builder::new()
        .name("olden-net-rendezvous".into())
        .spawn(move || {
            for _ in 0..procs {
                let Ok((mut conn, _)) = rendezvous.accept() else {
                    return;
                };
                let hello = match read_frame(&mut conn) {
                    Ok(Some(body)) => body,
                    _ => return,
                };
                let Ok((proc, port)) = decode_hello(&hello) else {
                    return;
                };
                if htx.send((proc, port, conn)).is_err() {
                    return;
                }
            }
        })
        .expect("net: spawn rendezvous thread");

    let mut ports = vec![0u16; procs];
    let mut seen = vec![false; procs];
    let mut tethers = Vec::with_capacity(procs);
    for arrived in 0..procs {
        match hrx.recv_timeout(cfg.handshake_timeout) {
            Ok((proc, port, conn)) => {
                let pi = proc as usize;
                if pi >= procs || seen[pi] {
                    return Err(ExecError::Stalled {
                        dump: format!(
                            "net handshake: bogus or duplicate worker id {proc} (fleet of {procs})"
                        ),
                    });
                }
                seen[pi] = true;
                ports[pi] = port;
                tethers.push(conn);
            }
            Err(_) => {
                return Err(ExecError::Stalled {
                    dump: format!(
                        "net handshake: only {arrived}/{procs} workers reported within {:?}",
                        cfg.handshake_timeout
                    ),
                });
            }
        }
    }
    collector.join().expect("net: rendezvous thread");
    Ok((ports, tethers))
}

// ---------------------------------------------------------------------
// Run entry points
// ---------------------------------------------------------------------

/// How long the shutdown drain waits on each worker's report before
/// declaring it hung. Generous: a worker only has to serialize its
/// report, but a recorded lane can be large and CI machines are slow.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Run `program` against a fleet of worker processes. The typed-error
/// twin of [`run_net`], mirroring `olden_exec::try_run_exec` — same
/// `(value, report)` on success, same `Starved` / `Stalled` surface
/// when a fault plan or a wedged fleet stops the run.
pub fn try_run_net<T, F>(cfg: NetConfig, program: F) -> Result<(T, ExecReport), ExecError>
where
    T: Send + 'static,
    F: FnOnce(&mut ExecCtx) -> T + Send + 'static,
{
    assert!(cfg.exec.procs >= 1 && cfg.exec.procs <= MAX_PROCS);
    let procs = cfg.exec.procs;

    let mut guard = FleetGuard::new();
    let (ports, tethers) = spawn_fleet(&cfg, &mut guard)?;
    let pids: Vec<u32> = guard.children.iter().map(|c| c.id()).collect();

    let progress = Arc::new(AtomicU64::new(0));
    let counters = Arc::new(TransportCounters::default());
    let shared = Arc::new(Shared::new(
        &cfg.exec,
        Arc::new(TcpTransport {
            ports: ports.clone(),
        }),
        Arc::clone(&counters),
        Arc::clone(&progress),
    ));

    let dump_shared = Arc::clone(&shared);
    let (value, client) = drive_root(
        &shared,
        cfg.exec.stall_timeout,
        move || {
            format!(
                "net backend: worker pids {pids:?}\n{}",
                dump_clients(&dump_shared)
            )
        },
        program,
    )?;

    // Deterministic shutdown in processor order, mirroring the thread
    // backend's drain: control envelopes bypass the fault layer but
    // still count as transport traffic, keeping the conservation law
    // exact. The control connection reads under a timeout so a hung
    // worker fails the run instead of wedging it.
    let mut control = TcpConn::new(ports, Some(DRAIN_TIMEOUT));
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(procs);
    for p in 0..procs {
        counters.sends.fetch_add(1, Ordering::Relaxed);
        control.send(
            p as ProcId,
            &Envelope {
                src: CONTROL_SRC,
                seq: 0,
                req: Request::Shutdown,
            },
        );
        reports.push(*control.recv_reply(p as ProcId).expect_report());
    }
    drop(control);
    drop(tethers);
    guard.join();

    // Receiver-side transport accounting lives in the worker processes
    // and travels home in the reports; sender-side counts accumulated
    // in this process. Splice them into one stats block before the
    // conservation self-check in `assemble_report`.
    let mut stats = counters.snapshot();
    stats.deliveries = reports.iter().map(|r| r.deliveries).sum();
    stats.dupes_suppressed = reports.iter().map(|r| r.dupes_suppressed).sum();
    let faults = counters.fault_log();
    Ok((
        value,
        assemble_report(&shared, client, reports, stats, faults),
    ))
}

/// Panicking convenience wrapper over [`try_run_net`].
pub fn run_net<T, F>(cfg: NetConfig, program: F) -> (T, ExecReport)
where
    T: Send + 'static,
    F: FnOnce(&mut ExecCtx) -> T + Send + 'static,
{
    match try_run_net(cfg, program) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}
