//! The worker half of the network backend: one OS process per simulated
//! processor, running the exact same [`olden_exec::worker::Worker`] loop
//! as the thread backend, fed by a [`NetWorkerPort`] instead of an
//! in-process mailbox.
//!
//! Process lifecycle:
//!
//! 1. Bind a data listener on `127.0.0.1:0` (kernel-assigned port).
//! 2. Dial the parent's rendezvous port and send a `Hello` frame naming
//!    this processor and the data port. The rendezvous connection is
//!    then kept open as a **tether**: a thread blocks reading it, and an
//!    EOF (parent exited, cleanly or not) terminates this process, so a
//!    crashed parent can never leak worker processes.
//! 3. Accept data connections. Each client holds one connection per
//!    worker, so a connection carries envelopes from exactly one `src`;
//!    a reader thread per connection decodes frames and funnels them
//!    into the single serve loop, registering the connection as the
//!    reply route for that `src` first.
//! 4. Run [`olden_exec::worker::Worker::serve`] until a `Shutdown`
//!    envelope arrives, then exit 0.
//!
//! The worker's [`TransportCounters`] and progress counter are
//! process-local throwaways — receiver-side accounting travels home in
//! the shutdown report (`deliveries` / `dupes_suppressed` fields), and
//! the parent's watchdog is driven by client-side progress alone.

use crate::wire::{decode_envelope, encode_reply, read_frame, write_frame};
use olden_exec::msg::{Envelope, Reply};
use olden_exec::worker::{Worker, WorkerSlot};
use olden_exec::{Protocol, TransportCounters, WorkerPort};
use olden_gptr::ProcId;
use olden_obs::Recorder;
use std::collections::HashMap;
use std::io::Read as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Reply routes: the latest connection each `src` sent an envelope on.
type Writers = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// [`WorkerPort`] over TCP: envelopes arrive via the per-connection
/// reader threads, replies go back on the connection the request came
/// in on.
pub struct NetWorkerPort {
    rx: Receiver<Envelope>,
    writers: Writers,
}

impl WorkerPort for NetWorkerPort {
    fn recv(&mut self) -> Option<Envelope> {
        self.rx.recv().ok()
    }

    fn reply(&mut self, dst: u64, reply: Reply) {
        let conn = {
            let writers = self.writers.lock().unwrap();
            writers.get(&dst).and_then(|c| c.try_clone().ok())
        };
        // A missing or dead route means the client is gone — the run has
        // already aborted, so the reply has no reader; drop it.
        if let Some(mut conn) = conn {
            let _ = write_frame(&mut conn, &encode_reply(&reply));
        }
    }
}

/// Decode envelopes off one client connection into the serve loop.
fn read_loop(mut conn: TcpStream, tx: Sender<Envelope>, writers: Writers) {
    loop {
        let body = match read_frame(&mut conn) {
            Ok(Some(body)) => body,
            // Clean or dirty close either way: this client connection is
            // done. The serve loop keeps running for the others.
            Ok(None) | Err(_) => return,
        };
        let env = match decode_envelope(&body) {
            Ok(env) => env,
            Err(e) => panic!("malformed envelope frame: {e}"),
        };
        // Register the reply route before handing the envelope over so
        // the serve loop can always answer it.
        if let Ok(back) = conn.try_clone() {
            writers.lock().unwrap().insert(env.src, back);
        }
        if tx.send(env).is_err() {
            return; // serve loop exited (shutdown)
        }
    }
}

/// Run one worker process to completion. Never returns: exits 0 after a
/// clean shutdown, or immediately when the parent's tether drops.
pub fn worker_main(proc: ProcId, parent_port: u16, record: bool, protocol: Protocol) -> ! {
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).expect("worker: bind loopback data listener");
    let port = listener
        .local_addr()
        .expect("worker: data listener address")
        .port();

    // Rendezvous: announce ourselves, then hold the connection as a
    // parent-death tether.
    let mut tether =
        TcpStream::connect(("127.0.0.1", parent_port)).expect("worker: dial parent rendezvous");
    write_frame(&mut tether, &crate::wire::encode_hello(proc, port))
        .expect("worker: send hello frame");
    {
        let mut tether = tether.try_clone().expect("worker: clone tether");
        thread::Builder::new()
            .name("olden-net-tether".into())
            .spawn(move || {
                // The parent never writes here; the read only completes
                // when the parent process is gone.
                let mut byte = [0u8; 1];
                let _ = tether.read(&mut byte);
                std::process::exit(0);
            })
            .expect("worker: spawn tether thread");
    }

    let (tx, rx) = mpsc::channel();
    let writers: Writers = Arc::default();
    {
        let writers = Arc::clone(&writers);
        thread::Builder::new()
            .name("olden-net-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    let Ok(conn) = conn else { continue };
                    let _ = conn.set_nodelay(true);
                    let tx = tx.clone();
                    let writers = Arc::clone(&writers);
                    thread::Builder::new()
                        .name("olden-net-read".into())
                        .spawn(move || read_loop(conn, tx, writers))
                        .expect("worker: spawn reader thread");
                }
            })
            .expect("worker: spawn accept thread");
    }

    // The slot / progress / counters instances are process-local: nobody
    // on this side reads them. The values that matter (deliveries,
    // dupes_suppressed, cache stats, races, lane) ship home inside the
    // shutdown report. The recorder epoch is likewise local — cross-lane
    // timestamp alignment is meaningless across processes, and the
    // parity surface compares (kind, phase, arg) only.
    let worker = Worker::new(
        proc,
        protocol,
        Arc::new(WorkerSlot::default()),
        Arc::new(AtomicU64::new(0)),
        Arc::new(TransportCounters::default()),
        record.then(|| Recorder::exec(Instant::now())),
    );
    worker.serve(NetWorkerPort { rx, writers });
    std::process::exit(0);
}
