//! Entry point for one network-backend worker process.
//!
//! Usage: `olden-net-worker <proc> <parent_port> <record:0|1> <protocol>`
//!
//! Spawned by the parent orchestrator (`olden_net::try_run_net`), never
//! run by hand; the argument list is the internal spawn protocol, not a
//! user interface. `oldenc` re-exports the same entry point as a hidden
//! `net-worker` subcommand so a single installed binary can serve as
//! both driver and fleet.

use olden_exec::Protocol;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 5 {
        eprintln!("usage: olden-net-worker <proc> <parent_port> <record:0|1> <protocol>");
        std::process::exit(2);
    }
    let proc: u8 = args[1].parse().expect("worker: <proc> must be a u8");
    let parent_port: u16 = args[2]
        .parse()
        .expect("worker: <parent_port> must be a u16");
    let record = match args[3].as_str() {
        "0" => false,
        "1" => true,
        other => panic!("worker: <record> must be 0 or 1, got {other:?}"),
    };
    let protocol = Protocol::from_name(&args[4])
        .unwrap_or_else(|| panic!("worker: unknown protocol {:?}", args[4]));
    olden_net::worker::worker_main(proc, parent_port, record, protocol);
}
