//! Hand-rolled wire format for the network backend.
//!
//! Everything on a socket is a **frame**: a little-endian `u32` byte
//! length followed by that many payload bytes. Three frame payloads
//! exist, each tied to a connection direction:
//!
//! | direction                | payload      | encoding entry point |
//! |--------------------------|--------------|----------------------|
//! | worker → parent (hello)  | `Hello`      | [`encode_hello`]     |
//! | client → worker          | [`Envelope`] | [`encode_envelope`]  |
//! | worker → client          | [`Reply`]    | [`encode_reply`]     |
//!
//! All integers are little-endian and fixed-width; variable-length
//! sequences carry an explicit count. Enum variants are a one-byte tag
//! in declaration order. There is no versioning and no self-description:
//! both endpoints are always built from the same source tree (the parent
//! spawns the worker binary itself), so a decode error is a bug, not a
//! compatibility case — decoding therefore returns `Err(String)` and the
//! caller treats it as fatal.
//!
//! The format follows the repo's zero-dependency convention: no serde,
//! no derive magic — each message type has an explicit `put_*`/`get_*`
//! pair, and the round-trip property tests in `tests/wire_roundtrip.rs`
//! cover every variant of every data-plane enum.

use olden_exec::msg::{ArrivalKind, Envelope, LineData, LookupReply, Reply, Request, WorkerReport};
use olden_gptr::{GPtr, ProcId, Word, LINE_WORDS};
use olden_obs::{Event, EventKind, Lane, Phase};
use olden_runtime::{RaceViolation, VClock};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;

/// Ceiling on a single frame's payload, far above anything the protocol
/// produces (the largest legitimate frame is a shutdown report carrying
/// a full event lane, well under a megabyte). A length prefix past this
/// means a corrupted stream; failing the read beats allocating garbage.
pub const MAX_FRAME: usize = 64 << 20;

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    assert!(body.len() <= MAX_FRAME, "oversized frame");
    let len = (body.len() as u32).to_le_bytes();
    stream.write_all(&len)?;
    stream.write_all(body)
}

/// Read one length-prefixed frame. An EOF cleanly between frames maps to
/// `Ok(None)`; anything else short is an error.
pub fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::other(format!(
            "frame length {n} exceeds MAX_FRAME"
        )));
    }
    let mut body = vec![0u8; n];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---------------------------------------------------------------------
// Cursor types
// ---------------------------------------------------------------------

/// Append-only encode cursor.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Checked decode cursor. Every read is bounds-checked; [`Reader::done`]
/// asserts the payload was consumed exactly.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("frame truncated at byte {} (wanted {n} more)", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }

    /// Assert the frame was consumed exactly — trailing bytes mean the
    /// two endpoints disagree about the format.
    pub fn done(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after a complete message",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Leaf encoders
// ---------------------------------------------------------------------

fn put_clock(w: &mut Writer, c: &VClock) {
    let comps = c.components();
    w.u16(comps.len() as u16);
    for &v in comps {
        w.u64(v);
    }
}

fn get_clock(r: &mut Reader) -> Result<VClock, String> {
    let n = r.u16()? as usize;
    let mut comps = Vec::with_capacity(n);
    for _ in 0..n {
        comps.push(r.u64()?);
    }
    Ok(VClock::from_components(comps))
}

fn put_opt_clock(w: &mut Writer, c: &Option<VClock>) {
    match c {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            put_clock(w, c);
        }
    }
}

fn get_opt_clock(r: &mut Reader) -> Result<Option<VClock>, String> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_clock(r)?)),
        b => Err(format!("bad Option tag {b}")),
    }
}

fn put_opt_word(w: &mut Writer, v: &Option<Word>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(v.0);
        }
    }
}

fn get_opt_word(r: &mut Reader) -> Result<Option<Word>, String> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Word(r.u64()?))),
        b => Err(format!("bad Option tag {b}")),
    }
}

fn put_line(w: &mut Writer, data: &LineData) {
    for word in data {
        w.u64(word.0);
    }
}

fn get_line(r: &mut Reader) -> Result<LineData, String> {
    let mut data = [Word::ZERO; LINE_WORDS];
    for word in &mut data {
        *word = Word(r.u64()?);
    }
    Ok(data)
}

fn put_procs(w: &mut Writer, procs: &[ProcId]) {
    w.u16(procs.len() as u16);
    for &p in procs {
        w.u8(p);
    }
}

fn get_procs(r: &mut Reader) -> Result<Vec<ProcId>, String> {
    let n = r.u16()? as usize;
    let mut procs = Vec::with_capacity(n);
    for _ in 0..n {
        procs.push(r.u8()?);
    }
    Ok(procs)
}

fn put_race(w: &mut Writer, v: &RaceViolation) {
    let (home, page, line) = v.line;
    w.u8(home);
    w.u64(page);
    w.u8(line);
    w.bool(v.write);
    w.bool(v.prev_write);
}

fn get_race(r: &mut Reader) -> Result<RaceViolation, String> {
    Ok(RaceViolation {
        line: (r.u8()?, r.u64()?, r.u8()?),
        write: r.bool()?,
        prev_write: r.bool()?,
    })
}

fn put_races(w: &mut Writer, races: &[RaceViolation]) {
    w.u32(races.len() as u32);
    for v in races {
        put_race(w, v);
    }
}

fn get_races(r: &mut Reader) -> Result<Vec<RaceViolation>, String> {
    let n = r.u32()? as usize;
    let mut races = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        races.push(get_race(r)?);
    }
    Ok(races)
}

fn put_event(w: &mut Writer, e: &Event) {
    w.u8(e.kind.index() as u8);
    w.u8(match e.phase {
        Phase::Begin => 0,
        Phase::End => 1,
        Phase::Instant => 2,
    });
    w.u8(e.proc);
    w.u64(e.ts);
    w.u64(e.arg);
}

fn get_event(r: &mut Reader) -> Result<Event, String> {
    let ki = r.u8()? as usize;
    let kind = *EventKind::ALL
        .get(ki)
        .ok_or_else(|| format!("bad EventKind index {ki}"))?;
    let phase = match r.u8()? {
        0 => Phase::Begin,
        1 => Phase::End,
        2 => Phase::Instant,
        b => return Err(format!("bad Phase tag {b}")),
    };
    Ok(Event {
        kind,
        phase,
        proc: r.u8()?,
        ts: r.u64()?,
        arg: r.u64()?,
    })
}

fn put_lane(w: &mut Writer, lane: &Lane) {
    let label = lane.label.as_bytes();
    w.u16(label.len() as u16);
    w.bytes(label);
    w.bool(lane.nanos);
    w.u64(lane.dropped);
    for kind in EventKind::ALL {
        w.u64(lane.count(kind));
    }
    w.u32(lane.events.len() as u32);
    for e in &lane.events {
        put_event(w, e);
    }
}

fn get_lane(r: &mut Reader) -> Result<Lane, String> {
    let ln = r.u16()? as usize;
    let label = String::from_utf8(r.take(ln)?.to_vec()).map_err(|e| e.to_string())?;
    let nanos = r.bool()?;
    let dropped = r.u64()?;
    let mut counts = [0u64; EventKind::ALL.len()];
    for c in &mut counts {
        *c = r.u64()?;
    }
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        events.push(get_event(r)?);
    }
    Ok(Lane::from_parts(label, nanos, events, dropped, counts))
}

// ---------------------------------------------------------------------
// Request / Reply / Envelope
// ---------------------------------------------------------------------

fn put_request(w: &mut Writer, req: &Request) {
    match req {
        Request::Alloc { words } => {
            w.u8(0);
            w.u64(*words as u64);
        }
        Request::ReadHome { local, clock } => {
            w.u8(1);
            w.u64(*local);
            put_opt_clock(w, clock);
        }
        Request::WriteHome {
            local,
            value,
            clock,
            track,
        } => {
            w.u8(2);
            w.u64(*local);
            w.u64(value.0);
            put_opt_clock(w, clock);
            w.bool(*track);
        }
        Request::LineFetchReq {
            page,
            line,
            requester,
            clock,
        } => {
            w.u8(3);
            w.u64(*page);
            w.u8(*line);
            w.u8(*requester);
            put_opt_clock(w, clock);
        }
        Request::SanitizeHit { page, line, clock } => {
            w.u8(4);
            w.u64(*page);
            w.u8(*line);
            put_clock(w, clock);
        }
        Request::RaceQuery => w.u8(5),
        Request::CacheLookup {
            home,
            page,
            line,
            word,
            write,
            wval,
            elide,
        } => {
            w.u8(6);
            w.u8(*home);
            w.u64(*page);
            w.u8(*line);
            w.u8(*word as u8);
            w.bool(*write);
            put_opt_word(w, wval);
            w.bool(*elide);
        }
        Request::CacheInstall {
            home,
            page,
            line,
            data,
            word,
            write,
            wval,
            ts,
        } => {
            w.u8(7);
            w.u8(*home);
            w.u64(*page);
            w.u8(*line);
            put_line(w, data);
            w.u8(*word as u8);
            w.bool(*write);
            put_opt_word(w, wval);
            w.u64(*ts);
        }
        Request::MigrateThread { arrival } => {
            w.u8(8);
            match arrival {
                ArrivalKind::Call => w.u8(0),
                ArrivalKind::Return(written) => {
                    w.u8(1);
                    put_procs(w, written);
                }
            }
        }
        Request::SharerQuery { page } => {
            w.u8(9);
            w.u64(*page);
        }
        Request::InvalidateLines { home, page, mask } => {
            w.u8(10);
            w.u8(*home);
            w.u64(*page);
            w.u32(*mask);
        }
        Request::BumpTs { pages } => {
            w.u8(11);
            w.u32(pages.len() as u32);
            for &p in pages {
                w.u64(p);
            }
        }
        Request::RevalQuery {
            page,
            line,
            validated_ts,
            clock,
        } => {
            w.u8(12);
            w.u64(*page);
            w.u8(*line);
            w.u64(*validated_ts);
            put_opt_clock(w, clock);
        }
        Request::RevalApply {
            home,
            page,
            line,
            ts,
            stale_mask,
            word,
            write,
            wval,
        } => {
            w.u8(13);
            w.u8(*home);
            w.u64(*page);
            w.u8(*line);
            w.u64(*ts);
            w.u32(*stale_mask);
            w.u8(*word as u8);
            w.bool(*write);
            put_opt_word(w, wval);
        }
        Request::Shutdown => w.u8(14),
    }
}

fn get_request(r: &mut Reader) -> Result<Request, String> {
    Ok(match r.u8()? {
        0 => Request::Alloc {
            words: r.u64()? as usize,
        },
        1 => Request::ReadHome {
            local: r.u64()?,
            clock: get_opt_clock(r)?,
        },
        2 => Request::WriteHome {
            local: r.u64()?,
            value: Word(r.u64()?),
            clock: get_opt_clock(r)?,
            track: r.bool()?,
        },
        3 => Request::LineFetchReq {
            page: r.u64()?,
            line: r.u8()?,
            requester: r.u8()?,
            clock: get_opt_clock(r)?,
        },
        4 => Request::SanitizeHit {
            page: r.u64()?,
            line: r.u8()?,
            clock: get_clock(r)?,
        },
        5 => Request::RaceQuery,
        6 => Request::CacheLookup {
            home: r.u8()?,
            page: r.u64()?,
            line: r.u8()?,
            word: r.u8()? as usize,
            write: r.bool()?,
            wval: get_opt_word(r)?,
            elide: r.bool()?,
        },
        7 => Request::CacheInstall {
            home: r.u8()?,
            page: r.u64()?,
            line: r.u8()?,
            data: get_line(r)?,
            word: r.u8()? as usize,
            write: r.bool()?,
            wval: get_opt_word(r)?,
            ts: r.u64()?,
        },
        8 => Request::MigrateThread {
            arrival: match r.u8()? {
                0 => ArrivalKind::Call,
                1 => ArrivalKind::Return(get_procs(r)?),
                b => return Err(format!("bad ArrivalKind tag {b}")),
            },
        },
        9 => Request::SharerQuery { page: r.u64()? },
        10 => Request::InvalidateLines {
            home: r.u8()?,
            page: r.u64()?,
            mask: r.u32()?,
        },
        11 => Request::BumpTs {
            pages: {
                let n = r.u32()? as usize;
                let mut pages = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    pages.push(r.u64()?);
                }
                pages
            },
        },
        12 => Request::RevalQuery {
            page: r.u64()?,
            line: r.u8()?,
            validated_ts: r.u64()?,
            clock: get_opt_clock(r)?,
        },
        13 => Request::RevalApply {
            home: r.u8()?,
            page: r.u64()?,
            line: r.u8()?,
            ts: r.u64()?,
            stale_mask: r.u32()?,
            word: r.u8()? as usize,
            write: r.bool()?,
            wval: get_opt_word(r)?,
        },
        14 => Request::Shutdown,
        b => return Err(format!("bad Request tag {b}")),
    })
}

fn put_report(w: &mut Writer, rep: &WorkerReport) {
    let c = &rep.cache;
    for v in [
        c.cacheable_reads,
        c.cacheable_writes,
        c.remote_reads,
        c.remote_writes,
        c.hits,
        c.misses,
        c.revalidations,
        c.invalidations_sent,
        c.invalidations_spurious,
        c.write_track_cycles,
        c.checks_performed,
        c.checks_elided,
    ] {
        w.u64(v);
    }
    w.u64(rep.pages_ever);
    w.u64(rep.words_allocated);
    w.u64(rep.served);
    w.u64(rep.deliveries);
    w.u64(rep.dupes_suppressed);
    put_races(w, &rep.races);
    match &rep.lane {
        None => w.u8(0),
        Some(lane) => {
            w.u8(1);
            put_lane(w, lane);
        }
    }
}

fn get_report(r: &mut Reader) -> Result<WorkerReport, String> {
    let cache = olden_cache::CacheStats {
        cacheable_reads: r.u64()?,
        cacheable_writes: r.u64()?,
        remote_reads: r.u64()?,
        remote_writes: r.u64()?,
        hits: r.u64()?,
        misses: r.u64()?,
        revalidations: r.u64()?,
        invalidations_sent: r.u64()?,
        invalidations_spurious: r.u64()?,
        write_track_cycles: r.u64()?,
        checks_performed: r.u64()?,
        checks_elided: r.u64()?,
    };
    Ok(WorkerReport {
        cache,
        pages_ever: r.u64()?,
        words_allocated: r.u64()?,
        served: r.u64()?,
        deliveries: r.u64()?,
        dupes_suppressed: r.u64()?,
        races: get_races(r)?,
        lane: match r.u8()? {
            0 => None,
            1 => Some(get_lane(r)?),
            b => return Err(format!("bad Option tag {b}")),
        },
    })
}

/// Encode a client→worker envelope frame payload.
pub fn encode_envelope(env: &Envelope) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(env.src);
    w.u64(env.seq);
    put_request(&mut w, &env.req);
    w.finish()
}

/// Decode a client→worker envelope frame payload.
pub fn decode_envelope(buf: &[u8]) -> Result<Envelope, String> {
    let mut r = Reader::new(buf);
    let env = Envelope {
        src: r.u64()?,
        seq: r.u64()?,
        req: get_request(&mut r)?,
    };
    r.done()?;
    Ok(env)
}

/// Encode a worker→client reply frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w = Writer::new();
    match reply {
        Reply::Ptr(p) => {
            w.u8(0);
            w.u64(p.bits());
        }
        Reply::Word(v) => {
            w.u8(1);
            w.u64(v.0);
        }
        Reply::Unit => w.u8(2),
        Reply::Line(data, ts) => {
            w.u8(3);
            put_line(&mut w, data);
            w.u64(*ts);
        }
        Reply::Races(races) => {
            w.u8(4);
            put_races(&mut w, races);
        }
        Reply::Lookup(l) => {
            w.u8(5);
            match l {
                LookupReply::Hit(v) => {
                    w.u8(0);
                    w.u64(v.0);
                }
                LookupReply::Miss => w.u8(1),
                LookupReply::ElidedHit(v) => {
                    w.u8(2);
                    w.u64(v.0);
                }
                LookupReply::RevalNeeded { validated_ts } => {
                    w.u8(3);
                    w.u64(*validated_ts);
                }
            }
        }
        Reply::Sharers(procs) => {
            w.u8(6);
            put_procs(&mut w, procs);
        }
        Reply::Reval { ts, stale_mask } => {
            w.u8(7);
            w.u64(*ts);
            w.u32(*stale_mask);
        }
        Reply::Report(rep) => {
            w.u8(8);
            put_report(&mut w, rep);
        }
    }
    w.finish()
}

/// Decode a worker→client reply frame payload.
pub fn decode_reply(buf: &[u8]) -> Result<Reply, String> {
    let mut r = Reader::new(buf);
    let reply = match r.u8()? {
        0 => Reply::Ptr(GPtr::from_bits(r.u64()?)),
        1 => Reply::Word(Word(r.u64()?)),
        2 => Reply::Unit,
        3 => {
            let data = get_line(&mut r)?;
            Reply::Line(data, r.u64()?)
        }
        4 => Reply::Races(get_races(&mut r)?),
        5 => Reply::Lookup(match r.u8()? {
            0 => LookupReply::Hit(Word(r.u64()?)),
            1 => LookupReply::Miss,
            2 => LookupReply::ElidedHit(Word(r.u64()?)),
            3 => LookupReply::RevalNeeded {
                validated_ts: r.u64()?,
            },
            b => return Err(format!("bad LookupReply tag {b}")),
        }),
        6 => Reply::Sharers(get_procs(&mut r)?),
        7 => Reply::Reval {
            ts: r.u64()?,
            stale_mask: r.u32()?,
        },
        8 => Reply::Report(Box::new(get_report(&mut r)?)),
        b => return Err(format!("bad Reply tag {b}")),
    };
    r.done()?;
    Ok(reply)
}

/// Encode the worker's handshake announcement: which processor it is and
/// the loopback port its data listener accepted.
pub fn encode_hello(proc: ProcId, port: u16) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(proc);
    w.u16(port);
    w.finish()
}

/// Decode a handshake announcement.
pub fn decode_hello(buf: &[u8]) -> Result<(ProcId, u16), String> {
    let mut r = Reader::new(buf);
    let hello = (r.u8()?, r.u16()?);
    r.done()?;
    Ok(hello)
}
