//! Serialization round-trip property tests: every variant of every
//! data-plane enum survives `decode(encode(x)) == x` across seeded
//! random instances, including the boundary shapes the protocol leans
//! on — max-size line payloads, page-straddling fetches, clocks with
//! zero and `MAX_PROCS` components, reports carrying full event lanes.
//!
//! Randomness comes from `olden-rng`'s SplitMix64 with fixed seeds, so a
//! failure names a reproducible instance.

use olden_exec::msg::{
    ArrivalKind, Envelope, LookupReply, Reply, Request, WorkerReport, CONTROL_SRC,
};
use olden_gptr::{GPtr, Word, LINES_PER_PAGE, LINE_WORDS, LOCAL_MASK, MAX_PROCS};
use olden_net::wire::{
    decode_envelope, decode_hello, decode_reply, encode_envelope, encode_hello, encode_reply,
};
use olden_obs::{Event, EventKind, Lane, Phase, Recorder};
use olden_rng::SplitMix64;
use olden_runtime::{RaceViolation, VClock};

const TRIALS: usize = 200;

fn rt_env(env: &Envelope) -> Envelope {
    decode_envelope(&encode_envelope(env)).expect("envelope decodes")
}

fn rt_reply(reply: &Reply) -> Reply {
    decode_reply(&encode_reply(reply)).expect("reply decodes")
}

fn check_env(env: Envelope) {
    assert_eq!(rt_env(&env), env, "envelope round trip");
}

fn check_reply(reply: Reply) {
    assert_eq!(rt_reply(&reply), reply, "reply round trip");
}

fn rand_clock(rng: &mut SplitMix64) -> VClock {
    let n = rng.range(0, MAX_PROCS + 1);
    VClock::from_components((0..n).map(|_| rng.next_u64()).collect())
}

fn rand_opt_clock(rng: &mut SplitMix64) -> Option<VClock> {
    rng.chance(0.5).then(|| rand_clock(rng))
}

fn rand_line(rng: &mut SplitMix64) -> [Word; LINE_WORDS] {
    let mut data = [Word::ZERO; LINE_WORDS];
    for w in &mut data {
        *w = Word(rng.next_u64());
    }
    data
}

fn rand_race(rng: &mut SplitMix64) -> RaceViolation {
    RaceViolation {
        line: (
            rng.below(256) as u8,
            rng.next_u64(),
            rng.below(LINES_PER_PAGE as u64) as u8,
        ),
        write: rng.chance(0.5),
        prev_write: rng.chance(0.5),
    }
}

fn envelope(req: Request, rng: &mut SplitMix64) -> Envelope {
    // `req` first: its construction draws from the same rng the envelope
    // header does, so it must be fully built before the header borrow.
    Envelope {
        src: rng.next_u64(),
        seq: rng.next_u64(),
        req,
    }
}

#[test]
fn every_request_variant_round_trips() {
    let mut rng = SplitMix64::new(0x0522_1995);
    for _ in 0..TRIALS {
        check_env(envelope(
            Request::Alloc {
                words: rng.next_u64() as usize,
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::ReadHome {
                local: rng.next_u64() & LOCAL_MASK,
                clock: rand_opt_clock(&mut rng),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::WriteHome {
                local: rng.next_u64() & LOCAL_MASK,
                value: Word(rng.next_u64()),
                clock: rand_opt_clock(&mut rng),
                track: rng.chance(0.5),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::LineFetchReq {
                page: rng.next_u64(),
                line: rng.below(LINES_PER_PAGE as u64) as u8,
                requester: rng.below(256) as u8,
                clock: rand_opt_clock(&mut rng),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::SanitizeHit {
                page: rng.next_u64(),
                line: rng.below(LINES_PER_PAGE as u64) as u8,
                clock: rand_clock(&mut rng),
            },
            &mut rng,
        ));
        check_env(envelope(Request::RaceQuery, &mut rng));
        check_env(envelope(
            Request::CacheLookup {
                home: rng.below(256) as u8,
                page: rng.next_u64(),
                line: rng.below(LINES_PER_PAGE as u64) as u8,
                word: rng.range(0, LINE_WORDS),
                write: rng.chance(0.5),
                wval: rng.chance(0.5).then(|| Word(rng.next_u64())),
                elide: rng.chance(0.5),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::CacheInstall {
                home: rng.below(256) as u8,
                page: rng.next_u64(),
                line: rng.below(LINES_PER_PAGE as u64) as u8,
                data: rand_line(&mut rng),
                word: rng.range(0, LINE_WORDS),
                write: rng.chance(0.5),
                wval: rng.chance(0.5).then(|| Word(rng.next_u64())),
                ts: rng.next_u64(),
            },
            &mut rng,
        ));
        let arrival = if rng.chance(0.5) {
            ArrivalKind::Call
        } else {
            let n = rng.range(0, MAX_PROCS + 1);
            ArrivalKind::Return((0..n).map(|_| rng.below(256) as u8).collect())
        };
        check_env(envelope(Request::MigrateThread { arrival }, &mut rng));
        check_env(envelope(
            Request::SharerQuery {
                page: rng.next_u64(),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::InvalidateLines {
                home: rng.below(256) as u8,
                page: rng.next_u64(),
                mask: rng.next_u64() as u32,
            },
            &mut rng,
        ));
        let n = rng.range(0, 32);
        check_env(envelope(
            Request::BumpTs {
                pages: (0..n).map(|_| rng.next_u64()).collect(),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::RevalQuery {
                page: rng.next_u64(),
                line: rng.below(LINES_PER_PAGE as u64) as u8,
                validated_ts: rng.next_u64(),
                clock: rand_opt_clock(&mut rng),
            },
            &mut rng,
        ));
        check_env(envelope(
            Request::RevalApply {
                home: rng.below(256) as u8,
                page: rng.next_u64(),
                line: rng.below(LINES_PER_PAGE as u64) as u8,
                ts: rng.next_u64(),
                stale_mask: rng.next_u64() as u32,
                word: rng.range(0, LINE_WORDS),
                write: rng.chance(0.5),
                wval: rng.chance(0.5).then(|| Word(rng.next_u64())),
            },
            &mut rng,
        ));
        check_env(Envelope {
            src: CONTROL_SRC,
            seq: 0,
            req: Request::Shutdown,
        });
    }
}

#[test]
fn every_reply_variant_round_trips() {
    let mut rng = SplitMix64::new(0x6f6c_64656e);
    for _ in 0..TRIALS {
        let (proc, local) = (
            rng.below(MAX_PROCS as u64) as u8,
            rng.next_u64() & LOCAL_MASK,
        );
        check_reply(Reply::Ptr(GPtr::new(proc, local)));
        check_reply(Reply::Word(Word(rng.next_u64())));
        check_reply(Reply::Unit);
        check_reply(Reply::Line(rand_line(&mut rng), rng.next_u64()));
        let n = rng.range(0, 64);
        check_reply(Reply::Races((0..n).map(|_| rand_race(&mut rng)).collect()));
        check_reply(Reply::Lookup(match rng.below(4) {
            0 => LookupReply::Hit(Word(rng.next_u64())),
            1 => LookupReply::Miss,
            2 => LookupReply::ElidedHit(Word(rng.next_u64())),
            _ => LookupReply::RevalNeeded {
                validated_ts: rng.next_u64(),
            },
        }));
        let n = rng.range(0, MAX_PROCS + 1);
        check_reply(Reply::Sharers(
            (0..n).map(|_| rng.below(256) as u8).collect(),
        ));
        check_reply(Reply::Reval {
            ts: rng.next_u64(),
            stale_mask: rng.next_u64() as u32,
        });
    }
}

/// A cache line whose every word is at the extremes of the encoding:
/// the largest frame the data plane produces per direction.
#[test]
fn max_size_line_payloads_round_trip() {
    let full = [Word(u64::MAX); LINE_WORDS];
    check_reply(Reply::Line(full, u64::MAX));
    check_env(Envelope {
        src: u64::MAX - 1,
        seq: u64::MAX,
        req: Request::CacheInstall {
            home: u8::MAX,
            page: u64::MAX,
            line: (LINES_PER_PAGE - 1) as u8,
            data: full,
            word: LINE_WORDS - 1,
            write: true,
            wval: Some(Word(u64::MAX)),
            ts: u64::MAX,
        },
    });
}

/// Fetches that walk across a page boundary — last line of page `p`,
/// then line 0 of page `p + 1` — keep their distinct (page, line)
/// coordinates through the wire; a packing bug that shared bits between
/// the fields would collapse them.
#[test]
fn page_straddling_fetches_round_trip() {
    let mut rng = SplitMix64::new(42);
    for _ in 0..TRIALS {
        let page = rng.next_u64() & (LOCAL_MASK >> 8);
        let before = Envelope {
            src: 7,
            seq: 1,
            req: Request::LineFetchReq {
                page,
                line: (LINES_PER_PAGE - 1) as u8,
                requester: 7,
                clock: None,
            },
        };
        let after = Envelope {
            src: 7,
            seq: 2,
            req: Request::LineFetchReq {
                page: page + 1,
                line: 0,
                requester: 7,
                clock: None,
            },
        };
        let (b, a) = (rt_env(&before), rt_env(&after));
        assert_eq!(b, before);
        assert_eq!(a, after);
        match (b.req, a.req) {
            (
                Request::LineFetchReq {
                    page: bp, line: bl, ..
                },
                Request::LineFetchReq {
                    page: ap, line: al, ..
                },
            ) => {
                assert_eq!((bp, bl), (page, (LINES_PER_PAGE - 1) as u8));
                assert_eq!((ap, al), (page + 1, 0));
            }
            other => panic!("variant changed in flight: {other:?}"),
        }
    }
}

fn rand_lane(rng: &mut SplitMix64, label: &str) -> Lane {
    let kinds = EventKind::ALL;
    let n = rng.range(0, 512);
    let mut counts = [0u64; 10];
    let events: Vec<Event> = (0..n)
        .map(|_| {
            let kind = kinds[rng.range(0, kinds.len())];
            counts[kind.index()] += 1;
            Event {
                kind,
                phase: match rng.below(3) {
                    0 => Phase::Begin,
                    1 => Phase::End,
                    _ => Phase::Instant,
                },
                proc: rng.below(256) as u8,
                ts: rng.next_u64(),
                arg: rng.next_u64(),
            }
        })
        .collect();
    Lane::from_parts(
        label.to_string(),
        rng.chance(0.5),
        events,
        rng.below(1 << 20),
        counts,
    )
}

#[test]
fn shutdown_reports_round_trip_with_and_without_lanes() {
    let mut rng = SplitMix64::new(0xdead_beef);
    for trial in 0..64 {
        let mut rep = WorkerReport::default();
        rep.cache.hits = rng.next_u64();
        rep.cache.misses = rng.next_u64();
        rep.cache.remote_reads = rng.next_u64();
        rep.cache.remote_writes = rng.next_u64();
        rep.cache.revalidations = rng.next_u64();
        rep.cache.invalidations_sent = rng.next_u64();
        rep.cache.invalidations_spurious = rng.next_u64();
        rep.cache.write_track_cycles = rng.next_u64();
        rep.cache.checks_performed = rng.next_u64();
        rep.cache.checks_elided = rng.next_u64();
        rep.cache.cacheable_reads = rng.next_u64();
        rep.cache.cacheable_writes = rng.next_u64();
        rep.pages_ever = rng.next_u64();
        rep.words_allocated = rng.next_u64();
        rep.served = rng.next_u64();
        rep.deliveries = rng.next_u64();
        rep.dupes_suppressed = rng.next_u64();
        rep.races = (0..rng.range(0, 16)).map(|_| rand_race(&mut rng)).collect();
        rep.lane = rng
            .chance(0.5)
            .then(|| rand_lane(&mut rng, &format!("worker{trial:02}")));
        check_reply(Reply::Report(Box::new(rep)));
    }
}

/// A lane built by a real `Recorder` (not synthesized parts) survives
/// the wire with its per-kind counts intact.
#[test]
fn recorder_lane_round_trips_exactly() {
    let mut rec = Recorder::sim();
    rec.begin(EventKind::FutureBody, 3, 17);
    rec.end(EventKind::FutureBody, 3);
    rec.instant(EventKind::Invalidate, 1, 9);
    let lane = rec.into_lane("worker03".into());
    let mut rep = WorkerReport {
        lane: Some(lane.clone()),
        ..WorkerReport::default()
    };
    rep.served = 3;
    let back = rt_reply(&Reply::Report(Box::new(rep)));
    let rep = match back {
        Reply::Report(r) => r,
        other => panic!("expected report, got {other:?}"),
    };
    let got = rep.lane.expect("lane survives");
    assert_eq!(got, lane);
    for kind in EventKind::ALL {
        assert_eq!(got.count(kind), lane.count(kind), "{kind:?} count");
    }
}

#[test]
fn hello_round_trips() {
    for proc in [0u8, 1, 127, 255] {
        for port in [1u16, 1024, 54321, u16::MAX] {
            let buf = encode_hello(proc, port);
            assert_eq!(decode_hello(&buf).unwrap(), (proc, port));
        }
    }
}

/// Truncated and trailing-garbage frames are rejected, never misread.
#[test]
fn corrupt_frames_are_rejected() {
    let env = Envelope {
        src: 3,
        seq: 9,
        req: Request::Alloc { words: 5 },
    };
    let good = encode_envelope(&env);
    for cut in 0..good.len() {
        assert!(
            decode_envelope(&good[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    let mut padded = good.clone();
    padded.push(0);
    assert!(
        decode_envelope(&padded).is_err(),
        "trailing bytes must fail"
    );
    assert!(decode_reply(&[99]).is_err(), "unknown reply tag must fail");
    assert!(decode_envelope(&[]).is_err(), "empty frame must fail");
}
