//! The network backend's tentpole gate: real worker *processes* over
//! real loopback sockets are observationally identical to the simulator.
//!
//! - **Lockstep counter equality, all ten benchmarks** — values equal
//!   the serial references and every runtime / cache counter equals the
//!   simulator's, exactly as the thread backend's `backend_parity`
//!   suite pins, but with every remote word crossing a TCP frame
//!   between OS processes.
//! - **Chaos over real sockets** — ≥ 25 seeded fault schedules replayed
//!   over the socket transport are byte-equal to the fault-free
//!   simulator in values, stats, and cache counters, with transport
//!   conservation intact. Verdicts are sender-side, so TCP's
//!   reliability and the fault model compose instead of fighting.
//! - The sanitizer's piggybacked vector clocks and the obs recording
//!   both survive serialization end-to-end.
//!
//! Every test skips (loudly) when the sandbox denies loopback TCP.

use olden_benchmarks::{all, generic_run, SizeClass};
use olden_exec::{run_exec, ExecConfig, ExecReport, Protocol};
use olden_net::{loopback_available, run_net, NetConfig};
use olden_obs::EventKind;
use olden_runtime::{Config, FaultTag, OldenCtx, RunStats, TransportStats};

const PROCS: usize = 4;

/// 13 seeds on each of two benchmarks = 26 socket chaos schedules.
const CHAOS_SEEDS: u64 = 13;

fn net_cfg(exec: ExecConfig) -> NetConfig {
    NetConfig::new(
        exec,
        vec![env!("CARGO_BIN_EXE_olden-net-worker").to_string()],
    )
}

fn net_with(name: &'static str, exec: ExecConfig) -> (u64, ExecReport) {
    run_net(net_cfg(exec), move |ctx| {
        generic_run(name, ctx, SizeClass::Tiny).expect("known benchmark")
    })
}

macro_rules! require_loopback {
    () => {
        if !loopback_available() {
            eprintln!("SKIP: loopback TCP unavailable in this environment");
            return;
        }
    };
}

/// Every benchmark: reference value and full counter parity with the
/// simulator, across four worker processes.
#[test]
fn all_benchmark_counters_reconcile_with_simulator_over_tcp() {
    require_loopback!();
    for d in all() {
        let expected = (d.reference)(SizeClass::Tiny);
        let mut sim = OldenCtx::new(Config::olden(PROCS));
        let sim_val = generic_run(d.name, &mut sim, SizeClass::Tiny).unwrap();
        let (got, rep) = net_with(d.name, ExecConfig::lockstep(PROCS));
        assert_eq!(
            got, expected,
            "{} value on {PROCS} worker processes",
            d.name
        );
        assert_eq!(got, sim_val, "{} value vs simulator", d.name);
        assert_eq!(rep.stats, *sim.stats(), "{} runtime counters", d.name);
        let sc = sim.cache().stats();
        assert_eq!(
            (rep.cache.cacheable_reads, rep.cache.cacheable_writes),
            (sc.cacheable_reads, sc.cacheable_writes),
            "{} cacheable totals",
            d.name
        );
        assert_eq!(
            (rep.cache.remote_reads, rep.cache.remote_writes),
            (sc.remote_reads, sc.remote_writes),
            "{} remote traffic",
            d.name
        );
        assert_eq!(
            (rep.cache.hits, rep.cache.misses),
            (sc.hits, sc.misses),
            "{} hit/miss",
            d.name
        );
        assert_eq!(
            rep.pages_cached,
            sim.cache().pages_cached(),
            "{} pages cached",
            d.name
        );
        assert!(rep.messages > 0, "{} exchanged no frames", d.name);
        assert_eq!(
            rep.transport,
            TransportStats {
                sends: rep.messages,
                deliveries: rep.messages,
                ..TransportStats::default()
            },
            "{} quiet socket transport is perfect",
            d.name
        );
    }
}

/// Every benchmark under every Appendix-A coherence scheme: the pushed
/// invalidations, timestamp bumps, and revalidation round trips cross
/// real TCP frames (the `<protocol>` argument travels to each worker
/// process on its command line), and the full cache-counter block —
/// including the scheme-specific Table-3 columns — still equals the
/// simulator's.
#[test]
fn every_scheme_reconciles_with_simulator_over_tcp() {
    require_loopback!();
    for protocol in [Protocol::GlobalKnowledge, Protocol::Bilateral] {
        for d in all() {
            let mut sim = OldenCtx::new(Config::olden(PROCS).with_protocol(protocol));
            let sim_val = generic_run(d.name, &mut sim, SizeClass::Tiny).unwrap();
            let (got, rep) = net_with(d.name, ExecConfig::lockstep(PROCS).with_protocol(protocol));
            assert_eq!(got, sim_val, "{} value under {protocol:?}", d.name);
            assert_eq!(
                rep.stats,
                *sim.stats(),
                "{} runtime counters under {protocol:?}",
                d.name
            );
            assert_eq!(
                rep.cache,
                *sim.cache().stats(),
                "{} cache counters under {protocol:?}",
                d.name
            );
        }
    }
}

/// The observable fingerprint that must be invariant under fault
/// injection (mirrors the thread backend's chaos suite).
#[derive(PartialEq, Debug)]
struct Fingerprint {
    value: u64,
    stats: RunStats,
    cache: (u64, u64, u64, u64, u64, u64),
    pages_cached: u64,
    messages: u64,
}

impl Fingerprint {
    fn of(value: u64, rep: &ExecReport) -> Fingerprint {
        Fingerprint {
            value,
            stats: rep.stats,
            cache: (
                rep.cache.cacheable_reads,
                rep.cache.cacheable_writes,
                rep.cache.remote_reads,
                rep.cache.remote_writes,
                rep.cache.hits,
                rep.cache.misses,
            ),
            pages_cached: rep.pages_cached,
            messages: rep.messages,
        }
    }
}

fn chaos_over_sockets(name: &'static str) {
    // The fault-free simulator is the oracle; every seeded schedule over
    // real sockets must be indistinguishable from it.
    let mut sim = OldenCtx::new(Config::olden(PROCS));
    let sim_val = generic_run(name, &mut sim, SizeClass::Tiny).expect("known benchmark");
    let (base_val, base_rep) = net_with(name, ExecConfig::lockstep(PROCS));
    let base = Fingerprint::of(base_val, &base_rep);
    assert_eq!(base_val, sim_val, "{name}: fault-free net vs simulator");
    assert_eq!(base.stats, *sim.stats(), "{name}: fault-free counters");

    let mut injected = [0u64; 3];
    for seed in 0..CHAOS_SEEDS {
        let (val, rep) = net_with(name, ExecConfig::lockstep(PROCS).chaotic(seed));
        assert_eq!(
            Fingerprint::of(val, &rep),
            base,
            "{name} seed {seed}: faults on a real socket must be invisible above the transport"
        );
        assert_eq!(
            rep.faults.count(FaultTag::Dropped),
            rep.transport.drops,
            "{name} seed {seed}: drop accounting"
        );
        assert_eq!(
            rep.transport.retries, rep.transport.drops,
            "{name} seed {seed}: every drop was retried"
        );
        assert_eq!(
            rep.transport.sends,
            rep.transport.deliveries + rep.transport.drops,
            "{name} seed {seed}: sends conserved across process boundaries"
        );
        injected[0] += rep.faults.count(FaultTag::Dropped);
        injected[1] += rep.faults.count(FaultTag::Duplicated);
        injected[2] += rep.faults.count(FaultTag::DelayedDuplicate);
    }
    assert!(
        injected.iter().all(|&n| n > 0),
        "{name}: the sweep must inject every fault kind over sockets, got {injected:?}"
    );
}

#[test]
fn treeadd_survives_chaos_over_sockets() {
    require_loopback!();
    chaos_over_sockets("TreeAdd");
}

#[test]
fn power_survives_chaos_over_sockets() {
    require_loopback!();
    chaos_over_sockets("Power");
}

/// The sanitizer's vector clocks piggyback on every heap message; over
/// the socket transport they serialize, travel, and join exactly as in
/// process. Held to the labelled racy corpus: every racy seed is flagged
/// with detections byte-equal to the simulator's, every clean seed stays
/// silent — so neither dropped nor corrupted clocks can hide.
#[test]
fn sanitizer_clocks_survive_the_wire() {
    require_loopback!();
    use olden_benchmarks::racy::{run_seed, seeds};
    for seed in seeds() {
        let mut ctx = OldenCtx::new(Config::olden(PROCS).sanitized());
        run_seed(seed.name, &mut ctx).expect("known seed");
        let mut sim = ctx.race_violations();
        sim.sort();

        let name = seed.name;
        let (_, rep) = run_net(
            net_cfg(ExecConfig::lockstep(PROCS).sanitized()),
            move |ctx| {
                run_seed(name, ctx).expect("known seed");
            },
        );
        let mut net = rep.races;
        net.sort();
        assert_eq!(
            sim, net,
            "{}: lockstep detections over sockets must mirror the simulator",
            seed.name
        );
        assert_eq!(
            seed.racy,
            !net.is_empty(),
            "{}: detection flag must match the corpus label",
            seed.name
        );
    }
}

/// Obs recording round-trips through worker shutdown reports: the net
/// run produces the same per-kind event totals as the thread backend,
/// with one lane per worker process present by label.
#[test]
fn recording_lanes_cross_the_process_boundary() {
    require_loopback!();
    let (_, net_rep) = net_with("Power", ExecConfig::lockstep(PROCS).recorded());
    let (_, exec_rep) = run_exec(ExecConfig::lockstep(PROCS).recorded(), |ctx| {
        generic_run("Power", ctx, SizeClass::Tiny).expect("known benchmark")
    });
    let net_rec = net_rep.recording.expect("net run recorded");
    let exec_rec = exec_rep.recording.expect("exec run recorded");
    for p in 0..PROCS {
        let label = format!("worker{p:02}");
        assert!(
            net_rec.lanes.iter().any(|l| l.label == label),
            "lane {label} missing from the net recording"
        );
    }
    for kind in EventKind::ALL {
        assert_eq!(
            net_rec.count(kind),
            exec_rec.count(kind),
            "{kind:?} events across backends"
        );
    }
}

/// Parallel mode over processes: future bodies run on their own client
/// threads, each with its own socket fan-out; values still match the
/// references and the data-dependent counters still match the simulator.
#[test]
fn parallel_mode_values_hold_over_tcp() {
    require_loopback!();
    for name in ["TreeAdd", "Power"] {
        let d = olden_benchmarks::by_name(name).unwrap();
        let expected = (d.reference)(SizeClass::Tiny);
        let mut sim = OldenCtx::new(Config::olden(PROCS));
        generic_run(name, &mut sim, SizeClass::Tiny).unwrap();
        let (got, rep) = net_with(name, ExecConfig::parallel(PROCS));
        assert_eq!(got, expected, "{name} value in parallel mode over TCP");
        assert_eq!(
            rep.stats.migrations,
            sim.stats().migrations,
            "{name} migrations"
        );
        assert_eq!(rep.stats.steals, sim.stats().steals, "{name} steals");
        assert_eq!(rep.stats.futures, sim.stats().futures, "{name} futures");
        assert!(
            rep.clients > 1,
            "{name} parallel mode spawned client threads"
        );
    }
}
