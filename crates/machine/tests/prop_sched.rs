//! Property tests for the list-scheduler replay: random forests of
//! segments with random forward edges must always schedule, respect the
//! classic lower bounds, never beat the critical path, and be
//! deterministic.

use olden_machine::sched::{critical_path, makespan_lower_bound, schedule};
use olden_machine::trace::{EdgeKind, Trace};
use proptest::prelude::*;

/// Build a random trace: `n` segments over `procs` processors, with
/// forward-only edges (indices guarantee acyclicity).
fn trace_strategy() -> impl Strategy<Value = (Trace, usize)> {
    (2usize..40, 1usize..9).prop_flat_map(|(n, procs)| {
        let segs = prop::collection::vec((0..procs as u8, 0u64..1000), n);
        let edges = prop::collection::vec((0usize..n, 0usize..n, 0u64..600), 0..(2 * n));
        (segs, edges).prop_map(move |(segs, edges)| {
            let mut t = Trace::new();
            for (p, c) in segs {
                let s = t.new_segment(p);
                t.charge(s, c);
            }
            for (a, b, lat) in edges {
                let (a, b) = (a.min(b), a.max(b));
                if a != b {
                    t.add_edge(
                        olden_machine::SegId(a as u32),
                        olden_machine::SegId(b as u32),
                        lat,
                        EdgeKind::Seq,
                    );
                }
            }
            (t, procs)
        })
    })
}

proptest! {
    #[test]
    fn random_dags_schedule_within_bounds((t, procs) in trace_strategy()) {
        let s = schedule(&t, procs).expect("forward edges cannot cycle");
        prop_assert!(s.makespan >= makespan_lower_bound(&t, procs));
        prop_assert!(s.makespan >= critical_path(&t));
        // Never worse than fully serializing everything plus all edge
        // latencies.
        let serial: u64 = t.total_cost()
            + t.edges().iter().map(|e| e.latency).sum::<u64>();
        prop_assert!(s.makespan <= serial);
        // Work conservation.
        prop_assert_eq!(s.busy.iter().sum::<u64>(), t.total_cost());
        // Start/finish consistency and per-edge precedence.
        for (i, seg) in t.segments().iter().enumerate() {
            prop_assert_eq!(s.finish[i], s.start[i] + seg.cost);
        }
        for e in t.edges() {
            prop_assert!(
                s.start[e.to.index()] >= s.finish[e.from.index()] + e.latency,
                "edge precedence violated"
            );
        }
    }

    #[test]
    fn scheduling_is_deterministic((t, procs) in trace_strategy()) {
        let a = schedule(&t, procs).unwrap();
        let b = schedule(&t, procs).unwrap();
        prop_assert_eq!(a.start, b.start);
        prop_assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn more_processors_never_hurt((t, procs) in trace_strategy()) {
        // Graham anomalies can occur for list scheduling in general, but
        // our segments are *bound* to processors: adding processors the
        // trace never uses cannot change the schedule at all.
        let a = schedule(&t, procs).unwrap();
        let b = schedule(&t, procs + 3).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
    }
}
