//! Randomized tests for the list-scheduler replay: random forests of
//! segments with random forward edges must always schedule, respect the
//! classic lower bounds, never beat the critical path, and be
//! deterministic.

use olden_machine::sched::{critical_path, makespan_lower_bound, schedule};
use olden_machine::trace::{EdgeKind, Trace};
use olden_machine::SegId;
use olden_rng::SplitMix64;

/// Build a random trace: `n` segments over `procs` processors, with
/// forward-only edges (indices guarantee acyclicity).
fn random_trace(r: &mut SplitMix64) -> (Trace, usize) {
    let n = r.range(2, 40);
    let procs = r.range(1, 9);
    let mut t = Trace::new();
    for _ in 0..n {
        let s = t.new_segment(r.below(procs as u64) as u8);
        t.charge(s, r.below(1000));
    }
    for _ in 0..r.below(2 * n as u64) {
        let a = r.below(n as u64) as usize;
        let b = r.below(n as u64) as usize;
        let lat = r.below(600);
        let (a, b) = (a.min(b), a.max(b));
        if a != b {
            t.add_edge(SegId(a as u32), SegId(b as u32), lat, EdgeKind::Seq);
        }
    }
    (t, procs)
}

#[test]
fn random_dags_schedule_within_bounds() {
    let mut r = SplitMix64::new(0x5C4ED);
    for _ in 0..256 {
        let (t, procs) = random_trace(&mut r);
        let s = schedule(&t, procs).expect("forward edges cannot cycle");
        assert!(s.makespan >= makespan_lower_bound(&t, procs));
        assert!(s.makespan >= critical_path(&t));
        // Never worse than fully serializing everything plus all edge
        // latencies.
        let serial: u64 = t.total_cost() + t.edges().iter().map(|e| e.latency).sum::<u64>();
        assert!(s.makespan <= serial);
        // Work conservation.
        assert_eq!(s.busy.iter().sum::<u64>(), t.total_cost());
        // Start/finish consistency and per-edge precedence.
        for (i, seg) in t.segments().iter().enumerate() {
            assert_eq!(s.finish[i], s.start[i] + seg.cost);
        }
        for e in t.edges() {
            assert!(
                s.start[e.to.index()] >= s.finish[e.from.index()] + e.latency,
                "edge precedence violated"
            );
        }
        // Utilization is busy/makespan, clamped to [0, 1] per processor.
        for (p, u) in s.utilization().into_iter().enumerate() {
            assert!((0.0..=1.0).contains(&u), "utilization[{p}] = {u}");
        }
    }
}

#[test]
fn scheduling_is_deterministic() {
    let mut r = SplitMix64::new(0x5C4EE);
    for _ in 0..128 {
        let (t, procs) = random_trace(&mut r);
        let a = schedule(&t, procs).unwrap();
        let b = schedule(&t, procs).unwrap();
        assert_eq!(a.start, b.start);
        assert_eq!(a.makespan, b.makespan);
    }
}

#[test]
fn more_processors_never_hurt() {
    let mut r = SplitMix64::new(0x5C4EF);
    for _ in 0..128 {
        // Graham anomalies can occur for list scheduling in general, but
        // our segments are *bound* to processors: adding processors the
        // trace never uses cannot change the schedule at all.
        let (t, procs) = random_trace(&mut r);
        let a = schedule(&t, procs).unwrap();
        let b = schedule(&t, procs + 3).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }
}
