//! Simulated distributed-memory machine for the Olden reproduction.
//!
//! The paper's prototype ran on a Thinking Machines CM-5; its claims are
//! about *relative* communication costs (a thread migration costs about
//! seven times a remote cache-line fetch, §4 footnote 3) and the shape of
//! the resulting speedup curves. This crate replaces the CM-5 with a
//! deterministic cost-model simulator in two phases:
//!
//! 1. **Trace recording** ([`trace`]): while a benchmark executes
//!    (sequentially, with exact values), the runtime records *segments* —
//!    stretches of computation bound to one processor with an accumulated
//!    cycle cost — and *edges* between them: program order, thread
//!    migrations, procedure-return migrations, future steals, and touch
//!    joins.
//! 2. **Schedule replay** ([`sched`]): a deterministic Graham list
//!    scheduler executes the recorded DAG under the constraint that each
//!    processor runs one segment at a time, yielding the parallel makespan.
//!    `speedup(P) = T_seq / makespan(P)` where `T_seq` is the same
//!    algorithm costed under the no-overhead sequential model (matching the
//!    paper's "true sequential implementation" baseline, so one-processor
//!    speedups land below 1 exactly as in Table 2).
//!
//! Costs are expressed in abstract cycles; [`cost::CostModel`] holds the
//! CM-5-flavoured defaults and the sequential baseline variant.

pub mod clocks;
pub mod cost;
pub mod sched;
pub mod trace;

pub use clocks::{segment_clocks, VClock};
pub use cost::CostModel;
pub use sched::{Schedule, ScheduleError};
pub use trace::{EdgeKind, FaultEvent, FaultLog, FaultTag, SegId, Segment, Trace};

/// Number of processors in a simulated machine configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Processor count (the paper evaluates 1, 2, 4, 8, 16, 32).
    pub procs: usize,
    /// Cycle costs for every runtime operation.
    pub cost: CostModel,
}

impl MachineConfig {
    /// An Olden machine with `procs` processors and CM-5-flavoured costs.
    pub fn olden(procs: usize) -> MachineConfig {
        MachineConfig {
            procs,
            cost: CostModel::cm5(),
        }
    }

    /// The sequential baseline: one processor, no Olden overheads.
    pub fn sequential() -> MachineConfig {
        MachineConfig {
            procs: 1,
            cost: CostModel::sequential(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs() {
        let m = MachineConfig::olden(32);
        assert_eq!(m.procs, 32);
        assert!(m.cost.ptr_test > 0);
        let s = MachineConfig::sequential();
        assert_eq!(s.procs, 1);
        assert_eq!(s.cost.ptr_test, 0);
        assert_eq!(s.cost.future_spawn, 0);
    }
}
