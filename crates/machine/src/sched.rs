//! Deterministic list-scheduling replay of a recorded trace.
//!
//! Each segment is bound to one processor; a processor executes one segment
//! at a time. The scheduler is a discrete-event Graham list scheduler:
//! whenever a processor is free and has ready segments, it starts the one
//! with the smallest `(ready_time, segment id)` — segment ids increase in
//! recording order, so ties resolve to program order and the whole replay
//! is deterministic. Completion events release successor segments.
//!
//! The resulting makespan respects both classic lower bounds (asserted by
//! property tests): the critical path of the DAG and `total_work / P`
//! per-processor capacity (per processor, since segments are bound).

use crate::trace::{EdgeKind, SegId, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of replaying a trace on a machine.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start time of each segment (indexed by `SegId`).
    pub start: Vec<u64>,
    /// Finish time of each segment.
    pub finish: Vec<u64>,
    /// Total busy cycles per processor.
    pub busy: Vec<u64>,
    /// Completion time of the whole computation.
    pub makespan: u64,
}

impl Schedule {
    /// Per-processor utilization: `busy[p] / makespan`, in `[0, 1]`.
    /// All-zero when the makespan is zero (an empty trace).
    pub fn utilization(&self) -> Vec<f64> {
        self.busy
            .iter()
            .map(|&b| {
                if self.makespan == 0 {
                    0.0
                } else {
                    b as f64 / self.makespan as f64
                }
            })
            .collect()
    }

    /// The busy intervals of the replay as `(proc, start, finish)`
    /// triples, in segment (= program) order, zero-cost bookkeeping
    /// segments omitted. This is the observability layer's view of the
    /// schedule — `olden-obs` paints these onto its per-processor
    /// utilization timeline.
    pub fn proc_intervals(&self, trace: &Trace) -> Vec<(u8, u64, u64)> {
        trace
            .segments()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cost > 0)
            .map(|(i, s)| (s.proc, self.start[i], self.finish[i]))
            .collect()
    }
}

/// Replay failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A segment names a processor outside the machine configuration.
    ProcOutOfRange { seg: SegId, proc: u8, procs: usize },
    /// The dependency graph contains a cycle (a recording bug).
    Cycle { unscheduled: usize },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::ProcOutOfRange { seg, proc, procs } => write!(
                f,
                "segment {:?} bound to processor {} but machine has {}",
                seg, proc, procs
            ),
            ScheduleError::Cycle { unscheduled } => {
                write!(
                    f,
                    "dependency cycle: {} segments unschedulable",
                    unscheduled
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Replay `trace` on `procs` processors.
pub fn schedule(trace: &Trace, procs: usize) -> Result<Schedule, ScheduleError> {
    let n = trace.len();
    for (i, s) in trace.segments().iter().enumerate() {
        if (s.proc as usize) >= procs {
            return Err(ScheduleError::ProcOutOfRange {
                seg: SegId(i as u32),
                proc: s.proc,
                procs,
            });
        }
    }

    // Adjacency and in-degrees.
    let mut indeg = vec![0u32; n];
    let mut succ: Vec<Vec<(SegId, u64)>> = vec![Vec::new(); n];
    for e in trace.edges() {
        indeg[e.to.index()] += 1;
        succ[e.from.index()].push((e.to, e.latency));
    }

    // ready_at[i]: earliest start permitted by already-finished predecessors.
    let mut ready_at = vec![0u64; n];
    let mut start = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut busy = vec![0u64; procs];
    let mut avail = vec![0u64; procs];

    // Per-processor ready queues ordered by (ready_time, seg id).
    let mut ready: Vec<BinaryHeap<Reverse<(u64, u32)>>> =
        (0..procs).map(|_| BinaryHeap::new()).collect();
    // Global completion-event queue: (finish_time, seg id).
    let mut events: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    for (i, &deg) in indeg.iter().enumerate().take(n) {
        if deg == 0 {
            let p = trace.segments()[i].proc as usize;
            ready[p].push(Reverse((0, i as u32)));
        }
    }

    let mut scheduled = 0usize;
    let mut makespan = 0u64;

    loop {
        // Best start candidate across processors.
        let mut best: Option<(u64, u64, u32, usize)> = None; // (start, ready, seg, proc)
        for (p, q) in ready.iter().enumerate() {
            if let Some(&Reverse((r, seg))) = q.peek() {
                let st = r.max(avail[p]);
                let cand = (st, r, seg, p);
                if best.is_none_or(|b| (cand.0, cand.2) < (b.0, b.2)) {
                    best = Some(cand);
                }
            }
        }

        // Process completion events that occur strictly before the best
        // candidate start — they may release earlier-ready work.
        if let Some(&Reverse((t, seg))) = events.peek() {
            let flush = match best {
                Some((st, _, _, _)) => t <= st,
                None => true,
            };
            if flush {
                events.pop();
                let f = finish[seg as usize];
                debug_assert_eq!(f, t);
                for &(to, lat) in &succ[seg as usize] {
                    let i = to.index();
                    indeg[i] -= 1;
                    ready_at[i] = ready_at[i].max(f + lat);
                    if indeg[i] == 0 {
                        let p = trace.segments()[i].proc as usize;
                        ready[p].push(Reverse((ready_at[i], i as u32)));
                    }
                }
                continue;
            }
        }

        match best {
            Some((st, _r, seg, p)) => {
                ready[p].pop();
                let i = seg as usize;
                let cost = trace.segments()[i].cost;
                start[i] = st;
                finish[i] = st + cost;
                avail[p] = finish[i];
                busy[p] += cost;
                makespan = makespan.max(finish[i]);
                scheduled += 1;
                events.push(Reverse((finish[i], seg)));
            }
            None => {
                if events.is_empty() {
                    break;
                }
            }
        }
    }

    if scheduled != n {
        return Err(ScheduleError::Cycle {
            unscheduled: n - scheduled,
        });
    }

    Ok(Schedule {
        start,
        finish,
        busy,
        makespan,
    })
}

/// Length of the critical path of the DAG (infinite processors): a lower
/// bound on any makespan.
pub fn critical_path(trace: &Trace) -> u64 {
    let n = trace.len();
    let mut indeg = vec![0u32; n];
    let mut succ: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for e in trace.edges() {
        indeg[e.to.index()] += 1;
        succ[e.from.index()].push((e.to.index(), e.latency));
    }
    let mut finish = vec![0u64; n];
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut best = 0;
    let mut seen = 0usize;
    while let Some(i) = stack.pop() {
        seen += 1;
        let f = finish[i] + trace.segments()[i].cost;
        // finish[i] currently holds the earliest start; convert to finish.
        best = best.max(f);
        for &(j, lat) in &succ[i] {
            finish[j] = finish[j].max(f + lat);
            indeg[j] -= 1;
            if indeg[j] == 0 {
                stack.push(j);
            }
        }
    }
    assert_eq!(seen, n, "critical_path on cyclic trace");
    best
}

/// Per-processor total work: `makespan >= max_p busy[p]`.
pub fn per_proc_work(trace: &Trace, procs: usize) -> Vec<u64> {
    let mut w = vec![0u64; procs];
    for s in trace.segments() {
        w[s.proc as usize] += s.cost;
    }
    w
}

/// Convenience: makespan lower bound from work and critical path.
pub fn makespan_lower_bound(trace: &Trace, procs: usize) -> u64 {
    let cp = critical_path(trace);
    let per = per_proc_work(trace, procs).into_iter().max().unwrap_or(0);
    cp.max(per)
}

/// Count migrations of any kind for reporting.
pub fn migration_count(trace: &Trace) -> usize {
    trace.count_edges(EdgeKind::Migrate) + trace.count_edges(EdgeKind::Return)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EdgeKind;

    fn seg(t: &mut Trace, proc: u8, cost: u64) -> SegId {
        let s = t.new_segment(proc);
        t.charge(s, cost);
        s
    }

    #[test]
    fn single_segment() {
        let mut t = Trace::new();
        seg(&mut t, 0, 100);
        let s = schedule(&t, 1).unwrap();
        assert_eq!(s.makespan, 100);
        assert_eq!(s.busy, vec![100]);
        assert_eq!(s.utilization(), vec![1.0]);
    }

    #[test]
    fn utilization_reflects_idle_processors() {
        let mut t = Trace::new();
        seg(&mut t, 0, 100);
        seg(&mut t, 1, 50);
        let s = schedule(&t, 3).unwrap();
        let u = s.utilization();
        assert_eq!(u, vec![1.0, 0.5, 0.0]);
        // Empty trace: no division by zero.
        let e = schedule(&Trace::new(), 2).unwrap();
        assert_eq!(e.utilization(), vec![0.0, 0.0]);
    }

    #[test]
    fn chain_with_latency() {
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 100);
        let b = seg(&mut t, 1, 50);
        t.add_edge(a, b, 540, EdgeKind::Migrate);
        let s = schedule(&t, 2).unwrap();
        assert_eq!(s.start[b.index()], 640);
        assert_eq!(s.makespan, 690);
    }

    #[test]
    fn proc_intervals_cover_busy_segments_only() {
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 100);
        t.new_segment(1); // zero-cost bookkeeping segment: omitted
        let b = seg(&mut t, 1, 50);
        t.add_edge(a, b, 540, EdgeKind::Migrate);
        let s = schedule(&t, 2).unwrap();
        assert_eq!(s.proc_intervals(&t), vec![(0, 0, 100), (1, 640, 690)]);
    }

    #[test]
    fn independent_segments_run_in_parallel() {
        let mut t = Trace::new();
        seg(&mut t, 0, 100);
        seg(&mut t, 1, 100);
        let s = schedule(&t, 2).unwrap();
        assert_eq!(s.makespan, 100);
    }

    #[test]
    fn same_processor_serializes() {
        let mut t = Trace::new();
        seg(&mut t, 0, 100);
        seg(&mut t, 0, 100);
        let s = schedule(&t, 2).unwrap();
        assert_eq!(s.makespan, 200);
        assert_eq!(s.busy[0], 200);
        assert_eq!(s.busy[1], 0);
    }

    #[test]
    fn diamond_join_waits_for_both() {
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 10);
        let b = seg(&mut t, 1, 100);
        let c = seg(&mut t, 2, 30);
        let d = seg(&mut t, 0, 5);
        t.add_edge(a, b, 0, EdgeKind::Seq);
        t.add_edge(a, c, 0, EdgeKind::Steal);
        t.add_edge(b, d, 0, EdgeKind::Join);
        t.add_edge(c, d, 0, EdgeKind::Join);
        let s = schedule(&t, 3).unwrap();
        assert_eq!(s.start[d.index()], 110);
        assert_eq!(s.makespan, 115);
    }

    #[test]
    fn deterministic_tiebreak_by_segment_id() {
        // Two segments ready at the same instant on one processor run in
        // id (program) order.
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 10);
        let b = seg(&mut t, 0, 10);
        let s1 = schedule(&t, 1).unwrap();
        assert!(s1.start[a.index()] < s1.start[b.index()]);
    }

    #[test]
    fn proc_out_of_range_rejected() {
        let mut t = Trace::new();
        seg(&mut t, 3, 10);
        assert!(matches!(
            schedule(&t, 2),
            Err(ScheduleError::ProcOutOfRange { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 10);
        let b = seg(&mut t, 0, 10);
        t.add_edge(a, b, 0, EdgeKind::Seq);
        t.add_edge(b, a, 0, EdgeKind::Seq);
        assert!(matches!(schedule(&t, 1), Err(ScheduleError::Cycle { .. })));
    }

    #[test]
    fn critical_path_of_chain_and_fork() {
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 10);
        let b = seg(&mut t, 1, 20);
        let c = seg(&mut t, 2, 5);
        t.add_edge(a, b, 100, EdgeKind::Migrate);
        t.add_edge(a, c, 0, EdgeKind::Steal);
        assert_eq!(critical_path(&t), 130);
    }

    #[test]
    fn makespan_respects_lower_bounds() {
        let mut t = Trace::new();
        let a = seg(&mut t, 0, 17);
        let b = seg(&mut t, 1, 23);
        let c = seg(&mut t, 0, 11);
        let d = seg(&mut t, 1, 40);
        t.add_edge(a, b, 7, EdgeKind::Migrate);
        t.add_edge(a, c, 0, EdgeKind::Steal);
        t.add_edge(b, d, 0, EdgeKind::Seq);
        t.add_edge(c, d, 3, EdgeKind::Join);
        let s = schedule(&t, 2).unwrap();
        assert!(s.makespan >= makespan_lower_bound(&t, 2));
        assert_eq!(s.busy.iter().sum::<u64>(), t.total_cost());
    }

    #[test]
    fn busy_gap_ready_later_event_first() {
        // Processor 0 idles; an event at t=10 releases a segment ready
        // earlier than a queued one; event processing must come first.
        let mut t = Trace::new();
        let a = seg(&mut t, 1, 10);
        let b = seg(&mut t, 0, 5); // ready at 0 but starts after... no dep
        let c = seg(&mut t, 0, 5);
        t.add_edge(a, c, 0, EdgeKind::Migrate);
        // b ready at 0, c ready at 10: b should run first on proc 0.
        let s = schedule(&t, 2).unwrap();
        assert_eq!(s.start[b.index()], 0);
        assert_eq!(s.start[c.index()], 10);
        assert_eq!(s.makespan, 15);
    }
}
