//! Cycle-cost model of the simulated machine.
//!
//! The anchor is the paper's §4 footnote 3: "the cost of a migration is
//! about seven times that of a cache miss, the break-even path-affinity is
//! about 86%". We fix `miss_service = 420` cycles and make the end-to-end
//! migration cost exactly 7× that (2940 cycles, split between the sending
//! processor, the wire, and the receiving processor so that future stealing
//! frees the origin as soon as the send completes). Remaining constants are
//! plausible software-overhead figures for a CM-5-class active-message
//! runtime; only their ratios matter for the reproduced shapes.

/// Cycle costs charged by the runtime for each primitive operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Local-versus-remote pointer test inserted before every dereference
    /// (§3.1). Zero in the sequential baseline.
    pub ptr_test: u64,
    /// Actual local load/store once an address is resolved (charged in
    /// both the Olden and sequential models).
    pub local_ref: u64,
    /// Software cache table lookup on a cached dereference (hash + chain
    /// walk + tag translation, §3.2). Charged hit or miss.
    pub cache_lookup: u64,
    /// Round-trip service time for a line miss (request + 64-byte line
    /// reply), charged to the requesting thread.
    pub miss_service: u64,
    /// Extra cost of the write-through message on a cached remote write.
    pub write_through: u64,
    /// Migration: marshalling and sending registers + PC + frame, charged
    /// to the origin processor's segment.
    pub mig_send: u64,
    /// Migration: wire latency (neither processor busy).
    pub mig_wire: u64,
    /// Migration: unmarshalling on the destination processor.
    pub mig_recv: u64,
    /// Return-stub migration (no frame is sent back, §3.1): origin side.
    pub ret_send: u64,
    /// Return-stub migration: wire latency.
    pub ret_wire: u64,
    /// Return-stub migration: destination side.
    pub ret_recv: u64,
    /// Saving a futurecall continuation on the work list (§2).
    pub future_spawn: u64,
    /// Touch of an already-resolved future.
    pub touch: u64,
    /// Grabbing a continuation from the work list after a migration
    /// (future stealing).
    pub steal: u64,
    /// `ALLOC` library call.
    pub alloc: u64,
}

impl CostModel {
    /// CM-5-flavoured Olden costs. `migration_total() == 7 * miss_service`.
    pub const fn cm5() -> CostModel {
        CostModel {
            ptr_test: 3,
            local_ref: 2,
            cache_lookup: 18,
            miss_service: 420,
            write_through: 30,
            mig_send: 1200,
            mig_wire: 540,
            mig_recv: 1200,
            ret_send: 600,
            ret_wire: 300,
            ret_recv: 600,
            future_spawn: 12,
            touch: 6,
            steal: 60,
            alloc: 25,
        }
    }

    /// The "true sequential implementation" baseline of Table 2: the same
    /// algorithm with no pointer tests, no future bookkeeping, and no
    /// communication (everything is local on one processor).
    pub const fn sequential() -> CostModel {
        CostModel {
            ptr_test: 0,
            local_ref: 2,
            cache_lookup: 0,
            miss_service: 0,
            write_through: 0,
            mig_send: 0,
            mig_wire: 0,
            mig_recv: 0,
            ret_send: 0,
            ret_wire: 0,
            ret_recv: 0,
            future_spawn: 0,
            touch: 0,
            steal: 0,
            alloc: 25,
        }
    }

    /// End-to-end cost of one thread migration.
    pub const fn migration_total(&self) -> u64 {
        self.mig_send + self.mig_wire + self.mig_recv
    }

    /// End-to-end cost of one return migration.
    pub const fn return_total(&self) -> u64 {
        self.ret_send + self.ret_wire + self.ret_recv
    }

    /// End-to-end cost of one remote line fetch (lookup + miss service).
    pub const fn remote_fetch_total(&self) -> u64 {
        self.cache_lookup + self.miss_service
    }

    /// The break-even path-affinity between migrating and caching for a
    /// regular traversal (§4 footnote 3). Traversing one step of a path
    /// with affinity `a`: migration pays `(1-a) * migration_total`,
    /// caching pays roughly `(1-a) * remote_fetch_total / (1-a)`-free...
    /// concretely the paper equates one migration against the stream of
    /// remote fetches it converts to local references, giving a break-even
    /// at `1 - fetch/migration`. With the 7× ratio this is ≈ 0.857.
    pub fn breakeven_affinity(&self) -> f64 {
        1.0 - self.remote_fetch_total() as f64 / self.migration_total() as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::cm5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_is_seven_times_a_miss() {
        let c = CostModel::cm5();
        assert_eq!(c.migration_total(), 7 * c.miss_service);
    }

    #[test]
    fn breakeven_matches_paper_footnote() {
        // §4 footnote 3: "the break-even path-affinity is about 86%".
        let b = CostModel::cm5().breakeven_affinity();
        assert!((0.84..=0.88).contains(&b), "break-even {b} outside 84-88%");
    }

    #[test]
    fn sequential_model_has_no_olden_overhead() {
        let s = CostModel::sequential();
        assert_eq!(s.ptr_test, 0);
        assert_eq!(s.migration_total(), 0);
        assert_eq!(s.remote_fetch_total(), 0);
        assert_eq!(s.future_spawn + s.touch + s.steal, 0);
        // But it still performs real memory references and allocations.
        assert!(s.local_ref > 0);
        assert!(s.alloc > 0);
    }

    #[test]
    fn default_is_cm5() {
        assert_eq!(CostModel::default(), CostModel::cm5());
    }
}
