//! Vector clocks over execution traces: the happens-before half of
//! `olden-racecheck`.
//!
//! The release-consistency contract of Appendix A induces a
//! happens-before order on trace segments: every [`crate::trace::Edge`]
//! (program order, migration send→receipt, return stub, steal, touch
//! join) orders its endpoints, and happens-before is the transitive
//! closure. A [`VClock`] has one component per processor; the clock of a
//! segment is the component-wise join of its predecessors' clocks,
//! bumped on the segment's own processor:
//!
//! ```text
//! clock(seg) = join(clock(pred) for every edge pred → seg) ⊔ bump(seg.proc)
//! ```
//!
//! Two segments `a`, `b` are **HB-ordered** iff `clock(a) ≤ clock(b)` or
//! vice versa. The implication holds in one direction only: a path of
//! edges forces `≤`, but two unordered segments that happen to run on the
//! same processor can receive comparable clocks (each processor has a
//! single counter). The approximation is therefore conservative *toward*
//! happens-before: the dynamic sanitizer built on it never reports a
//! spurious race, which is exactly the direction the static-superset
//! cross-validation needs.

use crate::trace::{SegId, Trace};
use olden_gptr::ProcId;

/// A vector clock: one monotone counter per processor. Missing
/// components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    comps: Vec<u64>,
}

impl VClock {
    pub fn new() -> VClock {
        VClock::default()
    }

    /// Component for processor `p`.
    #[inline]
    pub fn get(&self, p: ProcId) -> u64 {
        self.comps.get(p as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, p: ProcId, v: u64) {
        let i = p as usize;
        if self.comps.len() <= i {
            self.comps.resize(i + 1, 0);
        }
        self.comps[i] = v;
    }

    /// Advance processor `p`'s component past `counter`'s current value
    /// and return the new per-processor tick. Callers thread one counter
    /// per processor (see [`segment_clocks`]).
    pub fn bump(&mut self, p: ProcId, counter: &mut u64) {
        *counter += 1;
        self.set(p, *counter);
    }

    /// Set processor `p`'s component to `tick`, which must not move it
    /// backwards. Online clock implementations (the thread backend) draw
    /// ticks from shared per-processor counters instead of threading a
    /// `&mut u64` through [`VClock::bump`].
    pub fn advance(&mut self, p: ProcId, tick: u64) {
        debug_assert!(tick >= self.get(p), "clocks are monotone");
        self.set(p, tick);
    }

    /// The raw component vector (for wire serialization); missing
    /// trailing components are zero.
    pub fn components(&self) -> &[u64] {
        &self.comps
    }

    /// Rebuild a clock from its raw components (the inverse of
    /// [`VClock::components`], used by the network backend's
    /// deserializer).
    pub fn from_components(comps: Vec<u64>) -> VClock {
        VClock { comps }
    }

    /// Component-wise maximum (the join of two histories).
    pub fn join(&mut self, other: &VClock) {
        if other.comps.len() > self.comps.len() {
            self.comps.resize(other.comps.len(), 0);
        }
        for (i, &v) in other.comps.iter().enumerate() {
            if v > self.comps[i] {
                self.comps[i] = v;
            }
        }
    }

    /// True if every component of `self` is ≤ the matching component of
    /// `other`: all events `self` has seen, `other` has seen too.
    pub fn leq(&self, other: &VClock) -> bool {
        self.comps
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.comps.get(i).copied().unwrap_or(0))
    }
}

/// Replay a recorded trace into one clock per segment.
///
/// Valid because segment ids are created in execution order and every
/// edge goes from a lower to a higher id, so ascending id order is a
/// topological order of the DAG.
pub fn segment_clocks(trace: &Trace) -> Vec<VClock> {
    let mut clocks: Vec<VClock> = vec![VClock::new(); trace.len()];
    // One tick counter per processor; each segment gets a fresh tick on
    // its own processor so distinct segments are distinguishable.
    let mut counters: Vec<u64> = Vec::new();
    for e in trace.edges() {
        debug_assert!(e.from < e.to, "trace edges must go forward");
    }
    for (i, seg) in trace.segments().iter().enumerate() {
        let id = SegId(i as u32);
        let mut c = VClock::new();
        for e in trace.edges().iter().filter(|e| e.to == id) {
            c.join(&clocks[e.from.index()]);
        }
        let p = seg.proc as usize;
        if counters.len() <= p {
            counters.resize(p + 1, 0);
        }
        c.bump(seg.proc, &mut counters[p]);
        clocks[i] = c;
    }
    clocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EdgeKind;

    #[test]
    fn clock_basics() {
        let mut a = VClock::new();
        let mut n0 = 0u64;
        let mut n1 = 0u64;
        a.bump(0, &mut n0);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(7), 0);
        let mut b = VClock::new();
        b.bump(1, &mut n1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        b.join(&a);
        assert!(a.leq(&b));
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn edges_order_segments() {
        // a --Migrate--> b --Return--> c ; a and d unordered.
        let mut t = Trace::new();
        let a = t.new_segment(0);
        let b = t.new_segment(1);
        let c = t.new_segment(0);
        let d = t.new_segment(2);
        t.add_edge(a, b, 0, EdgeKind::Migrate);
        t.add_edge(b, c, 0, EdgeKind::Return);
        let clocks = segment_clocks(&t);
        assert!(clocks[a.index()].leq(&clocks[b.index()]));
        assert!(clocks[a.index()].leq(&clocks[c.index()]));
        assert!(clocks[b.index()].leq(&clocks[c.index()]));
        assert!(!clocks[c.index()].leq(&clocks[a.index()]));
        assert!(!clocks[a.index()].leq(&clocks[d.index()]));
        assert!(!clocks[d.index()].leq(&clocks[a.index()]));
    }

    #[test]
    fn steal_and_join_diamond() {
        // spawn --Seq--> body --Join--> post
        //   \----Steal--> cont --Seq---^
        // body and cont are concurrent; post sees both.
        let mut t = Trace::new();
        let spawn = t.new_segment(0);
        let body = t.new_segment(1);
        let cont = t.new_segment(0);
        let post = t.new_segment(0);
        t.add_edge(spawn, body, 0, EdgeKind::Migrate);
        t.add_edge(spawn, cont, 0, EdgeKind::Steal);
        t.add_edge(cont, post, 0, EdgeKind::Seq);
        t.add_edge(body, post, 0, EdgeKind::Join);
        let clocks = segment_clocks(&t);
        let (b, c, p) = (
            &clocks[body.index()],
            &clocks[cont.index()],
            &clocks[post.index()],
        );
        assert!(!b.leq(c) && !c.leq(b), "body and continuation race");
        assert!(b.leq(p) && c.leq(p), "join orders both before post");
    }

    #[test]
    fn same_proc_unordered_segments_alias_conservatively() {
        // Two segments on proc 1 with no path between them: per-processor
        // counters make the earlier one's clock ≤ the later one's. This
        // is the documented approximation: missed races are possible,
        // spurious races are not.
        let mut t = Trace::new();
        let a = t.new_segment(0);
        let b = t.new_segment(1);
        let c = t.new_segment(1);
        t.add_edge(a, b, 0, EdgeKind::Migrate);
        t.add_edge(a, c, 0, EdgeKind::Steal);
        let clocks = segment_clocks(&t);
        assert!(clocks[b.index()].leq(&clocks[c.index()]));
    }
}
