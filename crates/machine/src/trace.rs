//! Execution traces: the task DAG recorded during instrumented execution.
//!
//! A **segment** is a maximal stretch of one thread's execution on one
//! processor; its cost is the sum of all cycles charged while it was
//! current. Segments are split by events that change where or when work can
//! run: a migration (the thread moves), a future spawn (the continuation
//! may later be stolen), a touch (a join), a steal (the continuation
//! restarts on the vacated processor).
//!
//! **Edges** order segments. Each carries a latency (e.g. the wire time of
//! a migration message) and a kind used for reporting and for tests.

use olden_gptr::ProcId;

/// Index of a segment within its [`Trace`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SegId(pub u32);

impl SegId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One contiguous stretch of computation bound to a processor.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// Processor this segment must execute on (data placement binds it).
    pub proc: ProcId,
    /// Accumulated cycle cost.
    pub cost: u64,
}

/// Why two segments are ordered.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Program order within one thread on one processor.
    Seq,
    /// Thread migration to the data's owner (§3.1).
    Migrate,
    /// Return-stub migration back to the caller's processor (§3.1).
    Return,
    /// A stolen continuation restarting on the processor a migration
    /// vacated (§2, future stealing).
    Steal,
    /// A touch joining a future's value into the continuation.
    Join,
}

/// A dependency: `to` may not start before `finish(from) + latency`.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    pub from: SegId,
    pub to: SegId,
    pub latency: u64,
    pub kind: EdgeKind,
}

impl EdgeKind {
    /// All kinds, indexed consistently with [`Trace::count_edges`]'s
    /// internal counters.
    pub const ALL: [EdgeKind; 5] = [
        EdgeKind::Seq,
        EdgeKind::Migrate,
        EdgeKind::Return,
        EdgeKind::Steal,
        EdgeKind::Join,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            EdgeKind::Seq => 0,
            EdgeKind::Migrate => 1,
            EdgeKind::Return => 2,
            EdgeKind::Steal => 3,
            EdgeKind::Join => 4,
        }
    }
}

/// The recorded task DAG plus summary counters.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    segments: Vec<Segment>,
    edges: Vec<Edge>,
    /// Edge counts by [`EdgeKind::index`], maintained by [`Trace::add_edge`]
    /// so [`Trace::count_edges`] is O(1) instead of a full edge scan.
    kind_counts: [usize; 5],
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Open a new segment bound to `proc` with zero accumulated cost.
    pub fn new_segment(&mut self, proc: ProcId) -> SegId {
        let id =
            SegId(u32::try_from(self.segments.len()).expect("trace exceeds u32 segment capacity"));
        self.segments.push(Segment { proc, cost: 0 });
        id
    }

    /// Charge `cycles` to an existing segment.
    #[inline]
    pub fn charge(&mut self, seg: SegId, cycles: u64) {
        self.segments[seg.index()].cost += cycles;
    }

    /// Record a dependency edge.
    pub fn add_edge(&mut self, from: SegId, to: SegId, latency: u64, kind: EdgeKind) {
        debug_assert!(from.index() < self.segments.len());
        debug_assert!(to.index() < self.segments.len());
        debug_assert_ne!(from, to, "self-edge");
        self.kind_counts[kind.index()] += 1;
        self.edges.push(Edge {
            from,
            to,
            latency,
            kind,
        });
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn segment(&self, id: SegId) -> &Segment {
        &self.segments[id.index()]
    }

    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Sum of all segment costs: the total work the machine must execute.
    pub fn total_cost(&self) -> u64 {
        self.segments.iter().map(|s| s.cost).sum()
    }

    /// Count of edges of a given kind (e.g. migrations for Table 2's
    /// discussion of MST's `O(N·P)` migrations). O(1): counters are
    /// maintained incrementally by [`Trace::add_edge`].
    pub fn count_edges(&self, kind: EdgeKind) -> usize {
        self.kind_counts[kind.index()]
    }

    /// Highest processor id used by any segment (for validating against a
    /// machine configuration).
    pub fn max_proc(&self) -> Option<ProcId> {
        self.segments.iter().map(|s| s.proc).max()
    }
}

/// What a chaos transport did to one message attempt.
///
/// The execution backends tag injected transport faults with these the
/// same way trace edges are tagged with [`EdgeKind`]s: a stable, closed
/// vocabulary that reports and golden files can pin. The machine crate
/// owns the vocabulary; it knows nothing about any particular message
/// protocol (the payload is described by a plain kind name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultTag {
    /// The attempt was lost in transit; the sender must retry.
    Dropped,
    /// The message was delivered twice back to back.
    Duplicated,
    /// The message was delivered, and a copy was held back to be
    /// re-delivered later — out of order with intervening traffic.
    DelayedDuplicate,
}

impl FaultTag {
    /// All tags, indexed consistently with [`FaultLog::count`].
    pub const ALL: [FaultTag; 3] = [
        FaultTag::Dropped,
        FaultTag::Duplicated,
        FaultTag::DelayedDuplicate,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultTag::Dropped => 0,
            FaultTag::Duplicated => 1,
            FaultTag::DelayedDuplicate => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FaultTag::Dropped => "drop",
            FaultTag::Duplicated => "duplicate",
            FaultTag::DelayedDuplicate => "delayed-duplicate",
        }
    }
}

/// One injected transport fault, as recorded by a chaos layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    pub tag: FaultTag,
    /// Message-kind name of the affected payload (e.g. `"CacheLookup"`).
    pub msg: &'static str,
    /// Logical sender id.
    pub src: u64,
    /// Destination processor.
    pub dst: ProcId,
    /// The affected message's sequence number on its sender's channel.
    pub seq: u64,
    /// Which transmission attempt was hit (0 = first send).
    pub attempt: u32,
}

/// A bounded record of injected faults: exact per-tag counts always, plus
/// the first [`FaultLog::CAP`] events verbatim for diagnostics. Counts
/// stay exact past the cap so conservation laws remain checkable on runs
/// of any length.
#[derive(Clone, Debug, Default)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
    counts: [u64; 3],
}

impl FaultLog {
    /// Events kept verbatim; recording beyond this only bumps counts.
    pub const CAP: usize = 4096;

    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    pub fn record(&mut self, ev: FaultEvent) {
        self.counts[ev.tag.index()] += 1;
        if self.events.len() < FaultLog::CAP {
            self.events.push(ev);
        }
    }

    /// Exact number of faults recorded with `tag` (not capped).
    pub fn count(&self, tag: FaultTag) -> u64 {
        self.counts[tag.index()]
    }

    /// Total faults injected, over all tags.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The retained event prefix (at most [`FaultLog::CAP`] entries).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_trace() {
        let mut t = Trace::new();
        let a = t.new_segment(0);
        let b = t.new_segment(1);
        t.charge(a, 100);
        t.charge(a, 50);
        t.charge(b, 25);
        t.add_edge(a, b, 540, EdgeKind::Migrate);
        assert_eq!(t.len(), 2);
        assert_eq!(t.segment(a).cost, 150);
        assert_eq!(t.segment(b).proc, 1);
        assert_eq!(t.total_cost(), 175);
        assert_eq!(t.count_edges(EdgeKind::Migrate), 1);
        assert_eq!(t.count_edges(EdgeKind::Seq), 0);
        assert_eq!(t.max_proc(), Some(1));
    }

    #[test]
    fn kind_counters_track_every_kind() {
        let mut t = Trace::new();
        let a = t.new_segment(0);
        let b = t.new_segment(1);
        let c = t.new_segment(2);
        t.add_edge(a, b, 0, EdgeKind::Migrate);
        t.add_edge(a, c, 0, EdgeKind::Steal);
        t.add_edge(b, c, 0, EdgeKind::Join);
        t.add_edge(a, c, 0, EdgeKind::Migrate);
        for kind in EdgeKind::ALL {
            let scanned = t.edges().iter().filter(|e| e.kind == kind).count();
            assert_eq!(t.count_edges(kind), scanned, "{kind:?}");
        }
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.total_cost(), 0);
        assert_eq!(t.max_proc(), None);
    }

    #[test]
    fn fault_log_counts_every_tag() {
        let mut log = FaultLog::new();
        let ev = |tag, seq| FaultEvent {
            tag,
            msg: "CacheLookup",
            src: 0,
            dst: 1,
            seq,
            attempt: 0,
        };
        log.record(ev(FaultTag::Dropped, 1));
        log.record(ev(FaultTag::Dropped, 1));
        log.record(ev(FaultTag::Duplicated, 2));
        log.record(ev(FaultTag::DelayedDuplicate, 3));
        assert_eq!(log.count(FaultTag::Dropped), 2);
        assert_eq!(log.count(FaultTag::Duplicated), 1);
        assert_eq!(log.count(FaultTag::DelayedDuplicate), 1);
        assert_eq!(log.total(), 4);
        assert_eq!(log.events().len(), 4);
        for tag in FaultTag::ALL {
            let scanned = log.events().iter().filter(|e| e.tag == tag).count() as u64;
            assert_eq!(log.count(tag), scanned, "{tag:?}");
        }
    }

    #[test]
    fn fault_log_caps_events_but_not_counts() {
        let mut log = FaultLog::new();
        for seq in 0..(FaultLog::CAP as u64 + 100) {
            log.record(FaultEvent {
                tag: FaultTag::Dropped,
                msg: "ReadHome",
                src: 7,
                dst: 0,
                seq,
                attempt: 1,
            });
        }
        assert_eq!(log.events().len(), FaultLog::CAP, "events bounded");
        assert_eq!(log.count(FaultTag::Dropped), FaultLog::CAP as u64 + 100);
    }
}
