//! Metamorphic cross-validation of the whole analysis stack.
//!
//! [`verify_seed`] runs every oracle we have against one generated
//! program ([`crate::gen`]); [`verify_source`] runs the source-level
//! subset against an arbitrary DSL program (the benchmark descriptors,
//! the racy corpus, saved repros). The oracles:
//!
//! * **Round-trip** — `parse(render(gen(seed)))` equals the generated
//!   AST up to spans; for arbitrary sources, `render∘parse` is
//!   idempotent after one round.
//! * **Typecheck** — generated programs are well-typed by construction;
//!   the typechecker must agree.
//! * **Totality** — every pass (racecheck, CFG lowering +
//!   `check_well_formed`, the optimizer, the §4 heuristic, the verdict
//!   table, the cost model) terminates without panicking.
//! * **Consistency** — elided sites ⊆ `MechTable` sites,
//!   `CheckNeeded + CheckElided` is conserved, cost predictions are
//!   finite and non-negative.
//! * **Metamorphic invariance** (generated programs) — α-renaming
//!   preserves every verdict up to renaming; inserting dead statements
//!   changes no existing-site verdict; adding a `touch` never
//!   *introduces* a race diagnostic; doubling trip counts is monotone in
//!   every predicted counter.
//! * **Non-vacuity** — seeded ill-typed mutations (drop a touch, break
//!   an arity, retype an argument or field, double a touch) must each be
//!   rejected by the matching `TC0xx` code, so a typechecker that
//!   rubber-stamps everything cannot pass the fuzz gate.
//!
//! On failure, [`shrink`] delta-debugs the source down to a small repro
//! (the `oldenc fuzz` driver writes it to `tests/corpus/`).

use crate::ast::{Expr, Program, Stmt};
use crate::cfg;
use crate::cost::{loop_keys, predict, Prediction};
use crate::diag::{codes, Span};
use crate::gen::{gen_program, render, strip_spans};
use crate::opt::optimize;
use crate::parser::parse;
use crate::racecheck::racecheck;
use crate::typeck::typecheck;
use crate::verdicts::{mech_table, MechTable};
use olden_rng::{mix2, SplitMix64};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What the fuzz sweep exercised, for reporting (and for asserting the
/// sweep was not vacuous).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coverage {
    pub programs: usize,
    pub structs: usize,
    pub funcs: usize,
    pub whiles: usize,
    pub ifs: usize,
    pub stores: usize,
    pub touches: usize,
    pub futures: usize,
    pub calls: usize,
    pub paths: usize,
    /// Individual oracle assertions that ran.
    pub oracle_checks: usize,
    /// Ill-typed mutations applied (and rejected), per class.
    pub mutations: BTreeMap<&'static str, usize>,
}

impl Coverage {
    fn record_program(&mut self, p: &Program) {
        self.programs += 1;
        self.structs += p.structs.len();
        self.funcs += p.funcs.len();
        for f in &p.funcs {
            crate::ast::walk_stmts(&f.body, &mut |s| {
                match s {
                    Stmt::While { .. } => self.whiles += 1,
                    Stmt::If { .. } => self.ifs += 1,
                    Stmt::Store { .. } => self.stores += 1,
                    Stmt::Touch { .. } => self.touches += 1,
                    _ => {}
                }
                s.exprs(&mut |e| match e {
                    Expr::Call { future, .. } => {
                        self.calls += 1;
                        if *future {
                            self.futures += 1;
                        }
                    }
                    Expr::Path { .. } => self.paths += 1,
                    _ => {}
                });
            });
        }
    }

    /// Deterministic multi-line summary (the `oldenc fuzz` report).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "programs verified: {}", self.programs);
        let _ = writeln!(
            out,
            "nodes hit: structs {} funcs {} whiles {} ifs {} stores {} touches {} futures {} calls {} paths {}",
            self.structs,
            self.funcs,
            self.whiles,
            self.ifs,
            self.stores,
            self.touches,
            self.futures,
            self.calls,
            self.paths
        );
        let _ = writeln!(out, "oracle checks: {}", self.oracle_checks);
        let muts: Vec<String> = self
            .mutations
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect();
        let _ = writeln!(
            out,
            "mutations rejected: {}",
            if muts.is_empty() {
                "none".to_string()
            } else {
                muts.join(", ")
            }
        );
        out
    }
}

/// One oracle violation: which oracle, on which program.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The generator seed, when the program came from [`gen_program`].
    pub seed: Option<u64>,
    pub oracle: &'static str,
    pub detail: String,
    /// DSL source of the offending program (pre-shrink).
    pub source: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seed {
            Some(s) => write!(f, "seed {s}: oracle `{}`: {}", self.oracle, self.detail),
            None => write!(f, "oracle `{}`: {}", self.oracle, self.detail),
        }
    }
}

type Check = Result<(), (&'static str, String)>;

/// Run every oracle against the program generated from `seed`.
pub fn verify_seed(seed: u64, cov: &mut Coverage) -> Result<(), Failure> {
    let gp = gen_program(seed);
    let src = render(&gp);
    let wrap = |r: Check, src: &str| {
        r.map_err(|(oracle, detail)| Failure {
            seed: Some(seed),
            oracle,
            detail,
            source: src.to_string(),
        })
    };
    let p = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            return Err(Failure {
                seed: Some(seed),
                oracle: "round-trip",
                detail: format!("generated source does not parse: {e}"),
                source: src,
            })
        }
    };
    cov.oracle_checks += 1;
    if strip_spans(&p) != gp {
        return Err(Failure {
            seed: Some(seed),
            oracle: "round-trip",
            detail: "reparsed AST differs from the generated one".into(),
            source: src,
        });
    }
    wrap(check_program(&p, cov), &src)?;
    wrap(metamorphic(seed, &p, cov), &src)?;
    wrap(mutations(&p, cov), &src)?;
    cov.record_program(&p);
    Ok(())
}

/// Run the source-level oracles (round-trip idempotence, typecheck,
/// totality, consistency) against an arbitrary DSL program.
pub fn verify_source(name: &str, src: &str, cov: &mut Coverage) -> Result<(), Failure> {
    let fail = |oracle: &'static str, detail: String| Failure {
        seed: None,
        oracle,
        detail: format!("{name}: {detail}"),
        source: src.to_string(),
    };
    let p = parse(src).map_err(|e| fail("parse", e.to_string()))?;
    // render∘parse idempotence: one canonicalizing round, then stable.
    let r1 = render(&p);
    let p2 = parse(&r1).map_err(|e| fail("render-reparse", format!("{e}\n{r1}")))?;
    cov.oracle_checks += 1;
    if render(&p2) != r1 {
        return Err(fail("render-reparse", "rendering is not idempotent".into()));
    }
    check_program(&p, cov).map_err(|(oracle, detail)| fail(oracle, detail))?;
    cov.record_program(&p);
    Ok(())
}

/// Totality guard: run a pass, converting a panic into an oracle
/// failure.
fn total<T>(name: &'static str, f: impl FnOnce() -> T) -> Result<T, (&'static str, String)> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|_| ("totality", format!("pass `{name}` panicked")))
}

/// Typecheck + totality + cross-pass consistency, shared by generated
/// and hand-written programs.
fn check_program(p: &Program, cov: &mut Coverage) -> Check {
    // Front gate: the program must be well-typed.
    let diags = total("typecheck", || typecheck(p))?;
    cov.oracle_checks += 1;
    if !diags.is_empty() {
        let lines: Vec<String> = diags.iter().map(|d| d.one_line()).collect();
        return Err(("typecheck", lines.join("\n")));
    }

    // Totality of every downstream pass.
    total("racecheck", || racecheck(p))?;
    cov.oracle_checks += 1;
    for f in &p.funcs {
        let cfgv = total("cfg-lower", || cfg::lower(f))?;
        cov.oracle_checks += 1;
        if let Err(e) = cfgv.check_well_formed(f) {
            return Err(("well-formed", e));
        }
        cov.oracle_checks += 1;
    }
    let opt = total("optimize", || optimize(p))?;
    total("select", || crate::heuristic::select(p))?;
    let table = total("mech-table", || mech_table(p))?;
    cov.oracle_checks += 2;

    // Conservation: every site gets exactly one of the two verdicts.
    let (opt_total, elided) = opt.stats();
    let needed = opt
        .sites
        .iter()
        .filter(|s| s.verdict == crate::opt::Verdict::CheckNeeded)
        .count();
    cov.oracle_checks += 1;
    if needed + elided != opt_total {
        return Err((
            "consistency",
            format!("CheckNeeded {needed} + CheckElided {elided} != total {opt_total}"),
        ));
    }

    // Elided sites ⊆ MechTable sites (the opt key is the mech key minus
    // the chosen mechanism).
    let mech_prefixes: Vec<String> = table
        .sites
        .iter()
        .map(|s| format!("{} {} {}", s.func, s.span, s.site))
        .collect();
    cov.oracle_checks += 1;
    for k in opt.elided_keys() {
        if !mech_prefixes.contains(&k) {
            return Err((
                "consistency",
                format!("elided site `{k}` is not in the mech table"),
            ));
        }
    }

    // Cost model: finite, non-negative, and monotone in trip counts.
    let keys = total("loop-keys", || loop_keys(p))?;
    let pred4 = predict_with(p, &table, &keys, 4)?;
    let pred8 = predict_with(p, &table, &keys, 8)?;
    cov.oracle_checks += 2;
    for (label, pred) in [("trips=4", &pred4), ("trips=8", &pred8)] {
        for (name, v) in [
            ("migrations", pred.migrations),
            ("line_fetches", pred.line_fetches),
            ("invalidations", pred.invalidations),
            ("remote_touches", pred.remote_touches),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(("consistency", format!("{label}: {name} = {v}")));
            }
        }
    }
    cov.oracle_checks += 1;
    for (name, lo, hi) in [
        ("migrations", pred4.migrations, pred8.migrations),
        ("line_fetches", pred4.line_fetches, pred8.line_fetches),
        ("invalidations", pred4.invalidations, pred8.invalidations),
        ("remote_touches", pred4.remote_touches, pred8.remote_touches),
    ] {
        if hi < lo {
            return Err((
                "monotonicity",
                format!("{name} fell from {lo} to {hi} when trips doubled"),
            ));
        }
    }
    Ok(())
}

fn predict_with(
    p: &Program,
    table: &MechTable,
    keys: &[String],
    trip: u64,
) -> Result<Prediction, (&'static str, String)> {
    let trips: Vec<(&str, u64)> = keys.iter().map(|k| (k.as_str(), trip)).collect();
    total("predict", || predict(p, table, &trips, 8))
}

// ----- metamorphic transforms ---------------------------------------------

/// Prefix every identifier with `r_`. A prefix (rather than a suffix)
/// preserves the relative lexicographic order of any two names, so every
/// name-ordered tie-break in the passes resolves identically.
fn rename_ident(s: &str) -> String {
    format!("r_{s}")
}

fn rename_program(p: &Program) -> Program {
    let mut out = p.clone();
    for s in &mut out.structs {
        s.name = rename_ident(&s.name);
        for f in &mut s.fields {
            f.name = rename_ident(&f.name);
            if f.is_pointer {
                f.ty = rename_ident(&f.ty);
            }
        }
    }
    for f in &mut out.funcs {
        f.name = rename_ident(&f.name);
        for p in &mut f.params {
            *p = rename_ident(p);
        }
        for a in &mut f.param_tys {
            if a.is_pointer {
                a.name = rename_ident(&a.name);
            }
        }
        if f.ret.is_pointer {
            f.ret.name = rename_ident(&f.ret.name);
        }
        rename_stmts(&mut f.body);
    }
    out
}

fn rename_stmts(stmts: &mut [Stmt]) {
    for s in stmts {
        match s {
            Stmt::Assign { dst, src, .. } => {
                *dst = rename_ident(dst);
                rename_expr(src);
            }
            Stmt::Store {
                base, fields, src, ..
            } => {
                *base = rename_ident(base);
                for f in fields.iter_mut() {
                    *f = rename_ident(f);
                }
                rename_expr(src);
            }
            Stmt::If { cond, then_, else_ } => {
                rename_expr(cond);
                rename_stmts(then_);
                rename_stmts(else_);
            }
            Stmt::While { cond, body } => {
                rename_expr(cond);
                rename_stmts(body);
            }
            Stmt::ExprStmt(e) => rename_expr(e),
            Stmt::Touch { var, .. } => *var = rename_ident(var),
            Stmt::Return(Some(e)) => rename_expr(e),
            Stmt::Return(None) => {}
        }
    }
}

fn rename_expr(e: &mut Expr) {
    match e {
        Expr::Var(v) => *v = rename_ident(v),
        Expr::Path { base, fields, .. } => {
            *base = rename_ident(base);
            for f in fields.iter_mut() {
                *f = rename_ident(f);
            }
        }
        Expr::Call { func, args, .. } => {
            *func = rename_ident(func);
            for a in args {
                rename_expr(a);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            rename_expr(lhs);
            rename_expr(rhs);
        }
        Expr::Unary { arg, .. } => rename_expr(arg),
        Expr::Int(_) | Expr::Null => {}
    }
}

/// Racecheck findings as an order-insensitive footprint. Messages embed
/// identifier names (which α-renaming changes), so the footprint is
/// `(span, code)` with multiplicity.
fn race_footprint(p: &Program) -> Vec<(Span, &'static str)> {
    let mut v: Vec<(Span, &'static str)> = racecheck(p).iter().map(|d| (d.span, d.code)).collect();
    v.sort();
    v
}

fn metamorphic(seed: u64, p: &Program, cov: &mut Coverage) -> Check {
    // --- α-renaming preserves every verdict up to renaming -----------
    let rn = rename_program(p);
    let tds = total("typecheck(α)", || typecheck(&rn))?;
    cov.oracle_checks += 1;
    if !tds.is_empty() {
        return Err((
            "alpha-rename",
            format!(
                "renamed program no longer typechecks: {}",
                tds[0].one_line()
            ),
        ));
    }
    cov.oracle_checks += 1;
    if race_footprint(p) != total("racecheck(α)", || race_footprint(&rn))? {
        return Err(("alpha-rename", "racecheck footprint changed".into()));
    }
    let m1 = total("mech-table", || mech_table(p))?;
    let m2 = total("mech-table(α)", || mech_table(&rn))?;
    cov.oracle_checks += 1;
    if m1.sites.len() != m2.sites.len() {
        return Err((
            "alpha-rename",
            format!("site count {} -> {}", m1.sites.len(), m2.sites.len()),
        ));
    }
    for (a, b) in m1.sites.iter().zip(&m2.sites) {
        let want_site: String = a
            .site
            .split("->")
            .map(rename_ident)
            .collect::<Vec<_>>()
            .join("->");
        if b.span != a.span
            || b.mech != a.mech
            || b.func != rename_ident(&a.func)
            || b.site != want_site
        {
            return Err((
                "alpha-rename",
                format!("verdict changed: `{}` -> `{}`", a.key(), b.key()),
            ));
        }
    }
    let o1 = total("optimize", || optimize(p))?;
    let o2 = total("optimize(α)", || optimize(&rn))?;
    cov.oracle_checks += 1;
    if o1.stats() != o2.stats() {
        return Err((
            "alpha-rename",
            format!("opt stats {:?} -> {:?}", o1.stats(), o2.stats()),
        ));
    }
    let e1: Vec<String> = o1.elided_keys().iter().map(|k| rename_opt_key(k)).collect();
    let e2 = o2.elided_keys();
    cov.oracle_checks += 1;
    if e1 != e2 {
        return Err(("alpha-rename", "elided-site set changed".into()));
    }
    let k1 = loop_keys(p);
    let k2 = loop_keys(&rn);
    let k1r: Vec<String> = k1
        .iter()
        .map(|k| match k.split_once('#') {
            Some((f, ord)) => format!("{}#{ord}", rename_ident(f)),
            None => k.clone(),
        })
        .collect();
    cov.oracle_checks += 1;
    if k1r != k2 {
        return Err(("alpha-rename", format!("loop keys {k1:?} -> {k2:?}")));
    }
    let pr1 = predict_with(p, &m1, &k1, 4)?;
    let pr2 = predict_with(&rn, &m2, &k2, 4)?;
    cov.oracle_checks += 1;
    if pr1 != pr2 {
        return Err((
            "alpha-rename",
            format!("prediction changed: {pr1:?} -> {pr2:?}"),
        ));
    }

    // --- dead statements change no existing verdict ------------------
    let mut dead = p.clone();
    let mut rng = SplitMix64::new(mix2(seed, 0xdead));
    for f in &mut dead.funcs {
        // Insert only at top level, never after a trailing return, so
        // the CFG stays fully reachable.
        let limit = match f.body.last() {
            Some(Stmt::Return(_)) => f.body.len() - 1,
            _ => f.body.len(),
        };
        let at = rng.below(limit as u64 + 1) as usize;
        f.body.insert(
            at,
            Stmt::Assign {
                dst: "zdead0".into(),
                src: Expr::Int(rng.below(100) as i64),
                span: Span::DUMMY,
            },
        );
    }
    cov.oracle_checks += 1;
    if race_footprint(p) != total("racecheck(dead)", || race_footprint(&dead))? {
        return Err(("dead-insert", "racecheck footprint changed".into()));
    }
    let md = total("mech-table(dead)", || mech_table(&dead))?;
    cov.oracle_checks += 1;
    if md.keys() != m1.keys() {
        return Err(("dead-insert", "mech-table keys changed".into()));
    }
    let od = total("optimize(dead)", || optimize(&dead))?;
    cov.oracle_checks += 1;
    if od.elided_keys() != o1.elided_keys() {
        return Err(("dead-insert", "elided-site set changed".into()));
    }

    // --- adding a touch never introduces a race ----------------------
    if let Some(touched) = insert_touch(p) {
        let before = race_footprint(p);
        let after = total("racecheck(touch)", || race_footprint(&touched))?;
        cov.oracle_checks += 1;
        // Multiset inclusion: everything reported after must have been
        // reported before (a touch only ever orders, never races).
        let mut pool = before.clone();
        for item in &after {
            match pool.iter().position(|x| x == item) {
                Some(i) => {
                    pool.remove(i);
                }
                None => {
                    return Err((
                        "touch-insert",
                        format!("new diagnostic {item:?} after adding a touch"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// `"{func} {span} {site}"` under α-renaming.
fn rename_opt_key(k: &str) -> String {
    let mut parts = k.splitn(3, ' ');
    match (parts.next(), parts.next(), parts.next()) {
        (Some(f), Some(span), Some(site)) => {
            let site: String = site
                .split("->")
                .map(rename_ident)
                .collect::<Vec<_>>()
                .join("->");
            format!("{} {span} {site}", rename_ident(f))
        }
        _ => k.to_string(),
    }
}

/// Walk every statement block (the vec itself, then nested ones),
/// applying `f` until it reports success.
fn edit_blocks(stmts: &mut Vec<Stmt>, f: &mut impl FnMut(&mut Vec<Stmt>) -> bool) -> bool {
    if f(stmts) {
        return true;
    }
    for s in stmts {
        let hit = match s {
            Stmt::If { then_, else_, .. } => edit_blocks(then_, f) || edit_blocks(else_, f),
            Stmt::While { body, .. } => edit_blocks(body, f),
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

/// Insert a `touch h` directly after the first `h = futurecall …`.
fn insert_touch(p: &Program) -> Option<Program> {
    let mut out = p.clone();
    for f in &mut out.funcs {
        let hit = edit_blocks(&mut f.body, &mut |block| {
            for i in 0..block.len() {
                if let Stmt::Assign {
                    dst,
                    src: Expr::Call { future: true, .. },
                    ..
                } = &block[i]
                {
                    let var = dst.clone();
                    block.insert(
                        i + 1,
                        Stmt::Touch {
                            var,
                            span: Span::DUMMY,
                        },
                    );
                    return true;
                }
            }
            false
        });
        if hit {
            return Some(out);
        }
    }
    None
}

// ----- non-vacuity mutations ----------------------------------------------

/// Apply a mutating visitor to every expression (pre-order) until it
/// reports success.
fn edit_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    if f(e) {
        return true;
    }
    match e {
        Expr::Call { args, .. } => args.iter_mut().any(|a| edit_expr(a, f)),
        Expr::Binary { lhs, rhs, .. } => edit_expr(lhs, f) || edit_expr(rhs, f),
        Expr::Unary { arg, .. } => edit_expr(arg, f),
        _ => false,
    }
}

fn edit_stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    match s {
        Stmt::Assign { src, .. } | Stmt::Store { src, .. } => edit_expr(src, f),
        Stmt::If { cond, then_, else_ } => {
            edit_expr(cond, f)
                || then_.iter_mut().any(|s| edit_stmt_exprs(s, f))
                || else_.iter_mut().any(|s| edit_stmt_exprs(s, f))
        }
        Stmt::While { cond, body } => {
            edit_expr(cond, f) || body.iter_mut().any(|s| edit_stmt_exprs(s, f))
        }
        Stmt::ExprStmt(e) => edit_expr(e, f),
        Stmt::Return(Some(e)) => edit_expr(e, f),
        Stmt::Touch { .. } | Stmt::Return(None) => false,
    }
}

fn edit_program_exprs(p: &mut Program, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    p.funcs
        .iter_mut()
        .any(|fd| fd.body.iter_mut().any(|s| edit_stmt_exprs(s, f)))
}

/// Remove a `touch` whose handle is read by a later statement in the
/// same block — the use must then trip `TC008`.
fn mutate_drop_touch(p: &Program) -> Option<Program> {
    let mut out = p.clone();
    for f in &mut out.funcs {
        let hit = edit_blocks(&mut f.body, &mut |block| {
            for i in 0..block.len() {
                if let Stmt::Touch { var, .. } = &block[i] {
                    let var = var.clone();
                    let read_later = block[i + 1..].iter().any(|s| {
                        let mut used = false;
                        s.walk(&mut |ss| {
                            ss.exprs(&mut |e| {
                                if matches!(e, Expr::Var(v) if *v == var) {
                                    used = true;
                                }
                            })
                        });
                        used
                    });
                    if read_later {
                        block.remove(i);
                        return true;
                    }
                }
            }
            false
        });
        if hit {
            return Some(out);
        }
    }
    None
}

/// Append a surplus argument to a known call — `TC004`.
fn mutate_break_arity(p: &Program) -> Option<Program> {
    let known: Vec<String> = p.funcs.iter().map(|f| f.name.clone()).collect();
    let mut out = p.clone();
    edit_program_exprs(&mut out, &mut |e| {
        if let Expr::Call { func, args, .. } = e {
            if known.contains(func) {
                args.push(Expr::Int(7));
                return true;
            }
        }
        false
    })
    .then_some(out)
}

/// Replace a pointer-typed argument of a known call with an int literal
/// — `TC005`.
fn mutate_retype_arg(p: &Program) -> Option<Program> {
    let ptr_params: BTreeMap<String, Vec<bool>> = p
        .funcs
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                f.param_tys.iter().map(|a| a.is_pointer).collect(),
            )
        })
        .collect();
    let mut out = p.clone();
    edit_program_exprs(&mut out, &mut |e| {
        if let Expr::Call { func, args, .. } = e {
            if let Some(flags) = ptr_params.get(func) {
                if args.len() == flags.len() {
                    for (i, is_ptr) in flags.iter().enumerate() {
                        if *is_ptr {
                            args[i] = Expr::Int(3);
                            return true;
                        }
                    }
                }
            }
        }
        false
    })
    .then_some(out)
}

/// Retype a pointer field that some path navigates *through* (a
/// non-final step) down to `int` — `TC003` at that step.
fn mutate_retype_field(p: &Program) -> Option<Program> {
    let mut victim: Option<String> = None;
    for f in &p.funcs {
        // Only paths based on a pointer-typed *parameter* that is never
        // reassigned qualify: a local base may be statically null and a
        // reassigned base (`p = p->f` in a loop) turns into a type
        // conflict under the mutation — in both cases the checker
        // recovers the walk as Unknown/TC009 instead of reporting the
        // TC003 step this class pins.
        let mut reassigned: Vec<String> = Vec::new();
        crate::ast::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Assign { dst, .. } = s {
                reassigned.push(dst.clone());
            }
        });
        let ptr_params: Vec<&String> = f
            .params
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                f.param_tys.get(*i).is_some_and(|a| a.is_pointer) && !reassigned.contains(p)
            })
            .map(|(_, p)| p)
            .collect();
        crate::ast::walk_stmts(&f.body, &mut |s| {
            if victim.is_some() {
                return;
            }
            if let Stmt::Store { base, fields, .. } = s {
                if fields.len() >= 2 && ptr_params.contains(&base) {
                    victim = Some(fields[0].clone());
                }
            }
            s.exprs(&mut |e| {
                if victim.is_none() {
                    if let Expr::Path { base, fields, .. } = e {
                        if fields.len() >= 2 && ptr_params.contains(&base) {
                            victim = Some(fields[0].clone());
                        }
                    }
                }
            });
        });
    }
    let victim = victim?;
    let mut out = p.clone();
    for s in &mut out.structs {
        for fd in &mut s.fields {
            if fd.name == victim {
                fd.is_pointer = false;
                fd.ty = "int".into();
                fd.affinity = None;
                return Some(out);
            }
        }
    }
    None
}

/// Duplicate an existing `touch` — the copy must trip `TC007`.
fn mutate_double_touch(p: &Program) -> Option<Program> {
    let mut out = p.clone();
    for f in &mut out.funcs {
        let hit = edit_blocks(&mut f.body, &mut |block| {
            for i in 0..block.len() {
                if let Stmt::Touch { var, .. } = &block[i] {
                    let var = var.clone();
                    block.insert(
                        i + 1,
                        Stmt::Touch {
                            var,
                            span: Span::DUMMY,
                        },
                    );
                    return true;
                }
            }
            false
        });
        if hit {
            return Some(out);
        }
    }
    None
}

fn expect_code(mutant: &Program, class: &'static str, code: &'static str) -> Check {
    let diags = total("typecheck(mutant)", || typecheck(mutant))?;
    if diags.iter().any(|d| d.code == code) {
        Ok(())
    } else {
        let got: Vec<&str> = diags.iter().map(|d| d.code).collect();
        Err((
            "non-vacuity",
            format!("mutation `{class}` expected {code}, typechecker reported {got:?}"),
        ))
    }
}

fn mutations(p: &Program, cov: &mut Coverage) -> Check {
    let classes: [(&'static str, Option<Program>, &'static str); 5] = [
        (
            "drop-touch",
            mutate_drop_touch(p),
            codes::FUTURE_UNTOUCHED_USE,
        ),
        ("break-arity", mutate_break_arity(p), codes::CALL_ARITY),
        ("retype-arg", mutate_retype_arg(p), codes::ARG_TYPE),
        (
            "retype-field",
            mutate_retype_field(p),
            codes::NON_POINTER_DEREF,
        ),
        ("double-touch", mutate_double_touch(p), codes::DOUBLE_TOUCH),
    ];
    for (class, mutant, code) in classes {
        if let Some(m) = mutant {
            expect_code(&m, class, code)?;
            cov.oracle_checks += 1;
            *cov.mutations.entry(class).or_default() += 1;
        }
    }
    Ok(())
}

// ----- shrinking ----------------------------------------------------------

/// The oracle suite [`shrink`] preserves by default: parse + typecheck +
/// totality + consistency + the seed-independent metamorphic checks.
pub fn source_fails(src: &str) -> bool {
    let mut cov = Coverage::default();
    let Ok(p) = parse(src) else { return false };
    if check_program(&p, &mut cov).is_err() {
        return true;
    }
    metamorphic(0, &p, &mut cov).is_err()
}

/// Delta-debug `src` down to a (locally) minimal program for which
/// `still_fails` holds. Reductions: drop a whole function or struct,
/// drop a struct field, drop a statement, or replace an `if`/`while`
/// with one of its branches/body. Greedy, restarting after every
/// successful reduction, capped at ~500 oracle evaluations.
pub fn shrink(src: &str, still_fails: &dyn Fn(&str) -> bool) -> String {
    let mut best = src.to_string();
    let mut evals = 0usize;
    'outer: while let Ok(p) = parse(&best) {
        for cand in candidates(&p) {
            let cs = render(&cand);
            if cs.len() >= best.len() {
                continue;
            }
            evals += 1;
            if evals > 500 {
                break 'outer;
            }
            if still_fails(&cs) {
                best = cs;
                continue 'outer;
            }
        }
        break;
    }
    best
}

/// All one-edit reductions of `p`, biggest cuts first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    for i in 0..p.funcs.len() {
        let mut c = p.clone();
        c.funcs.remove(i);
        out.push(c);
    }
    for i in 0..p.structs.len() {
        let mut c = p.clone();
        c.structs.remove(i);
        out.push(c);
    }
    for si in 0..p.structs.len() {
        for fi in 0..p.structs[si].fields.len() {
            let mut c = p.clone();
            c.structs[si].fields.remove(fi);
            out.push(c);
        }
    }
    for fi in 0..p.funcs.len() {
        for body in block_variants(&p.funcs[fi].body) {
            let mut c = p.clone();
            c.funcs[fi].body = body;
            out.push(c);
        }
    }
    out
}

/// Every one-edit variant of a statement block: drop a statement,
/// replace a compound statement with one of its sub-blocks, or edit a
/// nested block in place.
fn block_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut dropped = stmts.to_vec();
        dropped.remove(i);
        out.push(dropped);
        match &stmts[i] {
            Stmt::If { then_, else_, .. } => {
                for branch in [then_, else_] {
                    let mut v = stmts.to_vec();
                    v.splice(i..=i, branch.iter().cloned());
                    out.push(v);
                }
                for tv in block_variants(then_) {
                    let mut v = stmts.to_vec();
                    if let Stmt::If { then_, .. } = &mut v[i] {
                        *then_ = tv;
                    }
                    out.push(v);
                }
                for ev in block_variants(else_) {
                    let mut v = stmts.to_vec();
                    if let Stmt::If { else_, .. } = &mut v[i] {
                        *else_ = ev;
                    }
                    out.push(v);
                }
            }
            Stmt::While { body, .. } => {
                let mut v = stmts.to_vec();
                v.splice(i..=i, body.iter().cloned());
                out.push(v);
                for bv in block_variants(body) {
                    let mut v = stmts.to_vec();
                    if let Stmt::While { body, .. } = &mut v[i] {
                        *body = bv;
                    }
                    out.push(v);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_sweep_of_seeds_passes_every_oracle() {
        let mut cov = Coverage::default();
        for seed in 0..40u64 {
            if let Err(f) = verify_seed(seed, &mut cov) {
                panic!("{f}\n--- source ---\n{}", f.source);
            }
        }
        assert_eq!(cov.programs, 40);
        assert!(cov.oracle_checks > 40 * 5, "oracles barely ran: {cov:?}");
    }

    #[test]
    fn verify_is_deterministic() {
        let mut c1 = Coverage::default();
        let mut c2 = Coverage::default();
        for seed in 0..10u64 {
            verify_seed(seed, &mut c1).unwrap();
            verify_seed(seed, &mut c2).unwrap();
        }
        assert_eq!(c1, c2);
    }

    #[test]
    fn every_mutation_class_fires_across_the_sweep() {
        let mut cov = Coverage::default();
        for seed in 0..80u64 {
            verify_seed(seed, &mut cov).unwrap();
        }
        for class in [
            "drop-touch",
            "break-arity",
            "retype-arg",
            "retype-field",
            "double-touch",
        ] {
            assert!(
                cov.mutations.get(class).copied().unwrap_or(0) > 0,
                "mutation class `{class}` never applied: {:?}",
                cov.mutations
            );
        }
    }

    #[test]
    fn alpha_rename_keeps_programs_parseable() {
        for seed in 0..10u64 {
            let p = gen_program(seed);
            let rn = rename_program(&p);
            let src = render(&rn);
            parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn shrinker_reduces_while_preserving_the_predicate() {
        // An artificial predicate: "program still contains a touch".
        let src = crate::gen::gen_source(3);
        assert!(src.contains("touch"), "seed 3 should exercise touch\n{src}");
        let has_touch = |s: &str| {
            parse(s)
                .map(|p| render(&p).contains("touch "))
                .unwrap_or(false)
        };
        let small = shrink(&src, &has_touch);
        assert!(has_touch(&small));
        assert!(
            small.len() < src.len(),
            "no reduction achieved: {} -> {}",
            src.len(),
            small.len()
        );
    }

    #[test]
    fn verify_source_accepts_the_figure4_program() {
        let mut cov = Coverage::default();
        verify_source(
            "treeadd",
            "struct tree { tree *left @ 90; tree *right @ 70; int val; };
             int TreeAdd(tree *t) {
                 if (t == null) { return 0; }
                 else {
                     int lv = futurecall TreeAdd(t->left);
                     int rv = TreeAdd(t->right);
                     touch lv;
                     return lv + rv + t->val;
                 }
             }",
            &mut cov,
        )
        .unwrap();
        assert_eq!(cov.programs, 1);
    }

    #[test]
    fn coverage_render_is_stable() {
        let mut cov = Coverage::default();
        verify_seed(0, &mut cov).unwrap();
        let r = cov.render();
        assert!(r.contains("programs verified: 1"), "{r}");
        assert!(r.contains("oracle checks:"), "{r}");
    }
}
