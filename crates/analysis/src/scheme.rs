//! olden-scheme: per-program coherence-scheme selection (Appendix A).
//!
//! The paper specifies three software-coherence schemes — local
//! knowledge, global knowledge, bilateral — and Table 3 measures them,
//! but leaves *choosing* one to the system builder. This pass closes
//! that loop the same way §4.3 closes mechanism selection: a static
//! heuristic over summaries the compiler already computes.
//!
//! The inputs are the whole-program surfaces of the earlier passes:
//!
//! * **Migration density** — the fraction of dereference sites the §4
//!   heuristic migrates ([`crate::verdicts::mech_table`]). Every
//!   migration arrival is an acquire; under local knowledge an acquire
//!   flushes the whole software cache, so dense migration is what makes
//!   the smarter schemes worth their bookkeeping.
//! * **Write-set size** — the distinct fields stored through *cached*
//!   sites. Global knowledge charges every cached write a sharer-list
//!   probe at the home ([`crate::cost::TRACK_SHARED`]-class cycles when
//!   the page is shared), so a wide write set is the argument against
//!   it.
//! * **Sharing fan-out** — parallel loops and pass-2 bottleneck
//!   demotions ([`crate::heuristic::select`]). A bottleneck means many
//!   futures touch one structure root: exactly the long-sharer-list,
//!   spurious-invalidation regime where bilateral's timestamps beat
//!   pushed invalidations.
//! * **Race findings** — [`crate::racecheck::racecheck`]. The schemes
//!   are observationally equivalent only for race-free programs, so a
//!   racy program pins the conservative default and says why.
//!
//! The output mirrors [`crate::verdicts::MechTable`]: a [`SchemeVerdict`]
//! with the chosen [`Scheme`], the [`SchemeSignals`] it was derived
//! from, and human-readable reasons — rendered deterministically for the
//! `oldenc scheme` golden surface. Like the path-affinity hints, a wrong
//! choice here costs cycles, never correctness: every backend runs every
//! scheme, and the parity suites hold them all byte-equal.

use crate::ast::Program;
use crate::diag::Severity;
use crate::racecheck::racecheck;
use crate::verdicts::{mech_table, MechTable};
use crate::Mech;
use std::collections::BTreeSet;

/// An Appendix-A coherence scheme. Mirrors the runtime's `Protocol`;
/// kept separate (like [`Mech`] vs `Mechanism`) so the compiler crate
/// has no dependency on the machine layers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// Flush the whole cache at each acquire; no per-write bookkeeping.
    LocalKnowledge,
    /// Per-page sharer lists at the home; pushed invalidations at each
    /// release.
    GlobalKnowledge,
    /// Per-page home timestamps; first access after an acquire
    /// revalidates against the home.
    Bilateral,
}

impl Scheme {
    /// The runtime's spelling (`Protocol::from_name` accepts these).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::LocalKnowledge => "local",
            Scheme::GlobalKnowledge => "global",
            Scheme::Bilateral => "bilateral",
        }
    }

    pub fn from_name(name: &str) -> Option<Scheme> {
        match name {
            "local" => Some(Scheme::LocalKnowledge),
            "global" => Some(Scheme::GlobalKnowledge),
            "bilateral" => Some(Scheme::Bilateral),
            _ => None,
        }
    }
}

/// Migration-site density below which local knowledge wins: acquires
/// are rare enough that flushing on each one costs less than tracking
/// every cached write.
pub const SPARSE_MIGRATION: f64 = 0.25;

/// Write-set width (distinct cached-store fields) from which global
/// knowledge's per-write home tracking is charged too often and
/// bilateral's lazy revalidation amortizes better.
pub const WIDE_WRITE_SET: usize = 3;

/// What the selection was computed from — one number per input surface,
/// so the rendered verdict is auditable against the other passes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchemeSignals {
    /// Total dereference sites in the program.
    pub sites: usize,
    /// Sites the §4 heuristic migrates (acquire points).
    pub migrate_sites: usize,
    /// Sites the §4 heuristic caches.
    pub cached_sites: usize,
    /// Distinct fields stored through cached sites (write-set size).
    pub write_set: usize,
    /// Control loops containing futures (parallel fan-out).
    pub parallel_loops: usize,
    /// Pass-2 bottleneck demotions (futures sharing one structure root).
    pub shared_roots: usize,
    /// Racecheck diagnostics (scheme equivalence needs race freedom).
    pub race_findings: usize,
}

impl SchemeSignals {
    /// Fraction of sites that migrate — how often the cache faces an
    /// acquire, relative to how much it is used.
    pub fn migration_density(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            self.migrate_sites as f64 / self.sites as f64
        }
    }
}

/// The whole-program coherence verdict.
#[derive(Clone, Debug)]
pub struct SchemeVerdict {
    pub scheme: Scheme,
    pub signals: SchemeSignals,
    /// Why, one clause per line — first the decisive rule, then any
    /// advisory notes (races, inert caching).
    pub reasons: Vec<String>,
}

impl SchemeVerdict {
    /// Deterministic multi-line rendering (the `oldenc scheme` surface):
    /// the signal summary, the chosen scheme, and one indented reason
    /// line each.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let s = &self.signals;
        let _ = writeln!(
            out,
            "signals: sites={} migrate={} cached={} density={:.0}% write-set={} \
             parallel-loops={} shared-roots={} races={}",
            s.sites,
            s.migrate_sites,
            s.cached_sites,
            s.migration_density() * 100.0,
            s.write_set,
            s.parallel_loops,
            s.shared_roots,
            s.race_findings,
        );
        let _ = writeln!(out, "scheme: {}", self.scheme.name());
        for r in &self.reasons {
            let _ = writeln!(out, "  - {r}");
        }
        out
    }
}

/// Collect the selection signals from the passes' summaries.
fn signals(prog: &Program, table: &MechTable) -> SchemeSignals {
    let mut write_set: BTreeSet<&str> = BTreeSet::new();
    let mut migrate_sites = 0usize;
    let mut cached_sites = 0usize;
    for s in &table.sites {
        match s.mech {
            Mech::Migrate => migrate_sites += 1,
            Mech::Cache => cached_sites += 1,
        }
        if s.is_store && s.mech == Mech::Cache {
            if let Some(field) = s.site.rsplit("->").next() {
                write_set.insert(field);
            }
        }
    }
    let parallel_loops = table.selection.loops.iter().filter(|l| l.parallel).count();
    let shared_roots = table
        .selection
        .loops
        .iter()
        .filter(|l| l.bottleneck)
        .count();
    SchemeSignals {
        sites: table.sites.len(),
        migrate_sites,
        cached_sites,
        write_set: write_set.len(),
        parallel_loops,
        shared_roots,
        // Notes (e.g. RC003 untouched futures) are style findings, not
        // violations of the release-consistency contract the schemes'
        // equivalence rests on — only warnings and errors count.
        race_findings: racecheck(prog)
            .iter()
            .filter(|d| d.severity != Severity::Note)
            .count(),
    }
}

/// Pick the coherence scheme for a program.
///
/// The decision tree, first match wins:
///
/// 1. **No cached sites** → local. Invalidation bookkeeping protects a
///    cache nothing uses; flushing empty state is free.
/// 2. **Race findings** → local. The schemes only coincide on race-free
///    programs; local knowledge is the paper's baseline and the one the
///    race diagnostics are phrased against.
/// 3. **Sparse migration** (density < [`SPARSE_MIGRATION`]) → local.
///    Few acquires means few flushes; per-write tracking or timestamp
///    checks would run far more often than the flushes they prevent.
/// 4. **Shared roots, or parallel loops over a wide write set** →
///    bilateral. Long sharer lists make pushed invalidations mostly
///    spurious; a timestamp bump at the release is O(1) regardless of
///    fan-out, and only the lines actually re-read pay a revalidation.
/// 5. **Otherwise** → global. Migration is frequent and the cached
///    write set narrow: sharer lists stay short, pushed invalidations
///    are precise, and surviving lines keep serving hits across
///    acquires with no revalidation latency.
pub fn select_scheme(prog: &Program) -> SchemeVerdict {
    let table = mech_table(prog);
    let s = signals(prog, &table);
    let mut reasons = Vec::new();
    let density = s.migration_density();
    let scheme = if s.cached_sites == 0 {
        reasons.push(
            "no cached sites: every dereference migrates, so coherence machinery \
             would track an unused cache"
                .to_string(),
        );
        Scheme::LocalKnowledge
    } else if s.race_findings > 0 {
        reasons.push(format!(
            "{} race finding(s): scheme equivalence is only guaranteed for race-free \
             programs, so keep the baseline",
            s.race_findings
        ));
        Scheme::LocalKnowledge
    } else if density < SPARSE_MIGRATION {
        reasons.push(format!(
            "sparse migration ({:.0}% of sites < {:.0}%): acquires are rare, so \
             flush-on-arrival costs little and writes stay untracked",
            density * 100.0,
            SPARSE_MIGRATION * 100.0
        ));
        Scheme::LocalKnowledge
    } else if s.shared_roots > 0 || (s.parallel_loops > 0 && s.write_set >= WIDE_WRITE_SET) {
        if s.shared_roots > 0 {
            reasons.push(format!(
                "{} shared structure root(s) under parallel loops: sharer lists would \
                 grow with fan-out and pushed invalidations turn spurious; timestamp \
                 revalidation pays only for lines actually re-read",
                s.shared_roots
            ));
        } else {
            reasons.push(format!(
                "parallel loops over a {}-field cached write set: per-write sharer \
                 tracking at the home would charge every store; an O(1) timestamp bump \
                 per release amortizes better",
                s.write_set
            ));
        }
        Scheme::Bilateral
    } else {
        reasons.push(format!(
            "dense migration ({:.0}% of sites) over a {}-field cached write set: \
             pushed invalidations are precise and surviving lines keep serving hits \
             across acquires",
            density * 100.0,
            s.write_set
        ));
        Scheme::GlobalKnowledge
    };
    SchemeVerdict {
        scheme,
        signals: s,
        reasons,
    }
}

/// Convenience for tools: parse then select.
pub fn select_scheme_src(src: &str) -> Result<SchemeVerdict, crate::parser::ParseError> {
    Ok(select_scheme(&crate::parser::parse(src)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn verdict(src: &str) -> SchemeVerdict {
        select_scheme(&parse(src).unwrap())
    }

    #[test]
    fn scheme_names_round_trip() {
        for s in [
            Scheme::LocalKnowledge,
            Scheme::GlobalKnowledge,
            Scheme::Bilateral,
        ] {
            assert_eq!(Scheme::from_name(s.name()), Some(s));
        }
        assert_eq!(Scheme::from_name("eager"), None);
    }

    #[test]
    fn all_migrate_program_stays_local() {
        // TreeAdd's shape: every site migrates, nothing is ever cached.
        let v = verdict(
            r#"
            struct tree { tree *left; tree *right; int val; };
            int T(tree *t) {
                if (t == null) { return 0; }
                else { return T(t->left) + T(t->right) + t->val; }
            }
        "#,
        );
        assert_eq!(v.scheme, Scheme::LocalKnowledge);
        assert_eq!(v.signals.cached_sites, 0);
        assert!(v.reasons[0].contains("no cached sites"), "{:?}", v.reasons);
    }

    #[test]
    fn straight_line_caching_stays_local() {
        // No control loop: everything caches, nothing migrates — zero
        // migration density, so coherence machinery has nothing to save.
        let v = verdict(
            r#"
            struct node { node *next; int val; };
            int f(node *n) {
                n->val = 1;
                return n->next->val;
            }
        "#,
        );
        assert_eq!(v.scheme, Scheme::LocalKnowledge);
        assert_eq!(v.signals.migrate_sites, 0);
        assert!(v.reasons[0].contains("sparse migration"), "{:?}", v.reasons);
    }

    #[test]
    fn mixed_serial_traversal_goes_global() {
        // A 95%-affinity list walk migrates on `a` while caching stores
        // through `b`: dense acquires, narrow write set.
        let v = verdict(
            r#"
            struct node { node *next @ 95; node *peer; int x; };
            void f(node *a) {
                while (a) {
                    node *b = a->peer;
                    b->x = 1;
                    a = a->next;
                }
            }
        "#,
        );
        assert_eq!(v.scheme, Scheme::GlobalKnowledge);
        assert!(v.signals.migration_density() >= SPARSE_MIGRATION);
        assert!(v.signals.write_set < WIDE_WRITE_SET);
        assert!(v.reasons[0].contains("dense migration"), "{:?}", v.reasons);
    }

    #[test]
    fn shared_root_fan_out_goes_bilateral() {
        // Figure 5's bottleneck shape: futures all traversing one tree
        // root. Pass 2 demotes the inner loop; the scheme pass reads the
        // same flag as sharing fan-out. The parallel walk itself still
        // migrates on `l`, so migration stays dense.
        let v = verdict(
            r#"
            struct list { list *next @ 95; };
            struct tree { tree *left; tree *right; };
            void Traverse(tree *t) {
                if (t == null) { return; }
                else { Traverse(t->left); Traverse(t->right); }
            }
            void WalkAndTraverse(list *l, tree *t) {
                while (l) {
                    futurecall Traverse(t);
                    l = l->next;
                }
            }
        "#,
        );
        assert_eq!(v.scheme, Scheme::Bilateral);
        assert!(v.signals.shared_roots > 0);
        assert!(
            v.reasons[0].contains("shared structure root"),
            "{:?}",
            v.reasons
        );
    }

    #[test]
    fn racy_program_pins_the_baseline() {
        // Same fan-out shape but the futures race on `t->v`: racecheck
        // findings preempt every performance rule.
        let v = verdict(
            r#"
            struct list { list *next @ 95; };
            struct tree { tree *left; tree *right; int v; };
            void Traverse(tree *t) {
                if (t == null) { return; }
                else { t->v = 1; Traverse(t->left); Traverse(t->right); }
            }
            void WalkAndTraverse(list *l, tree *t) {
                while (l) {
                    futurecall Traverse(t);
                    l = l->next;
                }
            }
        "#,
        );
        assert_eq!(v.scheme, Scheme::LocalKnowledge);
        assert!(v.signals.race_findings > 0);
        assert!(v.reasons[0].contains("race finding"), "{:?}", v.reasons);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let src = r#"
            struct node { node *next @ 95; int x; };
            void f(node *a) { while (a) { a = a->next; } }
        "#;
        let a = verdict(src).render();
        let b = verdict(src).render();
        assert_eq!(a, b);
        assert!(a.starts_with("signals: "), "{a}");
        assert!(a.contains("\nscheme: "), "{a}");
        assert!(a.contains("\n  - "), "{a}");
    }

    #[test]
    fn signals_count_the_write_set_distinctly() {
        // Two stores through the same cached field count once; a second
        // field makes two.
        let v = verdict(
            r#"
            struct node { node *next @ 95; node *peer; int x; int y; };
            void f(node *a) {
                while (a) {
                    node *b = a->peer;
                    b->x = 1;
                    b->x = 2;
                    b->y = 3;
                    a = a->next;
                }
            }
        "#,
        );
        assert_eq!(v.signals.write_set, 2);
    }
}
