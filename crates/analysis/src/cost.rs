//! Static cost prediction: an abstract interpretation of the selection.
//!
//! The paper's heuristic picks mechanisms from *costs it never reports*;
//! this module makes those costs a falsifiable output. Given the
//! per-site verdict table ([`crate::verdicts::MechTable`]), the update
//! matrices behind it, and per-loop **trip-count summaries** (how many
//! iterations each control loop executes for a given problem size —
//! static knowledge the benchmark descriptors carry), it predicts four
//! dynamic event counts:
//!
//! * **migrations** — for a migrating `while`, each iteration crosses a
//!   processor boundary with probability `1 − a` (the induction update's
//!   affinity); for a migrating recursion, each invocation arrives over
//!   one call edge whose remoteness is the mean of `1 − aᵢ` over the
//!   recursive call sites' argument-path affinities; a future whose body
//!   is another migrating function adds its departure probability as an
//!   entry migration.
//! * **line fetches** — per iteration, each distinct cached object is
//!   remote (and, new objects every iteration, missed) with probability
//!   `1 − a_base · a_path`; a pass-2 bottleneck walker is pinned to its
//!   spawning processor, so its base locality degrades to `1/procs`.
//! * **remote touches** — a future's continuation is stolen (and its
//!   later `touch` stalls) when the body migrates away at spawn: the
//!   argument path's remoteness when the callee migrates on that
//!   parameter, zero when the callee caches, and the 70 % default when
//!   the callee's body is outside the program.
//! * **invalidations** — the runtime flushes cached lines at every
//!   acquire point: migration arrivals, return arrivals, and stalled
//!   touches, so the prediction is the identity
//!   `2 × migrations + remote touches` (returns pair with migrations).
//!
//! Trip counts use stable loop keys `"{func}#{ordinal}"` (ordinal =
//! position among the function's control loops in discovery order, the
//! recursion loop first). Missing keys predict zero — the parity test
//! cross-checks descriptor keys against [`loop_keys`].

use crate::ast::{Expr, Program, Stmt};
use crate::heuristic::Selection;
use crate::loops::{find_control_loops, ControlLoop, LoopKind};
use crate::verdicts::MechTable;
use crate::{Mech, DEFAULT_AFFINITY};
use std::collections::{BTreeMap, BTreeSet};

/// Predicted event counts for one program at one problem size.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prediction {
    pub migrations: f64,
    pub line_fetches: f64,
    pub invalidations: f64,
    pub remote_touches: f64,
}

impl Prediction {
    /// The four counters in a fixed reporting order, rounded.
    pub fn counters(&self) -> [(&'static str, u64); 4] {
        [
            ("migrations", self.migrations.round() as u64),
            ("line_fetches", self.line_fetches.round() as u64),
            ("invalidations", self.invalidations.round() as u64),
            ("remote_touches", self.remote_touches.round() as u64),
        ]
    }
}

/// Stable key of the `i`-th control loop of `func` (discovery order, the
/// recursion loop first).
pub fn loop_key(func: &str, ordinal: usize) -> String {
    format!("{func}#{ordinal}")
}

/// Keys of every control loop in the program, in discovery order.
pub fn loop_keys(prog: &Program) -> Vec<String> {
    keys_of(&find_control_loops(prog))
}

fn keys_of(loops: &[ControlLoop]) -> Vec<String> {
    let mut per_func: BTreeMap<&str, usize> = BTreeMap::new();
    loops
        .iter()
        .map(|l| {
            let n = per_func.entry(l.func.as_str()).or_insert(0);
            let k = loop_key(&l.func, *n);
            *n += 1;
            k
        })
        .collect()
}

/// Visit the expressions of a loop body *without* descending into nested
/// `while` loops (their events belong to the inner loop's own trips).
fn immediate_exprs(ss: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in ss {
        match s {
            Stmt::While { .. } => {}
            Stmt::If { cond, then_, else_ } => {
                cond.walk(f);
                immediate_exprs(then_, f);
                immediate_exprs(else_, f);
            }
            other => other.exprs(f),
        }
    }
}

/// Mean remoteness of one recursive descent step: the average of
/// `1 − aᵢ` over the loop's recursive call sites' argument paths (an
/// identity pass-through contributes 0, a non-path argument the default).
fn recursion_step_remoteness(prog: &Program, l: &ControlLoop, sel: &Selection, li: usize) -> f64 {
    let Some(v) = sel.loops[li].migration_var() else {
        return 0.0;
    };
    let Some(pi) = l.params.iter().position(|p| p == v) else {
        return 0.0;
    };
    let mut rs: Vec<f64> = Vec::new();
    immediate_exprs(&l.body, &mut |e| {
        if let Expr::Call { func, args, .. } = e {
            if *func == l.func {
                let a = args
                    .get(pi)
                    .and_then(|a| a.as_path())
                    .map(|(_, fields)| {
                        if fields.is_empty() {
                            1.0
                        } else {
                            prog.path_affinity(fields)
                        }
                    })
                    .unwrap_or(DEFAULT_AFFINITY);
                rs.push(1.0 - a);
            }
        }
    });
    if rs.is_empty() {
        0.0
    } else {
        rs.iter().sum::<f64>() / rs.len() as f64
    }
}

/// Effective affinity of a loop's migration variable, following the
/// inheritance chain up to the nearest ancestor that computed one.
fn effective_affinity(sel: &Selection, loops: &[ControlLoop], li: usize) -> f64 {
    if let Some(a) = sel.loops[li].affinity {
        return a;
    }
    let mut p = loops[li].parent;
    while let Some(pid) = p {
        if let Some(a) = sel.loops[pid.0].affinity {
            return a;
        }
        p = loops[pid.0].parent;
    }
    DEFAULT_AFFINITY
}

/// Probability a cached object's *base variable* points at local data at
/// the moment of dereference.
fn base_locality(
    sel: &Selection,
    loops: &[ControlLoop],
    li: usize,
    base: &str,
    procs: usize,
) -> f64 {
    let c = &sel.loops[li];
    if c.bottleneck && c.selected.as_deref() == Some(base) {
        // A demoted walker stays on its spawning processor while the
        // structure it walks is spread over all of them.
        return 1.0 / procs.max(1) as f64;
    }
    let m = sel.matrix(loops[li].id);
    if let Some(a) = m.row_affinity(base) {
        return a;
    }
    DEFAULT_AFFINITY
}

/// Probability the body of a `futurecall` migrates away from its spawn
/// processor, leaving its continuation to be stolen.
fn steal_probability(
    prog: &Program,
    sel: &Selection,
    loops: &[ControlLoop],
    li: usize,
    callee: &str,
    args: &[Expr],
) -> f64 {
    if prog.func(callee).is_none() {
        // Body outside the program: assume it walks its argument at the
        // default affinity.
        return 1.0 - DEFAULT_AFFINITY;
    }
    // The body only leaves if some loop of the callee migrates (a callee
    // that caches — including one demoted by pass 2 — stays put).
    let mig_loops: Vec<(usize, &ControlLoop)> = loops
        .iter()
        .enumerate()
        .filter(|(i, l)| l.func == callee && sel.loops[*i].migration_var().is_some())
        .collect();
    if mig_loops.is_empty() {
        return 0.0;
    }
    // A recursion on a bound parameter departs over the argument path
    // (or over the callee's own first descent for an identity seed).
    if let Some(&(ci, cl)) = mig_loops
        .iter()
        .find(|(_, l)| matches!(l.kind, LoopKind::Recursion))
    {
        let v = sel.loops[ci].migration_var().unwrap_or_default();
        if let Some(pi) = cl.params.iter().position(|p| p == v) {
            return match args.get(pi).and_then(|a| a.as_path()) {
                Some((_, fields)) if !fields.is_empty() => 1.0 - prog.path_affinity(fields),
                Some((base, _)) => {
                    if sel.loops[li].migration_var() == Some(base) {
                        // Seeded with the spawner's own (local) traversal
                        // value: the body leaves when its first descent
                        // step does.
                        recursion_step_remoteness(prog, cl, sel, ci)
                    } else {
                        1.0 - DEFAULT_AFFINITY
                    }
                }
                None => 1.0 - DEFAULT_AFFINITY,
            };
        }
    }
    // A migrating iterative walk inside the callee leaves as soon as its
    // seed is remote: the first path argument's remoteness.
    args.iter()
        .find_map(|a| a.as_path())
        .map(|(_, fields)| {
            if fields.is_empty() {
                1.0 - DEFAULT_AFFINITY
            } else {
                1.0 - prog.path_affinity(fields)
            }
        })
        .unwrap_or(1.0 - DEFAULT_AFFINITY)
}

/// Predict dynamic event counts for `prog` given per-loop trip counts
/// and the machine's processor count.
pub fn predict(
    prog: &Program,
    table: &MechTable,
    trips: &[(&str, u64)],
    procs: usize,
) -> Prediction {
    let sel = &table.selection;
    let loops = find_control_loops(prog);
    let keys = keys_of(&loops);
    let trip_of = |li: usize| -> f64 {
        trips
            .iter()
            .find(|(k, _)| *k == keys[li])
            .map(|&(_, t)| t as f64)
            .unwrap_or(0.0)
    };

    let mut p = Prediction::default();

    for (li, l) in loops.iter().enumerate() {
        let t = trip_of(li);
        if t == 0.0 {
            continue;
        }
        // Migrations of the loop's traversal variable.
        if sel.loops[li].migration_var().is_some() {
            let per_iter = match l.kind {
                LoopKind::While { .. } => 1.0 - effective_affinity(sel, &loops, li),
                LoopKind::Recursion => recursion_step_remoteness(prog, l, sel, li),
            };
            p.migrations += t * per_iter;
        }
        // Stolen continuations from futures spawned in this loop. A
        // future whose body belongs to *another* function also moves the
        // computation when it departs — an entry migration the loop's
        // own traversal terms don't see (self-recursive futures are
        // already inside `recursion_step_remoteness`).
        let mut steal = 0.0;
        let mut entry = 0.0;
        immediate_exprs(&l.body, &mut |e| {
            if let Expr::Call {
                func,
                args,
                future: true,
                ..
            } = e
            {
                let ps = steal_probability(prog, sel, &loops, li, func, args);
                steal += ps;
                if *func != l.func {
                    entry += ps;
                }
            }
        });
        p.remote_touches += t * steal;
        p.migrations += t * entry;
    }

    // Line fetches: distinct cached objects per iteration of each loop.
    let mut objects: BTreeMap<usize, BTreeSet<(String, Vec<String>)>> = BTreeMap::new();
    for s in &table.sites {
        if s.mech != Mech::Cache {
            continue;
        }
        // Straight-line (loop-free) sites run once; their constant cost
        // is below the model's resolution.
        let Some(li) = s.loop_idx else { continue };
        objects
            .entry(li)
            .or_default()
            .insert((s.base.clone(), s.prefix.clone()));
    }
    for (li, objs) in objects {
        let t = trip_of(li);
        if t == 0.0 {
            continue;
        }
        for (base, prefix) in objs {
            let a_obj = base_locality(sel, &loops, li, &base, procs) * prog.path_affinity(&prefix);
            p.line_fetches += t * (1.0 - a_obj);
        }
    }

    // Every acquire point flushes the cache: migration arrivals, their
    // paired return arrivals, and stalled touches.
    p.invalidations = 2.0 * p.migrations + p.remote_touches;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::verdicts::mech_table;

    fn predict_src(src: &str, trips: &[(&str, u64)], procs: usize) -> Prediction {
        let prog = parse(src).unwrap();
        let t = mech_table(&prog);
        predict(&prog, &t, trips, procs)
    }

    const TREE: &str = r#"
        struct tree { tree *left; tree *right; int val; };
        int T(tree *t) {
            if (t == null) { return 0; }
            else { return T(t->left) + T(t->right) + t->val; }
        }
    "#;

    #[test]
    fn migrating_recursion_uses_mean_edge_remoteness() {
        // Both descent edges have affinity 0.70: each of the 100
        // invocations arrives remotely with probability 0.30.
        let p = predict_src(TREE, &[("T#0", 100)], 8);
        assert!((p.migrations - 30.0).abs() < 1e-9, "{}", p.migrations);
        assert_eq!(p.line_fetches, 0.0, "everything migrates");
        assert!((p.invalidations - 60.0).abs() < 1e-9, "2x migrations");
        assert_eq!(p.remote_touches, 0.0, "no futures");
    }

    #[test]
    fn migrating_while_uses_update_affinity() {
        let p = predict_src(
            r#"
            struct node { node *next @ 95; };
            void W(node *n) { while (n) { n = n->next; } }
        "#,
            &[("W#0", 200)],
            8,
        );
        assert!((p.migrations - 10.0).abs() < 1e-9, "200 x 0.05");
    }

    #[test]
    fn cached_traversal_fetches_lines() {
        let p = predict_src(
            r#"
            struct node { node *next; int val; };
            void W(node *n) { int s = 0; while (n) { s = s + n->val; n = n->next; } }
        "#,
            &[("W#0", 100)],
            8,
        );
        assert_eq!(p.migrations, 0.0, "70% < 90%: caches");
        // One distinct object (n) per iteration, remote with 1 - 0.7.
        assert!((p.line_fetches - 30.0).abs() < 1e-9, "{}", p.line_fetches);
    }

    #[test]
    fn derived_object_composes_base_and_path() {
        // h = n->nbr caches; its base locality comes from the matrix row
        // (h <- n at 0.7) while n itself migrates at 95%.
        let p = predict_src(
            r#"
            struct enode { enode *next @ 95; hnode *nbr; int val; };
            struct hnode { int val; };
            void C(enode *n) {
                while (n != null) {
                    hnode *h = n->nbr;
                    n->val = n->val - h->val;
                    n = n->next;
                }
            }
        "#,
            &[("C#0", 100)],
            8,
        );
        assert!((p.migrations - 5.0).abs() < 1e-9);
        // Cached objects per iteration: h only (1 - 0.7 remote).
        assert!((p.line_fetches - 30.0).abs() < 1e-9, "{}", p.line_fetches);
    }

    #[test]
    fn future_with_path_argument_predicts_steals() {
        // futurecall T(l->item): the callee migrates on its parameter, so
        // the body leaves with 1 - a(item) = 0.3 per spawn.
        let p = predict_src(
            r#"
            struct list { list *next @ 95; tree *item; };
            struct tree { tree *left; tree *right; };
            void T(tree *t) {
                if (t == null) { return; }
                else { T(t->left); T(t->right); }
            }
            void F(list *l) {
                while (l) {
                    futurecall T(l->item);
                    l = l->next;
                }
            }
        "#,
            &[("F#0", 100)],
            8,
        );
        assert!(
            (p.remote_touches - 30.0).abs() < 1e-9,
            "{}",
            p.remote_touches
        );
        // The departing bodies are entry migrations (plus the parallel
        // loop's own l walk at 1 - 0.95).
        assert!((p.migrations - 35.0).abs() < 1e-9, "{}", p.migrations);
        assert!(
            (p.invalidations - (2.0 * p.migrations + p.remote_touches)).abs() < 1e-9,
            "acquire identity"
        );
    }

    #[test]
    fn demoted_walker_degrades_to_one_over_procs() {
        // Figure 5: Traverse is demoted; its walker stays on the spawning
        // processor, so the cached tree is local only 1/procs of the time
        // and no steals are predicted (the body never migrates).
        let p = predict_src(
            r#"
            struct list { list *next; };
            struct tree { tree *left @ 95; tree *right @ 95; };
            void Traverse(tree *t) {
                if (t == null) { return; }
                else { Traverse(t->left); Traverse(t->right); }
            }
            void WT(list *l, tree *t) {
                while (l) {
                    futurecall Traverse(t);
                    l = l->next;
                }
            }
        "#,
            &[("WT#0", 10), ("Traverse#0", 100)],
            4,
        );
        // WT is parallel, so `l` is force-migrated: 10 x (1 - 0.7).
        assert!((p.migrations - 3.0).abs() < 1e-9, "{}", p.migrations);
        assert_eq!(p.remote_touches, 0.0, "demoted body cannot migrate");
        // Traverse's t->left / t->right share base t with an empty
        // prefix: one cached object per invocation, remote 1 - 1/4. The
        // WT loop itself has no cached sites (l migrates, t is only a
        // bare future argument).
        assert!((p.line_fetches - 75.0).abs() < 1e-9, "{}", p.line_fetches);
    }

    #[test]
    fn unknown_callee_assumes_default_walk() {
        let p = predict_src(
            r#"
            struct node { node *next @ 95; };
            void F(node *l) {
                while (l) {
                    futurecall Go(l);
                    l = l->next;
                }
            }
        "#,
            &[("F#0", 100)],
            8,
        );
        assert!(
            (p.remote_touches - 30.0).abs() < 1e-9,
            "{}",
            p.remote_touches
        );
        assert!((p.migrations - 35.0).abs() < 1e-9, "5 walk + 30 entry");
    }

    #[test]
    fn missing_trip_counts_predict_zero() {
        let p = predict_src(TREE, &[], 8);
        assert_eq!(p, Prediction::default());
    }

    #[test]
    fn loop_keys_are_per_function_ordinals() {
        let prog = parse(
            r#"
            struct node { node *next; };
            void A(node *n) {
                if (n == null) { return; }
                node *p = n->next;
                while (p) { p = p->next; }
                A(n->next);
            }
            void B(node *n) { while (n) { n = n->next; } }
        "#,
        )
        .unwrap();
        assert_eq!(loop_keys(&prog), vec!["A#0", "A#1", "B#0"]);
    }

    #[test]
    fn counters_round_in_fixed_order() {
        let p = Prediction {
            migrations: 1.4,
            line_fetches: 2.6,
            invalidations: 3.5,
            remote_touches: 0.2,
        };
        let names: Vec<&str> = p.counters().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "migrations",
                "line_fetches",
                "invalidations",
                "remote_touches"
            ]
        );
        assert_eq!(p.counters()[1].1, 3);
    }
}
